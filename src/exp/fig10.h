#pragma once

/// \file fig10.h
/// Figure 10 (extension; not in the paper): the multi-device scenario sweep
/// the Platform model unlocks.  For K ∈ devices accelerator classes and a
/// grid of total offloaded ratios C_off/vol, random multi-device DAGs are
/// generated (gen/multi_device.h, offloaded volume split evenly across
/// devices), the generalised K-device chain bound R_plat
/// (analysis/platform_rta.h) is evaluated per core count m, and every
/// work-conserving ready-queue policy of the simulator is run against it.
///
/// Two claims are measured per (K, ratio, m) cell:
///   - soundness: no simulated makespan ever exceeds R_plat (violations are
///     counted with exact rational comparison and must be zero — the same
///     property the tests enforce, surfaced in the report);
///   - tightness: the mean slack between the bound and the *worst* policy's
///     makespan, showing how the Graham chain term grows with K and m.
///
/// Built as a thin Runner::sweep config like figs 6–9, so `--jobs N` output
/// is bit-identical to `--jobs 1`.

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace hedra::exp {

struct Fig10Config {
  std::vector<int> devices = {1, 2, 3, 4};  ///< K values swept
  std::vector<double> ratios = {0.05, 0.10, 0.20, 0.30, 0.40};
  std::vector<int> cores = paper_core_counts();
  gen::HierarchicalParams params =
      gen::HierarchicalParams::large_tasks_100_250();
  int offloads_per_device = 1;  ///< offload nodes per accelerator class
  int dags_per_point = 25;
  std::uint64_t seed = 42;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default
};

/// One (K, ratio, m) cell.
struct Fig10Row {
  int devices = 0;
  double ratio = 0.0;
  int m = 0;
  double mean_bound = 0.0;  ///< mean R_plat over the batch
  /// Mean simulated makespan per ready-queue policy, aligned with
  /// sim::all_policies().
  std::vector<double> mean_makespan;
  double max_sim_over_bound = 0.0;  ///< max simulated/bound (soundness: <= 1)
  double mean_slack_pct = 0.0;  ///< mean 100·(bound − worst sim)/bound
  int violations = 0;  ///< exact-rational bound violations (must be 0)
};

/// Per-(K, m) shape summary.
struct Fig10Summary {
  int devices = 0;
  int m = 0;
  double max_sim_over_bound = 0.0;  ///< over the whole ratio grid
  double mean_slack_pct = 0.0;      ///< mean of the cells' mean slack
  int violations = 0;               ///< total (must be 0)
};

struct Fig10Result {
  std::vector<Fig10Row> rows;
  std::vector<Fig10Summary> summaries;
  std::vector<std::string> policy_names;  ///< column labels for the rows
};

[[nodiscard]] Fig10Result run_fig10(const Fig10Config& config);

}  // namespace hedra::exp
