#include "exp/fig6.h"

#include <cmath>
#include <limits>

#include "analysis/transform.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig6Result run_fig6(const Fig6Config& config) {
  Fig6Result result;
  std::uint64_t batch_index = 0;
  for (const double ratio : config.ratios) {
    BatchConfig batch_config;
    batch_config.params = config.params;
    batch_config.coff_ratio = ratio;
    batch_config.count = config.dags_per_point;
    batch_config.seed = config.seed + 0x1000 * batch_index++;
    const auto batch = generate_batch(batch_config);

    // Transform once per DAG; simulation differs only in m.
    std::vector<graph::Dag> transformed;
    transformed.reserve(batch.size());
    for (const auto& dag : batch) {
      transformed.push_back(analysis::transform_for_offload(dag).transformed);
    }

    for (const int m : config.cores) {
      sim::SimConfig sim_config;
      sim_config.cores = m;
      sim_config.policy = config.policy;
      std::vector<double> t_orig;
      std::vector<double> t_trans;
      t_orig.reserve(batch.size());
      t_trans.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        t_orig.push_back(static_cast<double>(
            sim::simulated_makespan(batch[i], sim_config)));
        t_trans.push_back(static_cast<double>(
            sim::simulated_makespan(transformed[i], sim_config)));
      }
      Fig6Row row;
      row.m = m;
      row.ratio = ratio;
      row.avg_original = stats::mean(t_orig);
      row.avg_transformed = stats::mean(t_trans);
      row.pct_change =
          stats::percentage_change(row.avg_original, row.avg_transformed);
      result.rows.push_back(row);
    }
  }

  // Per-m shape summaries.
  for (const int m : config.cores) {
    Fig6Summary summary;
    summary.m = m;
    summary.crossover_ratio = std::numeric_limits<double>::quiet_NaN();
    summary.peak_pct = -std::numeric_limits<double>::infinity();
    for (const auto& row : result.rows) {
      if (row.m != m) continue;
      if (std::isnan(summary.crossover_ratio) && row.pct_change >= 0.0) {
        summary.crossover_ratio = row.ratio;
      }
      if (row.pct_change > summary.peak_pct) {
        summary.peak_pct = row.pct_change;
        summary.peak_ratio = row.ratio;
      }
    }
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
