#include "exp/fig6.h"

#include <limits>

#include "exp/runner.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig6Result run_fig6(const Fig6Config& config) {
  struct Sample {
    double t_original = 0.0;
    double t_transformed = 0.0;
  };
  Runner runner(config.jobs);
  Fig6Result result;
  result.rows = runner.sweep(
      make_grid({config.ratios, config.cores, config.params,
                 config.dags_per_point, config.seed}),
      [&config](analysis::AnalysisCache& cache, int m) {
        sim::SimConfig sim_config;
        sim_config.cores = m;
        sim_config.policy = config.policy;
        return Sample{static_cast<double>(sim::simulated_makespan(
                          cache.original(), sim_config)),
                      static_cast<double>(sim::simulated_makespan(
                          cache.transformed(), sim_config))};
      },
      [](const SweepPoint& point, int m, const std::vector<Sample>& samples) {
        Fig6Row row;
        row.m = m;
        row.ratio = point.ratio;
        double sum_original = 0.0;
        double sum_transformed = 0.0;
        for (const Sample& s : samples) {
          sum_original += s.t_original;
          sum_transformed += s.t_transformed;
        }
        row.avg_original = sum_original / static_cast<double>(samples.size());
        row.avg_transformed =
            sum_transformed / static_cast<double>(samples.size());
        row.pct_change =
            stats::percentage_change(row.avg_original, row.avg_transformed);
        return row;
      });

  for (const int m : config.cores) {
    Fig6Summary summary;
    summary.m = m;
    summary.crossover_ratio = crossover_ratio(
        result.rows, m, [](const Fig6Row& r) { return r.pct_change >= 0.0; });
    summary.peak_pct = -std::numeric_limits<double>::infinity();
    if (const Fig6Row* peak = peak_row(
            result.rows, m, [](const Fig6Row& r) { return r.pct_change; })) {
      summary.peak_pct = peak->pct_change;
      summary.peak_ratio = peak->ratio;
    }
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
