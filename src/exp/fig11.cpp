#include "exp/fig11.h"

#include <algorithm>

#include "exp/runner.h"
#include "sim/scheduler.h"
#include "stats/descriptive.h"

namespace hedra::exp {

namespace {

/// Per-(DAG, m, units) measurements: the generalised platform bound and one
/// simulated makespan per ready-queue policy on n_d units per device.
struct UnitsSample {
  double bound = 0.0;
  std::vector<double> makespans;  ///< aligned with sim::all_policies()
  double worst = 0.0;             ///< max of makespans
  bool violated = false;          ///< some makespan exceeded the bound
};

/// Per-(DAG, m) measurements across every swept unit count; the single-unit
/// reference bound is computed once per (DAG, m) regardless of the grid.
struct Fig11Sample {
  double bound_single = 0.0;
  std::vector<UnitsSample> per_units;  ///< aligned with config.units
};

}  // namespace

Fig11Result run_fig11(const Fig11Config& config) {
  HEDRA_REQUIRE(config.devices >= 1, "fig11 needs at least one device class");
  // The swept axis: explicit per-class unit vectors, or the symmetric
  // expansion of `units` (the historical grid, byte-identical output).
  std::vector<std::vector<int>> swept;
  if (!config.unit_vectors.empty()) {
    for (const auto& vec : config.unit_vectors) {
      HEDRA_REQUIRE(vec.size() == static_cast<std::size_t>(config.devices),
                    "every unit vector needs one entry per device class");
      for (const int units : vec) {
        HEDRA_REQUIRE(units >= 1, "unit counts must be >= 1");
      }
      swept.push_back(vec);
    }
  } else {
    HEDRA_REQUIRE(!config.units.empty(),
                  "fig11 needs at least one unit count");
    for (const int units : config.units) {
      HEDRA_REQUIRE(units >= 1, "unit counts must be >= 1");
      swept.emplace_back(static_cast<std::size_t>(config.devices), units);
    }
  }
  // -1 labels a genuinely asymmetric vector; all-equal vectors keep the
  // symmetric integer so historical rows are unchanged field-for-field.
  const auto units_label = [](const std::vector<int>& vec) {
    const bool symmetric =
        std::all_of(vec.begin(), vec.end(),
                    [&vec](int units) { return units == vec.front(); });
    return symmetric ? vec.front() : -1;
  };
  Runner runner(config.jobs);

  GridSpec spec;
  spec.ratios = config.ratios;
  spec.cores = config.cores;
  spec.params = config.params;
  spec.params.num_devices = config.devices;
  spec.params.offloads_per_device = config.offloads_per_device;
  spec.dags_per_point = config.dags_per_point;
  spec.seed = config.seed;
  const auto points = make_grid(spec);

  Fig11Result result;
  result.devices = config.devices;
  for (const auto policy : sim::all_policies()) {
    result.policy_names.emplace_back(sim::to_string(policy));
  }

  const auto cells = runner.sweep_platform(
      points,
      [&config, &swept](analysis::AnalysisCache& cache, int m,
                        const Frac& bound_single) {
        Fig11Sample sample;
        sample.bound_single = bound_single.to_double();
        sample.per_units.reserve(swept.size());
        for (const std::vector<int>& device_units : swept) {
          const Frac bound = cache.r_platform(m, device_units);
          UnitsSample us;
          us.bound = bound.to_double();
          us.makespans.reserve(sim::all_policies().size());
          for (const auto policy : sim::all_policies()) {
            sim::SimConfig sim_config;
            sim_config.cores = m;
            sim_config.policy = policy;
            sim_config.device_units = device_units;
            // Shared arena view, Monte-Carlo validation off (the
            // makespan-only recorder path) — the property tests simulate
            // the same unit counts with validation on.
            sim_config.validate = false;
            const graph::Time observed =
                sim::simulated_makespan(cache.flat_view(), sim_config);
            us.makespans.push_back(static_cast<double>(observed));
            us.worst = std::max(us.worst, static_cast<double>(observed));
            if (Frac(observed) > bound) us.violated = true;
          }
          sample.per_units.push_back(std::move(us));
        }
        return sample;
      },
      [&swept, &units_label](const SweepPoint& point, int m,
                             const std::vector<Fig11Sample>& samples) {
        // One row per swept unit count for this (ratio, m) cell.
        std::vector<Fig11Row> rows;
        const std::size_t num_policies = sim::all_policies().size();
        for (std::size_t ui = 0; ui < swept.size(); ++ui) {
          Fig11Row row;
          row.units = units_label(swept[ui]);
          row.unit_vector = swept[ui];
          row.ratio = point.ratio;
          row.m = m;
          row.mean_makespan.assign(num_policies, 0.0);
          std::vector<double> bounds, bounds_single, slacks;
          bounds.reserve(samples.size());
          bounds_single.reserve(samples.size());
          slacks.reserve(samples.size());
          for (const auto& sample : samples) {
            const UnitsSample& us = sample.per_units[ui];
            bounds.push_back(us.bound);
            bounds_single.push_back(sample.bound_single);
            slacks.push_back(100.0 * (us.bound - us.worst) / us.bound);
            for (std::size_t p = 0; p < num_policies; ++p) {
              row.mean_makespan[p] +=
                  us.makespans[p] / static_cast<double>(samples.size());
            }
            row.max_sim_over_bound =
                std::max(row.max_sim_over_bound, us.worst / us.bound);
            if (us.violated) ++row.violations;
          }
          row.mean_bound = stats::mean(bounds);
          row.mean_bound_single = stats::mean(bounds_single);
          row.mean_slack_pct = stats::mean(slacks);
          rows.push_back(std::move(row));
        }
        return rows;
      });
  for (const auto& cell : cells) {
    result.rows.insert(result.rows.end(), cell.begin(), cell.end());
  }

  for (const std::vector<int>& vec : swept) {
    for (const int m : config.cores) {
      Fig11Summary summary;
      summary.units = units_label(vec);
      summary.unit_vector = vec;
      summary.m = m;
      std::vector<double> slacks, gains;
      for (const auto& row : result.rows) {
        if (row.unit_vector != vec || row.m != m) continue;
        summary.max_sim_over_bound =
            std::max(summary.max_sim_over_bound, row.max_sim_over_bound);
        summary.violations += row.violations;
        slacks.push_back(row.mean_slack_pct);
        gains.push_back(100.0 * (row.mean_bound_single - row.mean_bound) /
                        row.mean_bound_single);
      }
      if (!slacks.empty()) {
        summary.mean_slack_pct = stats::mean(slacks);
        summary.mean_bound_gain_pct = stats::mean(gains);
      }
      result.summaries.push_back(summary);
    }
  }
  return result;
}

}  // namespace hedra::exp
