#pragma once

/// \file fig11.h
/// Figure 11 (extension; not in the paper): the execution-unit-multiplicity
/// sweep the n_d generalisation unlocks.  For a fixed number K of
/// accelerator classes, a grid of total offloaded ratios and the paper's
/// core counts, random multi-device DAGs are generated once per (ratio)
/// point and then evaluated under every unit count n ∈ `units` applied
/// symmetrically to all K classes: the generalised bound R_plat(n)
/// (vol_d/n_d device terms + mixed-weight chain walk) against the simulated
/// makespan of every work-conserving ready-queue policy running on n units
/// per device (sim::SimConfig::device_units).
///
/// Because the SAME batch is reused for every n, the per-row deltas isolate
/// the multiplicity effect: how much the bound tightens (vol_d/n_d shrinks,
/// the (n_d−1)/n_d chain weight grows) and how much the simulated
/// schedules actually speed up when devices stop serialising.  Soundness is
/// counted per cell with exact rationals and must be zero, exactly as in
/// fig10.
///
/// Built as a thin Runner::sweep config like figs 6–10, so `--jobs N`
/// output is bit-identical to `--jobs 1`.

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experiment.h"

namespace hedra::exp {

struct Fig11Config {
  int devices = 2;                   ///< K accelerator classes (fixed)
  std::vector<int> units = {1, 2, 3};  ///< n_d values swept (symmetric)
  /// ASYMMETRIC sweep: when non-empty, these explicit per-class unit
  /// vectors (each of size `devices`, entries >= 1) replace the symmetric
  /// expansion of `units` — e.g. {{2, 1}, {3, 1}} gives one multi-unit
  /// class and one serial class per row, the configuration the analysis
  /// and simulator always accepted but the grid could not express.  Empty
  /// (the default) keeps the symmetric sweep byte-identical.
  std::vector<std::vector<int>> unit_vectors;
  std::vector<double> ratios = {0.10, 0.20, 0.30, 0.40};
  std::vector<int> cores = paper_core_counts();
  gen::HierarchicalParams params =
      gen::HierarchicalParams::large_tasks_100_250();
  /// Offload nodes per class; >= 2 by default so a multi-unit device has
  /// parallelism to exploit.
  int offloads_per_device = 2;
  int dags_per_point = 25;
  std::uint64_t seed = 43;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default
};

/// One (units, ratio, m) cell.
struct Fig11Row {
  /// n_d applied to every device class; -1 for an asymmetric unit vector
  /// (see unit_vector).
  int units = 0;
  /// The per-class unit vector of this row (all-equal for symmetric rows).
  std::vector<int> unit_vector;
  double ratio = 0.0;
  int m = 0;
  double mean_bound = 0.0;         ///< mean R_plat(n_d) over the batch
  double mean_bound_single = 0.0;  ///< mean R_plat with n_d = 1 (reference)
  /// Mean simulated makespan per ready-queue policy, aligned with
  /// sim::all_policies().
  std::vector<double> mean_makespan;
  double max_sim_over_bound = 0.0;  ///< max simulated/bound (soundness: <= 1)
  double mean_slack_pct = 0.0;  ///< mean 100·(bound − worst sim)/bound
  int violations = 0;  ///< exact-rational bound violations (must be 0)
};

/// Per-(units, m) shape summary.
struct Fig11Summary {
  int units = 0;                 ///< -1 for an asymmetric unit vector
  std::vector<int> unit_vector;  ///< per-class units of this summary
  int m = 0;
  double max_sim_over_bound = 0.0;  ///< over the whole ratio grid
  double mean_slack_pct = 0.0;      ///< mean of the cells' mean slack
  /// Mean 100·(R_plat(1) − R_plat(n))/R_plat(1): how much the bound
  /// tightens relative to the single-unit platform.
  double mean_bound_gain_pct = 0.0;
  int violations = 0;               ///< total (must be 0)
};

struct Fig11Result {
  int devices = 0;  ///< K used for every row
  std::vector<Fig11Row> rows;
  std::vector<Fig11Summary> summaries;
  std::vector<std::string> policy_names;  ///< column labels for the rows
};

[[nodiscard]] Fig11Result run_fig11(const Fig11Config& config);

}  // namespace hedra::exp
