#include "exp/fig9.h"

#include <algorithm>
#include <limits>

#include "exp/runner.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig9Result run_fig9(const Fig9Config& config) {
  Runner runner(config.jobs);
  Fig9Result result;
  result.rows = runner.sweep(
      make_grid({config.ratios, config.cores, config.params,
                 config.dags_per_point, config.seed}),
      [](analysis::AnalysisCache& cache, int m) {
        return stats::percentage_change(cache.r_hom(m).to_double(),
                                        cache.r_het(m).to_double());
      },
      [](const SweepPoint& point, int m, const std::vector<double>& samples) {
        const auto summary = stats::summarize(samples);
        Fig9Row row;
        row.m = m;
        row.ratio = point.ratio;
        row.mean_pct = summary.mean;
        row.max_pct = summary.max;
        return row;
      });

  for (const int m : config.cores) {
    Fig9Summary summary;
    summary.m = m;
    summary.crossover_ratio = crossover_ratio(
        result.rows, m, [](const Fig9Row& r) { return r.mean_pct >= 0.0; });
    summary.peak_mean_pct = -std::numeric_limits<double>::infinity();
    summary.max_observed_pct = -std::numeric_limits<double>::infinity();
    if (const Fig9Row* peak = peak_row(
            result.rows, m, [](const Fig9Row& r) { return r.mean_pct; })) {
      summary.peak_mean_pct = peak->mean_pct;
      summary.peak_ratio = peak->ratio;
    }
    for (const auto& row : result.rows) {
      if (row.m == m) {
        summary.max_observed_pct =
            std::max(summary.max_observed_pct, row.max_pct);
      }
    }
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
