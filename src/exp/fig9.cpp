#include "exp/fig9.h"

#include <cmath>
#include <limits>

#include "analysis/rta_heterogeneous.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig9Result run_fig9(const Fig9Config& config) {
  Fig9Result result;
  std::uint64_t batch_index = 0;
  for (const double ratio : config.ratios) {
    BatchConfig batch_config;
    batch_config.params = config.params;
    batch_config.coff_ratio = ratio;
    batch_config.count = config.dags_per_point;
    batch_config.seed = config.seed + 0x1000 * batch_index++;
    const auto batch = generate_batch(batch_config);

    for (const int m : config.cores) {
      std::vector<double> changes;
      changes.reserve(batch.size());
      for (const auto& dag : batch) {
        const auto analysis = analysis::analyze_heterogeneous(dag, m);
        changes.push_back(stats::percentage_change(
            analysis.r_hom.to_double(), analysis.r_het.to_double()));
      }
      const auto summary = stats::summarize(changes);
      Fig9Row row;
      row.m = m;
      row.ratio = ratio;
      row.mean_pct = summary.mean;
      row.max_pct = summary.max;
      result.rows.push_back(row);
    }
  }

  for (const int m : config.cores) {
    Fig9Summary summary;
    summary.m = m;
    summary.crossover_ratio = std::numeric_limits<double>::quiet_NaN();
    summary.peak_mean_pct = -std::numeric_limits<double>::infinity();
    summary.max_observed_pct = -std::numeric_limits<double>::infinity();
    for (const auto& row : result.rows) {
      if (row.m != m) continue;
      if (std::isnan(summary.crossover_ratio) && row.mean_pct >= 0.0) {
        summary.crossover_ratio = row.ratio;
      }
      if (row.mean_pct > summary.peak_mean_pct) {
        summary.peak_mean_pct = row.mean_pct;
        summary.peak_ratio = row.ratio;
      }
      summary.max_observed_pct = std::max(summary.max_observed_pct, row.max_pct);
    }
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
