#pragma once

/// \file fig6.h
/// Figure 6 (§5.2) — impact of the DAG transformation on *average*
/// performance: percentage change of the average simulated execution time of
/// the original task τ with respect to the transformed task τ', under the
/// GOMP-style work-conserving breadth-first scheduler, sweeping C_off/vol
/// and m.  Positive values mean τ is slower, i.e. the transformation helps.

#include <cstdint>
#include <vector>

#include "exp/experiment.h"
#include "sim/scheduler.h"

namespace hedra::exp {

/// Sweep configuration.
struct Fig6Config {
  std::vector<int> cores = paper_core_counts();
  std::vector<double> ratios = ratio_grid_fig6();
  gen::HierarchicalParams params =
      gen::HierarchicalParams::large_tasks_100_250();
  int dags_per_point = 100;
  std::uint64_t seed = 42;
  sim::Policy policy = sim::Policy::kBreadthFirst;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default
};

/// One (m, ratio) cell.
struct Fig6Row {
  int m = 0;
  double ratio = 0.0;          ///< target C_off / vol
  double avg_original = 0.0;   ///< mean simulated makespan of τ
  double avg_transformed = 0.0;///< mean simulated makespan of τ'
  double pct_change = 0.0;     ///< 100·(avg τ − avg τ')/avg τ'
};

/// Per-m shape summary (the numbers §5.2 quotes).
struct Fig6Summary {
  int m = 0;
  /// Smallest swept ratio at which the transformation starts winning
  /// (pct_change >= 0); NaN if it never wins.
  double crossover_ratio = 0.0;
  /// Largest observed mean improvement and where it occurs.
  double peak_pct = 0.0;
  double peak_ratio = 0.0;
};

struct Fig6Result {
  std::vector<Fig6Row> rows;
  std::vector<Fig6Summary> summaries;
};

/// Runs the sweep.  Batches are shared across core counts (one batch per
/// ratio), matching the paper's "100 DAGs for each target value of C_off".
[[nodiscard]] Fig6Result run_fig6(const Fig6Config& config);

}  // namespace hedra::exp
