#pragma once

/// \file fig8.h
/// Figure 8 (§5.4) — occurrence of Theorem 1's execution scenarios as a
/// function of C_off/vol and m.  S1 dominates for small offloads (v_off off
/// the critical path); S2.2 takes over as v_off turns critical; S2.1 rises
/// once C_off exceeds R_hom(G_par), earlier for larger m.

#include <cstdint>
#include <vector>

#include "exp/experiment.h"

namespace hedra::exp {

struct Fig8Config {
  std::vector<int> cores = paper_core_counts();
  std::vector<double> ratios = ratio_grid_fig89();
  gen::HierarchicalParams params =
      gen::HierarchicalParams::large_tasks_100_250();
  int dags_per_point = 100;
  std::uint64_t seed = 42;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default
};

/// One (m, ratio) cell: scenario shares in percent (sum to 100).
struct Fig8Row {
  int m = 0;
  double ratio = 0.0;
  double pct_s1 = 0.0;
  double pct_s21 = 0.0;
  double pct_s22 = 0.0;
};

/// Per-m: ratio at which S2.1 overtakes S2.2 (the C_off = R_hom(G_par)
/// sweet spot the paper highlights); NaN if it never happens in the sweep.
struct Fig8Summary {
  int m = 0;
  double s21_s22_crossover = 0.0;
};

struct Fig8Result {
  std::vector<Fig8Row> rows;
  std::vector<Fig8Summary> summaries;
};

[[nodiscard]] Fig8Result run_fig8(const Fig8Config& config);

}  // namespace hedra::exp
