#pragma once

/// \file experiment.h
/// Shared Monte-Carlo plumbing for the evaluation (§5.1): batches of random
/// heterogeneous DAG tasks at a target C_off/vol ratio, the ratio grids the
/// figures sweep, and the core counts the paper evaluates.
///
/// Replications are seeded independently (seed ⊕ replication index through
/// the RNG fork), so results do not depend on evaluation order and any
/// single DAG of a batch can be regenerated in isolation.

#include <cstdint>
#include <vector>

#include "gen/hierarchical.h"
#include "gen/offload.h"
#include "graph/dag.h"
#include "graph/flat_batch.h"
#include "util/thread_pool.h"

namespace hedra::exp {

/// Configuration for one batch of random heterogeneous tasks.
struct BatchConfig {
  gen::HierarchicalParams params = gen::HierarchicalParams::large_tasks_100_250();
  double coff_ratio = 0.1;   ///< target C_off / vol(G)
  int count = 100;           ///< DAGs per parameter point (paper: 100)
  std::uint64_t seed = 42;
};

/// Generates `count` heterogeneous DAGs: hierarchical structure, random
/// internal v_off, C_off set to the target ratio.
[[nodiscard]] std::vector<graph::Dag> generate_batch(const BatchConfig& config);

/// Same batch, generated over `pool`.  Replication RNGs are forked serially
/// from the master and each DAG builds from its own stream into its own
/// slot, so the result is bit-identical to the serial overload.
[[nodiscard]] std::vector<graph::Dag> generate_batch(const BatchConfig& config,
                                                     ThreadPool& pool);

/// Same batch as generate_batch — bit-identical DAGs from the same RNG
/// fork chain — but emitted straight into a structure-of-arrays arena: no
/// per-DAG Dag objects, no per-attempt allocations in the rejection loop.
/// `batch.view(i)` equals `FlatDag(generate_batch(config)[i])` array for
/// array; `batch.materialize(i)` reproduces the Dag itself.  This is the
/// hot path for every sweep-shaped experiment; generation is serial (it is
/// allocation-, not compute-, bound once staged).
[[nodiscard]] graph::FlatDagBatch generate_flat_batch(
    const BatchConfig& config);

/// Core counts evaluated throughout §5: m = 2, 4, 8, 16.
[[nodiscard]] std::vector<int> paper_core_counts();

/// Figure 6 sweeps C_off/vol from 1% to 70%.
[[nodiscard]] std::vector<double> ratio_grid_fig6();

/// Figures 8 and 9 sweep C_off/vol from 0.12% to 50%.
[[nodiscard]] std::vector<double> ratio_grid_fig89();

/// Figure 7 concentrates on the ratios the paper highlights (pessimism
/// crossovers between ~2% and ~50%).
[[nodiscard]] std::vector<double> ratio_grid_fig7();

}  // namespace hedra::exp
