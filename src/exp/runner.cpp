#include "exp/runner.h"

namespace hedra::exp {

std::vector<std::uint64_t> batch_seeds(std::uint64_t master_seed,
                                       std::size_t count) {
  Rng master(master_seed);
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(master.fork().next_u64());
  }
  return out;
}

std::vector<SweepPoint> make_grid(const GridSpec& spec) {
  const auto seeds = batch_seeds(spec.seed, spec.ratios.size());
  std::vector<SweepPoint> points;
  points.reserve(spec.ratios.size());
  for (std::size_t i = 0; i < spec.ratios.size(); ++i) {
    SweepPoint point;
    point.batch.params = spec.params;
    point.batch.coff_ratio = spec.ratios[i];
    point.batch.count = spec.dags_per_point;
    point.batch.seed = seeds[i];
    point.cores = spec.cores;
    point.ratio = spec.ratios[i];
    points.push_back(std::move(point));
  }
  return points;
}

Runner::Runner(int jobs)
    : pool_(jobs <= 0 ? ThreadPool::default_workers() : jobs) {}

std::vector<graph::Dag> Runner::generate(const BatchConfig& config) {
  return generate_batch(config, pool_);
}

}  // namespace hedra::exp
