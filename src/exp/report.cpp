#include "exp/report.h"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/csv.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/table.h"

namespace hedra::exp {

namespace {

std::string pct(double value) { return format_percent(value, 2); }
std::string ratio_str(double value) { return format_double(100.0 * value, 2) + "%"; }

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  HEDRA_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  return out;
}

}  // namespace

std::string render_fig6(const Fig6Result& result) {
  TextTable table({"C_off/vol", "m", "avg T(tau)", "avg T(tau')",
                   "pct change tau vs tau'"});
  for (const auto& row : result.rows) {
    table.add_row({ratio_str(row.ratio), std::to_string(row.m),
                   format_double(row.avg_original, 1),
                   format_double(row.avg_transformed, 1),
                   pct(row.pct_change)});
  }
  std::ostringstream os;
  os << table.render();
  os << "\nShape summary (paper: crossovers at ~11/8/6/4.5% of vol for "
        "m=2/4/8/16; peak ~+24% at m=2):\n";
  for (const auto& s : result.summaries) {
    os << "  m=" << s.m << ": transformation wins from C_off/vol ≈ "
       << (std::isnan(s.crossover_ratio) ? std::string("never")
                                         : ratio_str(s.crossover_ratio))
       << ", peak " << pct(s.peak_pct) << " at " << ratio_str(s.peak_ratio)
       << "\n";
  }
  return os.str();
}

std::string render_fig7(const Fig7Result& result) {
  TextTable table({"m", "C_off/vol", "R_hom vs OPT", "R_het vs OPT",
                   "proven optimal"});
  for (const auto& row : result.rows) {
    table.add_row({std::to_string(row.m), ratio_str(row.ratio),
                   pct(row.incr_rhom_pct), pct(row.incr_rhet_pct),
                   format_double(100.0 * row.optimal_fraction, 0) + "%"});
  }
  std::ostringstream os;
  os << table.render();
  os << "\nPaper shape: R_het pessimism decays with C_off (<1% once C_off is "
        "large); R_hom is better only for very small C_off.\n";
  return os.str();
}

std::string render_fig8(const Fig8Result& result) {
  TextTable table({"m", "C_off/vol", "S1 %", "S2.1 %", "S2.2 %"});
  for (const auto& row : result.rows) {
    table.add_row({std::to_string(row.m), ratio_str(row.ratio),
                   format_double(row.pct_s1, 1), format_double(row.pct_s21, 1),
                   format_double(row.pct_s22, 1)});
  }
  std::ostringstream os;
  os << table.render();
  os << "\nS2.1/S2.2 crossover (paper: ~32/20/14/10% of vol for m=2/4/8/16):\n";
  for (const auto& s : result.summaries) {
    os << "  m=" << s.m << ": "
       << (std::isnan(s.s21_s22_crossover) ? std::string("not reached")
                                           : ratio_str(s.s21_s22_crossover))
       << "\n";
  }
  return os.str();
}

std::string render_fig9(const Fig9Result& result) {
  TextTable table({"m", "C_off/vol", "mean pct change", "max pct change"});
  for (const auto& row : result.rows) {
    table.add_row({std::to_string(row.m), ratio_str(row.ratio),
                   pct(row.mean_pct), pct(row.max_pct)});
  }
  std::ostringstream os;
  os << table.render();
  os << "\nShape summary (paper: peaks ~70/55/40/30%, maxima "
        "95.0/82.5/65.3/47.7%, R_hom better below ~1.6/3.4/4.6/5% for "
        "m=2/4/8/16):\n";
  for (const auto& s : result.summaries) {
    os << "  m=" << s.m << ": R_het wins from "
       << (std::isnan(s.crossover_ratio) ? std::string("never")
                                         : ratio_str(s.crossover_ratio))
       << ", peak mean " << pct(s.peak_mean_pct) << " at "
       << ratio_str(s.peak_ratio) << ", max observed "
       << pct(s.max_observed_pct) << "\n";
  }
  return os.str();
}

std::string render_fig10(const Fig10Result& result) {
  // Policy columns abbreviate to hyphen-initials: breadth-first -> "BF",
  // critical-path-first -> "CPF", random -> "R".
  const auto abbreviate = [](const std::string& name) {
    std::string out;
    bool take = true;
    for (const char c : name) {
      if (take && c != '-') out.push_back(static_cast<char>(std::toupper(c)));
      take = c == '-';
    }
    return out;
  };
  std::vector<std::string> header{"K", "C_off/vol", "m", "mean R_plat"};
  for (const auto& name : result.policy_names) {
    header.push_back("sim " + abbreviate(name));
  }
  header.emplace_back("worst/bound");
  TextTable table(header);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{std::to_string(row.devices),
                                   ratio_str(row.ratio), std::to_string(row.m),
                                   format_double(row.mean_bound, 1)};
    for (const double makespan : row.mean_makespan) {
      cells.push_back(format_double(makespan, 1));
    }
    cells.push_back(format_double(row.max_sim_over_bound, 3));
    table.add_row(cells);
  }
  std::ostringstream os;
  os << table.render();
  os << "\nSoundness & tightness per (K, m) — every work-conserving policy "
        "must stay below R_plat:\n";
  for (const auto& s : result.summaries) {
    os << "  K=" << s.devices << " m=" << s.m << ": worst sim/bound "
       << format_double(s.max_sim_over_bound, 3) << ", mean slack "
       << format_double(s.mean_slack_pct, 1) << "%, violations "
       << s.violations << (s.violations == 0 ? "" : "  <-- UNSOUND") << "\n";
  }
  return os.str();
}

/// "2" for symmetric unit counts, "2-1" for an asymmetric vector (the '-'
/// keeps CSV cells delimiter-free).
static std::string units_str(int units, const std::vector<int>& unit_vector) {
  if (units >= 0 || unit_vector.empty()) return std::to_string(units);
  std::string out;
  for (std::size_t i = 0; i < unit_vector.size(); ++i) {
    if (i > 0) out += '-';
    out += std::to_string(unit_vector[i]);
  }
  return out;
}

std::string render_fig11(const Fig11Result& result) {
  const auto abbreviate = [](const std::string& name) {
    std::string out;
    bool take = true;
    for (const char c : name) {
      if (take && c != '-') out.push_back(static_cast<char>(std::toupper(c)));
      take = c == '-';
    }
    return out;
  };
  std::vector<std::string> header{"n_d", "C_off/vol", "m", "mean R_plat",
                                  "R_plat(n=1)"};
  for (const auto& name : result.policy_names) {
    header.push_back("sim " + abbreviate(name));
  }
  header.emplace_back("worst/bound");
  TextTable table(header);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{
        units_str(row.units, row.unit_vector), ratio_str(row.ratio),
        std::to_string(row.m), format_double(row.mean_bound, 1),
        format_double(row.mean_bound_single, 1)};
    for (const double makespan : row.mean_makespan) {
      cells.push_back(format_double(makespan, 1));
    }
    cells.push_back(format_double(row.max_sim_over_bound, 3));
    table.add_row(cells);
  }
  std::ostringstream os;
  os << "K = " << result.devices
     << " accelerator class(es), n_d units each\n";
  os << table.render();
  os << "\nSoundness & tightening per (n_d, m) — every work-conserving "
        "policy must stay below R_plat(n_d):\n";
  for (const auto& s : result.summaries) {
    os << "  n_d=" << units_str(s.units, s.unit_vector) << " m=" << s.m
       << ": worst sim/bound "
       << format_double(s.max_sim_over_bound, 3) << ", mean slack "
       << format_double(s.mean_slack_pct, 1) << "%, bound gain vs n_d=1 "
       << format_double(s.mean_bound_gain_pct, 1) << "%, violations "
       << s.violations << (s.violations == 0 ? "" : "  <-- UNSOUND") << "\n";
  }
  return os.str();
}

std::string render_fig12(const Fig12Result& result) {
  TextTable table({"K", "n_d", "m", "U", "accepted", "mean cores",
                   "mean R/D", "worst obs/bound"});
  for (const auto& row : result.rows) {
    table.add_row({std::to_string(row.devices), std::to_string(row.units),
                   std::to_string(row.m), format_double(row.utilization, 2),
                   std::to_string(row.admitted) + "/" +
                       std::to_string(row.tasksets),
                   format_double(row.mean_cores_used, 1),
                   format_double(row.mean_bound_over_deadline, 3),
                   format_double(row.max_obs_over_bound, 3)});
  }
  std::ostringstream os;
  os << "Taskset admission under shared-accelerator contention ("
     << result.policy_name << " simulation)\n";
  os << table.render();
  os << "\nCapacity & soundness per (K, n_d, m) — every admitted job must "
        "stay below its contention bound:\n";
  for (const auto& s : result.summaries) {
    os << "  K=" << s.devices << " n_d=" << s.units << " m=" << s.m
       << ": >=50% acceptance up to U = "
       << (std::isnan(s.half_acceptance_util)
               ? std::string("never")
               : format_double(s.half_acceptance_util, 2))
       << ", worst obs/bound " << format_double(s.max_obs_over_bound, 3)
       << ", violations " << s.violations
       << (s.violations == 0 ? "" : "  <-- UNSOUND") << "\n";
  }
  return os.str();
}

void write_fig6_csv(const Fig6Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  csv.row({"coff_ratio", "m", "avg_original", "avg_transformed", "pct_change"});
  for (const auto& row : result.rows) {
    csv.cells(row.ratio, row.m, row.avg_original, row.avg_transformed,
              row.pct_change);
  }
}

void write_fig7_csv(const Fig7Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  csv.row({"m", "coff_ratio", "incr_rhom_pct", "incr_rhet_pct",
           "optimal_fraction"});
  for (const auto& row : result.rows) {
    csv.cells(row.m, row.ratio, row.incr_rhom_pct, row.incr_rhet_pct,
              row.optimal_fraction);
  }
}

void write_fig8_csv(const Fig8Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  csv.row({"m", "coff_ratio", "pct_s1", "pct_s21", "pct_s22"});
  for (const auto& row : result.rows) {
    csv.cells(row.m, row.ratio, row.pct_s1, row.pct_s21, row.pct_s22);
  }
}

void write_fig9_csv(const Fig9Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  csv.row({"m", "coff_ratio", "mean_pct", "max_pct"});
  for (const auto& row : result.rows) {
    csv.cells(row.m, row.ratio, row.mean_pct, row.max_pct);
  }
}

void write_fig10_csv(const Fig10Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  std::vector<std::string> header{"devices", "coff_ratio", "m", "mean_bound"};
  for (const auto& name : result.policy_names) {
    header.push_back("mean_sim_" + name);
  }
  header.emplace_back("max_sim_over_bound");
  header.emplace_back("violations");
  csv.row(header);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{
        std::to_string(row.devices), format_double(row.ratio, 4),
        std::to_string(row.m), format_double(row.mean_bound, 6)};
    for (const double makespan : row.mean_makespan) {
      cells.push_back(format_double(makespan, 6));
    }
    cells.push_back(format_double(row.max_sim_over_bound, 6));
    cells.push_back(std::to_string(row.violations));
    csv.row(cells);
  }
}

void write_fig11_csv(const Fig11Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  std::vector<std::string> header{"devices", "units",      "coff_ratio",
                                  "m",       "mean_bound", "mean_bound_single"};
  for (const auto& name : result.policy_names) {
    header.push_back("mean_sim_" + name);
  }
  header.emplace_back("max_sim_over_bound");
  header.emplace_back("violations");
  csv.row(header);
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{
        std::to_string(result.devices),
        units_str(row.units, row.unit_vector),
        format_double(row.ratio, 4),
        std::to_string(row.m),
        format_double(row.mean_bound, 6),
        format_double(row.mean_bound_single, 6)};
    for (const double makespan : row.mean_makespan) {
      cells.push_back(format_double(makespan, 6));
    }
    cells.push_back(format_double(row.max_sim_over_bound, 6));
    cells.push_back(std::to_string(row.violations));
    csv.row(cells);
  }
}

void write_fig12_csv(const Fig12Result& result, const std::string& path) {
  auto out = open_out(path);
  CsvWriter csv(out);
  csv.row({"devices", "units", "m", "utilization", "tasksets", "admitted",
           "acceptance", "mean_cores_used", "mean_bound_over_deadline",
           "max_obs_over_bound", "violations"});
  for (const auto& row : result.rows) {
    std::vector<std::string> cells{
        std::to_string(row.devices),
        std::to_string(row.units),
        std::to_string(row.m),
        format_double(row.utilization, 4),
        std::to_string(row.tasksets),
        std::to_string(row.admitted),
        format_double(row.acceptance, 6),
        format_double(row.mean_cores_used, 6),
        format_double(row.mean_bound_over_deadline, 6),
        format_double(row.max_obs_over_bound, 6),
        std::to_string(row.violations)};
    csv.row(cells);
  }
}

}  // namespace hedra::exp
