#pragma once

/// \file runner.h
/// The unified experiment engine behind every §5 figure and study.
///
/// All evaluation sweeps share one Monte-Carlo recipe: for each point of a
/// parameter grid, generate a batch of random heterogeneous DAGs, evaluate
/// every DAG under each core count m, and aggregate the per-DAG samples
/// into one row per (point, m) cell.  `Runner::sweep` owns that recipe —
/// batch generation, per-DAG fan-out over a thread pool, and deterministic
/// row aggregation — so a figure is nothing but a grid plus two lambdas:
///
///   Runner runner(config.jobs);
///   auto rows = runner.sweep(points,
///       [](analysis::AnalysisCache& cache, int m) { return sample; },
///       [](const SweepPoint& p, int m, const std::vector<Sample>& s) {
///         return row; });
///
/// Determinism: batch seeds derive from the master seed through the same
/// RNG fork chain used for replications (never arithmetic offsets, so grid
/// points can never collide), every DAG is evaluated from its own
/// independently seeded stream into its own output slot, and rows are
/// reduced on the calling thread in grid order.  `--jobs N` output is
/// therefore bit-identical to `--jobs 1` (enforced by tests/exp) —
/// provided `per_dag` is itself deterministic.  A wall-clock-budgeted
/// callback (e.g. exact::BnbConfig::time_limit_sec in fig7) can explore
/// less under CPU contention, so its samples may vary with `--jobs`; pin
/// `--jobs 1` or use a pure node budget when exact replication matters.
///
/// The per-DAG callback receives an AnalysisCache so the transform,
/// topological order and critical paths are computed once per DAG and
/// shared across all m values of the point.

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "analysis/analysis_cache.h"
#include "analysis/batch_kernels.h"
#include "exp/experiment.h"
#include "util/deadline.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace hedra::exp {

/// One grid point: a batch specification plus the core counts to evaluate.
struct SweepPoint {
  BatchConfig batch;        ///< fully specified, including its forked seed
  std::vector<int> cores;   ///< m values evaluated on this batch
  double ratio = 0.0;       ///< annotation: batch.coff_ratio
};

/// The common ratio × cores grid shape of figs 6, 8 and 9.
struct GridSpec {
  std::vector<double> ratios;
  std::vector<int> cores;
  gen::HierarchicalParams params;
  int dags_per_point = 100;
  std::uint64_t seed = 42;
};

/// Derives `count` independent batch seeds from `master_seed` through the
/// replication fork chain.  This replaces the historical
/// `seed + 0x1000 * index` scheme, whose batches collided whenever two
/// sweeps used master seeds an offset multiple of 0x1000 apart.
[[nodiscard]] std::vector<std::uint64_t> batch_seeds(std::uint64_t master_seed,
                                                     std::size_t count);

/// Expands a GridSpec into ratio-major sweep points with forked seeds.
[[nodiscard]] std::vector<SweepPoint> make_grid(const GridSpec& spec);

class Runner {
 public:
  /// `jobs` worker threads; 1 runs everything inline on the caller, and
  /// jobs <= 0 selects ThreadPool::default_workers().
  explicit Runner(int jobs = 1);

  [[nodiscard]] int jobs() const noexcept { return pool_.workers(); }

  /// Deadline checked between grid points (never inside one: a point's
  /// fan-out runs to completion so the emitted rows are whole cells).  On
  /// expiry the sweep returns the rows finished so far and last_outcome()
  /// reports kBudgetExhausted — callers distinguish a truncated grid from a
  /// completed one instead of silently consuming fewer rows.
  void set_deadline(util::Deadline deadline) noexcept { deadline_ = deadline; }

  /// Outcome of the most recent sweep*/generate call on this runner.
  [[nodiscard]] util::Outcome last_outcome() const noexcept {
    return last_outcome_;
  }

  /// Batch generation fanned out over the pool; bit-identical to
  /// generate_batch (replication RNGs are forked serially, generation runs
  /// per-slot).
  [[nodiscard]] std::vector<graph::Dag> generate(const BatchConfig& config);

  /// The generic core of sweep(): any point type, any batch item type.
  /// `make_batch(point) -> std::vector<Item>` runs serially on the calling
  /// thread (generation owns the RNG fork chain, so it must not race);
  /// `per_item(item, point) -> Sample` fans out over the pool, every item
  /// writing only its own slot; `reduce(point, samples) -> Row` runs on the
  /// calling thread in grid order.  Exactly the determinism contract of
  /// sweep(), so `--jobs N` output stays bit-identical to `--jobs 1`
  /// provided per_item is deterministic.  The taskset-level fig12 sweep
  /// builds on this directly (its batch items are whole task sets, not
  /// DAGs, and each point carries a single platform).
  template <typename Point, typename MakeBatch, typename PerItem,
            typename Reduce>
  auto sweep_items(const std::vector<Point>& points, MakeBatch&& make_batch,
                   PerItem&& per_item, Reduce&& reduce) {
    using Batch = std::invoke_result_t<MakeBatch&, const Point&>;
    using Item = typename Batch::value_type;
    using Sample = std::invoke_result_t<PerItem&, Item&, const Point&>;
    using Row =
        std::invoke_result_t<Reduce&, const Point&, const std::vector<Sample>&>;
    std::vector<Row> rows;
    rows.reserve(points.size());
    last_outcome_ = util::Outcome::kComplete;
    for (const Point& point : points) {
      if (point_cut()) break;
      Batch batch = make_batch(point);
      std::vector<Sample> samples(batch.size());
      pool_.parallel_for_each(batch.size(), [&](std::size_t i) {
        samples[i] = per_item(batch[i], point);
      });
      rows.push_back(reduce(point, samples));
    }
    return rows;
  }

  /// Runs the full sweep.  `per_dag(cache, m) -> Sample` is called for every
  /// (DAG, m) pair, all m values of a DAG on the same worker and cache;
  /// `reduce(point, m, samples) -> Row` aggregates each cell on the calling
  /// thread, with `samples` in replication order.  Rows come back
  /// point-major, m-minor — the order the figures print.
  ///
  /// Batches are generated as one SoA arena (generate_flat_batch, bit
  /// -identical to generate_batch) and every cache binds to its arena slice:
  /// the platform-bound path runs straight over flat arrays, and only
  /// callbacks that force the τ ⇒ τ' transform (fig6/8/9) materialise a Dag
  /// — lazily, once, field-identical to the legacy object.
  template <typename PerDag, typename Reduce>
  auto sweep(const std::vector<SweepPoint>& points, PerDag&& per_dag,
             Reduce&& reduce) {
    using Sample =
        std::invoke_result_t<PerDag&, analysis::AnalysisCache&, int>;
    using Row = std::invoke_result_t<Reduce&, const SweepPoint&, int,
                                     const std::vector<Sample>&>;
    std::vector<Row> rows;
    last_outcome_ = util::Outcome::kComplete;
    for (const SweepPoint& point : points) {
      if (point_cut()) break;
      const graph::FlatDagBatch batch = generate_flat_batch(point.batch);
      std::vector<std::vector<Sample>> samples(
          point.cores.size(), std::vector<Sample>(batch.size()));
      pool_.parallel_for_each(batch.size(), [&](std::size_t di) {
        analysis::AnalysisCache cache(batch, di);
        for (std::size_t mi = 0; mi < point.cores.size(); ++mi) {
          samples[mi][di] = per_dag(cache, point.cores[mi]);
        }
      });
      for (std::size_t mi = 0; mi < point.cores.size(); ++mi) {
        rows.push_back(reduce(point, point.cores[mi], samples[mi]));
      }
    }
    return rows;
  }

  /// sweep() for the bound-vs-simulation figures (fig10/fig11): the
  /// single-unit K-device bounds of a whole batch come from ONE vectorized
  /// analyze_platform_batch pass over the arena (SIMD-dispatched volume
  /// kernel, batch-shared scratch) instead of per-worker cache arithmetic,
  /// and `per_dag(cache, m, bound)` receives its (DAG, m) bound precomputed
  /// — exactly equal to cache.r_platform(m), which stays available for the
  /// generalised overloads.  Same determinism contract as sweep().
  template <typename PerDag, typename Reduce>
  auto sweep_platform(const std::vector<SweepPoint>& points, PerDag&& per_dag,
                      Reduce&& reduce) {
    using Sample = std::invoke_result_t<PerDag&, analysis::AnalysisCache&, int,
                                        const Frac&>;
    using Row = std::invoke_result_t<Reduce&, const SweepPoint&, int,
                                     const std::vector<Sample>&>;
    std::vector<Row> rows;
    last_outcome_ = util::Outcome::kComplete;
    for (const SweepPoint& point : points) {
      if (point_cut()) break;
      const graph::FlatDagBatch batch = generate_flat_batch(point.batch);
      const analysis::PlatformBatchAnalysis platform =
          analysis::analyze_platform_batch(batch, point.cores);
      std::vector<std::vector<Sample>> samples(
          point.cores.size(), std::vector<Sample>(batch.size()));
      pool_.parallel_for_each(batch.size(), [&](std::size_t di) {
        analysis::AnalysisCache cache(batch, di);
        for (std::size_t mi = 0; mi < point.cores.size(); ++mi) {
          samples[mi][di] =
              per_dag(cache, point.cores[mi], platform.bound(di, mi));
        }
      });
      for (std::size_t mi = 0; mi < point.cores.size(); ++mi) {
        rows.push_back(reduce(point, point.cores[mi], samples[mi]));
      }
    }
    return rows;
  }

 private:
  /// Point-boundary budget check (and the sweep's fault seam — it runs on
  /// the calling thread, so an injected throw propagates to the caller
  /// instead of escaping a pool worker).  True = stop emitting points.
  bool point_cut() {
    HEDRA_FAULT("exp.sweep.point");
    if (deadline_.expired()) {
      last_outcome_ = util::Outcome::kBudgetExhausted;
      return true;
    }
    return false;
  }

  ThreadPool pool_;
  util::Deadline deadline_;
  util::Outcome last_outcome_ = util::Outcome::kComplete;
};

/// Summary helpers shared by the figure shape scans (rows must expose `m`
/// and `ratio`).

/// Ratio of the first row (grid order) of core count m satisfying `pred`;
/// NaN if none — the "crossover" every figure summary quotes.
template <typename Row, typename Pred>
[[nodiscard]] double crossover_ratio(const std::vector<Row>& rows, int m,
                                     Pred pred) {
  for (const Row& row : rows) {
    if (row.m == m && pred(row)) return row.ratio;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

/// Row of core count m maximising `key`; nullptr when m has no rows.
template <typename Row, typename Key>
[[nodiscard]] const Row* peak_row(const std::vector<Row>& rows, int m,
                                  Key key) {
  const Row* best = nullptr;
  for (const Row& row : rows) {
    if (row.m == m && (best == nullptr || key(row) > key(*best))) best = &row;
  }
  return best;
}

}  // namespace hedra::exp
