#include "exp/experiment.h"

#include "gen/flat_gen.h"
#include "gen/multi_device.h"

namespace hedra::exp {

std::vector<graph::Dag> generate_batch(const BatchConfig& config) {
  // Same fork-chain seeding as the pooled overload, run inline — spawning
  // a one-thread pool for a serial loop paid a thread start/join per call.
  HEDRA_REQUIRE(config.count >= 1, "batch count must be >= 1");
  const auto count = static_cast<std::size_t>(config.count);
  Rng master(config.seed);
  std::vector<graph::Dag> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = master.fork();
    if (config.params.num_devices > 0) {
      out.push_back(
          gen::generate_multi_device(config.params, config.coff_ratio, rng));
      continue;
    }
    graph::Dag dag = gen::generate_hierarchical(config.params, rng);
    (void)gen::select_offload_node(dag, rng);
    (void)gen::set_offload_ratio(dag, config.coff_ratio);
    out.push_back(std::move(dag));
  }
  return out;
}

graph::FlatDagBatch generate_flat_batch(const BatchConfig& config) {
  HEDRA_REQUIRE(config.count >= 1, "batch count must be >= 1");
  const auto count = static_cast<std::size_t>(config.count);
  Rng master(config.seed);
  graph::FlatDagBatch batch;
  batch.reserve(count, static_cast<std::size_t>(config.params.max_nodes),
                static_cast<std::size_t>(config.params.max_nodes) * 2);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = master.fork();
    if (config.params.num_devices > 0) {
      gen::generate_multi_device_flat(config.params, config.coff_ratio, rng,
                                      batch);
    } else {
      gen::generate_offload_flat(config.params, config.coff_ratio, rng, batch);
    }
  }
  return batch;
}

std::vector<graph::Dag> generate_batch(const BatchConfig& config,
                                       ThreadPool& pool) {
  HEDRA_REQUIRE(config.count >= 1, "batch count must be >= 1");
  const auto count = static_cast<std::size_t>(config.count);
  // Fork every replication stream serially first: the master RNG is the
  // only shared state, and each DAG then builds from its own stream into
  // its own slot, independent of evaluation order.
  Rng master(config.seed);
  std::vector<Rng> streams;
  streams.reserve(count);
  for (std::size_t i = 0; i < count; ++i) streams.push_back(master.fork());
  std::vector<graph::Dag> out(count);
  pool.parallel_for_each(count, [&](std::size_t i) {
    Rng rng = streams[i];
    if (config.params.num_devices > 0) {
      // Multi-device variant: K devices populated per the params knobs,
      // coff_ratio interpreted as the TOTAL offloaded share of vol(G).
      out[i] = gen::generate_multi_device(config.params, config.coff_ratio, rng);
      return;
    }
    graph::Dag dag = gen::generate_hierarchical(config.params, rng);
    (void)gen::select_offload_node(dag, rng);
    (void)gen::set_offload_ratio(dag, config.coff_ratio);
    out[i] = std::move(dag);
  });
  return out;
}

std::vector<int> paper_core_counts() { return {2, 4, 8, 16}; }

std::vector<double> ratio_grid_fig6() {
  return {0.01, 0.02, 0.03, 0.045, 0.06, 0.08, 0.11, 0.14,
          0.20, 0.28, 0.36, 0.44, 0.52, 0.60, 0.70};
}

std::vector<double> ratio_grid_fig89() {
  return {0.0012, 0.0025, 0.005, 0.01, 0.016, 0.025, 0.034, 0.046,
          0.06,   0.08,   0.10,  0.14, 0.20,  0.26,  0.32,  0.40, 0.50};
}

std::vector<double> ratio_grid_fig7() {
  return {0.01, 0.02, 0.05, 0.10, 0.15, 0.245, 0.35, 0.481, 0.60};
}

}  // namespace hedra::exp
