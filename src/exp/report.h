#pragma once

/// \file report.h
/// Rendering of figure results as the paper-style tables printed by the
/// bench harnesses, plus CSV export for plotting.

#include <string>

#include "exp/fig10.h"
#include "exp/fig11.h"
#include "exp/fig12.h"
#include "exp/fig6.h"
#include "exp/fig7.h"
#include "exp/fig8.h"
#include "exp/fig9.h"

namespace hedra::exp {

[[nodiscard]] std::string render_fig6(const Fig6Result& result);
[[nodiscard]] std::string render_fig7(const Fig7Result& result);
[[nodiscard]] std::string render_fig8(const Fig8Result& result);
[[nodiscard]] std::string render_fig9(const Fig9Result& result);
[[nodiscard]] std::string render_fig10(const Fig10Result& result);
[[nodiscard]] std::string render_fig11(const Fig11Result& result);
[[nodiscard]] std::string render_fig12(const Fig12Result& result);

/// CSV exports (one row per table cell); `path` is created/truncated.
void write_fig6_csv(const Fig6Result& result, const std::string& path);
void write_fig7_csv(const Fig7Result& result, const std::string& path);
void write_fig8_csv(const Fig8Result& result, const std::string& path);
void write_fig9_csv(const Fig9Result& result, const std::string& path);
void write_fig10_csv(const Fig10Result& result, const std::string& path);
void write_fig11_csv(const Fig11Result& result, const std::string& path);
void write_fig12_csv(const Fig12Result& result, const std::string& path);

}  // namespace hedra::exp
