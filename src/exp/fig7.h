#pragma once

/// \file fig7.h
/// Figure 7 (§5.3) — accuracy of the bounds against the true minimum
/// makespan: mean increment of R_hom(τ) and R_het(τ') over the optimal
/// makespan of τ on m cores + 1 accelerator, computed by the exact solver
/// (the paper used a CPLEX ILP; see DESIGN.md for the substitution).
/// The paper shows m = 2 with n ∈ [3, 20] and m = 8 with n ∈ [30, 60].

#include <cstdint>
#include <vector>

#include "exact/bnb.h"
#include "exp/experiment.h"

namespace hedra::exp {

/// One platform/size combination of the figure.
struct Fig7Case {
  int m = 2;
  int min_nodes = 3;
  int max_nodes = 20;
};

struct Fig7Config {
  std::vector<Fig7Case> cases = {{2, 3, 20}, {8, 30, 60}};
  std::vector<double> ratios = ratio_grid_fig7();
  gen::HierarchicalParams params = gen::HierarchicalParams::small_tasks();
  int dags_per_point = 25;
  std::uint64_t seed = 42;
  /// Solver budget and parallelism.  `solver.jobs` only takes effect when
  /// the sweep itself runs with `jobs == 1` — per-instance threads nested
  /// under the per-DAG fan-out would oversubscribe the machine, so run_fig7
  /// forces the solver sequential whenever the Runner is parallel.
  exact::BnbConfig solver;
  /// Worker threads; <= 0 picks the hardware default.  Unlike the other
  /// figures, fig7 is only jobs-invariant if the solver runs without a
  /// wall-clock limit (time_limit_sec): a time-budgeted solve under CPU
  /// contention can close fewer instances, changing `optimal_fraction`.
  int jobs = 1;
};

/// One (case, ratio) cell.
struct Fig7Row {
  int m = 0;
  double ratio = 0.0;
  double incr_rhom_pct = 0.0;  ///< mean 100·(R_hom − OPT)/OPT
  double incr_rhet_pct = 0.0;  ///< mean 100·(R_het − OPT)/OPT
  double optimal_fraction = 1.0;  ///< share of instances proven optimal
};

struct Fig7Result {
  std::vector<Fig7Row> rows;
};

[[nodiscard]] Fig7Result run_fig7(const Fig7Config& config);

}  // namespace hedra::exp
