#pragma once

/// \file fig9.h
/// Figure 9 + §5.4 text — the headline comparison: percentage change of
/// R_hom(τ) with respect to R_het(τ'), per m and C_off/vol.  Positive means
/// the heterogeneous analysis is tighter.  The paper reports peak mean
/// benefits of 70/55/40/30% and maximum observed differences of
/// 95.0/82.5/65.3/47.7% for m = 2/4/8/16.

#include <cstdint>
#include <vector>

#include "exp/experiment.h"

namespace hedra::exp {

struct Fig9Config {
  std::vector<int> cores = paper_core_counts();
  std::vector<double> ratios = ratio_grid_fig89();
  gen::HierarchicalParams params =
      gen::HierarchicalParams::large_tasks_100_250();
  int dags_per_point = 100;
  std::uint64_t seed = 42;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default
};

/// One (m, ratio) cell.
struct Fig9Row {
  int m = 0;
  double ratio = 0.0;
  double mean_pct = 0.0;  ///< mean 100·(R_hom − R_het)/R_het
  double max_pct = 0.0;   ///< max within this cell
};

/// Per-m shape summary (the §5.4 quotes).
struct Fig9Summary {
  int m = 0;
  double crossover_ratio = 0.0;  ///< first ratio with mean_pct >= 0
  double peak_mean_pct = 0.0;    ///< peak of the mean curve
  double peak_ratio = 0.0;
  double max_observed_pct = 0.0; ///< max over the whole sweep
};

struct Fig9Result {
  std::vector<Fig9Row> rows;
  std::vector<Fig9Summary> summaries;
};

[[nodiscard]] Fig9Result run_fig9(const Fig9Config& config);

}  // namespace hedra::exp
