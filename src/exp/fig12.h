#pragma once

/// \file fig12.h
/// Figure 12 (extension; not in the paper): the TASKSET acceptance-ratio
/// sweep the contention analysis unlocks.  For a grid of normalised
/// utilisations (Σ u_i = U·m), accelerator-class counts K, symmetric unit
/// counts n_d and core counts m, random sporadic task sets are generated
/// per point (taskset/gen.h) and admitted by the federated contention test
/// (taskset/contention_rta.h); every ADMITTED set is then executed on the
/// taskset simulator (taskset/sim.h) under the configured ready-queue
/// policy, and each observed per-job response time is checked against the
/// task's admitted bound with EXACT rational arithmetic — a single
/// violation would mean the carry-in interference argument is transcribed
/// wrongly, so the violation count must be zero across the whole grid (the
/// acceptance criterion of the taskset subsystem).
///
/// Built on Runner::sweep_items, the taskset-shaped generalisation of the
/// figure engine: batch generation (the RNG fork chain) runs serially per
/// point, admission + simulation fan out per set, rows reduce in grid
/// order — so `--jobs N` output is bit-identical to `--jobs 1`.

#include <cstdint>
#include <string>
#include <vector>

#include "gen/params.h"
#include "sim/scheduler.h"

namespace hedra::exp {

struct Fig12Config {
  /// Normalised total utilisation: each point targets Σ_i vol_i/T_i = U·m.
  std::vector<double> utilizations = {0.25, 0.50, 0.75};
  std::vector<int> devices = {1, 2};   ///< K accelerator classes
  std::vector<int> units = {1, 2};     ///< n_d, applied symmetrically
  std::vector<int> cores = {4, 8};     ///< m host cores
  int num_tasks = 4;
  double coff_ratio = 0.2;
  gen::HierarchicalParams params;      ///< per-task DAG shape (see .cpp)
  int tasksets_per_point = 20;
  int jobs_per_task = 3;               ///< releases simulated per task
  sim::Policy policy = sim::Policy::kBreadthFirst;
  std::uint64_t seed = 44;
  int jobs = 1;  ///< worker threads; <= 0 picks the hardware default

  Fig12Config();
};

/// One (U, K, n_d, m) cell.
struct Fig12Row {
  double utilization = 0.0;  ///< normalised target U (of U·m)
  int devices = 0;
  int units = 0;
  int m = 0;
  int tasksets = 0;
  int admitted = 0;             ///< sets the contention test accepts
  double acceptance = 0.0;      ///< admitted / tasksets
  double mean_cores_used = 0.0; ///< mean partitioned cores among admitted
  /// Mean over admitted tasks of bound/deadline — how tight admission was.
  double mean_bound_over_deadline = 0.0;
  /// Max over admitted jobs of observed/bound (exact check; <= 1 iff sound).
  double max_obs_over_bound = 0.0;
  int violations = 0;  ///< exact-rational bound violations (must be 0)
};

/// Per-(K, n_d, m) shape summary.
struct Fig12Summary {
  int devices = 0;
  int units = 0;
  int m = 0;
  /// Largest swept U with acceptance >= 50% (NaN if none) — the capacity
  /// headline of the admission test.
  double half_acceptance_util = 0.0;
  double max_obs_over_bound = 0.0;
  int violations = 0;  ///< total (must be 0)
};

struct Fig12Result {
  std::vector<Fig12Row> rows;
  std::vector<Fig12Summary> summaries;
  std::string policy_name;
};

[[nodiscard]] Fig12Result run_fig12(const Fig12Config& config);

}  // namespace hedra::exp
