#include "exp/fig12.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "exp/runner.h"
#include "stats/descriptive.h"
#include "taskset/contention_rta.h"
#include "taskset/gen.h"
#include "taskset/sim.h"
#include "util/fraction.h"

namespace hedra::exp {

namespace {

/// One grid point: a fully specified taskset-batch recipe plus its cell
/// coordinates.  Unlike SweepPoint the platform (and with it m) is part of
/// the batch itself, so each point carries a single core count.
struct Fig12Point {
  double utilization = 0.0;
  int devices = 0;
  int units = 0;
  int m = 0;
  std::uint64_t seed = 0;
};

/// One batch item: the generated set plus a forked seed for the simulator's
/// kRandom policy (unused by the deterministic policies but always derived,
/// so switching policies never reshuffles the batch RNG stream).
struct Fig12Item {
  taskset::TaskSet set;
  std::uint64_t sim_seed = 0;
};

/// Per-set measurements.
struct Fig12Sample {
  bool admitted = false;
  int cores_used = 0;
  double mean_bound_over_deadline = 0.0;
  double max_obs_over_bound = 0.0;
  int violations = 0;
};

}  // namespace

Fig12Config::Fig12Config() {
  // Small tasks keep the per-set admission + multi-job simulation cheap
  // enough for a Monte-Carlo grid; the node window stays well above the
  // K·offloads+2 placement minimum for every swept K.
  params = gen::HierarchicalParams::small_tasks();
  params.max_depth = 3;
  params.n_par = 4;
  params.min_nodes = 10;
  params.max_nodes = 40;
  params.wcet_max = 50;
}

Fig12Result run_fig12(const Fig12Config& config) {
  HEDRA_REQUIRE(!config.utilizations.empty(), "fig12 needs utilisations");
  HEDRA_REQUIRE(!config.devices.empty(), "fig12 needs device counts");
  HEDRA_REQUIRE(!config.units.empty(), "fig12 needs unit counts");
  HEDRA_REQUIRE(!config.cores.empty(), "fig12 needs core counts");
  HEDRA_REQUIRE(config.tasksets_per_point >= 1,
                "fig12 needs at least one task set per point");
  for (const double u : config.utilizations) {
    HEDRA_REQUIRE(u > 0.0, "utilisations must be positive");
  }
  for (const int units : config.units) {
    HEDRA_REQUIRE(units >= 1, "unit counts must be >= 1");
  }
  Runner runner(config.jobs);

  std::vector<Fig12Point> points;
  for (const int devices : config.devices) {
    for (const int units : config.units) {
      for (const int m : config.cores) {
        for (const double utilization : config.utilizations) {
          points.push_back(Fig12Point{utilization, devices, units, m, 0});
        }
      }
    }
  }
  const auto seeds = batch_seeds(config.seed, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) points[i].seed = seeds[i];

  const auto make_batch = [&config](const Fig12Point& point) {
    taskset::TaskSetGenConfig gen_config;
    gen_config.num_tasks = config.num_tasks;
    gen_config.total_utilization = point.utilization * point.m;
    gen_config.dag_params = config.params;
    gen_config.dag_params.num_devices = point.devices;
    gen_config.coff_ratio = config.coff_ratio;
    gen_config.cores = point.m;
    gen_config.device_units.assign(static_cast<std::size_t>(point.devices),
                                   point.units);
    std::vector<Fig12Item> batch;
    batch.reserve(static_cast<std::size_t>(config.tasksets_per_point));
    Rng master(point.seed);
    for (int k = 0; k < config.tasksets_per_point; ++k) {
      Rng set_rng = master.fork();
      Fig12Item item;
      item.set = taskset::generate_task_set(gen_config, set_rng);
      item.sim_seed = set_rng.next_u64();
      batch.push_back(std::move(item));
    }
    return batch;
  };

  const auto per_item = [&config](Fig12Item& item, const Fig12Point&) {
    Fig12Sample sample;
    const taskset::ContentionAnalysis admission =
        taskset::contention_rta(item.set);
    sample.admitted = admission.schedulable;
    sample.cores_used = admission.cores_used;
    if (!admission.schedulable) return sample;

    std::vector<double> ratios;
    std::vector<int> cores_per_task;
    ratios.reserve(admission.tasks.size());
    cores_per_task.reserve(admission.tasks.size());
    for (std::size_t i = 0; i < admission.tasks.size(); ++i) {
      cores_per_task.push_back(admission.tasks[i].cores);
      ratios.push_back(admission.tasks[i].response.to_double() /
                       static_cast<double>(item.set[i].deadline()));
    }
    sample.mean_bound_over_deadline = stats::mean(ratios);

    taskset::TasksetSimConfig sim_config;
    sim_config.policy = config.policy;
    sim_config.seed = item.sim_seed;
    sim_config.jobs_per_task = config.jobs_per_task;
    const taskset::TasksetSimResult sim =
        taskset::simulate_taskset(item.set, cores_per_task, sim_config);
    for (std::size_t i = 0; i < admission.tasks.size(); ++i) {
      const Frac& bound = admission.tasks[i].response;
      const graph::Time observed = sim.tasks[i].worst_response;
      // Soundness is decided in exact rationals; the double ratio is
      // reporting only.
      if (Frac(observed) > bound) ++sample.violations;
      sample.max_obs_over_bound =
          std::max(sample.max_obs_over_bound,
                   static_cast<double>(observed) / bound.to_double());
    }
    return sample;
  };

  const auto reduce = [&config](const Fig12Point& point,
                                const std::vector<Fig12Sample>& samples) {
    Fig12Row row;
    row.utilization = point.utilization;
    row.devices = point.devices;
    row.units = point.units;
    row.m = point.m;
    row.tasksets = static_cast<int>(samples.size());
    std::vector<double> cores_used, tightness;
    for (const Fig12Sample& sample : samples) {
      if (!sample.admitted) continue;
      ++row.admitted;
      cores_used.push_back(static_cast<double>(sample.cores_used));
      tightness.push_back(sample.mean_bound_over_deadline);
      row.violations += sample.violations;
      row.max_obs_over_bound =
          std::max(row.max_obs_over_bound, sample.max_obs_over_bound);
    }
    row.acceptance = static_cast<double>(row.admitted) /
                     static_cast<double>(config.tasksets_per_point);
    if (!cores_used.empty()) {
      row.mean_cores_used = stats::mean(cores_used);
      row.mean_bound_over_deadline = stats::mean(tightness);
    }
    return row;
  };

  Fig12Result result;
  result.policy_name = sim::to_string(config.policy);
  result.rows = runner.sweep_items(points, make_batch, per_item, reduce);

  for (const int devices : config.devices) {
    for (const int units : config.units) {
      for (const int m : config.cores) {
        Fig12Summary summary;
        summary.devices = devices;
        summary.units = units;
        summary.m = m;
        summary.half_acceptance_util =
            std::numeric_limits<double>::quiet_NaN();
        for (const Fig12Row& row : result.rows) {
          if (row.devices != devices || row.units != units || row.m != m) {
            continue;
          }
          summary.violations += row.violations;
          summary.max_obs_over_bound =
              std::max(summary.max_obs_over_bound, row.max_obs_over_bound);
          if (row.acceptance >= 0.5 &&
              (std::isnan(summary.half_acceptance_util) ||
               row.utilization > summary.half_acceptance_util)) {
            summary.half_acceptance_util = row.utilization;
          }
        }
        result.summaries.push_back(summary);
      }
    }
  }
  return result;
}

}  // namespace hedra::exp
