#include "exp/fig10.h"

#include <algorithm>

#include "exp/runner.h"
#include "sim/scheduler.h"
#include "stats/descriptive.h"

namespace hedra::exp {

namespace {

/// Per-(DAG, m) measurements: the platform bound and one simulated makespan
/// per ready-queue policy.
struct Fig10Sample {
  double bound = 0.0;
  std::vector<double> makespans;  ///< aligned with sim::all_policies()
  double worst = 0.0;             ///< max of makespans
  bool violated = false;          ///< some makespan exceeded the bound
};

}  // namespace

Fig10Result run_fig10(const Fig10Config& config) {
  HEDRA_REQUIRE(!config.devices.empty(), "fig10 needs at least one K value");
  Runner runner(config.jobs);

  // One independently seeded ratio×cores grid per device count, stacked
  // device-major so rows come back K-major, ratio-, then m-minor.
  std::vector<SweepPoint> points;
  const auto device_seeds = batch_seeds(config.seed, config.devices.size());
  for (std::size_t i = 0; i < config.devices.size(); ++i) {
    GridSpec spec;
    spec.ratios = config.ratios;
    spec.cores = config.cores;
    spec.params = config.params;
    spec.params.num_devices = config.devices[i];
    spec.params.offloads_per_device = config.offloads_per_device;
    spec.dags_per_point = config.dags_per_point;
    spec.seed = device_seeds[i];
    const auto grid = make_grid(spec);
    points.insert(points.end(), grid.begin(), grid.end());
  }

  Fig10Result result;
  for (const auto policy : sim::all_policies()) {
    result.policy_names.emplace_back(sim::to_string(policy));
  }

  result.rows = runner.sweep_platform(
      points,
      [](analysis::AnalysisCache& cache, int m, const Frac& bound) {
        Fig10Sample sample;
        sample.bound = bound.to_double();
        sample.makespans.reserve(sim::all_policies().size());
        for (const auto policy : sim::all_policies()) {
          sim::SimConfig sim_config;
          sim_config.cores = m;
          sim_config.policy = policy;
          // The cache's arena view is shared across the whole 5-policy ×
          // 4-m sweep of this DAG (no Dag, no CSR snapshot is ever built),
          // and per-run trace validation is off in the Monte-Carlo loop —
          // the makespan-only recorder path — while the property tests
          // simulate the same policies with validation on.
          sim_config.validate = false;
          const graph::Time observed =
              sim::simulated_makespan(cache.flat_view(), sim_config);
          sample.makespans.push_back(static_cast<double>(observed));
          sample.worst = std::max(sample.worst,
                                  static_cast<double>(observed));
          if (Frac(observed) > bound) sample.violated = true;
        }
        return sample;
      },
      [](const SweepPoint& point, int m,
         const std::vector<Fig10Sample>& samples) {
        Fig10Row row;
        row.devices = point.batch.params.num_devices;
        row.ratio = point.ratio;
        row.m = m;
        const std::size_t num_policies = sim::all_policies().size();
        row.mean_makespan.assign(num_policies, 0.0);
        std::vector<double> bounds, slacks;
        bounds.reserve(samples.size());
        slacks.reserve(samples.size());
        for (const auto& sample : samples) {
          bounds.push_back(sample.bound);
          slacks.push_back(100.0 * (sample.bound - sample.worst) /
                           sample.bound);
          for (std::size_t p = 0; p < num_policies; ++p) {
            row.mean_makespan[p] +=
                sample.makespans[p] / static_cast<double>(samples.size());
          }
          row.max_sim_over_bound = std::max(row.max_sim_over_bound,
                                            sample.worst / sample.bound);
          if (sample.violated) ++row.violations;
        }
        row.mean_bound = stats::mean(bounds);
        row.mean_slack_pct = stats::mean(slacks);
        return row;
      });

  for (const int devices : config.devices) {
    for (const int m : config.cores) {
      Fig10Summary summary;
      summary.devices = devices;
      summary.m = m;
      std::vector<double> slacks;
      for (const auto& row : result.rows) {
        if (row.devices != devices || row.m != m) continue;
        summary.max_sim_over_bound =
            std::max(summary.max_sim_over_bound, row.max_sim_over_bound);
        summary.violations += row.violations;
        slacks.push_back(row.mean_slack_pct);
      }
      if (!slacks.empty()) summary.mean_slack_pct = stats::mean(slacks);
      result.summaries.push_back(summary);
    }
  }
  return result;
}

}  // namespace hedra::exp
