#include "exp/fig8.h"

#include <cmath>
#include <limits>

#include "analysis/rta_heterogeneous.h"

namespace hedra::exp {

Fig8Result run_fig8(const Fig8Config& config) {
  Fig8Result result;
  std::uint64_t batch_index = 0;
  for (const double ratio : config.ratios) {
    BatchConfig batch_config;
    batch_config.params = config.params;
    batch_config.coff_ratio = ratio;
    batch_config.count = config.dags_per_point;
    batch_config.seed = config.seed + 0x1000 * batch_index++;
    const auto batch = generate_batch(batch_config);

    // The transformation is m-independent; classification depends on m only
    // through R_hom(G_par).
    std::vector<analysis::TransformResult> transforms;
    transforms.reserve(batch.size());
    for (const auto& dag : batch) {
      transforms.push_back(analysis::transform_for_offload(dag));
    }

    for (const int m : config.cores) {
      int count_s1 = 0;
      int count_s21 = 0;
      int count_s22 = 0;
      for (const auto& transform : transforms) {
        switch (analysis::classify_scenario(transform, m)) {
          case analysis::Scenario::kS1:
            ++count_s1;
            break;
          case analysis::Scenario::kS21:
            ++count_s21;
            break;
          case analysis::Scenario::kS22:
            ++count_s22;
            break;
        }
      }
      const double total = static_cast<double>(batch.size());
      Fig8Row row;
      row.m = m;
      row.ratio = ratio;
      row.pct_s1 = 100.0 * count_s1 / total;
      row.pct_s21 = 100.0 * count_s21 / total;
      row.pct_s22 = 100.0 * count_s22 / total;
      result.rows.push_back(row);
    }
  }

  for (const int m : config.cores) {
    Fig8Summary summary;
    summary.m = m;
    summary.s21_s22_crossover = std::numeric_limits<double>::quiet_NaN();
    for (const auto& row : result.rows) {
      if (row.m != m) continue;
      if (std::isnan(summary.s21_s22_crossover) && row.pct_s21 >= row.pct_s22 &&
          row.pct_s21 > 0.0) {
        summary.s21_s22_crossover = row.ratio;
      }
    }
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
