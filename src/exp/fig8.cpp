#include "exp/fig8.h"

#include "exp/runner.h"

namespace hedra::exp {

Fig8Result run_fig8(const Fig8Config& config) {
  Runner runner(config.jobs);
  Fig8Result result;
  result.rows = runner.sweep(
      make_grid({config.ratios, config.cores, config.params,
                 config.dags_per_point, config.seed}),
      [](analysis::AnalysisCache& cache, int m) { return cache.scenario(m); },
      [](const SweepPoint& point, int m,
         const std::vector<analysis::Scenario>& samples) {
        int count_s1 = 0;
        int count_s21 = 0;
        int count_s22 = 0;
        for (const auto scenario : samples) {
          switch (scenario) {
            case analysis::Scenario::kS1:
              ++count_s1;
              break;
            case analysis::Scenario::kS21:
              ++count_s21;
              break;
            case analysis::Scenario::kS22:
              ++count_s22;
              break;
          }
        }
        const auto total = static_cast<double>(samples.size());
        Fig8Row row;
        row.m = m;
        row.ratio = point.ratio;
        row.pct_s1 = 100.0 * count_s1 / total;
        row.pct_s21 = 100.0 * count_s21 / total;
        row.pct_s22 = 100.0 * count_s22 / total;
        return row;
      });

  for (const int m : config.cores) {
    Fig8Summary summary;
    summary.m = m;
    summary.s21_s22_crossover =
        crossover_ratio(result.rows, m, [](const Fig8Row& r) {
          return r.pct_s21 >= r.pct_s22 && r.pct_s21 > 0.0;
        });
    result.summaries.push_back(summary);
  }
  return result;
}

}  // namespace hedra::exp
