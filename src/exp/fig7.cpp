#include "exp/fig7.h"

#include "exp/runner.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig7Result run_fig7(const Fig7Config& config) {
  struct Sample {
    double incr_hom = 0.0;
    double incr_het = 0.0;
    bool proven = false;
  };
  // Case-major, ratio-minor grid: each case fixes the platform and the DAG
  // size range, so every point carries its own params and a single m.
  std::vector<SweepPoint> points;
  for (const auto& c : config.cases) {
    gen::HierarchicalParams params = config.params;
    params.min_nodes = c.min_nodes;
    params.max_nodes = c.max_nodes;
    for (const double ratio : config.ratios) {
      SweepPoint point;
      point.batch.params = params;
      point.batch.coff_ratio = ratio;
      point.batch.count = config.dags_per_point;
      point.cores = {c.m};
      point.ratio = ratio;
      points.push_back(std::move(point));
    }
  }
  const auto seeds = batch_seeds(config.seed, points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    points[i].batch.seed = seeds[i];
  }

  Runner runner(config.jobs);
  // Per-instance solver parallelism composes with the Runner's per-DAG
  // fan-out without oversubscription: when the sweep itself fans out over
  // worker threads, each solve runs sequentially; solver.jobs only takes
  // effect in a single-job sweep (the fleet-sharding shape: one process
  // per shard, all cores on one instance at a time).
  exact::BnbConfig solver = config.solver;
  if (runner.jobs() > 1) solver.jobs = 1;
  Fig7Result result;
  result.rows = runner.sweep(
      points,
      [&solver](analysis::AnalysisCache& cache, int m) {
        const auto opt = exact::min_makespan(cache.original(), m, solver);
        const auto makespan = static_cast<double>(opt.makespan);
        return Sample{
            stats::percentage_change(cache.r_hom(m).to_double(), makespan),
            stats::percentage_change(cache.r_het(m).to_double(), makespan),
            opt.proven_optimal};
      },
      [](const SweepPoint& point, int m, const std::vector<Sample>& samples) {
        Fig7Row row;
        row.m = m;
        row.ratio = point.ratio;
        int proven = 0;
        double sum_hom = 0.0;
        double sum_het = 0.0;
        for (const Sample& s : samples) {
          sum_hom += s.incr_hom;
          sum_het += s.incr_het;
          if (s.proven) ++proven;
        }
        const auto n = static_cast<double>(samples.size());
        row.incr_rhom_pct = sum_hom / n;
        row.incr_rhet_pct = sum_het / n;
        row.optimal_fraction = static_cast<double>(proven) / n;
        return row;
      });
  return result;
}

}  // namespace hedra::exp
