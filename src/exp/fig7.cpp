#include "exp/fig7.h"

#include "analysis/rta_heterogeneous.h"
#include "stats/descriptive.h"

namespace hedra::exp {

Fig7Result run_fig7(const Fig7Config& config) {
  Fig7Result result;
  std::uint64_t batch_index = 0;
  for (const auto& c : config.cases) {
    gen::HierarchicalParams params = config.params;
    params.min_nodes = c.min_nodes;
    params.max_nodes = c.max_nodes;
    for (const double ratio : config.ratios) {
      BatchConfig batch_config;
      batch_config.params = params;
      batch_config.coff_ratio = ratio;
      batch_config.count = config.dags_per_point;
      batch_config.seed = config.seed + 0x1000 * batch_index++;
      const auto batch = generate_batch(batch_config);

      std::vector<double> incr_hom;
      std::vector<double> incr_het;
      int proven = 0;
      for (const auto& dag : batch) {
        const auto opt = exact::min_makespan(dag, c.m, config.solver);
        if (opt.proven_optimal) ++proven;
        const auto analysis = analysis::analyze_heterogeneous(dag, c.m);
        const auto makespan = static_cast<double>(opt.makespan);
        incr_hom.push_back(
            stats::percentage_change(analysis.r_hom.to_double(), makespan));
        incr_het.push_back(
            stats::percentage_change(analysis.r_het.to_double(), makespan));
      }
      Fig7Row row;
      row.m = c.m;
      row.ratio = ratio;
      row.incr_rhom_pct = stats::mean(incr_hom);
      row.incr_rhet_pct = stats::mean(incr_het);
      row.optimal_fraction =
          static_cast<double>(proven) / static_cast<double>(batch.size());
      result.rows.push_back(row);
    }
  }
  return result;
}

}  // namespace hedra::exp
