#include "sim/gantt.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace hedra::sim {

std::string render_gantt(const ScheduleTrace& trace, const Dag& dag,
                         const GanttOptions& options) {
  HEDRA_REQUIRE(options.max_width >= 10, "gantt width too small");
  const Time span = trace.makespan();
  std::ostringstream os;
  if (span == 0) {
    os << "(empty schedule)\n";
    return os.str();
  }
  // One character covers `scale` ticks.
  const Time scale = std::max<Time>(1, (span + options.max_width - 1) /
                                           options.max_width);
  const auto cell_of = [&](Time t) {
    return static_cast<std::size_t>(t / scale);
  };
  const std::size_t cells = cell_of(span - 1) + 1;

  const auto render_unit = [&](int unit, const std::string& name) {
    std::string row(cells, '.');
    for (const auto& iv : trace.intervals()) {
      if (iv.unit != unit || iv.finish == iv.start) continue;
      const std::size_t from = cell_of(iv.start);
      const std::size_t to = std::max(from + 1, cell_of(iv.finish - 1) + 1);
      for (std::size_t c = from; c < to; ++c) row[c] = '=';
      const std::string& label = dag.label(iv.node);
      for (std::size_t i = 0; i < label.size() && from + i < to; ++i) {
        row[from + i] = label[i];
      }
    }
    os << (name.size() < 4 ? std::string(4 - name.size(), ' ') : "") << name
       << " |" << row << "|\n";
  };

  for (int core = 0; core < trace.cores(); ++core) {
    render_unit(core, "C" + std::to_string(core));
  }
  // One row per accelerator unit — the trace knows each device's unit
  // count, so the chart can never drop a multi-unit interval.  A
  // device-free DAG still shows the paper's single (idle) accelerator row.
  const int num_devices = std::max<int>(1, dag.max_device());
  for (int d = 1; d <= num_devices; ++d) {
    const auto device = static_cast<graph::DeviceId>(d);
    const std::string base = d == 1 ? "ACC" : "ACC" + std::to_string(d);
    for (int u = 0; u < trace.units_of(device); ++u) {
      render_unit(accelerator_unit(device, u),
                  u == 0 ? base : base + "." + std::to_string(u));
    }
  }
  os << "     t=0 .. " << span << "  (1 char = " << scale << " tick"
     << (scale == 1 ? "" : "s") << ")\n";

  if (options.show_instants) {
    std::vector<const Interval*> instants;
    for (const auto& iv : trace.intervals()) {
      if (iv.unit == kInstantUnit) instants.push_back(&iv);
    }
    std::sort(instants.begin(), instants.end(),
              [](const Interval* a, const Interval* b) {
                return a->start != b->start ? a->start < b->start
                                            : a->node < b->node;
              });
    if (!instants.empty()) {
      os << "     instant:";
      for (const auto* iv : instants) {
        os << " " << dag.label(iv->node) << "@" << iv->start;
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace hedra::sim
