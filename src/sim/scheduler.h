#pragma once

/// \file scheduler.h
/// Deterministic discrete-event simulation of a work-conserving scheduler on
/// m identical host cores plus the accelerator devices the DAG names (§5.2
/// simulates the paper's single accelerator; SimConfig::device_units
/// provisions n_d execution units per device id in [1, dag.max_device()],
/// one each by default).
///
/// The paper's Figure 6 simulates "the work-conserving breadth-first
/// scheduler implemented in GOMP": ready tasks enter a FIFO queue in the
/// order they become ready and free cores always take the head.  That is
/// Policy::kBreadthFirst.  Alternative ready-queue policies are provided for
/// the ablation bench — every one of them is work-conserving, so all of them
/// must respect the analytical bounds (a property test enforces this).
///
/// Semantics:
///  - host nodes execute non-preemptively on any free host core;
///  - offloaded nodes execute on one of their own device's n_d units
///    (SimConfig::device_units; default 1 per device, the paper's
///    platform), FIFO per device if several are ready and smallest free
///    unit index first — devices never steal each other's work;
///  - zero-WCET host-side nodes (v_sync, dummies) complete instantly,
///    occupying no unit — they are pure synchronisation points.  Zero-WCET
///    nodes PLACED ON AN ACCELERATOR are real device work: they queue for a
///    unit like any offload (historically they retired instantly, silently
///    bypassing device serialisation — a regression test pins the fix);
///  - the scheduler is work-conserving: a free unit never idles while a
///    compatible node is ready.
///
/// Implementation (rewritten for the Monte-Carlo hot path): the simulation
/// runs over a graph::FlatDag CSR snapshot, completions live in a binary
/// min-heap keyed on finish time (the historical ready/running lists were
/// rescanned linearly on every event), and the host ready set is held in a
/// policy-indexed structure — FIFO deque, LIFO stack, or a priority heap —
/// so every pick is O(log ready) instead of an O(ready) scan.  All of this
/// is behaviour-preserving: traces are bit-identical to the historical
/// simulator for every policy (pinned by the golden-trace regression suite).

#include <cstdint>

#include "graph/flat_dag.h"
#include "sim/trace.h"
#include "util/rng.h"

namespace hedra::sim {

using graph::FlatDag;

/// Ready-queue ordering for host cores.
enum class Policy : std::uint8_t {
  kBreadthFirst,      ///< FIFO by ready time (GOMP; the paper's scheduler)
  kDepthFirst,        ///< LIFO by ready time (work-first stealing flavour)
  kCriticalPathFirst, ///< longest remaining path (down(v)) first
  kIndexOrder,        ///< smallest node id first
  kRandom,            ///< uniformly random ready node (seeded)
};

[[nodiscard]] const char* to_string(Policy policy) noexcept;

/// Every ready-queue policy, in declaration order — the ablation bench and
/// the soundness property tests sweep all of them.
[[nodiscard]] const std::vector<Policy>& all_policies() noexcept;

/// Simulation configuration.
struct SimConfig {
  int cores = 2;                  ///< m
  Policy policy = Policy::kBreadthFirst;
  std::uint64_t seed = 1;         ///< used by Policy::kRandom only
  /// Execution units per accelerator device: index d−1 holds n_d for device
  /// d.  Devices beyond the vector — including the default empty vector —
  /// get one unit each, the paper's platform.  Free units of a device are
  /// assigned smallest-index-first, so single-unit runs are byte-identical
  /// to the historical busy-flag simulator (golden-pinned).
  std::vector<int> device_units;
  /// Re-validate the produced trace against the DAG (precedence, unit
  /// capacity, placement).  Defaults on — any violation is a hedra bug and
  /// throws — but costs O(n log n + E) per run, so the Monte-Carlo sweep
  /// call sites (fig10, the ablation bench, B&B heuristic seeding) switch
  /// it off; the property/golden tests keep it on.
  bool validate = true;
};

/// Number of trace validations simulations have performed in this process —
/// a test hook so the `validate` flag's honouring is observable.
[[nodiscard]] std::uint64_t validation_runs() noexcept;

/// Simulates one complete execution of the DAG (every node at its WCET) and
/// returns the trace, validated when `config.validate` is set.  Throws if
/// the DAG is cyclic or the trace fails validation (which would be a hedra
/// bug).
[[nodiscard]] ScheduleTrace simulate(const Dag& dag, const SimConfig& config);

/// Same simulation over a prebuilt CSR snapshot — the sweep entry point: a
/// 5-policy × 4-m sweep snapshots the DAG once and reuses it for all 20
/// runs.
[[nodiscard]] ScheduleTrace simulate(const FlatDag& flat,
                                     const SimConfig& config);

/// Convenience: makespan of simulate().
[[nodiscard]] Time simulated_makespan(const Dag& dag, const SimConfig& config);
[[nodiscard]] Time simulated_makespan(const FlatDag& flat,
                                      const SimConfig& config);

/// Makespan over a non-owning CSR view — the Monte-Carlo batch hot path.
/// With `config.validate` off (the sweep setting) the run records no trace
/// at all: no interval storage, no ScheduleTrace, just a running max over
/// finish times; scheduling decisions are identical to simulate(), so the
/// returned makespan equals simulate(...).makespan() exactly.  With
/// `config.validate` on the view must be Dag-backed (view.source() !=
/// nullptr) and the call takes the recording path so the flag is honoured.
[[nodiscard]] Time simulated_makespan(const graph::FlatView& view,
                                      const SimConfig& config);

/// Simulates with *actual* execution times (one per node, each in
/// [0, WCET]).  WCETs are upper bounds; real executions finish early, and
/// non-preemptive multiprocessor scheduling is prone to timing anomalies
/// (Graham): locally finishing early can globally lengthen the schedule.
/// The property tests use this entry point to confirm that the paper's
/// bounds — computed from WCETs — dominate every early-completion execution
/// as well.  Throws if any actual time is negative or exceeds the WCET.
[[nodiscard]] ScheduleTrace simulate_with_times(
    const Dag& dag, const SimConfig& config,
    const std::vector<Time>& actual_times);
[[nodiscard]] ScheduleTrace simulate_with_times(
    const FlatDag& flat, const SimConfig& config,
    const std::vector<Time>& actual_times);

/// Draws actual times uniformly from [ceil(scale_min·WCET), WCET] per node
/// (zero-WCET nodes stay zero) — a convenience for anomaly sweeps.
[[nodiscard]] std::vector<Time> random_actual_times(const Dag& dag,
                                                    double scale_min,
                                                    Rng& rng);

}  // namespace hedra::sim
