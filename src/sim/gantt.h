#pragma once

/// \file gantt.h
/// ASCII Gantt-chart rendering of schedule traces.  Used by the examples to
/// regenerate the paper's scheduling figures (1(b), 1(c), 2(b)) in the
/// terminal.

#include <string>

#include "sim/trace.h"

namespace hedra::sim {

/// Rendering options.
struct GanttOptions {
  int max_width = 100;   ///< maximum characters for the time axis
  bool show_instants = true;  ///< list zero-WCET completions below the chart
};

/// Renders one row per execution unit (C0..Cm-1 and one per accelerator
/// unit — the trace's own units_of() drives the row count, so multi-unit
/// devices render "ACC", "ACC.1", ...), one time axis, and optionally the
/// instants at which sync nodes completed.
[[nodiscard]] std::string render_gantt(const ScheduleTrace& trace,
                                       const Dag& dag,
                                       const GanttOptions& options = {});

}  // namespace hedra::sim
