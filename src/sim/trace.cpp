#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace hedra::sim {

ScheduleTrace::ScheduleTrace(const Dag* dag, int cores,
                             std::vector<int> device_units)
    : dag_(dag), cores_(cores), device_units_(std::move(device_units)) {
  HEDRA_REQUIRE(dag_ != nullptr, "trace requires a DAG");
  HEDRA_REQUIRE(cores_ >= 1, "trace requires at least one core");
  for (const int units : device_units_) {
    HEDRA_REQUIRE(units >= 1, "every accelerator device needs >= 1 unit");
  }
}

void ScheduleTrace::add(const Interval& interval) {
  HEDRA_REQUIRE(interval.node < dag_->num_nodes(), "interval node id invalid");
  HEDRA_REQUIRE(interval.finish >= interval.start,
                "interval must not end before it starts");
  HEDRA_REQUIRE(
      is_accelerator_unit(interval.unit) || interval.unit == kInstantUnit ||
          (interval.unit >= 0 && interval.unit < cores_),
      "interval unit out of range");
  intervals_.push_back(interval);
}

Time ScheduleTrace::makespan() const noexcept {
  Time latest = 0;
  for (const auto& iv : intervals_) latest = std::max(latest, iv.finish);
  return latest;
}

const Interval& ScheduleTrace::interval_of(NodeId node) const {
  for (const auto& iv : intervals_) {
    if (iv.node == node) return iv;
  }
  throw Error("node " + dag_->label(node) + " has no interval in the trace");
}

Time ScheduleTrace::busy_time(int unit) const noexcept {
  Time total = 0;
  for (const auto& iv : intervals_) {
    if (iv.unit == unit) total += iv.finish - iv.start;
  }
  return total;
}

double ScheduleTrace::utilization(int unit) const noexcept {
  const Time span = makespan();
  if (span == 0) return 0.0;
  return static_cast<double>(busy_time(unit)) / static_cast<double>(span);
}

Time ScheduleTrace::host_idle_time() const noexcept {
  Time busy = 0;
  for (int core = 0; core < cores_; ++core) busy += busy_time(core);
  return makespan() * cores_ - busy;
}

std::string ScheduleTrace::to_text() const {
  std::ostringstream os;
  for (const auto& iv : intervals_) {
    os << iv.node << ' ' << iv.unit << ' ' << iv.start << ' ' << iv.finish
       << '\n';
  }
  return os.str();
}

std::vector<std::string> ScheduleTrace::validate() const {
  std::vector<Time> durations(dag_->num_nodes());
  for (NodeId v = 0; v < dag_->num_nodes(); ++v) {
    durations[v] = dag_->wcet(v);
  }
  return validate_with_durations(durations);
}

std::vector<std::string> ScheduleTrace::validate_with_durations(
    const std::vector<Time>& expected_durations) const {
  HEDRA_REQUIRE(expected_durations.size() == dag_->num_nodes(),
                "expected-durations size mismatch");
  std::vector<std::string> issues;
  const auto say = [&](const std::string& text) { issues.push_back(text); };

  // Exactly one interval per node, with the right duration and placement.
  std::vector<int> seen(dag_->num_nodes(), 0);
  for (const auto& iv : intervals_) {
    ++seen[iv.node];
    const Time duration = iv.finish - iv.start;
    if (duration != expected_durations[iv.node]) {
      say("node " + dag_->label(iv.node) + " ran for " +
          std::to_string(duration) + " ticks, expected " +
          std::to_string(expected_durations[iv.node]));
    }
    const auto kind = dag_->kind(iv.node);
    if (kind == graph::NodeKind::kOffload) {
      const graph::DeviceId device = dag_->device(iv.node);
      const bool on_device = is_accelerator_unit(iv.unit) &&
                             device_of_unit(iv.unit) == device &&
                             unit_index_of(iv.unit) < units_of(device);
      if (!on_device) {
        say("offload node " + dag_->label(iv.node) +
            " ran off its device (device " + std::to_string(device) +
            " with " + std::to_string(units_of(device)) + " unit(s), unit " +
            std::to_string(iv.unit) + ")");
      }
    }
    if (kind == graph::NodeKind::kHost && dag_->wcet(iv.node) > 0 &&
        !(iv.unit >= 0 && iv.unit < cores_)) {
      say("host node " + dag_->label(iv.node) + " ran off the host cores");
    }
  }
  for (NodeId v = 0; v < dag_->num_nodes(); ++v) {
    if (seen[v] != 1) {
      say("node " + dag_->label(v) + " executed " + std::to_string(seen[v]) +
          " times");
    }
  }
  if (!issues.empty()) return issues;  // placement broken; stop here

  // Precedence.
  for (NodeId v = 0; v < dag_->num_nodes(); ++v) {
    const Time start = start_of(v);
    for (const NodeId p : dag_->predecessors(v)) {
      if (finish_of(p) > start) {
        say("node " + dag_->label(v) + " started at " + std::to_string(start) +
            " before predecessor " + dag_->label(p) + " finished at " +
            std::to_string(finish_of(p)));
      }
    }
  }

  // Per-unit capacity: sort each unit's intervals and check adjacency.
  std::map<int, std::vector<Interval>> by_unit;
  for (const auto& iv : intervals_) {
    if (iv.unit != kInstantUnit) by_unit[iv.unit].push_back(iv);
  }
  for (auto& [unit, list] : by_unit) {
    std::sort(list.begin(), list.end(),
              [](const Interval& a, const Interval& b) {
                return a.start < b.start;
              });
    for (std::size_t i = 1; i < list.size(); ++i) {
      if (list[i].start < list[i - 1].finish) {
        std::ostringstream os;
        os << "unit " << unit << ": " << dag_->label(list[i].node) << " ["
           << list[i].start << ", " << list[i].finish << ") overlaps "
           << dag_->label(list[i - 1].node) << " [" << list[i - 1].start
           << ", " << list[i - 1].finish << ")";
        say(os.str());
      }
    }
  }
  return issues;
}

}  // namespace hedra::sim
