#pragma once

/// \file trace.h
/// Execution traces produced by the scheduler simulation: which node ran on
/// which execution unit during which interval.  Traces are validated against
/// the task graph (precedence, unit capacity, placement) so that every
/// simulated schedule used in the experiments is provably well-formed.

#include <string>
#include <utility>
#include <vector>

#include "graph/dag.h"

namespace hedra::sim {

using graph::Dag;
using graph::NodeId;
using graph::Time;

/// Execution units: host cores are 0..m-1; accelerator units map to
/// negative ids.  Unit 0 of device d keeps the historical odd negative
/// −(2d−1) (so single-unit traces are byte-identical to the pre-multiplicity
/// goldens), and the extra units u >= 1 of multi-unit devices map to the
/// even negatives below kInstantUnit through a Cantor pairing of (d−1, u−1)
/// — closed-form, injective, and independent of the platform shape.
inline constexpr int kAcceleratorUnit = -1;
/// Zero-WCET host-side nodes (v_sync, dummies) complete instantly on no
/// unit.  Zero-WCET nodes placed on an accelerator do NOT use this: they
/// queue for (and instantly release) one of their device's units, so device
/// serialisation applies to them like any other offloaded work.
inline constexpr int kInstantUnit = -2;

/// Unit u >= 0 of accelerator device d >= 1.  u = 0 gives −1, −3, −5, ...;
/// u >= 1 gives −4, −6, −8, ... via the Cantor pairing (−2 stays reserved
/// for kInstantUnit).
[[nodiscard]] constexpr int accelerator_unit(graph::DeviceId device,
                                             int unit = 0) noexcept {
  if (unit == 0) return -(2 * static_cast<int>(device) - 1);
  const long long a = static_cast<long long>(device) - 1;
  const long long b = static_cast<long long>(unit) - 1;
  return static_cast<int>(-2 * ((a + b) * (a + b + 1) / 2 + b + 2));
}

/// True iff `unit` is some accelerator device's unit (every negative id
/// except kInstantUnit).
[[nodiscard]] constexpr bool is_accelerator_unit(int unit) noexcept {
  return unit < 0 && unit != kInstantUnit;
}

/// Full inverse of accelerator_unit: (device, unit index within the
/// device); only meaningful when is_accelerator_unit.
[[nodiscard]] constexpr std::pair<graph::DeviceId, int> decode_accelerator_unit(
    int unit) noexcept {
  if ((-unit) % 2 == 1) {
    return {static_cast<graph::DeviceId>((1 - unit) / 2), 0};
  }
  const long long c = (-unit) / 2 - 2;  // Cantor code of (d−1, u−1)
  long long w = 0;
  while ((w + 1) * (w + 2) / 2 <= c) ++w;
  const long long b = c - w * (w + 1) / 2;
  return {static_cast<graph::DeviceId>(w - b + 1), static_cast<int>(b) + 1};
}

/// The device component of decode_accelerator_unit.
[[nodiscard]] constexpr graph::DeviceId device_of_unit(int unit) noexcept {
  return decode_accelerator_unit(unit).first;
}

/// The unit-index component of decode_accelerator_unit.
[[nodiscard]] constexpr int unit_index_of(int unit) noexcept {
  return decode_accelerator_unit(unit).second;
}

/// One contiguous execution of a node (the model is non-preemptive).
struct Interval {
  NodeId node = graph::kInvalidNode;
  int unit = kInstantUnit;
  Time start = 0;
  Time finish = 0;
};

/// A complete schedule of one DAG instance.  `device_units` gives the
/// number of execution units per accelerator device (index d−1 holds device
/// d); missing entries — including the default empty vector — mean one unit,
/// the paper's platform.
class ScheduleTrace {
 public:
  ScheduleTrace(const Dag* dag, int cores, std::vector<int> device_units = {});

  void add(const Interval& interval);

  /// Pre-sizes the interval storage (the simulator knows it will add
  /// exactly one interval per node).
  void reserve(std::size_t intervals) { intervals_.reserve(intervals); }

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// Execution units of accelerator device d (1 when the trace was recorded
  /// on a single-unit platform).
  [[nodiscard]] int units_of(graph::DeviceId device) const noexcept {
    const std::size_t index = static_cast<std::size_t>(device) - 1;
    return index < device_units_.size() ? device_units_[index] : 1;
  }

  /// Latest finish time over all intervals (0 if empty).
  [[nodiscard]] Time makespan() const noexcept;

  /// The interval of a given node; throws if the node never executed.
  [[nodiscard]] const Interval& interval_of(NodeId node) const;

  /// Start/finish convenience accessors.
  [[nodiscard]] Time start_of(NodeId node) const {
    return interval_of(node).start;
  }
  [[nodiscard]] Time finish_of(NodeId node) const {
    return interval_of(node).finish;
  }

  /// Busy time of one unit (kAcceleratorUnit allowed).
  [[nodiscard]] Time busy_time(int unit) const noexcept;

  /// Fraction of [0, makespan] the unit was busy; 0 when makespan is 0.
  [[nodiscard]] double utilization(int unit) const noexcept;

  /// Total host-core idle time in [0, makespan].
  [[nodiscard]] Time host_idle_time() const noexcept;

  /// Checks the trace against the DAG:
  ///  - every node appears exactly once, with duration == its WCET;
  ///  - starts respect precedence (start >= max finish over predecessors);
  ///  - per-unit executions do not overlap;
  ///  - offload nodes run on one of their own device's units (unit index
  ///    below the device's unit count), host nodes on host cores, zero-WCET
  ///    host-side nodes anywhere.
  /// Returns human-readable violations; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Same checks, but each node must have run for its entry in
  /// `expected_durations` instead of its WCET (used when simulating with
  /// actual execution times below the WCET).
  [[nodiscard]] std::vector<std::string> validate_with_durations(
      const std::vector<Time>& expected_durations) const;

  /// Canonical text serialisation: one `node unit start finish` line per
  /// interval, in insertion (scheduling-decision) order.  Two traces are
  /// byte-identical iff the simulator made the identical decisions, which is
  /// what the golden-trace regression suite pins across refactors.
  [[nodiscard]] std::string to_text() const;

 private:
  const Dag* dag_;
  int cores_;
  std::vector<int> device_units_;  ///< index d−1 = units of device d
  std::vector<Interval> intervals_;
};

}  // namespace hedra::sim
