#pragma once

/// \file trace.h
/// Execution traces produced by the scheduler simulation: which node ran on
/// which execution unit during which interval.  Traces are validated against
/// the task graph (precedence, unit capacity, placement) so that every
/// simulated schedule used in the experiments is provably well-formed.

#include <string>
#include <vector>

#include "graph/dag.h"

namespace hedra::sim {

using graph::Dag;
using graph::NodeId;
using graph::Time;

/// Execution units: host cores are 0..m-1; accelerator devices map to odd
/// negative units (device d -> unit −(2d−1), so device 1 keeps the
/// historical −1).
inline constexpr int kAcceleratorUnit = -1;
/// Zero-WCET nodes (v_sync, dummies) complete instantly on no unit.
inline constexpr int kInstantUnit = -2;

/// Unit of accelerator device d >= 1: −1, −3, −5, ...  (even negatives stay
/// reserved; −2 is kInstantUnit).
[[nodiscard]] constexpr int accelerator_unit(graph::DeviceId device) noexcept {
  return -(2 * static_cast<int>(device) - 1);
}

/// True iff `unit` is some accelerator device's unit.
[[nodiscard]] constexpr bool is_accelerator_unit(int unit) noexcept {
  return unit < 0 && (-unit) % 2 == 1;
}

/// Inverse of accelerator_unit; only meaningful when is_accelerator_unit.
[[nodiscard]] constexpr graph::DeviceId device_of_unit(int unit) noexcept {
  return static_cast<graph::DeviceId>((1 - unit) / 2);
}

/// One contiguous execution of a node (the model is non-preemptive).
struct Interval {
  NodeId node = graph::kInvalidNode;
  int unit = kInstantUnit;
  Time start = 0;
  Time finish = 0;
};

/// A complete schedule of one DAG instance.
class ScheduleTrace {
 public:
  ScheduleTrace(const Dag* dag, int cores);

  void add(const Interval& interval);

  /// Pre-sizes the interval storage (the simulator knows it will add
  /// exactly one interval per node).
  void reserve(std::size_t intervals) { intervals_.reserve(intervals); }

  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] int cores() const noexcept { return cores_; }

  /// Latest finish time over all intervals (0 if empty).
  [[nodiscard]] Time makespan() const noexcept;

  /// The interval of a given node; throws if the node never executed.
  [[nodiscard]] const Interval& interval_of(NodeId node) const;

  /// Start/finish convenience accessors.
  [[nodiscard]] Time start_of(NodeId node) const {
    return interval_of(node).start;
  }
  [[nodiscard]] Time finish_of(NodeId node) const {
    return interval_of(node).finish;
  }

  /// Busy time of one unit (kAcceleratorUnit allowed).
  [[nodiscard]] Time busy_time(int unit) const noexcept;

  /// Fraction of [0, makespan] the unit was busy; 0 when makespan is 0.
  [[nodiscard]] double utilization(int unit) const noexcept;

  /// Total host-core idle time in [0, makespan].
  [[nodiscard]] Time host_idle_time() const noexcept;

  /// Checks the trace against the DAG:
  ///  - every node appears exactly once, with duration == its WCET;
  ///  - starts respect precedence (start >= max finish over predecessors);
  ///  - per-unit executions do not overlap;
  ///  - offload nodes run on their own device's accelerator unit, host
  ///    nodes on host cores, zero-WCET nodes anywhere.
  /// Returns human-readable violations; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Same checks, but each node must have run for its entry in
  /// `expected_durations` instead of its WCET (used when simulating with
  /// actual execution times below the WCET).
  [[nodiscard]] std::vector<std::string> validate_with_durations(
      const std::vector<Time>& expected_durations) const;

  /// Canonical text serialisation: one `node unit start finish` line per
  /// interval, in insertion (scheduling-decision) order.  Two traces are
  /// byte-identical iff the simulator made the identical decisions, which is
  /// what the golden-trace regression suite pins across refactors.
  [[nodiscard]] std::string to_text() const;

 private:
  const Dag* dag_;
  int cores_;
  std::vector<Interval> intervals_;
};

}  // namespace hedra::sim
