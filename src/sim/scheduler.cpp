#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "graph/algorithms.h"
#include "graph/critical_path.h"

namespace hedra::sim {

const std::vector<Policy>& all_policies() noexcept {
  static const std::vector<Policy> kAll{
      Policy::kBreadthFirst, Policy::kDepthFirst, Policy::kCriticalPathFirst,
      Policy::kIndexOrder, Policy::kRandom};
  return kAll;
}

const char* to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kBreadthFirst:
      return "breadth-first";
    case Policy::kDepthFirst:
      return "depth-first";
    case Policy::kCriticalPathFirst:
      return "critical-path-first";
    case Policy::kIndexOrder:
      return "index-order";
    case Policy::kRandom:
      return "random";
  }
  return "?";
}

namespace {

struct ReadyEntry {
  std::uint64_t seq;  ///< order of becoming ready (FIFO ticket)
  NodeId node;
};

struct Running {
  Time finish;
  NodeId node;
  int unit;
};

class Simulation {
 public:
  /// `actual` gives per-node execution times; nullptr means "run at WCET".
  Simulation(const Dag& dag, const SimConfig& config,
             const std::vector<Time>* actual)
      : dag_(dag),
        config_(config),
        actual_(actual),
        trace_(&dag, config.cores),
        rng_(config.seed),
        cp_info_(dag),
        ready_dev_(dag.max_device()),
        dev_busy_(dag.max_device(), false) {
    HEDRA_REQUIRE(config_.cores >= 1, "simulation requires at least one core");
    if (actual_ != nullptr) {
      HEDRA_REQUIRE(actual_->size() == dag_.num_nodes(),
                    "actual-times vector size mismatch");
      for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
        HEDRA_REQUIRE((*actual_)[v] >= 0 && (*actual_)[v] <= dag_.wcet(v),
                      "actual execution time outside [0, WCET]");
      }
    }
  }

  ScheduleTrace run() {
    const std::size_t n = dag_.num_nodes();
    remaining_preds_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      remaining_preds_[v] = dag_.in_degree(v);
    }
    for (int core = config_.cores - 1; core >= 0; --core) {
      free_cores_.push(core);
    }

    // Sources are ready at t = 0.
    std::deque<NodeId> newly;
    for (NodeId v = 0; v < n; ++v) {
      if (remaining_preds_[v] == 0) newly.push_back(v);
    }
    absorb_ready(newly, /*time=*/0);

    Time now = 0;
    while (completed_ < n) {
      dispatch(now);
      HEDRA_REQUIRE(!running_.empty(),
                    "simulation stalled: cyclic or disconnected graph");
      // Advance to the next completion and retire everything finishing then.
      Time next = running_.front().finish;
      for (const auto& r : running_) next = std::min(next, r.finish);
      std::deque<NodeId> finished;
      for (auto it = running_.begin(); it != running_.end();) {
        if (it->finish == next) {
          if (it->unit >= 0) free_cores_.push(it->unit);
          else dev_busy_[device_of_unit(it->unit) - 1] = false;
          finished.push_back(it->node);
          it = running_.erase(it);
        } else {
          ++it;
        }
      }
      std::sort(finished.begin(), finished.end());
      std::deque<NodeId> ready_next;
      for (const NodeId v : finished) retire(v, ready_next);
      absorb_ready(ready_next, next);
      now = next;
    }

    std::vector<Time> durations(dag_.num_nodes());
    for (NodeId v = 0; v < dag_.num_nodes(); ++v) durations[v] = duration(v);
    const auto issues = trace_.validate_with_durations(durations);
    HEDRA_ASSERT(issues.empty());
    return std::move(trace_);
  }

 private:
  /// How long node v actually executes in this run.
  [[nodiscard]] Time duration(NodeId v) const {
    return actual_ != nullptr ? (*actual_)[v] : dag_.wcet(v);
  }
  /// Marks v complete and collects successors that became ready.
  void retire(NodeId v, std::deque<NodeId>& ready_out) {
    ++completed_;
    for (const NodeId w : dag_.successors(v)) {
      if (--remaining_preds_[w] == 0) ready_out.push_back(w);
    }
  }

  /// Files newly ready nodes into the ready queues.  Zero-WCET nodes
  /// complete instantly (occupying no unit) and cascade.
  void absorb_ready(std::deque<NodeId>& newly, Time time) {
    while (!newly.empty()) {
      const NodeId v = newly.front();
      newly.pop_front();
      if (dag_.wcet(v) == 0) {
        trace_.add(Interval{v, kInstantUnit, time, time});
        retire(v, newly);
        continue;
      }
      if (const graph::DeviceId device = dag_.device(v);
          device != graph::kHostDevice) {
        ready_dev_[device - 1].push_back(v);
      } else {
        ready_host_.push_back(ReadyEntry{next_seq_++, v});
      }
    }
  }

  /// Work-conserving assignment of ready nodes to free units at `time`.
  void dispatch(Time time) {
    for (std::size_t d = 0; d < ready_dev_.size(); ++d) {
      if (dev_busy_[d] || ready_dev_[d].empty()) continue;
      const NodeId v = ready_dev_[d].front();  // FIFO per device unit
      ready_dev_[d].pop_front();
      dev_busy_[d] = true;
      start(v, accelerator_unit(static_cast<graph::DeviceId>(d + 1)), time);
    }
    while (!free_cores_.empty() && !ready_host_.empty()) {
      const std::size_t pick = pick_index();
      const NodeId v = ready_host_[pick].node;
      ready_host_[pick] = ready_host_.back();
      ready_host_.pop_back();
      const int core = free_cores_.top();
      free_cores_.pop();
      start(v, core, time);
    }
  }

  std::size_t pick_index() {
    HEDRA_ASSERT(!ready_host_.empty());
    const auto by = [&](auto&& better) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < ready_host_.size(); ++i) {
        if (better(ready_host_[i], ready_host_[best])) best = i;
      }
      return best;
    };
    switch (config_.policy) {
      case Policy::kBreadthFirst:
        return by([](const ReadyEntry& a, const ReadyEntry& b) {
          return a.seq < b.seq;
        });
      case Policy::kDepthFirst:
        return by([](const ReadyEntry& a, const ReadyEntry& b) {
          return a.seq > b.seq;
        });
      case Policy::kCriticalPathFirst:
        return by([this](const ReadyEntry& a, const ReadyEntry& b) {
          const Time da = cp_info_.down(a.node);
          const Time db = cp_info_.down(b.node);
          return da != db ? da > db : a.node < b.node;
        });
      case Policy::kIndexOrder:
        return by([](const ReadyEntry& a, const ReadyEntry& b) {
          return a.node < b.node;
        });
      case Policy::kRandom:
        return rng_.index(ready_host_.size());
    }
    throw InternalError("unreachable policy");
  }

  void start(NodeId v, int unit, Time time) {
    const Time finish = time + duration(v);
    trace_.add(Interval{v, unit, time, finish});
    running_.push_back(Running{finish, v, unit});
  }

  const Dag& dag_;
  SimConfig config_;
  const std::vector<Time>* actual_;
  ScheduleTrace trace_;
  Rng rng_;
  graph::CriticalPathInfo cp_info_;

  std::vector<std::size_t> remaining_preds_;
  std::vector<ReadyEntry> ready_host_;
  /// One FIFO ready queue and one busy flag per accelerator device; index
  /// d−1 holds device d (a single device reproduces the historical
  /// accelerator queue exactly).
  std::vector<std::deque<NodeId>> ready_dev_;
  std::vector<bool> dev_busy_;
  std::vector<Running> running_;
  std::priority_queue<int, std::vector<int>, std::greater<>> free_cores_;
  std::uint64_t next_seq_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace

ScheduleTrace simulate(const Dag& dag, const SimConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot simulate an empty graph");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot simulate a cyclic graph");
  Simulation sim(dag, config, nullptr);
  return sim.run();
}

Time simulated_makespan(const Dag& dag, const SimConfig& config) {
  return simulate(dag, config).makespan();
}

ScheduleTrace simulate_with_times(const Dag& dag, const SimConfig& config,
                                  const std::vector<Time>& actual_times) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot simulate an empty graph");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot simulate a cyclic graph");
  Simulation sim(dag, config, &actual_times);
  return sim.run();
}

std::vector<Time> random_actual_times(const Dag& dag, double scale_min,
                                      Rng& rng) {
  HEDRA_REQUIRE(scale_min >= 0.0 && scale_min <= 1.0,
                "scale_min must lie in [0, 1]");
  std::vector<Time> actual(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    const Time wcet = dag.wcet(v);
    if (wcet == 0) continue;
    const Time lo = static_cast<Time>(
        std::ceil(scale_min * static_cast<double>(wcet)));
    actual[v] = rng.uniform_int(std::max<Time>(0, lo), wcet);
  }
  return actual;
}

}  // namespace hedra::sim
