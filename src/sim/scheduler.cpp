#include "sim/scheduler.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "graph/critical_path.h"

namespace hedra::sim {

namespace {
std::atomic<std::uint64_t> g_validation_runs{0};
}  // namespace

std::uint64_t validation_runs() noexcept {
  return g_validation_runs.load(std::memory_order_relaxed);
}

const std::vector<Policy>& all_policies() noexcept {
  static const std::vector<Policy> kAll{
      Policy::kBreadthFirst, Policy::kDepthFirst, Policy::kCriticalPathFirst,
      Policy::kIndexOrder, Policy::kRandom};
  return kAll;
}

const char* to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kBreadthFirst:
      return "breadth-first";
    case Policy::kDepthFirst:
      return "depth-first";
    case Policy::kCriticalPathFirst:
      return "critical-path-first";
    case Policy::kIndexOrder:
      return "index-order";
    case Policy::kRandom:
      return "random";
  }
  return "?";
}

namespace {

/// Unit counts per accelerator device: entry d−1 of `configured` if
/// present, 1 otherwise (the paper's single-unit platform).
std::vector<int> units_for(graph::DeviceId max_device,
                           const std::vector<int>& configured) {
  std::vector<int> units(max_device, 1);
  for (std::size_t d = 0; d < units.size() && d < configured.size(); ++d) {
    units[d] = configured[d];
  }
  return units;
}

/// One pending completion; the event heap pops the earliest finish (node id
/// tie-break keeps the pop order fully specified, though retirement batches
/// all events of the minimum finish time, so ties never change behaviour).
struct Event {
  Time finish;
  NodeId node;
  int unit;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.finish != b.finish) return a.finish > b.finish;
    return a.node > b.node;
  }
};

/// Recorders: what a simulation run keeps of its scheduling decisions.  The
/// event loop is recorder-agnostic; golden-trace byte-identity is preserved
/// because the recorder only OBSERVES decisions, never influences them.
///
/// Full trace — the validation/golden/tooling path.
struct TraceRecorder {
  static constexpr bool kRecordsTrace = true;
  ScheduleTrace trace;

  TraceRecorder(const Dag* dag, int cores, std::vector<int> device_units)
      : trace(dag, cores, std::move(device_units)) {}

  [[nodiscard]] int units_of(graph::DeviceId device) const noexcept {
    return trace.units_of(device);
  }
  void reserve(std::size_t intervals) { trace.reserve(intervals); }
  void add(const Interval& interval) { trace.add(interval); }
};

/// Makespan only — the Monte-Carlo hot path: no per-interval storage, no
/// ScheduleTrace allocation, just a running max over finish times.
struct MakespanRecorder {
  static constexpr bool kRecordsTrace = false;
  std::vector<int> units;  ///< index d−1 = units of device d
  Time makespan = 0;

  explicit MakespanRecorder(std::vector<int> device_units)
      : units(std::move(device_units)) {}

  [[nodiscard]] int units_of(graph::DeviceId device) const noexcept {
    const std::size_t index = static_cast<std::size_t>(device) - 1;
    return index < units.size() ? units[index] : 1;
  }
  void reserve(std::size_t) noexcept {}
  void add(const Interval& interval) noexcept {
    makespan = std::max(makespan, interval.finish);
  }
};

/// Critical-path-first key: longest down(v) wins, smallest id tie-breaks —
/// the same strict total order the historical linear scan minimised over,
/// so heap and scan always pick the same node.
struct CpEntry {
  Time down;
  NodeId node;
};

struct CpAfter {
  bool operator()(const CpEntry& a, const CpEntry& b) const noexcept {
    if (a.down != b.down) return a.down < b.down;
    return a.node > b.node;
  }
};

/// Host ready set, indexed by the policy so every pick is O(1)/O(log n):
///  - breadth-first: nodes become ready in FIFO-ticket order, so a deque's
///    front IS the minimum ticket (the historical scan's pick);
///  - depth-first: the back is the maximum ticket;
///  - critical-path / index order: binary heaps over the strict total order
///    the historical scan minimised;
///  - random: the historical vector + swap-remove, byte-compatible RNG
///    consumption (one index draw per pick over the identical layout).
class ReadyHost {
 public:
  ReadyHost(Policy policy, const std::vector<Time>* down)
      : policy_(policy), down_(down) {}

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  void push(NodeId v) {
    ++count_;
    switch (policy_) {
      case Policy::kBreadthFirst:
        fifo_.push_back(v);
        return;
      case Policy::kDepthFirst:
        lifo_.push_back(v);
        return;
      case Policy::kCriticalPathFirst:
        cp_.push(CpEntry{(*down_)[v], v});
        return;
      case Policy::kIndexOrder:
        by_index_.push(v);
        return;
      case Policy::kRandom:
        pool_.push_back(v);
        return;
    }
  }

  [[nodiscard]] NodeId pop(Rng& rng) {
    HEDRA_ASSERT(count_ > 0);
    --count_;
    switch (policy_) {
      case Policy::kBreadthFirst: {
        const NodeId v = fifo_.front();
        fifo_.pop_front();
        return v;
      }
      case Policy::kDepthFirst: {
        const NodeId v = lifo_.back();
        lifo_.pop_back();
        return v;
      }
      case Policy::kCriticalPathFirst: {
        const NodeId v = cp_.top().node;
        cp_.pop();
        return v;
      }
      case Policy::kIndexOrder: {
        const NodeId v = by_index_.top();
        by_index_.pop();
        return v;
      }
      case Policy::kRandom: {
        const std::size_t pick = rng.index(pool_.size());
        const NodeId v = pool_[pick];
        pool_[pick] = pool_.back();
        pool_.pop_back();
        return v;
      }
    }
    throw InternalError("unreachable policy");
  }

 private:
  Policy policy_;
  const std::vector<Time>* down_;  ///< kCriticalPathFirst only
  std::size_t count_ = 0;
  std::deque<NodeId> fifo_;
  std::vector<NodeId> lifo_;
  std::priority_queue<CpEntry, std::vector<CpEntry>, CpAfter> cp_;
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> by_index_;
  std::vector<NodeId> pool_;
};

template <class Recorder>
class Simulation {
 public:
  /// `actual` gives per-node execution times; nullptr means "run at WCET".
  Simulation(const graph::FlatView& flat, const SimConfig& config,
             const std::vector<Time>* actual, Recorder recorder)
      : flat_(flat),
        config_(config),
        actual_(actual),
        rec_(std::move(recorder)),
        rng_(config.seed),
        down_(config.policy == Policy::kCriticalPathFirst
                  ? graph::down_lengths(flat)
                  : std::vector<Time>{}),
        ready_host_(config.policy, &down_),
        ready_dev_(flat.max_device()),
        dev_free_(flat.max_device()) {
    HEDRA_REQUIRE(config_.cores >= 1, "simulation requires at least one core");
    for (std::size_t d = 0; d < dev_free_.size(); ++d) {
      // Smallest free unit index on top, matching the host free-core heap.
      for (int u = rec_.units_of(static_cast<graph::DeviceId>(d + 1)) - 1;
           u >= 0; --u) {
        dev_free_[d].push(u);
      }
    }
    if (actual_ != nullptr) {
      HEDRA_REQUIRE(actual_->size() == flat_.num_nodes(),
                    "actual-times vector size mismatch");
      for (NodeId v = 0; v < flat_.num_nodes(); ++v) {
        HEDRA_REQUIRE((*actual_)[v] >= 0 && (*actual_)[v] <= flat_.wcet(v),
                      "actual execution time outside [0, WCET]");
      }
    }
  }

  Recorder run() {
    const std::size_t n = flat_.num_nodes();
    rec_.reserve(n);
    remaining_preds_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      remaining_preds_[v] = static_cast<std::uint32_t>(flat_.in_degree(v));
    }
    for (int core = config_.cores - 1; core >= 0; --core) {
      free_cores_.push(core);
    }

    // Sources are ready at t = 0.  `queue_` is the FIFO of newly ready
    // nodes, consumed from `queue_head_` (a plain vector + head index, so
    // the per-event churn allocates nothing in steady state).
    queue_.reserve(n);
    for (NodeId v = 0; v < n; ++v) {
      if (remaining_preds_[v] == 0) queue_.push_back(v);
    }
    absorb_ready(/*time=*/0);

    Time now = 0;
    std::vector<NodeId> finished;
    while (completed_ < n) {
      dispatch(now);
      HEDRA_REQUIRE(!events_.empty(),
                    "simulation stalled: cyclic or disconnected graph");
      // Advance to the next completion and retire everything finishing then.
      const Time next = events_.top().finish;
      finished.clear();
      while (!events_.empty() && events_.top().finish == next) {
        const Event e = events_.top();
        events_.pop();
        if (e.unit >= 0) {
          free_cores_.push(e.unit);
        } else {
          const auto [device, index] = decode_accelerator_unit(e.unit);
          dev_free_[device - 1].push(index);
        }
        finished.push_back(e.node);
      }
      std::sort(finished.begin(), finished.end());
      queue_.clear();
      queue_head_ = 0;
      for (const NodeId v : finished) retire(v);
      absorb_ready(next);
      now = next;
    }

    if constexpr (Recorder::kRecordsTrace) {
      if (config_.validate) {
        g_validation_runs.fetch_add(1, std::memory_order_relaxed);
        std::vector<Time> durations(n);
        for (NodeId v = 0; v < n; ++v) durations[v] = duration(v);
        const auto issues = rec_.trace.validate_with_durations(durations);
        HEDRA_ASSERT(issues.empty());
      }
    }
    return std::move(rec_);
  }

 private:
  /// How long node v actually executes in this run.
  [[nodiscard]] Time duration(NodeId v) const {
    return actual_ != nullptr ? (*actual_)[v] : flat_.wcet(v);
  }
  /// Marks v complete and appends successors that became ready to `queue_`.
  void retire(NodeId v) {
    ++completed_;
    for (const NodeId w : flat_.successors(v)) {
      if (--remaining_preds_[w] == 0) queue_.push_back(w);
    }
  }

  /// Files the queued newly ready nodes into the ready structures, FIFO.
  /// Zero-WCET host-side nodes complete instantly (occupying no unit) and
  /// cascade; zero-WCET nodes placed on an accelerator go through their
  /// device's queue like any offload, so device serialisation applies (they
  /// still execute for zero time once a unit frees up).
  void absorb_ready(Time time) {
    while (queue_head_ < queue_.size()) {
      const NodeId v = queue_[queue_head_++];
      const graph::DeviceId device = flat_.device(v);
      if (device != graph::kHostDevice) {
        ready_dev_[device - 1].push_back(v);
      } else if (flat_.wcet(v) == 0) {
        rec_.add(Interval{v, kInstantUnit, time, time});
        retire(v);
      } else {
        ready_host_.push(v);
      }
    }
  }

  /// Work-conserving assignment of ready nodes to free units at `time`.
  void dispatch(Time time) {
    for (std::size_t d = 0; d < ready_dev_.size(); ++d) {
      while (!dev_free_[d].empty() && !ready_dev_[d].empty()) {
        const NodeId v = ready_dev_[d].front();  // FIFO per device
        ready_dev_[d].pop_front();
        const int unit = dev_free_[d].top();  // smallest free unit first
        dev_free_[d].pop();
        start(v, accelerator_unit(static_cast<graph::DeviceId>(d + 1), unit),
              time);
      }
    }
    while (!free_cores_.empty() && !ready_host_.empty()) {
      const NodeId v = ready_host_.pop(rng_);
      const int core = free_cores_.top();
      free_cores_.pop();
      start(v, core, time);
    }
  }

  void start(NodeId v, int unit, Time time) {
    const Time finish = time + duration(v);
    rec_.add(Interval{v, unit, time, finish});
    events_.push(Event{finish, v, unit});
  }

  graph::FlatView flat_;
  SimConfig config_;
  const std::vector<Time>* actual_;
  Recorder rec_;
  Rng rng_;
  std::vector<Time> down_;  ///< down(v), kCriticalPathFirst only

  std::vector<std::uint32_t> remaining_preds_;
  std::vector<NodeId> queue_;   ///< newly ready FIFO (consumed from head)
  std::size_t queue_head_ = 0;
  ReadyHost ready_host_;
  /// One FIFO ready queue and one free-unit min-heap per accelerator
  /// device; index d−1 holds device d (a single-unit device reproduces the
  /// historical queue + busy flag exactly).
  std::vector<std::deque<NodeId>> ready_dev_;
  std::vector<std::priority_queue<int, std::vector<int>, std::greater<>>>
      dev_free_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::priority_queue<int, std::vector<int>, std::greater<>> free_cores_;
  std::size_t completed_ = 0;
};

/// A trace-recording run over `view`, whose source Dag is `dag`.
ScheduleTrace run_traced(const graph::FlatView& view, const Dag* dag,
                         const SimConfig& config,
                         const std::vector<Time>* actual) {
  Simulation<TraceRecorder> sim(
      view, config, actual,
      TraceRecorder(dag, config.cores,
                    units_for(view.max_device(), config.device_units)));
  return std::move(sim.run().trace);
}

}  // namespace

ScheduleTrace simulate(const FlatDag& flat, const SimConfig& config) {
  HEDRA_REQUIRE(flat.num_nodes() > 0, "cannot simulate an empty graph");
  return run_traced(flat.view(), &flat.source(), config, nullptr);
}

ScheduleTrace simulate(const Dag& dag, const SimConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot simulate an empty graph");
  const FlatDag flat(dag);  // throws on cyclic input
  return run_traced(flat.view(), &dag, config, nullptr);
}

Time simulated_makespan(const graph::FlatView& view, const SimConfig& config) {
  HEDRA_REQUIRE(view.num_nodes() > 0, "cannot simulate an empty graph");
  if (config.validate) {
    // Validation needs a full trace (and the source Dag to check against),
    // so honour the flag by taking the recording path.
    HEDRA_REQUIRE(view.source() != nullptr,
                  "trace validation requires a Dag-backed view");
    return run_traced(view, view.source(), config, nullptr).makespan();
  }
  Simulation<MakespanRecorder> sim(
      view, config, nullptr,
      MakespanRecorder(units_for(view.max_device(), config.device_units)));
  return sim.run().makespan;
}

Time simulated_makespan(const Dag& dag, const SimConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot simulate an empty graph");
  const FlatDag flat(dag);  // throws on cyclic input
  return simulated_makespan(flat.view(), config);
}

Time simulated_makespan(const FlatDag& flat, const SimConfig& config) {
  return simulated_makespan(flat.view(), config);
}

ScheduleTrace simulate_with_times(const FlatDag& flat, const SimConfig& config,
                                  const std::vector<Time>& actual_times) {
  HEDRA_REQUIRE(flat.num_nodes() > 0, "cannot simulate an empty graph");
  return run_traced(flat.view(), &flat.source(), config, &actual_times);
}

ScheduleTrace simulate_with_times(const Dag& dag, const SimConfig& config,
                                  const std::vector<Time>& actual_times) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot simulate an empty graph");
  const FlatDag flat(dag);  // throws on cyclic input
  return run_traced(flat.view(), &dag, config, &actual_times);
}

std::vector<Time> random_actual_times(const Dag& dag, double scale_min,
                                      Rng& rng) {
  HEDRA_REQUIRE(scale_min >= 0.0 && scale_min <= 1.0,
                "scale_min must lie in [0, 1]");
  std::vector<Time> actual(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    const Time wcet = dag.wcet(v);
    if (wcet == 0) continue;
    const Time lo = static_cast<Time>(
        std::ceil(scale_min * static_cast<double>(wcet)));
    actual[v] = rng.uniform_int(std::max<Time>(0, lo), wcet);
  }
  return actual;
}

}  // namespace hedra::sim
