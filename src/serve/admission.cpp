#include "serve/admission.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "analysis/analysis_cache.h"
#include "graph/dag_io.h"
#include "obs/metrics.h"
#include "util/fault.h"
#include "util/strings.h"

namespace hedra::serve {

namespace {

constexpr std::string_view kAdmitRecord = "admit\n";
constexpr std::string_view kLeavePrefix = "leave ";
constexpr std::string_view kPlatformPrefix = "platform ";

/// Parses one journalled task block by round-tripping it through the
/// hardened TaskSet parser (prepending the platform line), so journal
/// replay and network input share one validation path.
model::DagTask parse_task_block(const std::string& block,
                                const model::Platform& platform) {
  const taskset::TaskSet one =
      taskset::TaskSet::from_text("platform " + platform.spec() + "\n" + block);
  HEDRA_REQUIRE(one.size() == 1,
                "journal admit record holds " + std::to_string(one.size()) +
                    " tasks, expected exactly 1");
  return one[0];
}

taskset::TaskSet with_task(const model::Platform& platform,
                           const taskset::TaskSet& base,
                           const model::DagTask* extra) {
  taskset::TaskSet next(platform);
  for (const model::DagTask& task : base) next.add(task);
  if (extra != nullptr) next.add(*extra);
  return next;
}

}  // namespace

const char* to_string(Decision decision) noexcept {
  switch (decision) {
    case Decision::kAdmitted:
      return "ADMITTED";
    case Decision::kRejected:
      return "REJECTED";
    case Decision::kProvisional:
      return "PROVISIONAL";
    case Decision::kOk:
      return "OK";
    case Decision::kError:
      return "ERROR";
  }
  return "ERROR";
}

std::string task_to_text(const model::DagTask& task) {
  std::ostringstream os;
  os << "task " << task.name() << " period " << task.period() << " deadline "
     << task.deadline() << "\n"
     << graph::write_dag_text(task.dag()) << "endtask\n";
  return os.str();
}

AdmissionService::AdmissionService(AdmissionConfig config)
    : config_(std::move(config)) {
  config_.platform.validate();

  // hedra-lint: allow(fault-seam, startup path; no acknowledged state yet)
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->set = taskset::TaskSet(config_.platform);

  if (!config_.journal_path.empty()) {
    const JournalReplay replay = Journal::replay(config_.journal_path);
    journal_.emplace(config_.journal_path);

    std::vector<model::DagTask> tasks;
    bool have_platform = false;
    for (const std::string& record : replay.records) {
      if (starts_with(record, kPlatformPrefix)) {
        const std::string spec(trim(record.substr(kPlatformPrefix.size())));
        HEDRA_REQUIRE(
            spec == config_.platform.spec(),
            "journal platform '" + spec + "' does not match configured '" +
                config_.platform.spec() + "' — refusing to reinterpret "
                "admitted state on a different platform");
        have_platform = true;
      } else if (starts_with(record, kAdmitRecord)) {
        tasks.push_back(parse_task_block(record.substr(kAdmitRecord.size()),
                                         config_.platform));
      } else if (starts_with(record, kLeavePrefix)) {
        const std::string name(trim(record.substr(kLeavePrefix.size())));
        const auto it =
            std::find_if(tasks.begin(), tasks.end(),
                         [&](const model::DagTask& t) {
                           return t.name() == name;
                         });
        HEDRA_REQUIRE(it != tasks.end(),
                      "journal leave record for unknown task '" + name + "'");
        tasks.erase(it);
      } else {
        throw Error("unknown journal record type: '" +
                    record.substr(0, record.find('\n')) + "'");
      }
    }
    HEDRA_REQUIRE(have_platform || replay.records.empty(),
                  "journal has records but no platform header");
    if (replay.records.empty()) {
      journal_->append(std::string(kPlatformPrefix) + config_.platform.spec());
    }

    snapshot->set = taskset::TaskSet(config_.platform, std::move(tasks));
    snapshot->set.validate();
    if (!snapshot->set.empty()) {
      snapshot->analysis = taskset::contention_rta(snapshot->set);
    }
    snapshot->version = replay.records.size();
    journal_bytes_.store(journal_->bytes_committed(),
                         std::memory_order_relaxed);
  }

  snapshot_.store(std::move(snapshot), std::memory_order_release);
}

AdmissionReply AdmissionService::admit(const model::DagTask& task,
                                       util::Deadline deadline,
                                       obs::RequestTrace* trace) {
  AdmissionReply reply;
  reply.task = task.name();

  // One mutation at a time: the analysis below reads `current`, and the
  // publish at the end must swap against exactly that state.
  util::MutexLock writer(writer_mutex_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  for (const model::DagTask& existing : current->set) {
    if (existing.name() == task.name()) {
      reply.decision = Decision::kError;
      reply.detail = "task '" + task.name() + "' is already admitted";
      tally_errors_.fetch_add(1, std::memory_order_relaxed);
      return reply;
    }
  }

  const int build_span =
      trace != nullptr ? trace->begin("snapshot-build") : -1;
  taskset::TaskSet candidate =
      with_task(config_.platform, current->set, &task);
  try {
    candidate.validate();
  } catch (const Error& e) {
    reply.decision = Decision::kError;
    reply.detail = e.what();
    tally_errors_.fetch_add(1, std::memory_order_relaxed);
    return reply;
  }
  if (trace != nullptr) trace->end(build_span);

  const int rta_span = trace != nullptr ? trace->begin("rta-fixpoint") : -1;
  util::Budget budget(deadline, config_.max_work_per_request == 0
                                    ? util::Budget::kUnlimitedWork
                                    : config_.max_work_per_request);
  taskset::ContentionAnalysis analysis =
      taskset::contention_rta(candidate, &budget);
  if (trace != nullptr) trace->end(rta_span);

  if (analysis.schedulable) {
    // contention_rta never reports schedulable under a truncated analysis
    // (fail closed), so this branch is a complete exact-rational proof.
    const taskset::TaskAdmission& admitted = analysis.tasks.back();
    reply.decision = Decision::kAdmitted;
    reply.outcome = util::Outcome::kComplete;
    reply.cores = admitted.cores;
    reply.response = admitted.response;
    reply.detail = "proven by exact fixpoint";

    auto next = std::make_shared<Snapshot>();
    // The allocation fault seam: an injected failure here aborts the admit
    // before anything is journalled or published.
    HEDRA_FAULT("serve.snapshot.alloc");
    next->set = std::move(candidate);
    next->analysis = std::move(analysis);
    next->version = current->version + 1;
    // Journal BEFORE publishing: a crash between the two replays to the
    // state we are about to acknowledge, never to one the client was not
    // told about and that was not proven schedulable.
    if (journal_.has_value()) {
      const int journal_span =
          trace != nullptr ? trace->begin("journal-append+fsync") : -1;
      journal_->append(std::string(kAdmitRecord) + task_to_text(task));
      journal_bytes_.store(journal_->bytes_committed(),
                           std::memory_order_relaxed);
      if (trace != nullptr) trace->end(journal_span);
      HEDRA_METRIC("serve.journal.appends");
    }
    const int publish_span =
        trace != nullptr ? trace->begin("publish") : -1;
    publish(std::move(next));
    if (trace != nullptr) trace->end(publish_span);
    tally_admitted_.fetch_add(1, std::memory_order_relaxed);
    HEDRA_METRIC("serve.admit.admitted");
    return reply;
  }

  if (analysis.outcome == util::Outcome::kBudgetExhausted) {
    // Degradation ladder, rung 2: the fixpoint ran out of budget, so fall
    // back to the SEED bound — the task's isolated platform bound at every
    // host core, which lower-bounds the contended fixpoint at any
    // allocation.  seed > D is therefore still a proof of infeasibility;
    // anything else stays unproven and is NOT admitted.
    analysis::AnalysisCache cache(task.dag());
    const Frac seed = cache.r_platform(config_.platform);
    if (seed > Frac(task.deadline())) {
      reply.decision = Decision::kRejected;
      reply.outcome = util::Outcome::kComplete;
      reply.detail = "seed bound " + seed.to_string() +
                     " exceeds deadline " + std::to_string(task.deadline()) +
                     " on all " + std::to_string(config_.platform.cores) +
                     " cores (proof survives the budget cut)";
      tally_rejected_seed_.fetch_add(1, std::memory_order_relaxed);
      HEDRA_METRIC("serve.admit.rejected_seed");
      return reply;
    }
    reply.decision = Decision::kProvisional;
    reply.outcome = util::Outcome::kBudgetExhausted;
    reply.detail = "analysis budget exhausted before a proof; not admitted";
    tally_provisional_.fetch_add(1, std::memory_order_relaxed);
    HEDRA_METRIC("serve.admit.provisional");
    return reply;
  }

  reply.decision = Decision::kRejected;
  reply.outcome = util::Outcome::kComplete;
  for (const taskset::TaskAdmission& t : analysis.tasks) {
    if (!t.schedulable) {
      reply.detail = "task '" + t.name + "' misses its deadline (R = " +
                     t.response.to_string() + ")";
      break;
    }
  }
  tally_rejected_exact_.fetch_add(1, std::memory_order_relaxed);
  HEDRA_METRIC("serve.admit.rejected_exact");
  return reply;
}

AdmissionService::LadderTallies AdmissionService::ladder_tallies()
    const noexcept {
  LadderTallies t;
  t.admitted = tally_admitted_.load(std::memory_order_relaxed);
  t.rejected_exact = tally_rejected_exact_.load(std::memory_order_relaxed);
  t.rejected_seed = tally_rejected_seed_.load(std::memory_order_relaxed);
  t.provisional = tally_provisional_.load(std::memory_order_relaxed);
  t.errors = tally_errors_.load(std::memory_order_relaxed);
  return t;
}

AdmissionReply AdmissionService::leave(const std::string& name) {
  AdmissionReply reply;
  reply.task = name;

  util::MutexLock writer(writer_mutex_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  taskset::TaskSet next_set(config_.platform);
  bool found = false;
  for (const model::DagTask& task : current->set) {
    if (task.name() == name) {
      found = true;
      continue;
    }
    next_set.add(task);
  }
  if (!found) {
    reply.decision = Decision::kError;
    reply.detail = "no admitted task named '" + name + "'";
    return reply;
  }

  auto next = std::make_shared<Snapshot>();
  HEDRA_FAULT("serve.snapshot.alloc");
  next->set = std::move(next_set);
  if (!next->set.empty()) {
    next->analysis = taskset::contention_rta(next->set);
  }
  next->version = current->version + 1;
  if (journal_.has_value()) {
    journal_->append(std::string(kLeavePrefix) + name);
    journal_bytes_.store(journal_->bytes_committed(),
                         std::memory_order_relaxed);
    HEDRA_METRIC("serve.journal.appends");
  }
  publish(std::move(next));
  reply.decision = Decision::kOk;
  reply.detail = "task '" + name + "' left";
  return reply;
}

std::string AdmissionService::status_line() const {
  const std::shared_ptr<const Snapshot> current = snapshot();
  const LadderTallies ladder = ladder_tallies();
  std::ostringstream os;
  os << "tasks=" << current->set.size()
     << " cores_used=" << current->analysis.cores_used
     << " schedulable=" << (current->set.empty() || current->analysis.schedulable ? 1 : 0)
     << " version=" << current->version << " platform="
     << config_.platform.spec()
     << " journal_bytes=" << journal_bytes()
     << " admitted=" << ladder.admitted
     << " rejected_exact=" << ladder.rejected_exact
     << " rejected_seed=" << ladder.rejected_seed
     << " provisional=" << ladder.provisional
     << " admit_errors=" << ladder.errors;
  return os.str();
}

}  // namespace hedra::serve
