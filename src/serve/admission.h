#pragma once

/// \file admission.h
/// The admission-control core: a long-lived service wrapping
/// taskset::contention_rta (the paper's federated admission test) with the
/// three properties a batch analysis never needed —
///
///  1. *Bounded-latency answers.*  Every request carries a util::Deadline;
///     the analysis consumes a Budget cooperatively and, on exhaustion,
///     degrades down a strict ladder:
///
///         exact fixpoint admitted            -> ADMITTED
///         exact fixpoint rejects (complete)  -> REJECTED   (proof)
///         budget cut, seed bound > deadline  -> REJECTED   (still a proof:
///                                               the seed bound LOWER-bounds
///                                               the contended fixpoint)
///         budget cut, seed bound <= deadline -> PROVISIONAL (unproven,
///                                               NOT admitted)
///
///     The ladder can under-admit, never over-admit: ADMITTED is only ever
///     answered on a complete exact-rational proof.
///
///  2. *RCU-style snapshots.*  The admitted state is an immutable Snapshot
///     behind std::atomic<std::shared_ptr>; readers (status queries,
///     concurrent inspectors) load it wait-free while the single writer
///     builds a successor and swaps it in after the journal commit.
///
///  3. *Crash safety.*  Every state change is journalled (serve/journal.h)
///     BEFORE the snapshot swap, so a restart replays admit/leave records
///     to bit-identical admitted state: to_text() of the recovered set
///     equals to_text() of the pre-crash set.
///
/// Thread model: mutations (admit()/leave()) serialise on an internal
/// writer mutex — the journal handle and the snapshot-swap publish path are
/// machine-checked (Clang thread-safety analysis) to only ever run under
/// it; snapshot() is a wait-free atomic load, safe from any thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/trace.h"
#include "serve/journal.h"
#include "taskset/contention_rta.h"
#include "taskset/taskset.h"
#include "util/deadline.h"
#include "util/thread_annotations.h"

namespace hedra::serve {

/// The service's answer to one request.
enum class Decision {
  kAdmitted,     ///< proven schedulable; state updated
  kRejected,     ///< proven unschedulable (exact or seed-bound proof)
  kProvisional,  ///< budget exhausted before a proof; NOT admitted
  kOk,           ///< non-admission operation succeeded (leave, status)
  kError,        ///< malformed or inapplicable request; state unchanged
};

[[nodiscard]] const char* to_string(Decision decision) noexcept;

/// Immutable admitted state.  Replaced wholesale on every mutation.
struct Snapshot {
  taskset::TaskSet set;
  /// contention_rta of `set` (complete, unlimited budget); meaningful only
  /// when the set is non-empty.
  taskset::ContentionAnalysis analysis;
  std::uint64_t version = 0;  ///< monotone, bumped per mutation
};

struct AdmissionConfig {
  model::Platform platform;
  /// Journal file; empty disables persistence (tests, ephemeral runs).
  std::string journal_path;
  /// Iteration/seed-evaluation work cap per request on top of the caller's
  /// deadline (0 = unlimited): a belt against clock jumps.
  std::uint64_t max_work_per_request = 0;
};

struct AdmissionReply {
  Decision decision = Decision::kError;
  std::string task;    ///< the request's task name (empty for status ops)
  std::string detail;  ///< human-readable reason / summary
  util::Outcome outcome = util::Outcome::kComplete;
  int cores = 0;       ///< admitted task's dedicated host cores
  Frac response;       ///< admitted task's proven response bound
};

class AdmissionService {
 public:
  /// Opens (and replays) the journal, reconstructing the admitted state.
  /// Throws hedra::Error on journal corruption or a platform mismatch
  /// between the journal and `config` — refusing to serve is safer than
  /// re-interpreting admitted state on the wrong platform.
  explicit AdmissionService(AdmissionConfig config);

  /// Wait-free read of the current admitted state.
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Runs the admission test for `task` joining the current set under
  /// `deadline`.  See the degradation ladder in the file comment.  When
  /// `trace` is non-null the phases are recorded as spans (snapshot-build,
  /// rta-fixpoint, journal-append+fsync, publish).
  [[nodiscard]] AdmissionReply admit(const model::DagTask& task,
                                     util::Deadline deadline = {},
                                     obs::RequestTrace* trace = nullptr)
      HEDRA_EXCLUDES(writer_mutex_);

  /// Removes a previously admitted task.
  [[nodiscard]] AdmissionReply leave(const std::string& name)
      HEDRA_EXCLUDES(writer_mutex_);

  /// How often each rung of the degradation ladder answered (relaxed
  /// tallies; see the ladder in the file comment).
  struct LadderTallies {
    std::uint64_t admitted = 0;        ///< complete exact proof, admitted
    std::uint64_t rejected_exact = 0;  ///< complete exact proof, rejected
    std::uint64_t rejected_seed = 0;   ///< budget cut, seed-bound proof
    std::uint64_t provisional = 0;     ///< budget cut, no proof
    std::uint64_t errors = 0;          ///< invalid requests / faults
  };
  [[nodiscard]] LadderTallies ladder_tallies() const noexcept;

  /// Journal bytes durably committed so far (0 without a journal).
  [[nodiscard]] std::uint64_t journal_bytes() const noexcept {
    return journal_bytes_.load(std::memory_order_relaxed);
  }

  /// One-line state summary (the STATUS protocol response body): admitted
  /// state, then journal bytes and the degradation-ladder tallies.
  [[nodiscard]] std::string status_line() const;

  [[nodiscard]] const model::Platform& platform() const noexcept {
    return config_.platform;
  }

 private:
  /// The RCU publish: readers holding the previous shared_ptr keep a valid
  /// snapshot; new readers see `next`.  Requiring the writer mutex here
  /// makes "journal before publish, one writer at a time" a compile-time
  /// fact instead of a comment.
  void publish(std::shared_ptr<const Snapshot> next)
      HEDRA_REQUIRES(writer_mutex_) {
    snapshot_.store(std::move(next), std::memory_order_release);
  }

  AdmissionConfig config_;
  /// Serialises mutations; uncontended in the single-worker server.
  util::Mutex writer_mutex_;
  std::optional<Journal> journal_ HEDRA_GUARDED_BY(writer_mutex_);
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  /// Mirror of journal_->bytes_committed(), readable without the writer
  /// mutex so status_line() stays lock-free.
  std::atomic<std::uint64_t> journal_bytes_{0};
  std::atomic<std::uint64_t> tally_admitted_{0};
  std::atomic<std::uint64_t> tally_rejected_exact_{0};
  std::atomic<std::uint64_t> tally_rejected_seed_{0};
  std::atomic<std::uint64_t> tally_provisional_{0};
  std::atomic<std::uint64_t> tally_errors_{0};
};

/// One task serialised as its `task ... endtask` block — the journal's
/// admit-record body and the ADMIT request body, byte-identical to the
/// corresponding lines of TaskSet::to_text().
[[nodiscard]] std::string task_to_text(const model::DagTask& task);

}  // namespace hedra::serve
