#pragma once

/// \file protocol.h
/// The admission daemon's line protocol — plain text over stdin/stdout (or
/// any istream/ostream pair), reusing the taskset text serialisation for
/// DAG bodies so a `.taskset` file can be replayed against a live daemon
/// with nothing but sed.
///
/// Requests (one per line, except ADMIT which carries a body):
///
///     ADMIT <name> period <T> deadline <D>
///     node v1 5
///     node v2 9 offload
///     edge v1 v2
///     endtask
///     LEAVE <name>
///     STATUS
///     METRICS
///     QUIT
///
/// The ADMIT body is exactly the dag_io line format of PR 5's taskset
/// files, terminated by `endtask`.  Responses are single lines:
///
///     ADMITTED <name> cores=<m> response=<frac> <detail>
///     REJECTED <name> <detail>
///     PROVISIONAL <name> <detail>
///     OK <detail>
///     ERROR <detail>
///     SHED <name>
///
/// except METRICS, whose response is the Prometheus text exposition of the
/// obs registry (src/obs/metrics.h), a multi-line block terminated by a
/// literal `# EOF` line — the one scrape-shaped verb in the protocol.
///
/// Hardening: request parsing never trusts the peer.  Body size and line
/// counts are capped, unknown commands and malformed headers turn into
/// kInvalid requests (the worker answers ERROR and the connection lives
/// on), and a request truncated by EOF is an explicit error, not a hang.

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>

#include "graph/dag.h"
#include "obs/trace.h"
#include "serve/admission.h"

namespace hedra::serve {

/// Caps on one ADMIT request body — beyond either, the request is refused
/// before any parsing work is spent on it.
inline constexpr std::size_t kMaxBodyBytes = 4u * 1024 * 1024;
inline constexpr std::size_t kMaxBodyLines = 200'000;

struct Request {
  enum class Kind { kAdmit, kLeave, kStatus, kMetrics, kQuit, kInvalid };
  Kind kind = Kind::kInvalid;
  std::string name;            ///< task name (admit / leave)
  graph::Time period = 0;      ///< admit only
  graph::Time deadline = 0;    ///< admit only
  std::string dag_text;        ///< admit only: dag_io lines, no endtask
  std::string error;           ///< kInvalid: what was wrong
  /// The request's span tree when the server traces (server.h); built by
  /// the reader thread, handed to the worker through the queue (the queue
  /// mutex orders the hand-off), finished and submitted by the worker.
  std::unique_ptr<obs::RequestTrace> trace;
  int queue_wait_span = -1;  ///< open "queue-wait" span for the worker
};

/// Reads the next request (skipping blank and '#' comment lines).  Returns
/// nullopt at clean EOF.  Malformed input yields Kind::kInvalid with the
/// reason in `error` — the stream stays usable for the next line.
[[nodiscard]] std::optional<Request> read_request(std::istream& in);

/// The single-line response for `reply`.
[[nodiscard]] std::string format_reply(const AdmissionReply& reply);

}  // namespace hedra::serve
