#pragma once

/// \file bounded_queue.h
/// Bounded FIFO hand-off between the server's reader and worker threads.
///
/// The admission loop must not buffer unbounded work: a client that writes
/// requests faster than the analysis drains them would otherwise grow the
/// process until the OOM killer answers for us.  The queue therefore has a
/// hard capacity and `try_push` REFUSES instead of blocking — the reader
/// answers an explicit SHED response, which a load balancer can act on,
/// rather than an invisible latency cliff.
///
/// `pop` blocks until an item or close(); close() drains gracefully (pops
/// succeed until the queue is empty, then return nullopt).

#include <deque>
#include <optional>
#include <utility>

#include "util/fault.h"
#include "util/thread_annotations.h"

namespace hedra::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full or closed (the caller sheds the item).
  [[nodiscard]] bool try_push(T item) HEDRA_EXCLUDES(mutex_) {
    HEDRA_FAULT("serve.queue.push");
    {
      util::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next item; nullopt once closed AND drained.
  [[nodiscard]] std::optional<T> pop() HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    while (!closed_ && items_.empty()) ready_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes; blocked pops drain the backlog then end.
  void close() HEDRA_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  util::CondVar ready_;
  std::deque<T> items_ HEDRA_GUARDED_BY(mutex_);
  bool closed_ HEDRA_GUARDED_BY(mutex_) = false;
};

}  // namespace hedra::serve
