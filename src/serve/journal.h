#pragma once

/// \file journal.h
/// Crash-safe append-only record journal — the admission service's write-
/// ahead log.  Every admitted or departing task is journalled BEFORE the
/// in-memory snapshot is swapped, so a restart replays the journal to the
/// exact admitted state the last acknowledged response promised.
///
/// On-disk format: a sequence of CRC-framed records,
///
///     u32 magic "HJL1"  |  u32 payload length  |  u32 CRC-32(payload)
///     payload bytes...
///
/// little-endian fixed-width fields, no alignment padding.  Each append is
/// a single write(2) followed by fsync(2), and the durability contract is
/// all-or-nothing: if any step fails — a short write, an injected fault, a
/// full disk — the file is truncated back to the pre-append length before
/// the error propagates, so the journal on disk never ends in a frame the
/// writer did not fully commit... except after a CRASH mid-write, which is
/// exactly what replay() tolerates: a trailing frame that is incomplete or
/// fails its CRC is treated as a torn tail, the clean prefix is returned,
/// and the next append truncates the torn bytes away.  A bad frame that is
/// NOT at the tail (bytes of further frames follow) is corruption, not a
/// torn write, and replay() throws rather than silently dropping accepted
/// records.
///
/// Fault seams (util/fault.h): `serve.journal.write` before the frame is
/// assembled, `serve.journal.write.mid` between the header and payload
/// writes (arming it with `@N!kill` produces a real torn frame for the
/// crash-recovery test), `serve.journal.sync` before fsync.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hedra::serve {

/// Outcome of replaying a journal file.
struct JournalReplay {
  std::vector<std::string> records;  ///< clean-prefix payloads, append order
  std::uint64_t clean_bytes = 0;     ///< file offset after the last good frame
  bool torn_tail = false;            ///< trailing partial/corrupt frame seen
};

/// Append-side handle.  Not thread-safe; the admission service serialises
/// all writes on its worker thread.
class Journal {
 public:
  /// Opens (creating if absent) the journal at `path`.  If the file ends in
  /// a torn tail from a crashed writer, the tail is truncated away so new
  /// appends extend the clean prefix.  Throws hedra::Error on I/O failure
  /// or non-tail corruption.
  explicit Journal(std::string path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Durably appends one record (write + fsync).  All-or-nothing: on any
  /// failure the file is restored to its previous length and the error is
  /// rethrown.
  void append(std::string_view payload);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t records_written() const noexcept {
    return records_written_;
  }
  /// Committed on-disk length (frames fully written + fsynced), the
  /// `journal_bytes` field of the enriched STATUS line.
  [[nodiscard]] std::uint64_t bytes_committed() const noexcept {
    return size_;
  }

  /// Replays `path` (missing file = empty journal).  Returns the clean
  /// prefix; throws hedra::Error on non-tail corruption or I/O failure.
  [[nodiscard]] static JournalReplay replay(const std::string& path);

 private:
  std::string path_;
  int fd_ = -1;
  std::uint64_t size_ = 0;  ///< committed file length
  std::uint64_t records_written_ = 0;
};

}  // namespace hedra::serve
