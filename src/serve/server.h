#pragma once

/// \file server.h
/// The daemon loop: a reader thread parsing requests off an input stream
/// into a BoundedQueue, and a worker (the calling thread) draining the
/// queue through the AdmissionService and writing one response line per
/// request.
///
/// Overload behaviour: when the queue is full the READER answers
/// `SHED <name>` immediately instead of blocking — bounded memory, and the
/// client learns in O(1) that the request was dropped unprocessed.  Under
/// overload a SHED line can therefore overtake the responses of
/// still-queued earlier requests; every response names its task, so
/// clients correlate by name, not by order.  In the common (non-saturated)
/// case responses come back strictly in request order.
///
/// Every request is executed under the configured per-request deadline.
/// Injected faults (util/fault.h) and analysis errors surface as ERROR
/// responses — the loop survives them; only QUIT or input EOF end it.

#include <cstdint>
#include <iosfwd>

#include "obs/trace.h"
#include "serve/admission.h"

namespace hedra::serve {

struct ServerConfig {
  std::size_t queue_capacity = 64;
  /// Per-request analysis deadline; <= 0 means unlimited.
  double request_deadline_sec = 0.0;
  /// When non-null every request carries a RequestTrace (parse ->
  /// queue-wait -> admission phases), submitted here on completion.  Null
  /// (the default) records nothing — no allocation, no timestamps.
  obs::Tracer* tracer = nullptr;
};

struct ServerStats {
  std::uint64_t requests = 0;   ///< requests executed (incl. errors)
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t provisional = 0;
  std::uint64_t shed = 0;       ///< refused at the queue, never executed
  /// The two distinguishable causes of a SHED reply (shed = their sum):
  /// a genuinely full queue vs an injected serve.queue.push fault losing
  /// the hand-off.
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_fault = 0;
  std::uint64_t errors = 0;
};

/// Runs the loop until EOF or QUIT; returns the tally.
ServerStats run_server(std::istream& in, std::ostream& out,
                       AdmissionService& service,
                       const ServerConfig& config = {});

}  // namespace hedra::serve
