#include "serve/server.h"

#include <atomic>
#include <ostream>
#include <sstream>
#include <thread>

#include "graph/dag_io.h"
#include "obs/metrics.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"
#include "util/deadline.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/thread_annotations.h"

namespace hedra::serve {

namespace {

const char* verb_name(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kAdmit:
      return "ADMIT";
    case Request::Kind::kLeave:
      return "LEAVE";
    case Request::Kind::kStatus:
      return "STATUS";
    case Request::Kind::kMetrics:
      return "METRICS";
    case Request::Kind::kQuit:
      return "QUIT";
    case Request::Kind::kInvalid:
      return "INVALID";
  }
  return "INVALID";
}

/// Executes one parsed request against the service.  Never throws: every
/// failure — parse residue, analysis faults, journal errors — becomes an
/// ERROR reply, because a service survives bad requests and bad luck; only
/// the transport ending stops it.
AdmissionReply execute(AdmissionService& service, const Request& request,
                       const ServerConfig& config,
                       obs::RequestTrace* trace) {
  AdmissionReply reply;
  try {
    switch (request.kind) {
      case Request::Kind::kInvalid:
        reply.decision = Decision::kError;
        reply.detail = request.error;
        return reply;
      case Request::Kind::kStatus:
      case Request::Kind::kMetrics:  // handled by the worker loop
        reply.decision = Decision::kOk;
        reply.detail = service.status_line();
        return reply;
      case Request::Kind::kLeave:
        return service.leave(request.name);
      case Request::Kind::kAdmit: {
        model::DagTask task(graph::read_dag_text(request.dag_text),
                            request.period, request.deadline, request.name);
        const util::Deadline deadline =
            config.request_deadline_sec > 0.0
                ? util::Deadline::after_seconds(config.request_deadline_sec)
                : util::Deadline::never();
        return service.admit(task, deadline, trace);
      }
      case Request::Kind::kQuit:
        reply.decision = Decision::kOk;
        reply.detail = "bye";
        return reply;
    }
  } catch (const Error& e) {
    reply.decision = Decision::kError;
    reply.task = request.name;
    reply.detail = e.what();
    return reply;
  } catch (const std::exception& e) {
    reply.decision = Decision::kError;
    reply.task = request.name;
    reply.detail = std::string("internal error: ") + e.what();
    return reply;
  }
  reply.decision = Decision::kError;
  reply.detail = "unhandled request kind";
  return reply;
}

/// Trace ids are process-global, not per-run_server: one Tracer often
/// outlives several server loops (the smoke harness runs one per task
/// set), and chrome://tracing keys rows on the id — a restart must not
/// fold two requests onto one row.
std::atomic<std::uint64_t> g_request_seq{0};

/// The reply stream, shared by the reader thread (SHED lines) and the
/// worker (replies).  Interleaved writes would corrupt the line protocol,
/// so the stream itself is the guarded datum.
struct SharedOut {
  explicit SharedOut(std::ostream& os) : out(os) {}
  util::Mutex mutex;
  std::ostream& out HEDRA_GUARDED_BY(mutex);
};

}  // namespace

ServerStats run_server(std::istream& in, std::ostream& out,
                       AdmissionService& service, const ServerConfig& config) {
  ServerStats stats;
  BoundedQueue<Request> queue(config.queue_capacity);
  SharedOut shared_out(out);
  std::atomic<std::uint64_t> shed_queue_full{0};
  std::atomic<std::uint64_t> shed_fault{0};

  // Reader: parse + enqueue; shed when the worker is saturated.  Parsing
  // (including an injected serve.request.parse fault) must not kill the
  // reader, so failures become kInvalid requests answered in order.
  std::thread reader([&] {
    for (;;) {
      const std::int64_t parse_start =
          config.tracer != nullptr ? util::monotonic_now_ns() : 0;
      std::optional<Request> request;
      try {
        request = read_request(in);
      } catch (const std::exception& e) {
        Request invalid;
        invalid.kind = Request::Kind::kInvalid;
        invalid.error = e.what();
        request = std::move(invalid);
      }
      if (!request.has_value()) break;  // EOF
      if (config.tracer != nullptr) {
        // Tracing is best-effort: an injected allocation fault here drops
        // the trace, never the request.
        try {
          HEDRA_FAULT("serve.trace.alloc");
          request->trace = std::make_unique<obs::RequestTrace>(
              g_request_seq.fetch_add(1, std::memory_order_relaxed) + 1);
          request->trace->begin_at("request", parse_start);
          request->trace->end(request->trace->begin_at("parse", parse_start));
          request->trace->note("verb", verb_name(request->kind));
          request->queue_wait_span = request->trace->begin("queue-wait");
        } catch (const std::exception&) {
          request->trace.reset();
        }
      }
      const bool quit = request->kind == Request::Kind::kQuit;
      const std::string name = request->name;
      bool pushed = false;
      bool push_faulted = false;
      try {
        pushed = queue.try_push(std::move(*request));
      } catch (const std::exception&) {
        // A fault at the queue boundary (serve.queue.push) loses the
        // hand-off; the request was never executed, so SHED is the honest
        // answer — and the reader thread must survive.  Distinguished from
        // a genuinely full queue in the stats and STATUS.
        pushed = false;
        push_faulted = true;
      }
      if (!pushed) {
        if (push_faulted) {
          shed_fault.fetch_add(1, std::memory_order_relaxed);
          HEDRA_METRIC("serve.shed.fault");
        } else {
          shed_queue_full.fetch_add(1, std::memory_order_relaxed);
          HEDRA_METRIC("serve.shed.queue_full");
        }
        util::MutexLock lock(shared_out.mutex);
        shared_out.out << "SHED" << (name.empty() ? "" : " " + name) << "\n"
                       << std::flush;
      }
      if (quit) break;
    }
    queue.close();
  });

  // Worker: drain, execute, respond.
  for (;;) {
    std::optional<Request> request = queue.pop();
    if (!request.has_value()) break;  // closed and drained
    std::unique_ptr<obs::RequestTrace> trace = std::move(request->trace);
    if (trace != nullptr && request->queue_wait_span >= 0) {
      trace->end(request->queue_wait_span);
    }
    HEDRA_METRIC("serve.requests");
    HEDRA_METRIC_SET("serve.queue.depth",
                     static_cast<std::int64_t>(queue.size()));

    if (request->kind == Request::Kind::kMetrics) {
      // The scrape verb: the whole registry in Prometheus text format,
      // terminated by a literal `# EOF` line (see protocol.h).
      ++stats.requests;
      const std::string text = obs::prometheus_text();
      {
        util::MutexLock lock(shared_out.mutex);
        shared_out.out << text << "# EOF\n" << std::flush;
      }
      if (trace != nullptr) config.tracer->submit(std::move(trace));
      continue;
    }

    AdmissionReply reply = execute(service, *request, config, trace.get());
    if (request->kind == Request::Kind::kStatus &&
        reply.decision == Decision::kOk) {
      // Server-side half of the enriched STATUS: the queue and shed
      // tallies live in this loop, not in the service.
      std::ostringstream extra;
      extra << " queue=" << queue.size() << " shed_full="
            << shed_queue_full.load(std::memory_order_relaxed)
            << " shed_fault=" << shed_fault.load(std::memory_order_relaxed);
      reply.detail += extra.str();
    }
    ++stats.requests;
    switch (reply.decision) {
      case Decision::kAdmitted:
        ++stats.admitted;
        break;
      case Decision::kRejected:
        ++stats.rejected;
        break;
      case Decision::kProvisional:
        ++stats.provisional;
        break;
      case Decision::kError:
        ++stats.errors;
        HEDRA_METRIC("serve.errors");
        break;
      case Decision::kOk:
        break;
    }
    {
      util::MutexLock lock(shared_out.mutex);
      shared_out.out << format_reply(reply) << "\n" << std::flush;
    }
    if (trace != nullptr) {
      trace->note("decision", to_string(reply.decision));
      if (!request->name.empty()) trace->note("task", request->name);
      trace->end_all();
      if (!trace->spans().empty()) {
        const obs::Span& root = trace->spans().front();
        HEDRA_METRIC_OBSERVE("serve.request.latency_ns",
                             root.end_ns - root.start_ns);
      }
      config.tracer->submit(std::move(trace));
    }
    if (request->kind == Request::Kind::kQuit) break;
  }
  queue.close();  // in case QUIT ended the worker before the reader
  reader.join();
  stats.shed_queue_full = shed_queue_full.load(std::memory_order_relaxed);
  stats.shed_fault = shed_fault.load(std::memory_order_relaxed);
  stats.shed = stats.shed_queue_full + stats.shed_fault;
  return stats;
}

}  // namespace hedra::serve
