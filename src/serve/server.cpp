#include "serve/server.h"

#include <atomic>
#include <ostream>
#include <thread>

#include "graph/dag_io.h"
#include "serve/bounded_queue.h"
#include "serve/protocol.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/thread_annotations.h"

namespace hedra::serve {

namespace {

/// Executes one parsed request against the service.  Never throws: every
/// failure — parse residue, analysis faults, journal errors — becomes an
/// ERROR reply, because a service survives bad requests and bad luck; only
/// the transport ending stops it.
AdmissionReply execute(AdmissionService& service, const Request& request,
                       const ServerConfig& config) {
  AdmissionReply reply;
  try {
    switch (request.kind) {
      case Request::Kind::kInvalid:
        reply.decision = Decision::kError;
        reply.detail = request.error;
        return reply;
      case Request::Kind::kStatus:
        reply.decision = Decision::kOk;
        reply.detail = service.status_line();
        return reply;
      case Request::Kind::kLeave:
        return service.leave(request.name);
      case Request::Kind::kAdmit: {
        model::DagTask task(graph::read_dag_text(request.dag_text),
                            request.period, request.deadline, request.name);
        const util::Deadline deadline =
            config.request_deadline_sec > 0.0
                ? util::Deadline::after_seconds(config.request_deadline_sec)
                : util::Deadline::never();
        return service.admit(task, deadline);
      }
      case Request::Kind::kQuit:
        reply.decision = Decision::kOk;
        reply.detail = "bye";
        return reply;
    }
  } catch (const Error& e) {
    reply.decision = Decision::kError;
    reply.task = request.name;
    reply.detail = e.what();
    return reply;
  } catch (const std::exception& e) {
    reply.decision = Decision::kError;
    reply.task = request.name;
    reply.detail = std::string("internal error: ") + e.what();
    return reply;
  }
  reply.decision = Decision::kError;
  reply.detail = "unhandled request kind";
  return reply;
}

/// The reply stream, shared by the reader thread (SHED lines) and the
/// worker (replies).  Interleaved writes would corrupt the line protocol,
/// so the stream itself is the guarded datum.
struct SharedOut {
  explicit SharedOut(std::ostream& os) : out(os) {}
  util::Mutex mutex;
  std::ostream& out HEDRA_GUARDED_BY(mutex);
};

}  // namespace

ServerStats run_server(std::istream& in, std::ostream& out,
                       AdmissionService& service, const ServerConfig& config) {
  ServerStats stats;
  BoundedQueue<Request> queue(config.queue_capacity);
  SharedOut shared_out(out);
  std::atomic<std::uint64_t> shed{0};

  // Reader: parse + enqueue; shed when the worker is saturated.  Parsing
  // (including an injected serve.request.parse fault) must not kill the
  // reader, so failures become kInvalid requests answered in order.
  std::thread reader([&] {
    for (;;) {
      std::optional<Request> request;
      try {
        request = read_request(in);
      } catch (const std::exception& e) {
        Request invalid;
        invalid.kind = Request::Kind::kInvalid;
        invalid.error = e.what();
        request = std::move(invalid);
      }
      if (!request.has_value()) break;  // EOF
      const bool quit = request->kind == Request::Kind::kQuit;
      const std::string name = request->name;
      bool pushed = false;
      try {
        pushed = queue.try_push(std::move(*request));
      } catch (const std::exception&) {
        // A fault at the queue boundary (serve.queue.push) loses the
        // hand-off; the request was never executed, so SHED is the honest
        // answer — and the reader thread must survive.
        pushed = false;
      }
      if (!pushed) {
        shed.fetch_add(1, std::memory_order_relaxed);
        util::MutexLock lock(shared_out.mutex);
        shared_out.out << "SHED" << (name.empty() ? "" : " " + name) << "\n"
                       << std::flush;
      }
      if (quit) break;
    }
    queue.close();
  });

  // Worker: drain, execute, respond.
  for (;;) {
    std::optional<Request> request = queue.pop();
    if (!request.has_value()) break;  // closed and drained
    const AdmissionReply reply = execute(service, *request, config);
    ++stats.requests;
    switch (reply.decision) {
      case Decision::kAdmitted:
        ++stats.admitted;
        break;
      case Decision::kRejected:
        ++stats.rejected;
        break;
      case Decision::kProvisional:
        ++stats.provisional;
        break;
      case Decision::kError:
        ++stats.errors;
        break;
      case Decision::kOk:
        break;
    }
    {
      util::MutexLock lock(shared_out.mutex);
      shared_out.out << format_reply(reply) << "\n" << std::flush;
    }
    if (request->kind == Request::Kind::kQuit) break;
  }
  queue.close();  // in case QUIT ended the worker before the reader
  reader.join();
  stats.shed = shed.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace hedra::serve
