#include "serve/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"
#include "util/error.h"
#include "util/fault.h"

namespace hedra::serve {

namespace {

constexpr std::uint32_t kMagic = 0x314C4A48u;  // "HJL1" little-endian
constexpr std::size_t kHeaderSize = 12;        // magic + length + crc
/// Payloads beyond this are a corrupt length field, not a record — the cap
/// keeps replay from allocating gigabytes off four garbage bytes.
constexpr std::uint32_t kMaxPayload = 64u * 1024 * 1024;

void put_u32(unsigned char* out, std::uint32_t value) {
  out[0] = static_cast<unsigned char>(value & 0xFF);
  out[1] = static_cast<unsigned char>((value >> 8) & 0xFF);
  out[2] = static_cast<unsigned char>((value >> 16) & 0xFF);
  out[3] = static_cast<unsigned char>((value >> 24) & 0xFF);
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

/// write(2) until done; throws on error (EINTR retried).
void write_all(int fd, const void* data, std::size_t size,
               const std::string& path) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, bytes, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("journal write failed: " + path + ": " +
                  std::strerror(errno));
    }
    bytes += n;
    size -= static_cast<std::size_t>(n);
  }
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  // Replay first: it validates the clean prefix and measures where any torn
  // tail begins, so the open below can truncate the tail away and every
  // future append extends committed state only.
  const JournalReplay replay = Journal::replay(path_);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd_ < 0) {
    throw Error("cannot open journal: " + path_ + ": " + std::strerror(errno));
  }
  size_ = replay.clean_bytes;
  if (replay.torn_tail) {
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw Error("cannot truncate torn journal tail: " + path_ + ": " +
                  std::strerror(err));
    }
  }
  if (::lseek(fd_, static_cast<off_t>(size_), SEEK_SET) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot seek journal: " + path_ + ": " + std::strerror(err));
  }
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

void Journal::append(std::string_view payload) {
  HEDRA_FAULT("serve.journal.write");
  if (payload.size() > kMaxPayload) {
    throw Error("journal record exceeds the " +
                std::to_string(kMaxPayload) + "-byte payload cap");
  }
  unsigned char header[kHeaderSize];
  put_u32(header, kMagic);
  put_u32(header + 4, static_cast<std::uint32_t>(payload.size()));
  put_u32(header + 8, util::crc32(payload));

  const std::uint64_t rollback = size_;
  try {
    write_all(fd_, header, kHeaderSize, path_);
    // The seam between the two writes of one frame: a kill here leaves a
    // header with no payload on disk — the torn tail replay() tolerates.
    HEDRA_FAULT("serve.journal.write.mid");
    write_all(fd_, payload.data(), payload.size(), path_);
    HEDRA_FAULT("serve.journal.sync");
    if (::fsync(fd_) != 0) {
      throw Error("journal fsync failed: " + path_ + ": " +
                  std::strerror(errno));
    }
  } catch (...) {
    // All-or-nothing: put the file back exactly as it was.  If even the
    // rollback fails the file still replays correctly (torn tail), but the
    // original error is the one worth propagating.
    if (::ftruncate(fd_, static_cast<off_t>(rollback)) == 0) {
      ::lseek(fd_, static_cast<off_t>(rollback), SEEK_SET);
    }
    throw;
  }
  size_ += kHeaderSize + payload.size();
  ++records_written_;
}

JournalReplay Journal::replay(const std::string& path) {
  JournalReplay out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return out;  // no journal yet: empty state
    throw Error("cannot open journal: " + path + ": " + std::strerror(errno));
  }
  std::string data;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      throw Error("journal read failed: " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    data.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t offset = 0;
  const auto corrupt = [&](const std::string& why) -> void {
    throw Error("journal corrupt at offset " + std::to_string(offset) + ": " +
                why + " (" + path + ")");
  };
  while (offset < data.size()) {
    const std::size_t remaining = data.size() - offset;
    // A crashed append only ever leaves a TRUNCATED frame at the tail (the
    // file grows monotonically and header precedes payload), so missing
    // bytes are a tolerated torn tail, while in-place garbage — bad magic,
    // an absurd length, a CRC mismatch over a complete payload — is real
    // corruption and fatal: silently dropping acknowledged records would
    // un-admit tasks the service already promised.
    if (remaining < kHeaderSize) {
      out.torn_tail = true;
      break;
    }
    if (get_u32(bytes + offset) != kMagic) corrupt("bad frame magic");
    const std::uint32_t length = get_u32(bytes + offset + 4);
    if (length > kMaxPayload) {
      corrupt("frame length " + std::to_string(length) + " exceeds cap");
    }
    if (remaining < kHeaderSize + length) {
      out.torn_tail = true;
      break;
    }
    const std::uint32_t expected = get_u32(bytes + offset + 8);
    const std::string_view payload(data.data() + offset + kHeaderSize, length);
    if (util::crc32(payload) != expected) corrupt("frame CRC mismatch");
    out.records.emplace_back(payload);
    offset += kHeaderSize + length;
    out.clean_bytes = offset;
  }
  return out;
}

}  // namespace hedra::serve
