#include "serve/protocol.h"

#include <istream>
#include <sstream>

#include "util/fault.h"
#include "util/strings.h"

namespace hedra::serve {

namespace {

/// Parses "ADMIT <name> period <T> deadline <D>" plus the body lines up to
/// `endtask`.  Mirrors the taskset parser's header handling (exact keyword
/// match, trailing-token detection) so both input paths reject the same
/// malformed shapes.
Request read_admit(const std::string& header_line, std::istream& in) {
  Request request;
  request.kind = Request::Kind::kAdmit;
  std::istringstream header(header_line);
  std::string keyword, name, period_kw, deadline_kw, trailing;
  graph::Time period = 0;
  graph::Time deadline = 0;
  header >> keyword >> name >> period_kw >> period >> deadline_kw >> deadline;
  if (header.fail() || period_kw != "period" || deadline_kw != "deadline" ||
      (header >> trailing)) {
    request.kind = Request::Kind::kInvalid;
    request.error = "expected 'ADMIT <name> period <T> deadline <D>', got '" +
                    header_line + "'";
    // Drain the body anyway: the malformed header must not leave its
    // `node`/`edge` lines behind to be misread as commands.
  }
  request.name = name;
  request.period = period;
  request.deadline = deadline;

  std::string line;
  std::size_t bytes = 0;
  std::size_t lines = 0;
  bool closed = false;
  while (std::getline(in, line)) {
    if (trim(line) == "endtask") {
      closed = true;
      break;
    }
    bytes += line.size() + 1;
    ++lines;
    if (bytes > kMaxBodyBytes || lines > kMaxBodyLines) {
      request.kind = Request::Kind::kInvalid;
      request.error = "ADMIT body exceeds the " +
                      std::to_string(kMaxBodyBytes) + "-byte / " +
                      std::to_string(kMaxBodyLines) + "-line cap";
      request.dag_text.clear();
      // Keep draining to endtask (or EOF) so the protocol resynchronises,
      // but stop accumulating.
      continue;
    }
    if (request.kind == Request::Kind::kAdmit) {
      request.dag_text += line;
      request.dag_text += '\n';
    }
  }
  if (!closed && request.kind == Request::Kind::kAdmit) {
    request.kind = Request::Kind::kInvalid;
    request.error = "ADMIT '" + name + "' truncated: no endtask before EOF";
  }
  return request;
}

}  // namespace

std::optional<Request> read_request(std::istream& in) {
  std::string line;
  while (std::getline(in, line)) {
    HEDRA_FAULT("serve.request.parse");
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::string_view command =
        trimmed.substr(0, trimmed.find_first_of(" \t"));

    if (command == "ADMIT") return read_admit(std::string(trimmed), in);
    if (command == "LEAVE") {
      Request request;
      const std::string_view rest = trim(trimmed.substr(command.size()));
      if (rest.empty() || rest.find_first_of(" \t") != std::string_view::npos) {
        request.kind = Request::Kind::kInvalid;
        request.error = "expected 'LEAVE <name>', got '" + line + "'";
        return request;
      }
      request.kind = Request::Kind::kLeave;
      request.name = std::string(rest);
      return request;
    }
    if (trimmed == "STATUS") {
      Request request;
      request.kind = Request::Kind::kStatus;
      return request;
    }
    if (trimmed == "METRICS") {
      Request request;
      request.kind = Request::Kind::kMetrics;
      return request;
    }
    if (trimmed == "QUIT") {
      Request request;
      request.kind = Request::Kind::kQuit;
      return request;
    }
    Request request;
    request.kind = Request::Kind::kInvalid;
    request.error = "unknown command '" + std::string(command) + "'";
    return request;
  }
  return std::nullopt;  // clean EOF
}

std::string format_reply(const AdmissionReply& reply) {
  std::ostringstream os;
  os << to_string(reply.decision);
  if (!reply.task.empty()) os << " " << reply.task;
  if (reply.decision == Decision::kAdmitted) {
    os << " cores=" << reply.cores << " response=" << reply.response;
  }
  if (!reply.detail.empty()) os << " " << reply.detail;
  return os.str();
}

}  // namespace hedra::serve
