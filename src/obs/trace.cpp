#include "obs/trace.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/deadline.h"
#include "util/error.h"

namespace hedra::obs {

namespace {

void json_escape_into(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
}

/// Nanoseconds as fixed-point microseconds ("12.345"): chrome://tracing
/// wants microsecond timestamps, and sub-us resolution matters for the
/// short spans — integer formatting keeps src/obs float-free.
void us_fixed_into(std::ostringstream& out, std::int64_t ns) {
  if (ns < 0) ns = 0;
  out << ns / 1000 << '.';
  const auto frac = static_cast<int>(ns % 1000);
  out << static_cast<char>('0' + frac / 100)
      << static_cast<char>('0' + (frac / 10) % 10)
      << static_cast<char>('0' + frac % 10);
}

}  // namespace

int RequestTrace::begin(const std::string& name) {
  return begin_at(name, util::monotonic_now_ns());
}

int RequestTrace::begin_at(const std::string& name, std::int64_t start_ns) {
  Span span;
  span.name = name;
  span.start_ns = start_ns;
  span.parent = open_.empty() ? -1 : open_.back();
  const int index = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_.push_back(index);
  return index;
}

void RequestTrace::end(int index) { end_at(index, util::monotonic_now_ns()); }

void RequestTrace::end_at(int index, std::int64_t end_ns) {
  HEDRA_REQUIRE(index >= 0 && index < static_cast<int>(spans_.size()),
                "span index out of range");
  // Close innermost-first until (and including) the requested span; spans
  // opened after it are implicitly over once their ancestor is.
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    if (spans_[static_cast<std::size_t>(top)].end_ns == 0) {
      spans_[static_cast<std::size_t>(top)].end_ns = end_ns;
    }
    if (top == index) return;
  }
}

void RequestTrace::end_all() {
  const std::int64_t now = util::monotonic_now_ns();
  while (!open_.empty()) {
    const int top = open_.back();
    open_.pop_back();
    if (spans_[static_cast<std::size_t>(top)].end_ns == 0) {
      spans_[static_cast<std::size_t>(top)].end_ns = now;
    }
  }
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void Tracer::submit(std::unique_ptr<RequestTrace> trace) {
  if (!trace) return;
  trace->end_all();
  std::shared_ptr<const RequestTrace> shared = std::move(trace);
  util::MutexLock lock(mutex_);
  ++submitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(shared));
    return;
  }
  ring_[next_] = std::move(shared);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<std::shared_ptr<const RequestTrace>> Tracer::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<std::shared_ptr<const RequestTrace>> out;
  out.reserve(ring_.size());
  // Oldest first: the ring head is `next_` once it has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t Tracer::submitted() const {
  util::MutexLock lock(mutex_);
  return submitted_;
}

std::uint64_t Tracer::dropped() const {
  util::MutexLock lock(mutex_);
  return dropped_;
}

std::string Tracer::chrome_trace_json() const {
  const auto traces = snapshot();
  // Rebase every timestamp to the earliest span so the viewer opens at 0.
  std::int64_t epoch = std::numeric_limits<std::int64_t>::max();
  for (const auto& trace : traces) {
    for (const Span& span : trace->spans()) {
      epoch = std::min(epoch, span.start_ns);
    }
  }
  if (epoch == std::numeric_limits<std::int64_t>::max()) epoch = 0;

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const char* sep = "";
  for (const auto& trace : traces) {
    for (std::size_t i = 0; i < trace->spans().size(); ++i) {
      const Span& span = trace->spans()[i];
      out << sep << "{\"name\":\"";
      json_escape_into(out, span.name);
      out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << trace->id()
          << ",\"ts\":";
      us_fixed_into(out, span.start_ns - epoch);
      out << ",\"dur\":";
      us_fixed_into(out, span.end_ns - span.start_ns);
      out << ",\"args\":{\"parent\":" << span.parent;
      if (span.parent < 0) {
        for (const auto& [key, value] : trace->notes()) {
          out << ",\"";
          json_escape_into(out, key);
          out << "\":\"";
          json_escape_into(out, value);
          out << "\"";
        }
      }
      out << "}}";
      sep = ",";
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace hedra::obs
