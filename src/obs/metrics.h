#pragma once

/// \file metrics.h
/// Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
/// latency histograms.
///
/// The admission daemon must be observable at production traffic rates, so
/// recording follows the HEDRA_FAULT discipline exactly (see util/fault.h):
///
///     HEDRA_METRIC("serve.requests");
///
/// compiles to a single relaxed atomic load when metrics are disabled (the
/// default: no registry lookup, no lock, no allocation), and when enabled
/// pays one relaxed atomic add — the registry lookup happens once per call
/// site, cached in a function-local static reference.  The registration
/// path (first hit of a site, exposition, reset) takes an annotated
/// util::Mutex; the record path never does.
///
/// Hard rules, enforced by `scripts/hedra_lint.py`:
///
///   - recording never consumes RNG streams and never reads a clock
///     directly — durations are measured by callers with
///     util::monotonic_now_ns() (rule `obs-clock`);
///   - outside src/obs/ all recording goes through the HEDRA_METRIC*
///     macros, never direct registry calls (rule `obs-metric-site`), so
///     every site keeps the zero-overhead-when-disabled contract;
///   - registered metric objects are NEVER deallocated: the macro caches
///     a reference forever, so reset_values() zeroes values but keeps
///     every object alive (addresses are stable for the process lifetime).
///
/// Exposition: prometheus_text() renders the classic text format
/// (`hedra_` prefix, dots mangled to underscores); metrics_json() emits
/// the stable `hedra-metrics-v1` document that scripts/validate_metrics.py
/// checks in CI.  Both enumerate the ordered registry, so output order is
/// deterministic.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace hedra::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True while recording is switched on.  One relaxed load; the hot-path
/// check every HEDRA_METRIC* macro starts with.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Switches recording on/off.  Values persist across off/on transitions;
/// use reset_values() for a clean slate.
void set_enabled(bool on) noexcept;

/// Monotonically increasing event count.  All mutation is relaxed-atomic:
/// concurrent add() calls lose nothing (exactness is TSan-tested).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time signed level (queue depth, snapshot version, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket latency histogram.  Every histogram shares one power-of-4
/// boundary ladder in nanoseconds (1.024us ... ~4.6min), so exposition
/// needs no per-histogram schema and observe() is a shift-free loop over
/// 15 compile-time boundaries plus two relaxed adds.  Negative samples
/// clamp to zero (a clock can't run backwards, but a subtraction can).
class Histogram {
 public:
  static constexpr int kNumBoundaries = 15;
  static constexpr int kNumBuckets = kNumBoundaries + 1;  // + overflow

  /// Upper bound (inclusive) of bucket `i` in ns: 1024 * 4^i.
  [[nodiscard]] static constexpr std::int64_t boundary_ns(int i) noexcept {
    return std::int64_t{1024} << (2 * i);
  }

  void observe(std::int64_t sample_ns) noexcept {
    if (sample_ns < 0) sample_ns = 0;
    int bucket = kNumBuckets - 1;
    for (int i = 0; i < kNumBoundaries; ++i) {
      if (sample_ns <= boundary_ns(i)) {
        bucket = i;
        break;
      }
    }
    buckets_[static_cast<std::size_t>(bucket)].fetch_add(
        1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::uint64_t>(sample_ns),
                      std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket_count(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_ns() const noexcept {
    return sum_ns_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Registration/lookup: returns the named metric, creating it on first
/// use.  Idempotent — the same name always returns the same object (its
/// address is stable for the process lifetime).  Throws hedra::Error if
/// the name is already registered as a different metric kind.  Takes the
/// registry mutex; call sites cache the reference (HEDRA_METRIC* does).
[[nodiscard]] Counter& counter(const std::string& name);
[[nodiscard]] Gauge& gauge(const std::string& name);
[[nodiscard]] Histogram& histogram(const std::string& name);

/// Zeroes every registered value.  Objects are never deallocated — cached
/// references stay valid — so this is the only reset tests need.
void reset_values();

/// Every registered metric name, sorted (the registry map is ordered).
[[nodiscard]] std::vector<std::string> registered_metrics();

/// Prometheus text exposition of the whole registry: `hedra_` prefix,
/// dots mangled to underscores, `# TYPE` comment per family, histogram
/// `_bucket{le=...}/_sum/_count` series.  Deterministic order.
[[nodiscard]] std::string prometheus_text();

/// Stable JSON dump, schema `hedra-metrics-v1`:
///   {"schema":"hedra-metrics-v1","enabled":...,"counters":{...},
///    "gauges":{...},"histograms":{name:{"boundaries_ns":[...],
///    "buckets":[...],"sum_ns":...,"count":...}}}
[[nodiscard]] std::string metrics_json();

}  // namespace hedra::obs

/// Increment the named counter by one.  Zero overhead when metrics are
/// disabled (one relaxed load, statically predicted not-taken); one cached
/// registry lookup per call site when enabled.
#define HEDRA_METRIC(site)                                 \
  do {                                                     \
    if (::hedra::obs::enabled()) [[unlikely]] {            \
      static ::hedra::obs::Counter& hedra_obs_metric_ref = \
          ::hedra::obs::counter(site);                     \
      hedra_obs_metric_ref.add(1);                         \
    }                                                      \
  } while (false)

/// Increment the named counter by `n` (use to flush locally-accumulated
/// telemetry at the end of a hot loop, never inside it).
#define HEDRA_METRIC_ADD(site, n)                          \
  do {                                                     \
    if (::hedra::obs::enabled()) [[unlikely]] {            \
      static ::hedra::obs::Counter& hedra_obs_metric_ref = \
          ::hedra::obs::counter(site);                     \
      hedra_obs_metric_ref.add((n));                       \
    }                                                      \
  } while (false)

/// Set the named gauge to `v`.
#define HEDRA_METRIC_SET(site, v)                         \
  do {                                                    \
    if (::hedra::obs::enabled()) [[unlikely]] {           \
      static ::hedra::obs::Gauge& hedra_obs_metric_ref =  \
          ::hedra::obs::gauge(site);                      \
      hedra_obs_metric_ref.set((v));                      \
    }                                                     \
  } while (false)

/// Record one latency sample (nanoseconds) into the named histogram.
#define HEDRA_METRIC_OBSERVE(site, sample_ns)                \
  do {                                                       \
    if (::hedra::obs::enabled()) [[unlikely]] {              \
      static ::hedra::obs::Histogram& hedra_obs_metric_ref = \
          ::hedra::obs::histogram(site);                     \
      hedra_obs_metric_ref.observe((sample_ns));             \
    }                                                        \
  } while (false)
