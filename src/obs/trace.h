#pragma once

/// \file trace.h
/// Per-request tracing for the serve layer.
///
/// Every admission request can carry a RequestTrace: a flat span tree
/// (parse -> queue-wait -> snapshot-build -> rta-fixpoint ->
/// journal-append+fsync -> publish) stamped with util::monotonic_now_ns().
/// A trace is owned by exactly one thread at a time — the reader thread
/// builds the early spans, the queue hand-off (mutex-synchronised)
/// publishes them to the worker, which finishes the tree and submits it to
/// a Tracer ring buffer.  RequestTrace itself therefore takes NO locks;
/// only Tracer::submit()/snapshot() touch the annotated util::Mutex, off
/// the analysis hot paths.
///
/// Export is chrome://tracing JSON ("traceEvents" with complete "X"
/// events): one row (tid) per request, microsecond timestamps rebased to
/// the earliest span so the viewer opens at t=0.  The span-sum invariant —
/// child durations nest inside and sum to at most the root request span —
/// is checked by scripts/validate_metrics.py on every CI smoke run.
///
/// Same determinism rules as the metrics registry: no RNG, no wall clock,
/// no clock type outside util::monotonic_now_ns() (lint rule `obs-clock`).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace hedra::obs {

/// One closed-or-open interval in a request's timeline.
struct Span {
  std::string name;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;  ///< 0 while still open
  int parent = -1;          ///< index into RequestTrace::spans(); -1 = root
};

/// The span tree of one request.  Thread-compatible, lock-free: ownership
/// moves between threads only through already-synchronised hand-offs (the
/// bounded queue), never concurrently.
class RequestTrace {
 public:
  explicit RequestTrace(std::uint64_t request_id) : id_(request_id) {}

  /// Opens a span (start stamped now); its parent is the innermost span
  /// still open.  Returns the span's index for the matching end().
  int begin(const std::string& name);

  /// begin() with an explicit start stamp — for work that began before the
  /// trace object existed (the reader stamps parse-start, then allocates).
  int begin_at(const std::string& name, std::int64_t start_ns);

  /// Closes the span at `index` (end stamped now).  Spans close innermost
  /// first; out-of-order ends close every span opened after `index` too
  /// (crash-safe: an exception path can end the root and lose nothing).
  void end(int index);

  /// end() with an explicit end stamp.
  void end_at(int index, std::int64_t end_ns);

  /// Closes every span still open (end stamped now).
  void end_all();

  /// Attaches a key/value annotation, exported as args of the root event
  /// (e.g. verb, decision, task name).
  void note(const std::string& key, const std::string& value) {
    notes_[key] = value;
  }

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::map<std::string, std::string>& notes()
      const noexcept {
    return notes_;
  }

 private:
  std::uint64_t id_;
  std::vector<Span> spans_;
  std::vector<int> open_;  ///< indices of open spans, innermost last
  std::map<std::string, std::string> notes_;
};

/// Bounded ring of completed request traces.  submit() overwrites the
/// oldest entry once `capacity` traces are held, so a long-running daemon
/// keeps the most recent window at fixed memory.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 1024;

  /// Takes ownership of a finished trace (open spans are closed first).
  void submit(std::unique_ptr<RequestTrace> trace);

  /// Completed traces, oldest first.
  [[nodiscard]] std::vector<std::shared_ptr<const RequestTrace>> snapshot()
      const;

  /// Traces ever submitted / evicted by the ring.
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// chrome://tracing JSON of the current ring contents (see file header).
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::vector<std::shared_ptr<const RequestTrace>> ring_
      HEDRA_GUARDED_BY(mutex_);
  std::size_t next_ HEDRA_GUARDED_BY(mutex_) = 0;
  std::uint64_t submitted_ HEDRA_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ HEDRA_GUARDED_BY(mutex_) = 0;
};

}  // namespace hedra::obs
