#include "obs/metrics.h"

#include <map>
#include <sstream>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace hedra::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// One registered metric.  The pointees are allocated once and never
/// freed: HEDRA_METRIC* call sites cache references forever, so stable
/// addresses are part of the registry contract (mirrors the leaked fault
/// registry in util/fault.cpp).
struct Entry {
  Kind kind;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

struct Registry {
  util::Mutex mutex;
  // Ordered map: exposition enumerates deterministically.
  std::map<std::string, Entry> entries HEDRA_GUARDED_BY(mutex);
};

Registry& registry() {
  // Leaked: metric references handed out by counter()/gauge()/histogram()
  // may be used from static destructors of client code.
  static Registry* r = new Registry;
  return *r;
}

Entry& find_or_create(const std::string& name, Kind kind) {
  HEDRA_REQUIRE(!name.empty(), "metric name must be non-empty");
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  auto it = reg.entries.find(name);
  if (it != reg.entries.end()) {
    if (it->second.kind != kind) {
      lock.unlock();
      throw Error("metric '" + name + "' already registered as " +
                  kind_name(it->second.kind) + ", requested " +
                  kind_name(kind));
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = new Counter;
      break;
    case Kind::kGauge:
      entry.gauge = new Gauge;
      break;
    case Kind::kHistogram:
      entry.histogram = new Histogram;
      break;
  }
  return reg.entries.emplace(name, entry).first->second;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.  Site names use the
/// hedra dotted convention; mangle dots (and any other byte outside the
/// legal set) to underscores and prepend the namespace prefix.
std::string prometheus_name(const std::string& site) {
  std::string out = "hedra_";
  for (char c : site) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void json_escape_into(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';  // control bytes never appear in site names; degrade safely
    } else {
      out << c;
    }
  }
}

}  // namespace

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Gauge& gauge(const std::string& name) {
  return *find_or_create(name, Kind::kGauge).gauge;
}

Histogram& histogram(const std::string& name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

void reset_values() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  for (auto& [name, entry] : reg.entries) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::vector<std::string> registered_metrics() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.entries.size());
  for (const auto& [name, entry] : reg.entries) names.push_back(name);
  return names;
}

std::string prometheus_text() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::ostringstream out;
  for (const auto& [name, entry] : reg.entries) {
    const std::string prom = prometheus_name(name);
    switch (entry.kind) {
      case Kind::kCounter:
        out << "# TYPE " << prom << " counter\n"
            << prom << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        out << "# TYPE " << prom << " gauge\n"
            << prom << " " << entry.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        out << "# TYPE " << prom << " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBoundaries; ++i) {
          cumulative += h.bucket_count(i);
          out << prom << "_bucket{le=\"" << Histogram::boundary_ns(i)
              << "\"} " << cumulative << "\n";
        }
        cumulative += h.bucket_count(Histogram::kNumBuckets - 1);
        out << prom << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
            << prom << "_sum " << h.sum_ns() << "\n"
            << prom << "_count " << h.count() << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string metrics_json() {
  Registry& reg = registry();
  util::MutexLock lock(reg.mutex);
  std::ostringstream out;
  out << "{\"schema\":\"hedra-metrics-v1\",\"enabled\":"
      << (enabled() ? "true" : "false");
  const char* sep = "";
  out << ",\"counters\":{";
  for (const auto& [name, entry] : reg.entries) {
    if (entry.kind != Kind::kCounter) continue;
    out << sep << "\"";
    json_escape_into(out, name);
    out << "\":" << entry.counter->value();
    sep = ",";
  }
  out << "},\"gauges\":{";
  sep = "";
  for (const auto& [name, entry] : reg.entries) {
    if (entry.kind != Kind::kGauge) continue;
    out << sep << "\"";
    json_escape_into(out, name);
    out << "\":" << entry.gauge->value();
    sep = ",";
  }
  out << "},\"histograms\":{";
  sep = "";
  for (const auto& [name, entry] : reg.entries) {
    if (entry.kind != Kind::kHistogram) continue;
    const Histogram& h = *entry.histogram;
    out << sep << "\"";
    json_escape_into(out, name);
    out << "\":{\"boundaries_ns\":[";
    for (int i = 0; i < Histogram::kNumBoundaries; ++i) {
      out << (i ? "," : "") << Histogram::boundary_ns(i);
    }
    out << "],\"buckets\":[";
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      out << (i ? "," : "") << h.bucket_count(i);
    }
    out << "],\"sum_ns\":" << h.sum_ns() << ",\"count\":" << h.count() << "}";
    sep = ",";
  }
  out << "}}";
  return out.str();
}

}  // namespace hedra::obs
