#pragma once

/// \file algorithms.h
/// Classic DAG algorithms used throughout the analysis: topological order,
/// reachability (the paper's Pred(v)/Succ(v) sets), transitive closure and
/// reduction.  The paper's system model requires transitive-edge-free graphs
/// (§2), so detection and reduction utilities live here as well.

#include <vector>

#include "graph/dag.h"
#include "util/bitset.h"

namespace hedra::graph {

/// Topological order (Kahn).  Ties are broken by ascending node id, so the
/// order is deterministic.  Throws hedra::Error if the graph has a cycle.
[[nodiscard]] std::vector<NodeId> topological_order(const Dag& dag);

/// True iff the graph is acyclic.
[[nodiscard]] bool is_acyclic(const Dag& dag);

/// All nodes from which `v` is reachable, excluding `v` itself — the paper's
/// Pred(v) ("the set of nodes from which v_off can be reached").
[[nodiscard]] DynamicBitset ancestors(const Dag& dag, NodeId v);

/// All nodes reachable from `v`, excluding `v` itself — the paper's Succ(v).
[[nodiscard]] DynamicBitset descendants(const Dag& dag, NodeId v);

/// True iff `to` is reachable from `from` by a non-empty path.
[[nodiscard]] bool reachable(const Dag& dag, NodeId from, NodeId to);

/// reach[v] = set of nodes reachable from v (excluding v), for every v.
[[nodiscard]] std::vector<DynamicBitset> transitive_closure(const Dag& dag);

/// Edges (u, w) for which another u -> ... -> w path exists.
[[nodiscard]] std::vector<std::pair<NodeId, NodeId>> transitive_edges(
    const Dag& dag);

/// True iff the graph has no transitive edges (the paper's model assumption).
[[nodiscard]] bool is_transitively_reduced(const Dag& dag);

/// Copy of `dag` with all transitive edges removed.  Node ids are preserved.
[[nodiscard]] Dag transitive_reduction(const Dag& dag);

}  // namespace hedra::graph
