#pragma once

/// \file flat_view.h
/// Non-owning CSR view of one DAG's flat arrays.
///
/// `FlatDag` owns its arrays and always snapshots a live `Dag`.  The batch
/// pipeline inverts that: `FlatDagBatch` owns one contiguous arena for a
/// whole batch and hands out `FlatView`s — spans into the arena with the
/// exact accessor vocabulary of `FlatDag`, so every template that walks a
/// `FlatDag` (longest paths, weighted chain walks, the simulator) works on a
/// view unchanged.  A view may or may not have a source `Dag` behind it:
/// arena-generated DAGs are never materialised unless a caller asks, so
/// `source()` is a nullable pointer here (unlike `FlatDag::source()`, which
/// is a reference by construction).

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dag.h"

namespace hedra::graph {

class FlatView {
 public:
  FlatView() = default;

  FlatView(std::span<const std::uint32_t> succ_off,
           std::span<const std::uint32_t> pred_off,
           std::span<const NodeId> succ, std::span<const NodeId> pred,
           std::span<const Time> wcet, std::span<const DeviceId> device,
           std::span<const std::uint8_t> sync, std::span<const NodeId> topo,
           DeviceId max_device, std::size_t num_offload,
           const Dag* source = nullptr) noexcept
      : succ_off_(succ_off),
        pred_off_(pred_off),
        succ_(succ),
        pred_(pred),
        wcet_(wcet),
        device_(device),
        sync_(sync),
        topo_(topo),
        source_(source),
        max_device_(max_device),
        num_offload_(num_offload) {}

  /// The snapshotted graph, or nullptr for an arena view that was never
  /// materialised (labels/validation need materialisation first).
  [[nodiscard]] const Dag* source() const noexcept { return source_; }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return wcet_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return succ_.size(); }

  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const noexcept {
    return {succ_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const noexcept {
    return {pred_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const noexcept {
    return succ_off_[v + 1] - succ_off_[v];
  }
  [[nodiscard]] std::size_t in_degree(NodeId v) const noexcept {
    return pred_off_[v + 1] - pred_off_[v];
  }

  [[nodiscard]] Time wcet(NodeId v) const noexcept { return wcet_[v]; }
  [[nodiscard]] DeviceId device(NodeId v) const noexcept { return device_[v]; }
  [[nodiscard]] bool is_sync(NodeId v) const noexcept { return sync_[v] != 0; }
  [[nodiscard]] NodeKind kind(NodeId v) const noexcept {
    if (sync_[v] != 0) return NodeKind::kSync;
    return device_[v] == kHostDevice ? NodeKind::kHost : NodeKind::kOffload;
  }

  /// Raw attribute arrays for tight loops.
  [[nodiscard]] std::span<const Time> wcets() const noexcept { return wcet_; }
  [[nodiscard]] std::span<const DeviceId> devices() const noexcept {
    return device_;
  }

  /// Deterministic Kahn topological order (ascending-id tie-breaks).
  [[nodiscard]] std::span<const NodeId> topological_order() const noexcept {
    return topo_;
  }

  /// Largest device id present (0 for a homogeneous DAG).
  [[nodiscard]] DeviceId max_device() const noexcept { return max_device_; }

  /// Number of nodes placed on an accelerator (device != 0).
  [[nodiscard]] std::size_t num_offload_nodes() const noexcept {
    return num_offload_;
  }

 private:
  std::span<const std::uint32_t> succ_off_;
  std::span<const std::uint32_t> pred_off_;
  std::span<const NodeId> succ_;
  std::span<const NodeId> pred_;
  std::span<const Time> wcet_;
  std::span<const DeviceId> device_;
  std::span<const std::uint8_t> sync_;
  std::span<const NodeId> topo_;
  const Dag* source_ = nullptr;
  DeviceId max_device_ = 0;
  std::size_t num_offload_ = 0;
};

namespace detail {

/// Kahn with a min-heap on node id over raw CSR arrays — byte-identical
/// order to graph::topological_order(Dag).  Writes the order into `out`
/// (capacity n) and throws on cyclic input.  Shared by FlatDag and the
/// batch arena builder.
void kahn_order_into(std::size_t n, const std::uint32_t* succ_off,
                     const NodeId* succ, const std::uint32_t* pred_off,
                     NodeId* out);

}  // namespace detail

}  // namespace hedra::graph
