#include "graph/flat_batch.h"

#include <algorithm>

namespace hedra::graph {

void FlatDagBatch::reserve(std::size_t dags, std::size_t nodes_per_dag,
                           std::size_t edges_per_dag) {
  records_.reserve(dags);
  succ_off_.reserve(dags * (nodes_per_dag + 1));
  pred_off_.reserve(dags * (nodes_per_dag + 1));
  succ_.reserve(dags * edges_per_dag);
  pred_.reserve(dags * edges_per_dag);
  wcet_.reserve(dags * nodes_per_dag);
  device_.reserve(dags * nodes_per_dag);
  sync_.reserve(dags * nodes_per_dag);
  topo_.reserve(dags * nodes_per_dag);
  edge_from_.reserve(dags * edges_per_dag);
  edge_to_.reserve(dags * edges_per_dag);
}

void FlatDagBatch::append(const StagedDag& staged, EdgeOrder order,
                          NodeId offload_relabel) {
  const std::size_t n = staged.num_nodes();
  HEDRA_REQUIRE(n > 0, "cannot append an empty staged DAG");
  const std::size_t e = staged.edges.size();

  Record rec;
  rec.node_off = static_cast<std::uint32_t>(wcet_.size());
  rec.node_end = static_cast<std::uint32_t>(wcet_.size() + n);
  rec.edge_off = static_cast<std::uint32_t>(succ_.size());
  rec.edge_end = static_cast<std::uint32_t>(succ_.size() + e);
  rec.csr_off = static_cast<std::uint32_t>(succ_off_.size());
  rec.offload_relabel = offload_relabel;
  rec.order = order;

  wcet_.insert(wcet_.end(), staged.wcet.begin(), staged.wcet.end());
  device_.insert(device_.end(), staged.device.begin(), staged.device.end());
  sync_.insert(sync_.end(), n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    rec.max_device = std::max(rec.max_device, staged.device[v]);
    if (staged.device[v] != kHostDevice) ++rec.num_offload;
  }

  // Successor CSR: prefix sums over out-degrees, then a stable counting
  // sort of the edge list — successor lists keep insertion order, exactly
  // as Dag::successors does.
  succ_off_.resize(rec.csr_off + n + 1);
  pred_off_.resize(rec.csr_off + n + 1);
  std::uint32_t* soff = succ_off_.data() + rec.csr_off;
  std::uint32_t* poff = pred_off_.data() + rec.csr_off;
  soff[0] = 0;
  poff[0] = 0;
  for (std::size_t v = 0; v < n; ++v) {
    soff[v + 1] = soff[v] + staged.out_deg[v];
    poff[v + 1] = poff[v] + staged.in_deg[v];
  }
  succ_.resize(rec.edge_off + e);
  pred_.resize(rec.edge_off + e);
  NodeId* succ = succ_.data() + rec.edge_off;
  NodeId* pred = pred_.data() + rec.edge_off;
  cursor_.assign(soff, soff + n);
  for (const auto& [from, to] : staged.edges) succ[cursor_[from]++] = to;
  cursor_.assign(poff, poff + n);
  if (order == EdgeOrder::kInsertion) {
    for (const auto& [from, to] : staged.edges) pred[cursor_[to]++] = from;
  } else {
    // Reproduce the select_offload_node rebuild: edges re-added grouped by
    // source id ascending, so predecessor lists come out source-ascending.
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t k = soff[v]; k < soff[v + 1]; ++k) {
        pred[cursor_[succ[k]]++] = v;
      }
    }
  }

  edge_from_.resize(rec.edge_off + e);
  edge_to_.resize(rec.edge_off + e);
  for (std::size_t k = 0; k < e; ++k) {
    edge_from_[rec.edge_off + k] = staged.edges[k].first;
    edge_to_[rec.edge_off + k] = staged.edges[k].second;
  }

  topo_.resize(rec.node_off + n);
  detail::kahn_order_into(n, soff, succ, poff, topo_.data() + rec.node_off);

  records_.push_back(rec);
}

FlatView FlatDagBatch::view(std::size_t i) const {
  const Record& r = records_[i];
  const std::size_t n = r.node_end - r.node_off;
  const std::size_t e = r.edge_end - r.edge_off;
  return FlatView({succ_off_.data() + r.csr_off, n + 1},
                  {pred_off_.data() + r.csr_off, n + 1},
                  {succ_.data() + r.edge_off, e},
                  {pred_.data() + r.edge_off, e},
                  {wcet_.data() + r.node_off, n},
                  {device_.data() + r.node_off, n},
                  {sync_.data() + r.node_off, n},
                  {topo_.data() + r.node_off, n}, r.max_device, r.num_offload,
                  /*source=*/nullptr);
}

Dag FlatDagBatch::materialize(std::size_t i) const {
  const Record& r = records_[i];
  const std::size_t n = r.node_end - r.node_off;
  const Time* wcet = wcet_.data() + r.node_off;
  const DeviceId* device = device_.data() + r.node_off;
  Dag dag;
  if (r.order == EdgeOrder::kGroupedBySource) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == r.offload_relabel) {
        dag.add_node(wcet[v], NodeKind::kOffload);
      } else {
        dag.add_node(wcet[v]);
      }
    }
    const std::uint32_t* soff = succ_off_.data() + r.csr_off;
    const NodeId* succ = succ_.data() + r.edge_off;
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t k = soff[v]; k < soff[v + 1]; ++k) {
        dag.add_edge(v, succ[k]);
      }
    }
  } else {
    for (NodeId v = 0; v < n; ++v) dag.add_node(wcet[v]);
    for (NodeId v = 0; v < n; ++v) {
      if (device[v] != kHostDevice) dag.set_device(v, device[v]);
    }
    for (std::uint32_t k = r.edge_off; k < r.edge_end; ++k) {
      dag.add_edge(edge_from_[k], edge_to_[k]);
    }
  }
  return dag;
}

void FlatDagBatch::clear() noexcept {
  records_.clear();
  succ_off_.clear();
  pred_off_.clear();
  succ_.clear();
  pred_.clear();
  wcet_.clear();
  device_.clear();
  sync_.clear();
  topo_.clear();
  edge_from_.clear();
  edge_to_.clear();
}

}  // namespace hedra::graph
