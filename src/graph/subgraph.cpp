#include "graph/subgraph.h"

namespace hedra::graph {

Subgraph induced_subgraph(const Dag& dag, const DynamicBitset& members) {
  HEDRA_REQUIRE(members.size() == dag.num_nodes(),
                "membership bitset size mismatch");
  Subgraph out;
  out.from_parent.assign(dag.num_nodes(), kInvalidNode);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!members.test(v)) continue;
    const NodeId nv = out.dag.add_node(dag.node(v));
    out.from_parent[v] = nv;
    out.to_parent.push_back(v);
  }
  for (const auto& [u, w] : dag.edges()) {
    if (members.test(u) && members.test(w)) {
      out.dag.add_edge(out.from_parent[u], out.from_parent[w]);
    }
  }
  return out;
}

Subgraph induced_subgraph(const Dag& dag, const std::vector<NodeId>& members) {
  DynamicBitset bits(dag.num_nodes());
  for (const NodeId v : members) {
    HEDRA_REQUIRE(v < dag.num_nodes(), "subgraph member id out of range");
    bits.set(v);
  }
  return induced_subgraph(dag, bits);
}

}  // namespace hedra::graph
