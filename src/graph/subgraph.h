#pragma once

/// \file subgraph.h
/// Induced subgraph extraction.  Algorithm 1 builds G_par = (V_par, E_par) as
/// the subgraph of the *original* G induced by the nodes parallel to v_off
/// (lines 14-17); this utility implements exactly that, keeping a mapping
/// back to the parent graph's node ids.

#include <vector>

#include "graph/dag.h"
#include "util/bitset.h"

namespace hedra::graph {

/// A subgraph with id mappings to/from its parent graph.
struct Subgraph {
  Dag dag;
  /// to_parent[new_id] == old id in the parent graph.
  std::vector<NodeId> to_parent;
  /// from_parent[old_id] == new id, or kInvalidNode if not included.
  std::vector<NodeId> from_parent;
};

/// Subgraph of `dag` induced by `members` (edges with both endpoints inside).
/// Node order follows ascending parent id; labels/kinds/WCETs are preserved.
[[nodiscard]] Subgraph induced_subgraph(const Dag& dag,
                                        const DynamicBitset& members);

/// Convenience overload taking an id list.
[[nodiscard]] Subgraph induced_subgraph(const Dag& dag,
                                        const std::vector<NodeId>& members);

}  // namespace hedra::graph
