#pragma once

/// \file validate.h
/// Structural validation of task graphs against the paper's system model
/// (§2): acyclic, exactly one source and one sink, no transitive edges, and
/// at most one offloaded node.  Validation is separated from Dag mutation so
/// intermediate states (e.g. while Algorithm 1 rewires edges) are
/// representable.

#include <string>
#include <vector>

#include "graph/dag.h"

namespace hedra::graph {

/// Which rules to check.  Defaults correspond to the paper's model.
struct ValidationRules {
  bool require_acyclic = true;
  bool require_single_source = true;
  bool require_single_sink = true;
  bool forbid_transitive_edges = true;
  /// 0, 1, or -1 for "any number" of offload nodes.
  int required_offload_count = 1;
  /// Every non-sync node must have wcet >= 1 (sync nodes are zero by
  /// construction).
  bool require_positive_wcets = true;
};

/// Human-readable list of violations; empty means valid.
[[nodiscard]] std::vector<std::string> validate(const Dag& dag,
                                                const ValidationRules& rules);

/// True iff validate(dag, rules) is empty.
[[nodiscard]] bool is_valid(const Dag& dag, const ValidationRules& rules);

/// Throws hedra::Error listing all violations, if any.
void throw_if_invalid(const Dag& dag, const ValidationRules& rules);

/// Rules for a plain homogeneous DAG (no offload node expected).
[[nodiscard]] ValidationRules homogeneous_rules();

/// Rules for the paper's heterogeneous model (exactly one offload node).
[[nodiscard]] ValidationRules heterogeneous_rules();

}  // namespace hedra::graph
