#pragma once

/// \file flat_dag.h
/// Immutable flat (CSR) snapshot of a Dag for the hot paths.
///
/// `Dag` stores adjacency as `std::vector<std::vector<NodeId>>` and node
/// attributes behind a bounds-checked `node(id)` accessor — the right shape
/// for the mutations Algorithm 1 performs, and the wrong shape for the
/// Monte-Carlo pipeline, which walks the *same frozen graph* thousands of
/// times (per policy, per core count, per search node).  `FlatDag` snapshots
/// a Dag once into contiguous arrays:
///
///   - successor / predecessor ids in CSR form (one offsets array + one flat
///     neighbour array each, so a node's out-edges are a cache-line-friendly
///     `std::span`),
///   - flat `wcet` / `device` / `sync` attribute arrays (no per-node struct
///     padding, no string labels dragged through the cache),
///   - the deterministic Kahn topological order (smallest-id tie-breaks,
///     identical to graph::topological_order), computed once at build time
///     because every consumer — longest paths, weighted paths, simulation
///     ready-counts — needs it anyway.
///
/// The snapshot keeps a pointer to its source Dag (which must outlive it)
/// so trace validation and rendering can still reach labels and the
/// original adjacency.  Construction throws hedra::Error on cyclic input.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/dag.h"
#include "graph/flat_view.h"

namespace hedra::graph {

class FlatDag {
 public:
  /// Snapshots `dag`, which must outlive the snapshot.
  explicit FlatDag(const Dag& dag);

  /// Binding to a temporary would dangle immediately.
  explicit FlatDag(Dag&&) = delete;

  /// The snapshotted graph (labels, mutation API, validation).
  [[nodiscard]] const Dag& source() const noexcept { return *source_; }

  /// Non-owning view over this snapshot's arrays (valid while the snapshot
  /// lives); lets FlatDag-based callers reuse the FlatView entry points.
  [[nodiscard]] FlatView view() const noexcept {
    return FlatView(succ_off_, pred_off_, succ_, pred_, wcet_, device_, sync_,
                    topo_, max_device_, num_offload_, source_);
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return wcet_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return succ_.size(); }

  [[nodiscard]] std::span<const NodeId> successors(NodeId v) const noexcept {
    return {succ_.data() + succ_off_[v], succ_off_[v + 1] - succ_off_[v]};
  }
  [[nodiscard]] std::span<const NodeId> predecessors(NodeId v) const noexcept {
    return {pred_.data() + pred_off_[v], pred_off_[v + 1] - pred_off_[v]};
  }
  [[nodiscard]] std::size_t out_degree(NodeId v) const noexcept {
    return succ_off_[v + 1] - succ_off_[v];
  }
  [[nodiscard]] std::size_t in_degree(NodeId v) const noexcept {
    return pred_off_[v + 1] - pred_off_[v];
  }

  [[nodiscard]] Time wcet(NodeId v) const noexcept { return wcet_[v]; }
  [[nodiscard]] DeviceId device(NodeId v) const noexcept { return device_[v]; }
  [[nodiscard]] bool is_sync(NodeId v) const noexcept {
    return sync_[v] != 0;
  }
  [[nodiscard]] NodeKind kind(NodeId v) const noexcept {
    if (sync_[v] != 0) return NodeKind::kSync;
    return device_[v] == kHostDevice ? NodeKind::kHost : NodeKind::kOffload;
  }

  /// Raw attribute arrays for tight loops.
  [[nodiscard]] std::span<const Time> wcets() const noexcept { return wcet_; }
  [[nodiscard]] std::span<const DeviceId> devices() const noexcept {
    return device_;
  }

  /// Deterministic Kahn topological order (ascending-id tie-breaks) — the
  /// same order graph::topological_order(source()) returns.
  [[nodiscard]] const std::vector<NodeId>& topological_order() const noexcept {
    return topo_;
  }

  /// Largest device id present (0 for a homogeneous DAG).
  [[nodiscard]] DeviceId max_device() const noexcept { return max_device_; }

  /// Number of nodes placed on an accelerator (device != 0).
  [[nodiscard]] std::size_t num_offload_nodes() const noexcept {
    return num_offload_;
  }

 private:
  const Dag* source_;
  std::vector<std::uint32_t> succ_off_;
  std::vector<std::uint32_t> pred_off_;
  std::vector<NodeId> succ_;
  std::vector<NodeId> pred_;
  std::vector<Time> wcet_;
  std::vector<DeviceId> device_;
  std::vector<std::uint8_t> sync_;
  std::vector<NodeId> topo_;
  DeviceId max_device_ = 0;
  std::size_t num_offload_ = 0;
};

}  // namespace hedra::graph
