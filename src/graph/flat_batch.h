#pragma once

/// \file flat_batch.h
/// Structure-of-arrays arena for a whole batch of DAGs.
///
/// The Monte-Carlo pipeline generates hundreds of DAGs per sweep point only
/// to re-snapshot each one into `FlatDag` CSR form; the per-DAG
/// vector-of-vectors `Dag` in the middle is pure allocation traffic.
/// `FlatDagBatch` removes it: the whole batch lives in ONE contiguous set of
/// `succ_off / pred_off / succ / pred / wcet / device / sync / topo` arrays
/// with a per-DAG offset record, node ids are DAG-local (0-based), and each
/// DAG is exposed as a `FlatView`.  A `Dag` object is materialised lazily,
/// and only for callers that genuinely need one (dag_io, DOT rendering, the
/// §3.4 transformation).
///
/// Generators stage one DAG at a time in a reusable `StagedDag` scratch
/// (plain wcet/device arrays plus the edge list in insertion order) and
/// `append` the accepted attempt; rejected attempts just `clear` the scratch
/// — no allocations are paid per attempt once the high-water marks are
/// reached.
///
/// Determinism contract: `append` derives the CSR arrays so that `view(i)`
/// is byte-identical to `FlatDag(dag_i)` of the legacy pipeline, and
/// `materialize(i)` reproduces the legacy `Dag` field-for-field (labels
/// included).  The two legacy pipelines leave different predecessor
/// orderings behind — `select_offload_node` REBUILDS the Dag from
/// `Dag::edges()` (grouping edges by source id ascending), while the
/// multi-device path keeps raw insertion order — so each record carries its
/// `EdgeOrder` convention.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/dag.h"
#include "graph/flat_view.h"

namespace hedra::graph {

/// Reusable staging buffers for one DAG under construction.  Generators
/// fill these directly (no `Dag` allocation per attempt) and hand the
/// accepted attempt to `FlatDagBatch::append`.
struct StagedDag {
  std::vector<Time> wcet;
  std::vector<DeviceId> device;
  std::vector<std::pair<NodeId, NodeId>> edges;  ///< insertion order
  std::vector<std::uint32_t> in_deg;
  std::vector<std::uint32_t> out_deg;

  /// Adds a host node with the given WCET; returns its 0-based local id.
  NodeId add_node(Time c) {
    wcet.push_back(c);
    device.push_back(kHostDevice);
    in_deg.push_back(0);
    out_deg.push_back(0);
    return static_cast<NodeId>(wcet.size() - 1);
  }

  void add_edge(NodeId from, NodeId to) {
    edges.emplace_back(from, to);
    ++out_deg[from];
    ++in_deg[to];
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return wcet.size(); }

  /// Resets to an empty DAG; capacity (and therefore the amortised
  /// zero-allocation property of the rejection loop) is kept.
  void clear() noexcept {
    wcet.clear();
    device.clear();
    edges.clear();
    in_deg.clear();
    out_deg.clear();
  }
};

class FlatDagBatch {
 public:
  /// Which legacy pipeline's predecessor ordering (and materialisation
  /// labels) a DAG follows; see the file comment.
  enum class EdgeOrder : std::uint8_t {
    /// Predecessor lists in raw edge-insertion order; materialises via
    /// `add_node(wcet)` + `set_device` (multi-device pipeline).
    kInsertion,
    /// Predecessor lists grouped by source id ascending, reproducing the
    /// `select_offload_node` rebuild; the single offload node materialises
    /// as `NodeKind::kOffload` (label "vOff").
    kGroupedBySource,
  };

  FlatDagBatch() = default;

  /// Pre-sizes the arena (counts are hints, not limits).
  void reserve(std::size_t dags, std::size_t nodes_per_dag,
               std::size_t edges_per_dag);

  /// Copies one staged DAG into the arena, deriving succ/pred CSR and the
  /// deterministic Kahn topological order.  `staged.device` must already
  /// carry final placements.  Sync flags are all-false by construction (the
  /// generators never emit sync nodes; those appear only through the §3.4
  /// transformation, which operates on materialised Dags).
  void append(const StagedDag& staged, EdgeOrder order,
              NodeId offload_relabel = kInvalidNode);

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  [[nodiscard]] std::size_t num_nodes(std::size_t i) const {
    return records_[i].node_end - records_[i].node_off;
  }
  [[nodiscard]] std::size_t num_edges(std::size_t i) const {
    return records_[i].edge_end - records_[i].edge_off;
  }
  [[nodiscard]] std::size_t total_nodes() const noexcept {
    return wcet_.size();
  }
  [[nodiscard]] std::size_t total_edges() const noexcept {
    return succ_.size();
  }

  /// CSR view of DAG `i`; valid until the next append/clear/move.
  [[nodiscard]] FlatView view(std::size_t i) const;

  /// Rebuilds DAG `i` as a full `Dag`, field-identical (labels included) to
  /// the legacy pipeline's object.  O(n + e); intended for the cold paths
  /// (dag_io, DOT, transformation) only.
  [[nodiscard]] Dag materialize(std::size_t i) const;

  /// Whole-arena attribute arrays (all DAGs back to back) for batch kernels.
  [[nodiscard]] std::span<const Time> all_wcets() const noexcept {
    return wcet_;
  }
  [[nodiscard]] std::span<const DeviceId> all_devices() const noexcept {
    return device_;
  }

  void clear() noexcept;

 private:
  struct Record {
    std::uint32_t node_off = 0;  ///< into wcet_/device_/sync_/topo_
    std::uint32_t node_end = 0;
    std::uint32_t edge_off = 0;  ///< into succ_/pred_ (and edge_from_/to_)
    std::uint32_t edge_end = 0;
    std::uint32_t csr_off = 0;   ///< into succ_off_/pred_off_ (n+1 entries)
    DeviceId max_device = 0;
    std::uint32_t num_offload = 0;
    NodeId offload_relabel = kInvalidNode;  ///< "vOff" node (kGroupedBySource)
    EdgeOrder order = EdgeOrder::kInsertion;
  };

  std::vector<Record> records_;
  // Per-DAG CSR with LOCAL offsets: DAG i occupies csr_off .. csr_off+n_i
  // (n_i + 1 entries) in the offset arrays and edge_off .. edge_end in the
  // flat neighbour arrays, with node ids local to the DAG.
  std::vector<std::uint32_t> succ_off_;
  std::vector<std::uint32_t> pred_off_;
  std::vector<NodeId> succ_;
  std::vector<NodeId> pred_;
  std::vector<Time> wcet_;
  std::vector<DeviceId> device_;
  std::vector<std::uint8_t> sync_;
  std::vector<NodeId> topo_;
  // Raw edge list in insertion order, kept so kInsertion DAGs can
  // materialise with the exact legacy edge ordering.
  std::vector<NodeId> edge_from_;
  std::vector<NodeId> edge_to_;
  std::vector<std::uint32_t> cursor_;  ///< counting-sort scratch
};

}  // namespace hedra::graph
