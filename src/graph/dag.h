#pragma once

/// \file dag.h
/// The DAG task-graph representation from the paper's system model (§2),
/// generalised to a heterogeneous platform.
///
/// A parallel real-time task is `τ = <G, T, D>` with `G = (V, E)`.  Nodes
/// carry a worst-case execution time (WCET) and a *device* placement: device
/// 0 is the pool of m identical host cores; device d >= 1 names one of the
/// platform's accelerator classes (GPU, FPGA, DSP, ...), each with a single
/// execution unit (see model/platform.h).  The paper's model is the special
/// case of exactly one node on device 1 — its `NodeKind` vocabulary (host /
/// offload / sync) is preserved as a *derived view*: a node is `kOffload`
/// iff its device is not the host, and `kSync` marks the zero-WCET
/// synchronisation nodes inserted by the transformation of §3.4 (always
/// host-side).
///
/// The class stores adjacency in insertion order and supports the edge
/// removals/insertions Algorithm 1 performs.  Structural rules that are
/// global properties (acyclicity, single source/sink, absence of transitive
/// edges) are checked by graph/validate.h rather than on every mutation.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace hedra::graph {

/// Dense node identifier; nodes are never deleted, so ids are stable.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Integer time in abstract WCET ticks (the paper uses unit-less integers
/// drawn from [1, 100]).
using Time = std::int64_t;

/// Execution-device identifier: 0 is the host-core pool, d >= 1 one of the
/// platform's accelerator device classes.
using DeviceId = std::uint16_t;

/// The host-core pool.
inline constexpr DeviceId kHostDevice = 0;

/// Where a node executes — the paper's three-way vocabulary, derived from
/// the node's device placement and sync flag.
enum class NodeKind : std::uint8_t {
  kHost,     ///< sequential job on one of the m identical host cores
  kOffload,  ///< workload offloaded to an accelerator device (v_off)
  kSync,     ///< zero-WCET synchronisation point (v_sync, dummy source/sink)
};

[[nodiscard]] const char* to_string(NodeKind kind) noexcept;

/// One vertex of the task graph.
struct Node {
  Time wcet = 0;
  DeviceId device = kHostDevice;  ///< 0 = host pool; d >= 1 = accelerator d
  bool sync = false;              ///< zero-WCET synchronisation point
  std::string label;              ///< display name; defaults to "v<i>"

  /// The paper's three-way classification, derived from (device, sync).
  [[nodiscard]] NodeKind kind() const noexcept {
    if (sync) return NodeKind::kSync;
    return device == kHostDevice ? NodeKind::kHost : NodeKind::kOffload;
  }
};

/// A directed graph with WCET-annotated, device-placed nodes.
///
/// Invariants enforced on mutation: no self-loops, no duplicate edges,
/// non-negative WCETs, sync nodes have zero WCET and stay on the host.
class Dag {
 public:
  Dag() = default;

  /// Adds a node and returns its id.  `label` defaults to "v<id+1>"
  /// (matching the paper's v1..vn convention) or "vOff"/"vSync" by kind.
  /// `NodeKind::kOffload` places the node on device 1 (the paper's single
  /// accelerator); use add_node_on for other devices.
  NodeId add_node(Time wcet, NodeKind kind = NodeKind::kHost,
                  std::string label = "");

  /// Adds a node on an explicit device (0 = host).  The default label is
  /// "v<id+1>" on the host, "vOff" on device 1 and "vOff<d>" on device
  /// d >= 2.
  NodeId add_node_on(Time wcet, DeviceId device, std::string label = "");

  /// Adds a verbatim copy of `node` (device placement included) and returns
  /// its id.  Used by subgraph extraction and graph rewriting so device
  /// annotations survive structural copies.
  NodeId add_node(const Node& node);

  /// Adds edge (from, to).  Throws on self-loop, duplicate, or bad id.
  void add_edge(NodeId from, NodeId to);

  /// Removes edge (from, to).  Throws if the edge does not exist.
  void remove_edge(NodeId from, NodeId to);

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] const Node& node(NodeId id) const {
    check_id(id);
    return nodes_[id];
  }
  [[nodiscard]] Time wcet(NodeId id) const { return node(id).wcet; }
  [[nodiscard]] NodeKind kind(NodeId id) const { return node(id).kind(); }
  [[nodiscard]] DeviceId device(NodeId id) const { return node(id).device; }
  [[nodiscard]] const std::string& label(NodeId id) const {
    return node(id).label;
  }

  /// Reassigns a node's WCET (used when sweeping C_off).  Sync nodes must
  /// stay at zero.
  void set_wcet(NodeId id, Time wcet);

  /// Moves a node to another device (0 = host).  Sync nodes must stay on
  /// the host.
  void set_device(NodeId id, DeviceId device);

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId id) const {
    check_id(id);
    return succ_[id];
  }
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId id) const {
    check_id(id);
    return pred_[id];
  }

  [[nodiscard]] std::size_t in_degree(NodeId id) const {
    return predecessors(id).size();
  }
  [[nodiscard]] std::size_t out_degree(NodeId id) const {
    return successors(id).size();
  }

  /// Nodes with no incoming / outgoing edges, ascending by id.
  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// All edges as (from, to) pairs, grouped by source id ascending.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// All nodes placed on an accelerator (device != 0), ascending.  The
  /// paper's model has exactly one; the multi-offload and multi-device
  /// extensions allow several.
  [[nodiscard]] std::vector<NodeId> offload_nodes() const;

  /// The unique offloaded node, or nullopt if there is none.  Throws if the
  /// graph has more than one (callers expecting the paper's model should not
  /// silently pick one).
  [[nodiscard]] std::optional<NodeId> offload_node() const;

  /// Nodes placed on device d, ascending by id (d = 0 selects host and sync
  /// nodes).
  [[nodiscard]] std::vector<NodeId> nodes_on(DeviceId device) const;

  /// Sum of WCETs of the nodes placed on device d — vol_d.
  [[nodiscard]] Time volume_on(DeviceId device) const noexcept;

  /// Sorted distinct accelerator device ids present in the graph (host
  /// excluded); empty for a homogeneous DAG.
  [[nodiscard]] std::vector<DeviceId> device_ids() const;

  /// Largest device id present (0 for a homogeneous DAG).  The simulator
  /// provisions one execution unit per device id in [1, max_device()].
  [[nodiscard]] DeviceId max_device() const noexcept;

  /// Sum of all WCETs — vol(G) in the paper, accelerator workload included.
  [[nodiscard]] Time volume() const noexcept;

  /// Sum of WCETs of nodes executing on the host (kHost + kSync).
  [[nodiscard]] Time host_volume() const noexcept;

 private:
  void check_id(NodeId id) const {
    HEDRA_REQUIRE(id < nodes_.size(), "node id out of range");
  }

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t num_edges_ = 0;
};

}  // namespace hedra::graph
