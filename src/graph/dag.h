#pragma once

/// \file dag.h
/// The DAG task-graph representation from the paper's system model (§2).
///
/// A parallel real-time task is `τ = <G, T, D>` with `G = (V, E)`.  Nodes
/// carry a worst-case execution time (WCET) and a kind: regular host node,
/// the single *offloaded* node `v_off` that runs on the accelerator device,
/// or a zero-WCET synchronisation node inserted by the transformation of §3.4.
///
/// The class stores adjacency in insertion order and supports the edge
/// removals/insertions Algorithm 1 performs.  Structural rules that are
/// global properties (acyclicity, single source/sink, absence of transitive
/// edges) are checked by graph/validate.h rather than on every mutation.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.h"

namespace hedra::graph {

/// Dense node identifier; nodes are never deleted, so ids are stable.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Integer time in abstract WCET ticks (the paper uses unit-less integers
/// drawn from [1, 100]).
using Time = std::int64_t;

/// Where a node executes.
enum class NodeKind : std::uint8_t {
  kHost,     ///< sequential job on one of the m identical host cores
  kOffload,  ///< the workload offloaded to the accelerator device (v_off)
  kSync,     ///< zero-WCET synchronisation point (v_sync, dummy source/sink)
};

[[nodiscard]] const char* to_string(NodeKind kind) noexcept;

/// One vertex of the task graph.
struct Node {
  Time wcet = 0;
  NodeKind kind = NodeKind::kHost;
  std::string label;  ///< display name; defaults to "v<i>"
};

/// A directed graph with WCET-annotated nodes.
///
/// Invariants enforced on mutation: no self-loops, no duplicate edges,
/// non-negative WCETs, sync nodes have zero WCET.
class Dag {
 public:
  Dag() = default;

  /// Adds a node and returns its id.  `label` defaults to "v<id+1>"
  /// (matching the paper's v1..vn convention) or "vOff"/"vSync" by kind.
  NodeId add_node(Time wcet, NodeKind kind = NodeKind::kHost,
                  std::string label = "");

  /// Adds edge (from, to).  Throws on self-loop, duplicate, or bad id.
  void add_edge(NodeId from, NodeId to);

  /// Removes edge (from, to).  Throws if the edge does not exist.
  void remove_edge(NodeId from, NodeId to);

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] const Node& node(NodeId id) const {
    check_id(id);
    return nodes_[id];
  }
  [[nodiscard]] Time wcet(NodeId id) const { return node(id).wcet; }
  [[nodiscard]] NodeKind kind(NodeId id) const { return node(id).kind; }
  [[nodiscard]] const std::string& label(NodeId id) const {
    return node(id).label;
  }

  /// Reassigns a node's WCET (used when sweeping C_off).  Sync nodes must
  /// stay at zero.
  void set_wcet(NodeId id, Time wcet);

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId id) const {
    check_id(id);
    return succ_[id];
  }
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId id) const {
    check_id(id);
    return pred_[id];
  }

  [[nodiscard]] std::size_t in_degree(NodeId id) const {
    return predecessors(id).size();
  }
  [[nodiscard]] std::size_t out_degree(NodeId id) const {
    return successors(id).size();
  }

  /// Nodes with no incoming / outgoing edges, ascending by id.
  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// All edges as (from, to) pairs, grouped by source id ascending.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// All nodes of kind kOffload, ascending.  The paper's model has exactly
  /// one; the multi-offload extension allows several.
  [[nodiscard]] std::vector<NodeId> offload_nodes() const;

  /// The unique offloaded node, or nullopt if there is none.  Throws if the
  /// graph has more than one (callers expecting the paper's model should not
  /// silently pick one).
  [[nodiscard]] std::optional<NodeId> offload_node() const;

  /// Sum of all WCETs — vol(G) in the paper, accelerator workload included.
  [[nodiscard]] Time volume() const noexcept;

  /// Sum of WCETs of nodes executing on the host (kHost + kSync).
  [[nodiscard]] Time host_volume() const noexcept;

 private:
  void check_id(NodeId id) const {
    HEDRA_REQUIRE(id < nodes_.size(), "node id out of range");
  }

  std::vector<Node> nodes_;
  std::vector<std::vector<NodeId>> succ_;
  std::vector<std::vector<NodeId>> pred_;
  std::size_t num_edges_ = 0;
};

}  // namespace hedra::graph
