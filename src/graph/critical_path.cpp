#include "graph/critical_path.h"

#include <algorithm>

#include "graph/algorithms.h"

namespace hedra::graph {

CriticalPathInfo::CriticalPathInfo(const Dag& dag) {
  const std::size_t n = dag.num_nodes();
  up_.assign(n, 0);
  down_.assign(n, 0);
  const auto order = topological_order(dag);
  for (const NodeId v : order) {
    Time best = 0;
    for (const NodeId p : dag.predecessors(v)) best = std::max(best, up_[p]);
    up_[v] = best + dag.wcet(v);
    length_ = std::max(length_, up_[v]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    Time best = 0;
    for (const NodeId s : dag.successors(v)) best = std::max(best, down_[s]);
    down_[v] = best + dag.wcet(v);
  }
}

CriticalPathInfo::CriticalPathInfo(const FlatView& view) {
  const std::size_t n = view.num_nodes();
  up_.assign(n, 0);
  down_.assign(n, 0);
  const auto order = view.topological_order();
  for (const NodeId v : order) {
    Time best = 0;
    for (const NodeId p : view.predecessors(v)) best = std::max(best, up_[p]);
    up_[v] = best + view.wcet(v);
    length_ = std::max(length_, up_[v]);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    Time best = 0;
    for (const NodeId s : view.successors(v)) best = std::max(best, down_[s]);
    down_[v] = best + view.wcet(v);
  }
}

CriticalPathInfo::CriticalPathInfo(const FlatDag& flat)
    : CriticalPathInfo(flat.view()) {}

bool CriticalPathInfo::on_critical_path(const Dag& dag, NodeId v) const {
  return up(v) + down(v) - dag.wcet(v) == length_;
}

Time critical_path_length(const Dag& dag) {
  return CriticalPathInfo(dag).length();
}

Time critical_path_length(const FlatView& view) {
  const std::size_t n = view.num_nodes();
  std::vector<Time> up(n, 0);
  Time length = 0;
  for (const NodeId v : view.topological_order()) {
    Time best = 0;
    for (const NodeId p : view.predecessors(v)) best = std::max(best, up[p]);
    up[v] = best + view.wcet(v);
    length = std::max(length, up[v]);
  }
  return length;
}

Time critical_path_length(const FlatDag& flat) {
  return critical_path_length(flat.view());
}

std::vector<Time> down_lengths(const FlatView& view) {
  const std::size_t n = view.num_nodes();
  std::vector<Time> down(n, 0);
  const auto order = view.topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    Time best = 0;
    for (const NodeId s : view.successors(v)) best = std::max(best, down[s]);
    down[v] = best + view.wcet(v);
  }
  return down;
}

std::vector<Time> down_lengths(const FlatDag& flat) {
  return down_lengths(flat.view());
}

std::vector<NodeId> extract_critical_path(const Dag& dag) {
  if (dag.num_nodes() == 0) return {};
  const CriticalPathInfo info(dag);
  // Start from the smallest-id node that begins a critical path.
  NodeId current = kInvalidNode;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.in_degree(v) == 0 && info.down(v) == info.length()) {
      current = v;
      break;
    }
  }
  HEDRA_ASSERT(current != kInvalidNode);
  std::vector<NodeId> path{current};
  while (dag.out_degree(current) > 0) {
    const Time remaining = info.down(current) - dag.wcet(current);
    if (remaining == 0) break;  // longest continuation is empty
    NodeId next = kInvalidNode;
    for (const NodeId s : dag.successors(current)) {
      if (info.down(s) == remaining && (next == kInvalidNode || s < next)) {
        next = s;
      }
    }
    HEDRA_ASSERT(next != kInvalidNode);
    path.push_back(next);
    current = next;
  }
  return path;
}

}  // namespace hedra::graph
