#pragma once

/// \file dag_io.h
/// Plain-text serialisation of task graphs, so examples and the `dag_tool`
/// CLI can load graphs from files.  Format (one directive per line, `#`
/// comments):
///
///     # nodes first, then edges
///     node <label> <wcet> [host|offload|offload:<device>|sync]
///     edge <from-label> <to-label>
///
/// Labels are arbitrary whitespace-free strings and must be unique.  A bare
/// `offload` places the node on accelerator device 1 (the paper's single
/// accelerator); `offload:<d>` names device d >= 1 of a heterogeneous
/// platform.  Device 1 is written back without the suffix, so single-device
/// files round-trip byte-identically.

#include <iosfwd>
#include <string>

#include "graph/dag.h"

namespace hedra::graph {

/// Caps on one parsed graph.  Far beyond anything the analyses handle in
/// reasonable time, but small enough that hostile input (a generated file
/// declaring 10^9 nodes) fails with a named line instead of exhausting
/// memory.
inline constexpr std::size_t kMaxParsedNodes = 1u << 16;  // 65536
inline constexpr std::size_t kMaxParsedEdges = 1u << 20;  // ~1M

/// Serialises the graph; round-trips through read_dag_text.
[[nodiscard]] std::string write_dag_text(const Dag& dag);

/// Parses the textual format.  Throws hedra::Error with a line number on
/// malformed input (unknown directive, duplicate label, unknown endpoint,
/// node/edge counts beyond kMaxParsedNodes/kMaxParsedEdges...).  Never
/// exhibits UB on arbitrary bytes: every failure is a typed Error.
[[nodiscard]] Dag read_dag_text(const std::string& text);

/// File convenience wrappers.
void save_dag_file(const Dag& dag, const std::string& path);
[[nodiscard]] Dag load_dag_file(const std::string& path);

}  // namespace hedra::graph
