#include "graph/dag_io.h"

#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace hedra::graph {

std::string write_dag_text(const Dag& dag) {
  std::ostringstream os;
  os << "# hedra dag: " << dag.num_nodes() << " nodes, " << dag.num_edges()
     << " edges\n";
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    os << "node " << dag.label(v) << ' ' << dag.wcet(v) << ' '
       << to_string(dag.kind(v));
    // Device 1 is the paper's single accelerator and stays implicit so
    // single-device files are byte-identical to the historical format.
    if (dag.device(v) > 1) os << ':' << dag.device(v);
    os << '\n';
  }
  for (const auto& [u, w] : dag.edges()) {
    os << "edge " << dag.label(u) << ' ' << dag.label(w) << '\n';
  }
  return os.str();
}

namespace {

/// Kind token grammar: "host", "sync", "offload" (device 1), or
/// "offload:<d>" for an explicit accelerator device d >= 1.
struct ParsedKind {
  NodeKind kind = NodeKind::kHost;
  DeviceId device = kHostDevice;
};

ParsedKind parse_kind(const std::string& text, int line_no) {
  const std::string where = "line " + std::to_string(line_no) + ": ";
  if (text == "host") return {NodeKind::kHost, kHostDevice};
  if (text == "sync") return {NodeKind::kSync, kHostDevice};
  if (text == "offload") return {NodeKind::kOffload, DeviceId{1}};
  if (text.starts_with("offload:")) {
    const Time device = parse_int(text.substr(8));
    HEDRA_REQUIRE(device >= 1 &&
                      device <= std::numeric_limits<DeviceId>::max(),
                  where + "offload device id out of range in '" + text + "'");
    return {NodeKind::kOffload, static_cast<DeviceId>(device)};
  }
  throw Error(where + "unknown node kind '" + text + "'");
}

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> tokens;
  for (auto& tok : split(line, ' ')) {
    if (!tok.empty()) tokens.push_back(std::move(tok));
  }
  return tokens;
}

}  // namespace

Dag read_dag_text(const std::string& text) {
  Dag dag;
  std::map<std::string, NodeId> by_label;
  std::istringstream is(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    const auto tokens = tokens_of(line);
    const std::string where = "line " + std::to_string(line_no) + ": ";
    if (tokens[0] == "node") {
      HEDRA_REQUIRE(tokens.size() == 3 || tokens.size() == 4,
                    where + "expected 'node <label> <wcet> [kind]'");
      HEDRA_REQUIRE(dag.num_nodes() < kMaxParsedNodes,
                    where + "node count exceeds the parser cap of " +
                        std::to_string(kMaxParsedNodes));
      const std::string& label = tokens[1];
      HEDRA_REQUIRE(!by_label.contains(label),
                    where + "duplicate node label '" + label + "'");
      const Time wcet = parse_int(tokens[2]);
      const ParsedKind kind =
          tokens.size() == 4 ? parse_kind(tokens[3], line_no) : ParsedKind{};
      by_label[label] = kind.kind == NodeKind::kSync
                            ? dag.add_node(wcet, NodeKind::kSync, label)
                            : dag.add_node_on(wcet, kind.device, label);
    } else if (tokens[0] == "edge") {
      HEDRA_REQUIRE(tokens.size() == 3,
                    where + "expected 'edge <from> <to>'");
      HEDRA_REQUIRE(dag.num_edges() < kMaxParsedEdges,
                    where + "edge count exceeds the parser cap of " +
                        std::to_string(kMaxParsedEdges));
      const auto from = by_label.find(tokens[1]);
      const auto to = by_label.find(tokens[2]);
      HEDRA_REQUIRE(from != by_label.end(),
                    where + "unknown node '" + tokens[1] + "'");
      HEDRA_REQUIRE(to != by_label.end(),
                    where + "unknown node '" + tokens[2] + "'");
      dag.add_edge(from->second, to->second);
    } else {
      throw Error(where + "unknown directive '" + tokens[0] + "'");
    }
  }
  return dag;
}

void save_dag_file(const Dag& dag, const std::string& path) {
  std::ofstream out(path);
  HEDRA_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << write_dag_text(dag);
  HEDRA_REQUIRE(out.good(), "write to '" + path + "' failed");
}

Dag load_dag_file(const std::string& path) {
  std::ifstream in(path);
  HEDRA_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_dag_text(buffer.str());
}

}  // namespace hedra::graph
