#pragma once

/// \file critical_path.h
/// The two DAG properties the analysis is built on (§2):
///  - vol(G): total WCET of all nodes (Dag::volume()), and
///  - len(G): length of the critical path, i.e. the longest path where a
///    path's length is the sum of the WCETs of its nodes.
///
/// CriticalPathInfo additionally exposes, per node v,
///  - up(v):   longest path ending at v, v's WCET included, and
///  - down(v): longest path starting at v, v's WCET included,
/// so that "v lies on a critical path" is the O(1) test
/// `up(v) + down(v) - C(v) == len(G)` — exactly what Theorem 1's scenario
/// classification needs for v_off.

#include <vector>

#include "graph/dag.h"
#include "graph/flat_dag.h"

namespace hedra::graph {

/// Longest-path data for a whole DAG.
class CriticalPathInfo {
 public:
  /// Computes lengths via one topological pass.  Throws on cyclic input.
  explicit CriticalPathInfo(const Dag& dag);

  /// Same lengths from a CSR snapshot, reusing its cached topological order
  /// (no re-sort, no pointer-chased adjacency) — the hot-path constructor
  /// the AnalysisCache and the simulator use.
  explicit CriticalPathInfo(const FlatDag& flat);

  /// Same lengths from a non-owning CSR view (arena batches).
  explicit CriticalPathInfo(const FlatView& view);

  /// len(G): length of the longest path; 0 for an empty graph.
  [[nodiscard]] Time length() const noexcept { return length_; }

  /// Longest path ending at v (inclusive).
  [[nodiscard]] Time up(NodeId v) const { return up_.at(v); }

  /// Longest path starting at v (inclusive).
  [[nodiscard]] Time down(NodeId v) const { return down_.at(v); }

  /// True iff v lies on at least one critical path.
  [[nodiscard]] bool on_critical_path(const Dag& dag, NodeId v) const;

 private:
  Time length_ = 0;
  std::vector<Time> up_;
  std::vector<Time> down_;
};

/// len(G) without retaining per-node data.
[[nodiscard]] Time critical_path_length(const Dag& dag);

/// len(G) from a CSR snapshot (single forward pass, no allocation beyond
/// one lengths array).
[[nodiscard]] Time critical_path_length(const FlatDag& flat);
[[nodiscard]] Time critical_path_length(const FlatView& view);

/// down(v) for every node of a snapshot — the longest path starting at v,
/// v's WCET included.  One reverse pass over the cached topological order;
/// used by the critical-path-first simulator policy and the B&B solver.
[[nodiscard]] std::vector<Time> down_lengths(const FlatDag& flat);
[[nodiscard]] std::vector<Time> down_lengths(const FlatView& view);

/// One longest path, source to sink, as a node sequence.  Deterministic
/// (smallest-id tie-breaks).  Empty for an empty graph.
[[nodiscard]] std::vector<NodeId> extract_critical_path(const Dag& dag);

}  // namespace hedra::graph
