#pragma once

/// \file dot.h
/// Graphviz DOT export.  Used by examples/paper_figures to regenerate the
/// paper's illustrative figures (1(a), 2(a), 3(a)/(b)): offload nodes render
/// as doubled circles, sync nodes as red squares (matching the paper's
/// drawing convention), and an optional highlight set draws G_par with a
/// dashed blue border.

#include <string>
#include <vector>

#include "graph/dag.h"

namespace hedra::graph {

/// Rendering options for to_dot().
struct DotOptions {
  std::string graph_name = "G";
  /// Nodes to surround with a dashed cluster (e.g. G_par).
  std::vector<NodeId> highlight;
  std::string highlight_label = "GPar";
  /// Include "label (wcet)" on each node.
  bool show_wcet = true;
  /// Annotate nodes on accelerator devices >= 2 with "@d<device>" (device 1
  /// is the paper's implicit single accelerator).  Offload nodes are always
  /// fill-colour-coded by device.
  bool show_device = true;
  /// Left-to-right layout instead of top-down.
  bool rankdir_lr = false;
};

/// Renders the DAG as a Graphviz document.
[[nodiscard]] std::string to_dot(const Dag& dag, const DotOptions& options = {});

}  // namespace hedra::graph
