#include "graph/validate.h"

#include <sstream>

#include "graph/algorithms.h"

namespace hedra::graph {

std::vector<std::string> validate(const Dag& dag,
                                  const ValidationRules& rules) {
  std::vector<std::string> issues;
  if (dag.num_nodes() == 0) {
    issues.push_back("graph is empty");
    return issues;
  }

  const bool acyclic = is_acyclic(dag);
  if (rules.require_acyclic && !acyclic) {
    issues.push_back("graph contains a cycle");
  }

  if (rules.require_single_source) {
    const auto src = dag.sources();
    if (src.size() != 1) {
      issues.push_back("expected exactly one source, found " +
                       std::to_string(src.size()));
    }
  }
  if (rules.require_single_sink) {
    const auto snk = dag.sinks();
    if (snk.size() != 1) {
      issues.push_back("expected exactly one sink, found " +
                       std::to_string(snk.size()));
    }
  }

  if (rules.forbid_transitive_edges && acyclic) {
    for (const auto& [u, w] : transitive_edges(dag)) {
      std::ostringstream os;
      os << "transitive edge (" << dag.label(u) << ", " << dag.label(w) << ")";
      issues.push_back(os.str());
    }
  }

  if (rules.required_offload_count >= 0) {
    const auto off = dag.offload_nodes();
    if (off.size() != static_cast<std::size_t>(rules.required_offload_count)) {
      issues.push_back("expected " +
                       std::to_string(rules.required_offload_count) +
                       " offload node(s), found " + std::to_string(off.size()));
    }
  }

  if (rules.require_positive_wcets) {
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      if (dag.kind(v) != NodeKind::kSync && dag.wcet(v) <= 0) {
        issues.push_back("node " + dag.label(v) + " has non-positive WCET");
      }
    }
  }

  return issues;
}

bool is_valid(const Dag& dag, const ValidationRules& rules) {
  return validate(dag, rules).empty();
}

void throw_if_invalid(const Dag& dag, const ValidationRules& rules) {
  const auto issues = validate(dag, rules);
  if (issues.empty()) return;
  std::ostringstream os;
  os << "invalid task graph:";
  for (const auto& issue : issues) os << "\n  - " << issue;
  throw Error(os.str());
}

ValidationRules homogeneous_rules() {
  ValidationRules rules;
  rules.required_offload_count = 0;
  return rules;
}

ValidationRules heterogeneous_rules() {
  ValidationRules rules;
  rules.required_offload_count = 1;
  return rules;
}

}  // namespace hedra::graph
