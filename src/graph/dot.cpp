#include "graph/dot.h"

#include <iterator>
#include <sstream>

#include "util/bitset.h"

namespace hedra::graph {

namespace {

/// Fill colours for accelerator devices 1, 2, 3, ... (cycled beyond the
/// palette).  Device 1 keeps the paper's lightgrey so single-accelerator
/// renderings are unchanged; further devices get visually distinct fills so
/// multi-device DAGs are debuggable at a glance.
const char* device_fill(DeviceId device) {
  static constexpr const char* kPalette[] = {
      "lightgrey",  "lightblue",  "lightsalmon", "palegreen",
      "plum",       "khaki",      "lightpink",   "aquamarine"};
  constexpr std::size_t kCount = std::size(kPalette);
  return kPalette[static_cast<std::size_t>(device - 1) % kCount];
}

void emit_node(std::ostringstream& os, const Dag& dag, NodeId v,
               const DotOptions& options, const std::string& indent) {
  os << indent << "n" << v << " [label=\"" << dag.label(v);
  if (options.show_wcet) os << " (" << dag.wcet(v) << ")";
  if (options.show_device && dag.device(v) > 1) {
    os << " @d" << dag.device(v);
  }
  os << "\"";
  switch (dag.kind(v)) {
    case NodeKind::kHost:
      os << ", shape=circle";
      break;
    case NodeKind::kOffload:
      os << ", shape=doublecircle, style=filled, fillcolor="
         << device_fill(dag.device(v));
      break;
    case NodeKind::kSync:
      os << ", shape=square, color=red";
      break;
  }
  os << "];\n";
}

}  // namespace

std::string to_dot(const Dag& dag, const DotOptions& options) {
  DynamicBitset highlighted(dag.num_nodes());
  for (const NodeId v : options.highlight) {
    HEDRA_REQUIRE(v < dag.num_nodes(), "highlight id out of range");
    highlighted.set(v);
  }

  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  if (options.rankdir_lr) os << "  rankdir=LR;\n";
  os << "  node [fontname=\"Helvetica\"];\n";

  if (highlighted.any()) {
    os << "  subgraph cluster_highlight {\n"
       << "    label=\"" << options.highlight_label << "\";\n"
       << "    style=dashed; color=blue;\n";
    for (NodeId v = 0; v < dag.num_nodes(); ++v) {
      if (highlighted.test(v)) emit_node(os, dag, v, options, "    ");
    }
    os << "  }\n";
  }
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (!highlighted.test(v)) emit_node(os, dag, v, options, "  ");
  }
  for (const auto& [u, w] : dag.edges()) {
    os << "  n" << u << " -> n" << w << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace hedra::graph
