#include "graph/flat_view.h"

#include <algorithm>
#include <functional>

namespace hedra::graph::detail {

void kahn_order_into(std::size_t n, const std::uint32_t* succ_off,
                     const NodeId* succ, const std::uint32_t* pred_off,
                     NodeId* out) {
  // Hot on the generation path (once per appended DAG): the scratch lives
  // per thread so repeated calls allocate nothing.  The ready set is a
  // min-heap over unique node ids, so the popped sequence — the smallest
  // ready node at every step — is the same for any heap implementation.
  thread_local std::vector<std::uint32_t> in_deg;
  thread_local std::vector<NodeId> ready;
  in_deg.resize(n);
  ready.clear();
  for (NodeId v = 0; v < n; ++v) {
    in_deg[v] = pred_off[v + 1] - pred_off[v];
    if (in_deg[v] == 0) ready.push_back(v);
  }
  std::make_heap(ready.begin(), ready.end(), std::greater<>{});
  std::size_t filled = 0;
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
    const NodeId v = ready.back();
    ready.pop_back();
    out[filled++] = v;
    for (std::uint32_t e = succ_off[v]; e < succ_off[v + 1]; ++e) {
      if (--in_deg[succ[e]] == 0) {
        ready.push_back(succ[e]);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
    }
  }
  HEDRA_REQUIRE(filled == n, "graph contains a cycle");
}

}  // namespace hedra::graph::detail
