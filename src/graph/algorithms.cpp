#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

namespace hedra::graph {

std::vector<NodeId> topological_order(const Dag& dag) {
  const std::size_t n = dag.num_nodes();
  std::vector<std::size_t> in_deg(n);
  // Min-heap on node id keeps the order deterministic.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    in_deg[v] = dag.in_degree(v);
    if (in_deg[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (const NodeId w : dag.successors(v)) {
      if (--in_deg[w] == 0) ready.push(w);
    }
  }
  HEDRA_REQUIRE(order.size() == n, "graph contains a cycle");
  return order;
}

bool is_acyclic(const Dag& dag) {
  try {
    (void)topological_order(dag);
    return true;
  } catch (const Error&) {
    return false;
  }
}

namespace {

DynamicBitset bfs_reach(const Dag& dag, NodeId start, bool forward) {
  DynamicBitset seen(dag.num_nodes());
  std::vector<NodeId> stack{start};
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    const auto& next = forward ? dag.successors(v) : dag.predecessors(v);
    for (const NodeId w : next) {
      if (!seen.test(w)) {
        seen.set(w);
        stack.push_back(w);
      }
    }
  }
  // `start` itself is excluded unless lying on a cycle; the model requires
  // acyclic graphs, where self-reachability is impossible.
  return seen;
}

}  // namespace

DynamicBitset ancestors(const Dag& dag, NodeId v) {
  return bfs_reach(dag, v, /*forward=*/false);
}

DynamicBitset descendants(const Dag& dag, NodeId v) {
  return bfs_reach(dag, v, /*forward=*/true);
}

bool reachable(const Dag& dag, NodeId from, NodeId to) {
  return descendants(dag, from).test(to);
}

std::vector<DynamicBitset> transitive_closure(const Dag& dag) {
  const std::size_t n = dag.num_nodes();
  const auto order = topological_order(dag);
  std::vector<DynamicBitset> reach(n, DynamicBitset(n));
  // Process in reverse topological order: reach[v] = union over successors w
  // of ({w} ∪ reach[w]).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId v = *it;
    for (const NodeId w : dag.successors(v)) {
      reach[v].set(w);
      reach[v] |= reach[w];
    }
  }
  return reach;
}

std::vector<std::pair<NodeId, NodeId>> transitive_edges(const Dag& dag) {
  const auto reach = transitive_closure(dag);
  std::vector<std::pair<NodeId, NodeId>> out;
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (const NodeId w : dag.successors(u)) {
      // (u, w) is transitive iff some other successor x of u reaches w.
      for (const NodeId x : dag.successors(u)) {
        if (x != w && reach[x].test(w)) {
          out.emplace_back(u, w);
          break;
        }
      }
    }
  }
  return out;
}

bool is_transitively_reduced(const Dag& dag) {
  return transitive_edges(dag).empty();
}

Dag transitive_reduction(const Dag& dag) {
  Dag out;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    out.add_node(dag.node(v));
  }
  // transitive_edges returns edges grouped by source ascending and, within
  // a source, in adjacency order — not a sorted sequence.  Sort once and
  // binary-search each edge (the historical std::find made this O(E·R)).
  auto redundant = transitive_edges(dag);
  std::sort(redundant.begin(), redundant.end());
  const auto is_redundant = [&](NodeId u, NodeId w) {
    return std::binary_search(redundant.begin(), redundant.end(),
                              std::make_pair(u, w));
  };
  for (const auto& [u, w] : dag.edges()) {
    if (!is_redundant(u, w)) out.add_edge(u, w);
  }
  return out;
}

}  // namespace hedra::graph
