#include "graph/flat_dag.h"

#include <algorithm>

namespace hedra::graph {

FlatDag::FlatDag(const Dag& dag) : source_(&dag) {
  const std::size_t n = dag.num_nodes();
  wcet_.resize(n);
  device_.resize(n);
  sync_.resize(n);
  succ_off_.resize(n + 1, 0);
  pred_off_.resize(n + 1, 0);
  succ_.reserve(dag.num_edges());
  pred_.reserve(dag.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = dag.node(v);
    wcet_[v] = node.wcet;
    device_[v] = node.device;
    sync_[v] = node.sync ? 1 : 0;
    max_device_ = std::max(max_device_, node.device);
    if (node.device != kHostDevice) ++num_offload_;
    succ_off_[v + 1] =
        succ_off_[v] + static_cast<std::uint32_t>(dag.out_degree(v));
    for (const NodeId w : dag.successors(v)) succ_.push_back(w);
    pred_off_[v + 1] =
        pred_off_[v] + static_cast<std::uint32_t>(dag.in_degree(v));
    for (const NodeId p : dag.predecessors(v)) pred_.push_back(p);
  }
  topo_.resize(n);
  detail::kahn_order_into(n, succ_off_.data(), succ_.data(), pred_off_.data(),
                          topo_.data());
}

}  // namespace hedra::graph
