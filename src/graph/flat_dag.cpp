#include "graph/flat_dag.h"

#include <algorithm>
#include <queue>

namespace hedra::graph {

namespace {

/// Kahn with a min-heap on node id — byte-identical order to
/// graph::topological_order(Dag).  Throws on cyclic input.
std::vector<NodeId> kahn_order(std::size_t n,
                               const std::vector<std::uint32_t>& succ_off,
                               const std::vector<NodeId>& succ,
                               const std::vector<std::uint32_t>& pred_off) {
  std::vector<std::uint32_t> in_deg(n);
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId v = 0; v < n; ++v) {
    in_deg[v] = pred_off[v + 1] - pred_off[v];
    if (in_deg[v] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId v = ready.top();
    ready.pop();
    order.push_back(v);
    for (std::uint32_t e = succ_off[v]; e < succ_off[v + 1]; ++e) {
      if (--in_deg[succ[e]] == 0) ready.push(succ[e]);
    }
  }
  HEDRA_REQUIRE(order.size() == n, "graph contains a cycle");
  return order;
}

}  // namespace

FlatDag::FlatDag(const Dag& dag) : source_(&dag) {
  const std::size_t n = dag.num_nodes();
  wcet_.resize(n);
  device_.resize(n);
  sync_.resize(n);
  succ_off_.resize(n + 1, 0);
  pred_off_.resize(n + 1, 0);
  succ_.reserve(dag.num_edges());
  pred_.reserve(dag.num_edges());
  for (NodeId v = 0; v < n; ++v) {
    const Node& node = dag.node(v);
    wcet_[v] = node.wcet;
    device_[v] = node.device;
    sync_[v] = node.sync ? 1 : 0;
    max_device_ = std::max(max_device_, node.device);
    if (node.device != kHostDevice) ++num_offload_;
    succ_off_[v + 1] =
        succ_off_[v] + static_cast<std::uint32_t>(dag.out_degree(v));
    for (const NodeId w : dag.successors(v)) succ_.push_back(w);
    pred_off_[v + 1] =
        pred_off_[v] + static_cast<std::uint32_t>(dag.in_degree(v));
    for (const NodeId p : dag.predecessors(v)) pred_.push_back(p);
  }
  topo_ = kahn_order(n, succ_off_, succ_, pred_off_);
}

}  // namespace hedra::graph
