#include "graph/dag.h"

#include <algorithm>

namespace hedra::graph {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kHost:
      return "host";
    case NodeKind::kOffload:
      return "offload";
    case NodeKind::kSync:
      return "sync";
  }
  return "?";
}

NodeId Dag::add_node(Time wcet, NodeKind kind, std::string label) {
  Node node;
  node.wcet = wcet;
  node.device = kind == NodeKind::kOffload ? DeviceId{1} : kHostDevice;
  node.sync = kind == NodeKind::kSync;
  node.label = std::move(label);
  return add_node(node);
}

NodeId Dag::add_node_on(Time wcet, DeviceId device, std::string label) {
  Node node;
  node.wcet = wcet;
  node.device = device;
  node.label = std::move(label);
  return add_node(node);
}

NodeId Dag::add_node(const Node& node) {
  HEDRA_REQUIRE(node.wcet >= 0, "node WCET must be non-negative");
  HEDRA_REQUIRE(!node.sync || node.wcet == 0,
                "sync nodes must have zero WCET");
  HEDRA_REQUIRE(!node.sync || node.device == kHostDevice,
                "sync nodes must stay on the host");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  Node stored = node;
  if (stored.label.empty()) {
    switch (stored.kind()) {
      case NodeKind::kHost:
        stored.label = "v" + std::to_string(id + 1);
        break;
      case NodeKind::kOffload:
        stored.label = stored.device == 1
                           ? "vOff"
                           : "vOff" + std::to_string(stored.device);
        break;
      case NodeKind::kSync:
        stored.label = "vSync";
        break;
    }
  }
  nodes_.push_back(std::move(stored));
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void Dag::add_edge(NodeId from, NodeId to) {
  check_id(from);
  check_id(to);
  HEDRA_REQUIRE(from != to, "self-loop edges are not allowed");
  HEDRA_REQUIRE(!has_edge(from, to), "duplicate edge");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++num_edges_;
}

void Dag::remove_edge(NodeId from, NodeId to) {
  check_id(from);
  check_id(to);
  auto& out = succ_[from];
  const auto out_it = std::find(out.begin(), out.end(), to);
  HEDRA_REQUIRE(out_it != out.end(), "edge to remove does not exist");
  out.erase(out_it);
  auto& in = pred_[to];
  const auto in_it = std::find(in.begin(), in.end(), from);
  HEDRA_ASSERT(in_it != in.end());
  in.erase(in_it);
  --num_edges_;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  check_id(from);
  check_id(to);
  const auto& out = succ_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

void Dag::set_wcet(NodeId id, Time wcet) {
  check_id(id);
  HEDRA_REQUIRE(wcet >= 0, "node WCET must be non-negative");
  HEDRA_REQUIRE(!nodes_[id].sync || wcet == 0,
                "sync nodes must have zero WCET");
  nodes_[id].wcet = wcet;
}

void Dag::set_device(NodeId id, DeviceId device) {
  check_id(id);
  HEDRA_REQUIRE(!nodes_[id].sync || device == kHostDevice,
                "sync nodes must stay on the host");
  nodes_[id].device = device;
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pred_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (succ_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Dag::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId from = 0; from < nodes_.size(); ++from) {
    for (const NodeId to : succ_[from]) out.emplace_back(from, to);
  }
  return out;
}

std::vector<NodeId> Dag::offload_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].device != kHostDevice) out.push_back(id);
  }
  return out;
}

std::optional<NodeId> Dag::offload_node() const {
  const auto all = offload_nodes();
  if (all.empty()) return std::nullopt;
  HEDRA_REQUIRE(all.size() == 1,
                "graph has multiple offload nodes; use offload_nodes()");
  return all.front();
}

std::vector<NodeId> Dag::nodes_on(DeviceId device) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].device == device) out.push_back(id);
  }
  return out;
}

Time Dag::volume_on(DeviceId device) const noexcept {
  Time total = 0;
  for (const auto& n : nodes_) {
    if (n.device == device) total += n.wcet;
  }
  return total;
}

std::vector<DeviceId> Dag::device_ids() const {
  std::vector<DeviceId> out;
  for (const auto& n : nodes_) {
    if (n.device != kHostDevice) out.push_back(n.device);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

DeviceId Dag::max_device() const noexcept {
  DeviceId max = kHostDevice;
  for (const auto& n : nodes_) max = std::max(max, n.device);
  return max;
}

Time Dag::volume() const noexcept {
  Time total = 0;
  for (const auto& n : nodes_) total += n.wcet;
  return total;
}

Time Dag::host_volume() const noexcept {
  return volume_on(kHostDevice);
}

}  // namespace hedra::graph
