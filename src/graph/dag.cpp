#include "graph/dag.h"

#include <algorithm>

namespace hedra::graph {

const char* to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::kHost:
      return "host";
    case NodeKind::kOffload:
      return "offload";
    case NodeKind::kSync:
      return "sync";
  }
  return "?";
}

NodeId Dag::add_node(Time wcet, NodeKind kind, std::string label) {
  HEDRA_REQUIRE(wcet >= 0, "node WCET must be non-negative");
  HEDRA_REQUIRE(kind != NodeKind::kSync || wcet == 0,
                "sync nodes must have zero WCET");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (label.empty()) {
    switch (kind) {
      case NodeKind::kHost:
        label = "v" + std::to_string(id + 1);
        break;
      case NodeKind::kOffload:
        label = "vOff";
        break;
      case NodeKind::kSync:
        label = "vSync";
        break;
    }
  }
  nodes_.push_back(Node{wcet, kind, std::move(label)});
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void Dag::add_edge(NodeId from, NodeId to) {
  check_id(from);
  check_id(to);
  HEDRA_REQUIRE(from != to, "self-loop edges are not allowed");
  HEDRA_REQUIRE(!has_edge(from, to), "duplicate edge");
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++num_edges_;
}

void Dag::remove_edge(NodeId from, NodeId to) {
  check_id(from);
  check_id(to);
  auto& out = succ_[from];
  const auto out_it = std::find(out.begin(), out.end(), to);
  HEDRA_REQUIRE(out_it != out.end(), "edge to remove does not exist");
  out.erase(out_it);
  auto& in = pred_[to];
  const auto in_it = std::find(in.begin(), in.end(), from);
  HEDRA_ASSERT(in_it != in.end());
  in.erase(in_it);
  --num_edges_;
}

bool Dag::has_edge(NodeId from, NodeId to) const {
  check_id(from);
  check_id(to);
  const auto& out = succ_[from];
  return std::find(out.begin(), out.end(), to) != out.end();
}

void Dag::set_wcet(NodeId id, Time wcet) {
  check_id(id);
  HEDRA_REQUIRE(wcet >= 0, "node WCET must be non-negative");
  HEDRA_REQUIRE(nodes_[id].kind != NodeKind::kSync || wcet == 0,
                "sync nodes must have zero WCET");
  nodes_[id].wcet = wcet;
}

std::vector<NodeId> Dag::sources() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (pred_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Dag::sinks() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (succ_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<std::pair<NodeId, NodeId>> Dag::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(num_edges_);
  for (NodeId from = 0; from < nodes_.size(); ++from) {
    for (const NodeId to : succ_[from]) out.emplace_back(from, to);
  }
  return out;
}

std::vector<NodeId> Dag::offload_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kOffload) out.push_back(id);
  }
  return out;
}

std::optional<NodeId> Dag::offload_node() const {
  const auto all = offload_nodes();
  if (all.empty()) return std::nullopt;
  HEDRA_REQUIRE(all.size() == 1,
                "graph has multiple offload nodes; use offload_nodes()");
  return all.front();
}

Time Dag::volume() const noexcept {
  Time total = 0;
  for (const auto& n : nodes_) total += n.wcet;
  return total;
}

Time Dag::host_volume() const noexcept {
  Time total = 0;
  for (const auto& n : nodes_) {
    if (n.kind != NodeKind::kOffload) total += n.wcet;
  }
  return total;
}

}  // namespace hedra::graph
