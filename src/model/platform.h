#pragma once

/// \file platform.h
/// First-class description of the heterogeneous execution platform.
///
/// The paper's system model (§2) fixes the platform implicitly: m identical
/// host cores plus ONE accelerator device.  The multi-device extension makes
/// the platform explicit — m identical host cores plus K *named* accelerator
/// device classes (GPU, FPGA, DSP, ...), each providing a single execution
/// unit, exactly as the paper's accelerator does.  Device ids follow the
/// graph convention: device 0 is the host pool and device d ∈ [1, K] is the
/// d-th accelerator class (see graph::DeviceId).
///
/// A Platform is pure data; compatibility with a concrete DAG (every node
/// placed on an existing device) is checked by check_supports / supports.
/// Per-device multiplicity (> 1 unit per accelerator class) is future work —
/// the analysis bound and the simulator both assume one unit per class.

#include <string>
#include <vector>

#include "graph/dag.h"

namespace hedra::model {

/// m identical host cores + K named single-unit accelerator device classes.
struct Platform {
  int cores = 2;                          ///< m
  std::vector<std::string> device_names;  ///< index i names device id i + 1

  /// Number of accelerator device classes, K.
  [[nodiscard]] int num_devices() const noexcept {
    return static_cast<int>(device_names.size());
  }

  /// Name of accelerator device d ∈ [1, K]; throws on out-of-range ids.
  [[nodiscard]] const std::string& device_name(graph::DeviceId device) const;

  /// Host-only platform (the homogeneous baseline).
  [[nodiscard]] static Platform homogeneous(int cores);

  /// The paper's platform: m cores + one accelerator.
  [[nodiscard]] static Platform single_accelerator(int cores,
                                                   std::string name = "acc");

  /// m cores + K accelerators named "acc1".."accK".
  [[nodiscard]] static Platform symmetric(int cores, int num_devices);

  /// Parses "m" or "m:name1,name2,..." (e.g. "4:gpu,dsp" = 4 host cores,
  /// device 1 "gpu", device 2 "dsp").  Throws hedra::Error on malformed
  /// specs.  Inverse of spec().
  [[nodiscard]] static Platform parse(const std::string& text);

  /// Machine-readable "m:name1,name2,..." (just "m" when K = 0).
  [[nodiscard]] std::string spec() const;

  /// Human-readable, e.g. "4 host cores + accelerators gpu(d1), dsp(d2)".
  [[nodiscard]] std::string describe() const;

  /// Throws hedra::Error if cores < 1 or any device name is empty or
  /// duplicated.
  void validate() const;
};

/// Human-readable placement violations of `dag` on `platform` (nodes placed
/// on devices the platform does not provide); empty means compatible.
[[nodiscard]] std::vector<std::string> check_supports(const Platform& platform,
                                                      const graph::Dag& dag);

/// True iff every node of `dag` is placed on a device `platform` provides.
[[nodiscard]] bool supports(const Platform& platform, const graph::Dag& dag);

/// Smallest platform accommodating `dag`: m host cores plus one device class
/// per accelerator id in [1, max_device], named "acc<d>".
[[nodiscard]] Platform platform_for(const graph::Dag& dag, int cores);

}  // namespace hedra::model
