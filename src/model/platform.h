#pragma once

/// \file platform.h
/// First-class description of the heterogeneous execution platform.
///
/// The paper's system model (§2) fixes the platform implicitly: m identical
/// host cores plus ONE accelerator device.  The multi-device extension makes
/// the platform explicit — m identical host cores plus K *named* accelerator
/// device classes (GPU, FPGA, DSP, ...).  Each class d provides n_d >= 1
/// identical execution units (the paper's accelerator is the special case
/// n_d = 1, which every API here defaults to).  Device ids follow the graph
/// convention: device 0 is the host pool and device d ∈ [1, K] is the d-th
/// accelerator class (see graph::DeviceId).
///
/// A Platform is pure data; compatibility with a concrete DAG (every node
/// placed on an existing device) is checked by check_supports / supports.
/// The spec syntax is "m:name1,name2,..." with an optional "*units" suffix
/// per class — "4:gpu*2,dsp" is 4 host cores, a 2-unit GPU class and a
/// single-unit DSP — so every pre-multiplicity spec round-trips unchanged.

#include <string>
#include <vector>

#include "graph/dag.h"

namespace hedra::model {

/// m identical host cores + K named accelerator device classes with n_d
/// execution units each.
struct Platform {
  int cores = 2;                          ///< m
  std::vector<std::string> device_names;  ///< index i names device id i + 1
  /// Execution units per device class, aligned with device_names.  An empty
  /// vector — the pre-multiplicity representation — means one unit per
  /// class; validate() also accepts exactly one entry per class.
  std::vector<int> device_units;

  /// Number of accelerator device classes, K.
  [[nodiscard]] int num_devices() const noexcept {
    return static_cast<int>(device_names.size());
  }

  /// Name of accelerator device d ∈ [1, K]; throws on out-of-range ids.
  [[nodiscard]] const std::string& device_name(graph::DeviceId device) const;

  /// Execution units n_d of accelerator device d ∈ [1, K]; throws on
  /// out-of-range ids.  Entries missing from device_units — including the
  /// whole empty vector — count as 1.
  [[nodiscard]] int units_of(graph::DeviceId device) const;

  /// True iff some device class has more than one execution unit.
  [[nodiscard]] bool has_multi_units() const noexcept;

  /// Host-only platform (the homogeneous baseline).
  [[nodiscard]] static Platform homogeneous(int cores);

  /// The paper's platform: m cores + one single-unit accelerator.
  [[nodiscard]] static Platform single_accelerator(int cores,
                                                   std::string name = "acc");

  /// m cores + K accelerators named "acc1".."accK", `units` execution units
  /// each (default 1, the pre-multiplicity shape).
  [[nodiscard]] static Platform symmetric(int cores, int num_devices,
                                          int units = 1);

  /// Parses "m" or "m:name1,name2,..." where every name may carry a
  /// "*units" multiplicity suffix (e.g. "4:gpu*2,dsp" = 4 host cores, a
  /// 2-unit "gpu" class and a 1-unit "dsp" class).  Throws hedra::Error —
  /// always naming the offending spec — on malformed input: missing or
  /// non-numeric core count, empty or duplicate device names, names
  /// containing spec metacharacters, and missing or non-positive unit
  /// counts.  Inverse of spec().
  [[nodiscard]] static Platform parse(const std::string& text);

  /// Machine-readable "m:name1,name2*units,..." (just "m" when K = 0;
  /// "*units" only where n_d > 1, so single-unit platforms round-trip to
  /// the historical syntax).
  [[nodiscard]] std::string spec() const;

  /// Human-readable, e.g. "4 host cores + accelerators gpu(d1 x2), dsp(d2)".
  [[nodiscard]] std::string describe() const;

  /// Throws hedra::Error if cores < 1, any device name is empty, duplicated
  /// or contains spec metacharacters (':', ',', '*', whitespace), or
  /// device_units is neither empty nor one positive entry per class.
  void validate() const;

  /// Same platform shape (units compared via units_of, so an empty
  /// device_units equals an explicit all-ones vector).
  friend bool operator==(const Platform& a, const Platform& b);
};

/// Human-readable placement violations of `dag` on `platform` (nodes placed
/// on devices the platform does not provide); empty means compatible.
[[nodiscard]] std::vector<std::string> check_supports(const Platform& platform,
                                                      const graph::Dag& dag);

/// True iff every node of `dag` is placed on a device `platform` provides.
[[nodiscard]] bool supports(const Platform& platform, const graph::Dag& dag);

/// Smallest platform accommodating `dag`: m host cores plus one single-unit
/// device class per accelerator id in [1, max_device], named "acc<d>".
[[nodiscard]] Platform platform_for(const graph::Dag& dag, int cores);

}  // namespace hedra::model
