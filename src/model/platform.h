#pragma once

/// \file platform.h
/// First-class description of the heterogeneous execution platform.
///
/// The paper's system model (§2) fixes the platform implicitly: m identical
/// host cores plus ONE accelerator device.  The multi-device extension makes
/// the platform explicit — m identical host cores plus K *named* accelerator
/// device classes (GPU, FPGA, DSP, ...).  Each class d provides n_d >= 1
/// identical execution units (the paper's accelerator is the special case
/// n_d = 1, which every API here defaults to).  Device ids follow the graph
/// convention: device 0 is the host pool and device d ∈ [1, K] is the d-th
/// accelerator class (see graph::DeviceId).
///
/// A Platform is pure data; compatibility with a concrete DAG (every node
/// placed on an existing device) is checked by check_supports / supports.
/// The spec syntax is "m:name1,name2,..." with an optional "*units" suffix
/// per class — "4:gpu*2,dsp" is 4 host cores, a 2-unit GPU class and a
/// single-unit DSP — so every pre-multiplicity spec round-trips unchanged.
/// Each class may additionally carry a "@speedup" factor ("4:gpu*2@3.0,
/// dsp@1.5"): device d runs nominal WCETs speedup_d times faster than the
/// reference device the WCETs were measured on.  The default 1.0 is omitted
/// on output, so every pre-speedup spec still round-trips byte-identically.

#include <string>
#include <vector>

#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::model {

/// m identical host cores + K named accelerator device classes with n_d
/// execution units each.
struct Platform {
  int cores = 2;                          ///< m
  std::vector<std::string> device_names;  ///< index i names device id i + 1
  /// Execution units per device class, aligned with device_names.  An empty
  /// vector — the pre-multiplicity representation — means one unit per
  /// class; validate() also accepts exactly one entry per class.
  std::vector<int> device_units;
  /// WCET scaling per device class, aligned with device_names: device d
  /// executes a nominal WCET of C in C/speedup_d ticks (heterogeneous WCET
  /// scaling; GPU-vs-DSP asymmetry).  Empty — the pre-speedup
  /// representation — means 1 (no scaling) everywhere; validate() also
  /// accepts exactly one strictly positive entry per class.  Exact
  /// rationals, so "@1.5" scales by exactly 3/2.
  std::vector<Frac> device_speedup;

  /// Number of accelerator device classes, K.
  [[nodiscard]] int num_devices() const noexcept {
    return static_cast<int>(device_names.size());
  }

  /// Name of accelerator device d ∈ [1, K]; throws on out-of-range ids.
  [[nodiscard]] const std::string& device_name(graph::DeviceId device) const;

  /// Execution units n_d of accelerator device d ∈ [1, K]; throws on
  /// out-of-range ids.  Entries missing from device_units — including the
  /// whole empty vector — count as 1.
  [[nodiscard]] int units_of(graph::DeviceId device) const;

  /// True iff some device class has more than one execution unit.
  [[nodiscard]] bool has_multi_units() const noexcept;

  /// WCET speedup of accelerator device d ∈ [1, K]; throws on out-of-range
  /// ids.  Entries missing from device_speedup — including the whole empty
  /// vector — count as 1.
  [[nodiscard]] Frac speedup_of(graph::DeviceId device) const;

  /// True iff some device class has a speedup factor different from 1.
  [[nodiscard]] bool has_speedups() const noexcept;

  /// Host-only platform (the homogeneous baseline).
  [[nodiscard]] static Platform homogeneous(int cores);

  /// The paper's platform: m cores + one single-unit accelerator.
  [[nodiscard]] static Platform single_accelerator(int cores,
                                                   std::string name = "acc");

  /// m cores + K accelerators named "acc1".."accK", `units` execution units
  /// each (default 1, the pre-multiplicity shape).
  [[nodiscard]] static Platform symmetric(int cores, int num_devices,
                                          int units = 1);

  /// Parses "m" or "m:name1,name2,..." where every name may carry a
  /// "*units" multiplicity suffix and/or a "@speedup" factor (e.g.
  /// "4:gpu*2@3.0,dsp@1.5" = 4 host cores, a 2-unit 3×-speed "gpu" class
  /// and a 1-unit 1.5×-speed "dsp" class; "*units" must precede "@").
  /// Throws hedra::Error — always naming the offending spec — on malformed
  /// input: missing or non-numeric core count, empty or duplicate device
  /// names, names containing spec metacharacters, missing or non-positive
  /// unit counts, malformed or non-positive speedups, and device counts
  /// beyond kMaxParsedDevices.  Inverse of spec().
  [[nodiscard]] static Platform parse(const std::string& text);

  /// Device-count cap for parse(): DeviceId is narrow and every analysis
  /// is linear-or-worse in K, so a spec listing thousands of devices is
  /// hostile input, not a real platform.
  static constexpr std::size_t kMaxParsedDevices = 1024;

  /// Machine-readable "m:name1,name2*units@speedup,..." (just "m" when
  /// K = 0; "*units" only where n_d > 1 and "@speedup" only where
  /// speedup ≠ 1, so single-unit unit-speed platforms round-trip to the
  /// historical syntax).
  [[nodiscard]] std::string spec() const;

  /// Human-readable, e.g. "4 host cores + accelerators gpu(d1 x2), dsp(d2)".
  [[nodiscard]] std::string describe() const;

  /// Throws hedra::Error if cores < 1, any device name is empty, duplicated
  /// or contains spec metacharacters (':', ',', '*', '@', whitespace),
  /// device_units is neither empty nor one positive entry per class, or
  /// device_speedup is neither empty nor one strictly positive entry per
  /// class.
  void validate() const;

  /// Same platform shape (units compared via units_of, so an empty
  /// device_units equals an explicit all-ones vector).
  friend bool operator==(const Platform& a, const Platform& b);
};

/// Human-readable placement violations of `dag` on `platform` (nodes placed
/// on devices the platform does not provide); empty means compatible.
[[nodiscard]] std::vector<std::string> check_supports(const Platform& platform,
                                                      const graph::Dag& dag);

/// True iff every node of `dag` is placed on a device `platform` provides.
[[nodiscard]] bool supports(const Platform& platform, const graph::Dag& dag);

/// Smallest platform accommodating `dag`: m host cores plus one single-unit
/// device class per accelerator id in [1, max_device], named "acc<d>".
[[nodiscard]] Platform platform_for(const graph::Dag& dag, int cores);

}  // namespace hedra::model
