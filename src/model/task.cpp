#include "model/task.h"

#include <utility>

#include "graph/critical_path.h"

namespace hedra::model {

namespace {

void check_timing(Time period, Time deadline) {
  HEDRA_REQUIRE(deadline >= 1, "task deadline must be positive");
  HEDRA_REQUIRE(period >= deadline,
                "constrained-deadline model requires D <= T");
}

}  // namespace

DagTask::DagTask(Dag dag, Time period, Time deadline, std::string name)
    : dag_(std::move(dag)),
      period_(period),
      deadline_(deadline),
      name_(std::move(name)) {
  check_timing(period_, deadline_);
}

DagTask::DagTask(std::shared_ptr<const graph::FlatDagBatch> batch,
                 std::size_t index, Time period, Time deadline,
                 std::string name)
    : batch_(std::move(batch)),
      batch_index_(index),
      period_(period),
      deadline_(deadline),
      name_(std::move(name)) {
  HEDRA_REQUIRE(batch_ != nullptr, "arena-backed task needs a batch");
  HEDRA_REQUIRE(batch_index_ < batch_->size(),
                "arena record index out of range");
  check_timing(period_, deadline_);
}

DagTask DagTask::implicit(Dag dag, Time period, std::string name) {
  return DagTask(std::move(dag), period, period, std::move(name));
}

const Dag& DagTask::dag() const {
  if (!dag_) dag_ = batch_->materialize(batch_index_);
  return *dag_;
}

Dag& DagTask::mutable_dag() {
  if (!dag_) dag_ = batch_->materialize(batch_index_);
  batch_.reset();  // the arena no longer reflects upcoming mutations
  return *dag_;
}

graph::FlatView DagTask::flat_view() const {
  HEDRA_REQUIRE(batch_ != nullptr,
                "flat_view() requires an arena-backed task");
  return batch_->view(batch_index_);
}

Frac DagTask::utilization() const {
  if (batch_ != nullptr) {
    Time volume = 0;
    for (const Time c : flat_view().wcets()) volume += c;
    return Frac(volume, period_);
  }
  return Frac(dag_->volume(), period_);
}

Frac DagTask::density() const {
  if (batch_ != nullptr) {
    Time volume = 0;
    for (const Time c : flat_view().wcets()) volume += c;
    return Frac(volume, deadline_);
  }
  return Frac(dag_->volume(), deadline_);
}

Frac DagTask::host_utilization() const {
  if (batch_ != nullptr) {
    const graph::FlatView view = flat_view();
    Time host = 0;
    for (graph::NodeId v = 0; v < view.num_nodes(); ++v) {
      if (view.device(v) == graph::kHostDevice) host += view.wcet(v);
    }
    return Frac(host, period_);
  }
  return Frac(dag_->host_volume(), period_);
}

Frac DagTask::length_ratio() const {
  if (batch_ != nullptr) {
    return Frac(graph::critical_path_length(flat_view()), deadline_);
  }
  return Frac(graph::critical_path_length(*dag_), deadline_);
}

}  // namespace hedra::model
