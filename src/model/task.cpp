#include "model/task.h"

#include "graph/critical_path.h"

namespace hedra::model {

DagTask::DagTask(Dag dag, Time period, Time deadline, std::string name)
    : dag_(std::move(dag)),
      period_(period),
      deadline_(deadline),
      name_(std::move(name)) {
  HEDRA_REQUIRE(deadline_ >= 1, "task deadline must be positive");
  HEDRA_REQUIRE(period_ >= deadline_,
                "constrained-deadline model requires D <= T");
}

DagTask DagTask::implicit(Dag dag, Time period, std::string name) {
  return DagTask(std::move(dag), period, period, std::move(name));
}

Frac DagTask::utilization() const { return Frac(dag_.volume(), period_); }

Frac DagTask::density() const { return Frac(dag_.volume(), deadline_); }

Frac DagTask::host_utilization() const {
  return Frac(dag_.host_volume(), period_);
}

Frac DagTask::length_ratio() const {
  return Frac(graph::critical_path_length(dag_), deadline_);
}

}  // namespace hedra::model
