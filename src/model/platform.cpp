#include "model/platform.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace hedra::model {

namespace {

/// All parse errors carry the full offending spec so a bad entry in a
/// config file or CLI flag can be found verbatim.
[[noreturn]] void parse_fail(const std::string& text,
                             const std::string& reason) {
  throw Error("malformed platform spec '" + text + "': " + reason);
}

}  // namespace

const std::string& Platform::device_name(graph::DeviceId device) const {
  HEDRA_REQUIRE(device >= 1 && device <= device_names.size(),
                "platform has no device id " + std::to_string(device));
  return device_names[device - 1];
}

int Platform::units_of(graph::DeviceId device) const {
  HEDRA_REQUIRE(device >= 1 && device <= device_names.size(),
                "platform has no device id " + std::to_string(device));
  // Entries beyond device_units mean one unit, the same convention
  // ScheduleTrace::units_of and ChainWeighting::units_of use — a Platform
  // is aggregate-constructible pure data, so a shorter-than-names vector
  // can be observed before validate() runs.
  const std::size_t index = static_cast<std::size_t>(device) - 1;
  return index < device_units.size() ? device_units[index] : 1;
}

bool Platform::has_multi_units() const noexcept {
  return std::any_of(device_units.begin(), device_units.end(),
                     [](int units) { return units > 1; });
}

Frac Platform::speedup_of(graph::DeviceId device) const {
  HEDRA_REQUIRE(device >= 1 && device <= device_names.size(),
                "platform has no device id " + std::to_string(device));
  // Same missing-entries-mean-default convention as units_of.
  const std::size_t index = static_cast<std::size_t>(device) - 1;
  return index < device_speedup.size() ? device_speedup[index] : Frac(1);
}

bool Platform::has_speedups() const noexcept {
  return std::any_of(device_speedup.begin(), device_speedup.end(),
                     [](const Frac& s) { return s != Frac(1); });
}

Platform Platform::homogeneous(int cores) {
  Platform platform;
  platform.cores = cores;
  platform.validate();
  return platform;
}

Platform Platform::single_accelerator(int cores, std::string name) {
  Platform platform;
  platform.cores = cores;
  platform.device_names.push_back(std::move(name));
  platform.validate();
  return platform;
}

Platform Platform::symmetric(int cores, int num_devices, int units) {
  HEDRA_REQUIRE(num_devices >= 0, "device count must be non-negative");
  HEDRA_REQUIRE(units >= 1, "every device class needs >= 1 execution unit");
  Platform platform;
  platform.cores = cores;
  for (int d = 1; d <= num_devices; ++d) {
    platform.device_names.push_back("acc" + std::to_string(d));
  }
  if (units > 1) platform.device_units.assign(num_devices, units);
  platform.validate();
  return platform;
}

Platform Platform::parse(const std::string& text) {
  Platform platform;
  const auto colon = text.find(':');
  const std::string cores_text(trim(text.substr(0, colon)));
  if (cores_text.empty()) parse_fail(text, "missing the core count");
  try {
    platform.cores = static_cast<int>(parse_int(cores_text));
  } catch (const Error&) {
    parse_fail(text, "core count '" + cores_text + "' is not an integer");
  }
  if (colon != std::string::npos) {
    const std::string device_list = text.substr(colon + 1);
    if (trim(device_list).empty()) {
      parse_fail(text, "':' must be followed by at least one device name");
    }
    for (const auto& entry : split(device_list, ',')) {
      std::string item(trim(entry));
      if (item.empty()) parse_fail(text, "empty device entry");
      if (platform.device_names.size() >= kMaxParsedDevices) {
        parse_fail(text, "more than " + std::to_string(kMaxParsedDevices) +
                             " devices");
      }
      // "name[*units][@speedup]" — strip the speedup suffix first so a
      // "*units" never swallows an "@".
      Frac speedup(1);
      const auto at = item.find('@');
      const auto star = item.find('*');
      if (at != std::string::npos) {
        if (star != std::string::npos && star > at) {
          parse_fail(text, "'*units' must precede '@speedup' in '" + item +
                               "'");
        }
        const std::string speedup_text(trim(item.substr(at + 1)));
        try {
          speedup = parse_frac(speedup_text);
        } catch (const Error&) {
          parse_fail(text, "speedup '" + speedup_text +
                               "' is not a rational number");
        }
        if (speedup <= Frac(0)) {
          parse_fail(text, "speedup '" + speedup_text +
                               "' must be strictly positive");
        }
        item = std::string(trim(item.substr(0, at)));
      }
      std::string name(trim(item.substr(0, star)));
      int units = 1;
      if (star != std::string::npos) {
        const std::string units_text(trim(item.substr(star + 1)));
        try {
          units = static_cast<int>(parse_int(units_text));
        } catch (const Error&) {
          parse_fail(text, "unit count '" + units_text + "' of device '" +
                               name + "' is not an integer");
        }
        if (units < 1) {
          parse_fail(text, "device '" + name + "' needs >= 1 unit, got " +
                               std::to_string(units));
        }
      }
      platform.device_names.push_back(std::move(name));
      platform.device_units.push_back(units);
      platform.device_speedup.push_back(speedup);
    }
  }
  try {
    platform.validate();
  } catch (const Error& e) {
    parse_fail(text, e.what());
  }
  return platform;
}

std::string Platform::spec() const {
  std::ostringstream os;
  os << cores;
  for (std::size_t i = 0; i < device_names.size(); ++i) {
    const auto device = static_cast<graph::DeviceId>(i + 1);
    os << (i == 0 ? ':' : ',') << device_names[i];
    const int units = units_of(device);
    if (units > 1) os << '*' << units;
    const Frac speedup = speedup_of(device);
    if (speedup != Frac(1)) os << '@' << frac_spec_string(speedup);
  }
  return os.str();
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << cores << " host core" << (cores == 1 ? "" : "s");
  if (device_names.empty()) {
    os << " (homogeneous)";
    return os.str();
  }
  os << " + accelerator" << (device_names.size() == 1 ? " " : "s ");
  for (std::size_t i = 0; i < device_names.size(); ++i) {
    if (i > 0) os << ", ";
    const auto device = static_cast<graph::DeviceId>(i + 1);
    os << device_names[i] << "(d" << i + 1;
    const int units = units_of(device);
    if (units > 1) os << " x" << units;
    const Frac speedup = speedup_of(device);
    if (speedup != Frac(1)) os << " @" << frac_spec_string(speedup) << "x";
    os << ")";
  }
  return os.str();
}

void Platform::validate() const {
  HEDRA_REQUIRE(cores >= 1, "platform needs at least one host core");
  for (const auto& name : device_names) {
    HEDRA_REQUIRE(!name.empty(), "accelerator device names must be non-empty");
    HEDRA_REQUIRE(name.find_first_of(":,*@ \t") == std::string::npos,
                  "accelerator device name '" + name +
                      "' contains a spec metacharacter");
    HEDRA_REQUIRE(std::count(device_names.begin(), device_names.end(), name) ==
                      1,
                  "duplicate accelerator device name '" + name + "'");
  }
  HEDRA_REQUIRE(device_units.empty() ||
                    device_units.size() == device_names.size(),
                "device_units must be empty or hold one entry per device");
  for (const int units : device_units) {
    HEDRA_REQUIRE(units >= 1, "every device class needs >= 1 execution unit");
  }
  HEDRA_REQUIRE(device_speedup.empty() ||
                    device_speedup.size() == device_names.size(),
                "device_speedup must be empty or hold one entry per device");
  for (const Frac& speedup : device_speedup) {
    HEDRA_REQUIRE(speedup > Frac(0),
                  "every device speedup must be strictly positive");
  }
}

bool operator==(const Platform& a, const Platform& b) {
  if (a.cores != b.cores || a.device_names != b.device_names) return false;
  for (std::size_t i = 0; i < a.device_names.size(); ++i) {
    const auto device = static_cast<graph::DeviceId>(i + 1);
    if (a.units_of(device) != b.units_of(device)) return false;
    if (a.speedup_of(device) != b.speedup_of(device)) return false;
  }
  return true;
}

std::vector<std::string> check_supports(const Platform& platform,
                                        const graph::Dag& dag) {
  std::vector<std::string> issues;
  const auto num_devices = static_cast<graph::DeviceId>(platform.num_devices());
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    const graph::DeviceId device = dag.device(v);
    if (device > num_devices) {
      issues.push_back("node " + dag.label(v) + " is placed on device " +
                       std::to_string(device) + " but the platform has only " +
                       std::to_string(platform.num_devices()) +
                       " accelerator device(s)");
    }
  }
  return issues;
}

bool supports(const Platform& platform, const graph::Dag& dag) {
  return check_supports(platform, dag).empty();
}

Platform platform_for(const graph::Dag& dag, int cores) {
  return Platform::symmetric(cores, dag.max_device());
}

}  // namespace hedra::model
