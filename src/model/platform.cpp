#include "model/platform.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace hedra::model {

const std::string& Platform::device_name(graph::DeviceId device) const {
  HEDRA_REQUIRE(device >= 1 && device <= device_names.size(),
                "platform has no device id " + std::to_string(device));
  return device_names[device - 1];
}

Platform Platform::homogeneous(int cores) {
  Platform platform;
  platform.cores = cores;
  platform.validate();
  return platform;
}

Platform Platform::single_accelerator(int cores, std::string name) {
  Platform platform;
  platform.cores = cores;
  platform.device_names.push_back(std::move(name));
  platform.validate();
  return platform;
}

Platform Platform::symmetric(int cores, int num_devices) {
  HEDRA_REQUIRE(num_devices >= 0, "device count must be non-negative");
  Platform platform;
  platform.cores = cores;
  for (int d = 1; d <= num_devices; ++d) {
    platform.device_names.push_back("acc" + std::to_string(d));
  }
  platform.validate();
  return platform;
}

Platform Platform::parse(const std::string& text) {
  Platform platform;
  const auto colon = text.find(':');
  const std::string cores_text = text.substr(0, colon);
  HEDRA_REQUIRE(!trim(cores_text).empty(),
                "platform spec '" + text + "' is missing the core count");
  platform.cores = static_cast<int>(parse_int(trim(cores_text)));
  if (colon != std::string::npos) {
    for (auto& name : split(text.substr(colon + 1), ',')) {
      platform.device_names.emplace_back(trim(name));
    }
  }
  platform.validate();
  return platform;
}

std::string Platform::spec() const {
  std::ostringstream os;
  os << cores;
  for (std::size_t i = 0; i < device_names.size(); ++i) {
    os << (i == 0 ? ':' : ',') << device_names[i];
  }
  return os.str();
}

std::string Platform::describe() const {
  std::ostringstream os;
  os << cores << " host core" << (cores == 1 ? "" : "s");
  if (device_names.empty()) {
    os << " (homogeneous)";
    return os.str();
  }
  os << " + accelerator" << (device_names.size() == 1 ? " " : "s ");
  for (std::size_t i = 0; i < device_names.size(); ++i) {
    if (i > 0) os << ", ";
    os << device_names[i] << "(d" << i + 1 << ")";
  }
  return os.str();
}

void Platform::validate() const {
  HEDRA_REQUIRE(cores >= 1, "platform needs at least one host core");
  for (const auto& name : device_names) {
    HEDRA_REQUIRE(!name.empty(), "accelerator device names must be non-empty");
    HEDRA_REQUIRE(std::count(device_names.begin(), device_names.end(), name) ==
                      1,
                  "duplicate accelerator device name '" + name + "'");
  }
}

std::vector<std::string> check_supports(const Platform& platform,
                                        const graph::Dag& dag) {
  std::vector<std::string> issues;
  const auto num_devices = static_cast<graph::DeviceId>(platform.num_devices());
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    const graph::DeviceId device = dag.device(v);
    if (device > num_devices) {
      issues.push_back("node " + dag.label(v) + " is placed on device " +
                       std::to_string(device) + " but the platform has only " +
                       std::to_string(platform.num_devices()) +
                       " accelerator device(s)");
    }
  }
  return issues;
}

bool supports(const Platform& platform, const graph::Dag& dag) {
  return check_supports(platform, dag).empty();
}

Platform platform_for(const graph::Dag& dag, int cores) {
  return Platform::symmetric(cores, dag.max_device());
}

}  // namespace hedra::model
