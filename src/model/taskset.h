#pragma once

/// \file taskset.h
/// Collections of DAG tasks.  The paper analyses a single task per
/// experiment; task sets are provided for the schedulability-study example
/// (federated-style: each task gets dedicated cores, so per-task RTA vs D
/// decides the set).

#include <vector>

#include "model/task.h"

namespace hedra::model {

/// An ordered collection of DAG tasks.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<DagTask> tasks) : tasks_(std::move(tasks)) {}

  void add(DagTask task) { tasks_.push_back(std::move(task)); }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const DagTask& operator[](std::size_t i) const {
    HEDRA_REQUIRE(i < tasks_.size(), "task index out of range");
    return tasks_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Sum of vol(G_i) / T_i across tasks.  Computed in double: periods from
  /// utilisation-driven generators are large and mutually coprime, so the
  /// exact rational sum can overflow 64-bit numerators; per-task
  /// utilisations remain exact via DagTask::utilization().
  // hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
  [[nodiscard]] double total_utilization() const;

  /// Sum of host-only utilisations (double, same rationale).
  // hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
  [[nodiscard]] double total_host_utilization() const;

 private:
  std::vector<DagTask> tasks_;
};

}  // namespace hedra::model
