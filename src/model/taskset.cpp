#include "model/taskset.h"

namespace hedra::model {

double TaskSet::total_utilization() const {
  double total = 0.0;
  for (const auto& task : tasks_) total += task.utilization().to_double();
  return total;
}

double TaskSet::total_host_utilization() const {
  double total = 0.0;
  for (const auto& task : tasks_) {
    total += task.host_utilization().to_double();
  }
  return total;
}

}  // namespace hedra::model
