#include "model/taskset.h"

namespace hedra::model {

// hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
double TaskSet::total_utilization() const {
  double total = 0.0;  // hedra-lint: allow(float-in-bound, reporting aggregate)
  for (const auto& task : tasks_) total += task.utilization().to_double();
  return total;
}

// hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
double TaskSet::total_host_utilization() const {
  double total = 0.0;  // hedra-lint: allow(float-in-bound, reporting aggregate)
  for (const auto& task : tasks_) {
    total += task.host_utilization().to_double();
  }
  return total;
}

}  // namespace hedra::model
