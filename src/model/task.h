#pragma once

/// \file task.h
/// The sporadic DAG task model (§2): `τ = <G, T, D>` where G models the
/// parallel execution, T is the minimum inter-arrival time, and D <= T is the
/// constrained relative deadline.

#include <string>

#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::model {

using graph::Dag;
using graph::NodeId;
using graph::Time;

/// A sporadic DAG task.
class DagTask {
 public:
  /// Builds τ = <G, T, D>.  Requires T >= D >= 1 (constrained deadline).
  DagTask(Dag dag, Time period, Time deadline, std::string name = "tau");

  /// Implicit-deadline convenience (D = T).
  static DagTask implicit(Dag dag, Time period, std::string name = "tau");

  [[nodiscard]] const Dag& dag() const noexcept { return dag_; }
  [[nodiscard]] Dag& mutable_dag() noexcept { return dag_; }
  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// vol(G) / T — the task's utilisation (host + accelerator workload).
  [[nodiscard]] Frac utilization() const;

  /// vol(G) / D.
  [[nodiscard]] Frac density() const;

  /// Host-only utilisation: (vol(G) - C_off) / T.
  [[nodiscard]] Frac host_utilization() const;

  /// len(G) / D — no m-core platform can meet D if this exceeds 1.
  [[nodiscard]] Frac length_ratio() const;

 private:
  Dag dag_;
  Time period_;
  Time deadline_;
  std::string name_;
};

}  // namespace hedra::model
