#pragma once

/// \file task.h
/// The sporadic DAG task model (§2): `τ = <G, T, D>` where G models the
/// parallel execution, T is the minimum inter-arrival time, and D <= T is the
/// constrained relative deadline.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "graph/dag.h"
#include "graph/flat_batch.h"
#include "util/fraction.h"

namespace hedra::model {

using graph::Dag;
using graph::NodeId;
using graph::Time;

/// A sporadic DAG task.
///
/// Two storage modes share one API:
///   - *eager*: constructed from a `Dag`, which is stored directly (the
///     classic path — file round-trips, hand-built tests, rewrites);
///   - *arena-backed*: constructed from a shared `graph::FlatDagBatch`
///     record.  The CSR arrays ARE the task's graph; `dag()` materialises a
///     field-identical `Dag` lazily, only if something actually asks for
///     the mutable adjacency-list form.  The taskset generator emits these,
///     and the contention analysis and taskset simulator run off
///     `flat_view()` without ever building a `Dag`.
class DagTask {
 public:
  /// Builds τ = <G, T, D>.  Requires T >= D >= 1 (constrained deadline).
  DagTask(Dag dag, Time period, Time deadline, std::string name = "tau");

  /// Arena-backed task: record `index` of `batch` is the graph.  The batch
  /// is shared (copies of the task stay cheap and alias the same arrays);
  /// `dag()` materialises on demand.
  DagTask(std::shared_ptr<const graph::FlatDagBatch> batch, std::size_t index,
          Time period, Time deadline, std::string name = "tau");

  /// Implicit-deadline convenience (D = T).
  static DagTask implicit(Dag dag, Time period, std::string name = "tau");

  /// The task graph.  Arena-backed tasks materialise it on first call
  /// (field-identical to the record: same wcets, devices, labels and edge
  /// order).  Not thread-safe across concurrent first calls on the SAME
  /// task object.
  [[nodiscard]] const Dag& dag() const;

  /// Mutable graph access.  Detaches an arena-backed task from its batch
  /// first (the flat view would silently go stale under mutation).
  [[nodiscard]] Dag& mutable_dag();

  /// True when the task still aliases its generation arena, i.e.
  /// flat_view() is available without materialising anything.
  [[nodiscard]] bool has_flat_view() const noexcept {
    return batch_ != nullptr;
  }

  /// CSR view of the arena record.  Requires has_flat_view().
  [[nodiscard]] graph::FlatView flat_view() const;
  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] Time deadline() const noexcept { return deadline_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// vol(G) / T — the task's utilisation (host + accelerator workload).
  [[nodiscard]] Frac utilization() const;

  /// vol(G) / D.
  [[nodiscard]] Frac density() const;

  /// Host-only utilisation: (vol(G) - C_off) / T.
  [[nodiscard]] Frac host_utilization() const;

  /// len(G) / D — no m-core platform can meet D if this exceeds 1.
  [[nodiscard]] Frac length_ratio() const;

 private:
  /// Present for eager tasks; lazily filled for arena-backed ones.
  mutable std::optional<Dag> dag_;
  std::shared_ptr<const graph::FlatDagBatch> batch_;  ///< null when eager
  std::size_t batch_index_ = 0;
  Time period_;
  Time deadline_;
  std::string name_;
};

}  // namespace hedra::model
