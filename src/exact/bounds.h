#pragma once

/// \file bounds.h
/// Lower bounds on the minimum makespan of a heterogeneous DAG on m host
/// cores plus its accelerator devices (one unit each).  Used to seed and
/// prune the branch-and-bound solver and as test oracles
/// (LB <= OPT <= any schedule).  Unlike the exact solvers, which model a
/// single accelerator, these bounds are sound for any device count.

#include "graph/dag.h"

namespace hedra::exact {

using graph::Dag;
using graph::Time;

/// The individual bounds, exposed for testing/reporting.
struct LowerBounds {
  Time critical_path = 0;  ///< len(G): precedence bound
  Time host_area = 0;      ///< ceil(vol_host / m): host capacity bound
  Time accel_area = 0;     ///< max_d vol_d: busiest device serialises its work
  [[nodiscard]] Time best() const noexcept;
};

/// Computes all bounds.  Requires m >= 1, acyclic input.
[[nodiscard]] LowerBounds makespan_lower_bounds(const Dag& dag, int m);

/// max of the individual bounds.
[[nodiscard]] Time makespan_lower_bound(const Dag& dag, int m);

}  // namespace hedra::exact
