#include "exact/bnb.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "exact/bounds.h"
#include "exact/list_heuristics.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "graph/flat_dag.h"
#include "obs/metrics.h"
#include "util/bitset.h"
#include "util/fault.h"
#include "util/thread_pool.h"
#include "util/work_stealing_deque.h"

namespace hedra::exact {

namespace {

using graph::Dag;
using graph::FlatDag;
using graph::NodeId;
using graph::Time;

/// The instant the search must stop: time_limit_sec from now, pulled
/// earlier by an external config.deadline (a per-request admission
/// deadline, say).  Both budgets share one steady_clock point, so the hot
/// loop's amortised poll stays a single comparison.
std::chrono::steady_clock::time_point search_deadline(const BnbConfig& config) {
  auto when =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          // hedra-lint: allow(float-in-bound, converts the wall-clock budget knob)
          std::chrono::duration<double>(config.time_limit_sec));
  if (!config.deadline.unlimited() && config.deadline.when() < when) {
    when = config.deadline.when();
  }
  return when;
}

struct Running {
  Time finish;
  NodeId node;
  bool on_accel;
};

/// Everything a delay branch needs to restore the search state exactly —
/// the historical solver snapshotted the whole mutable state (one O(n)
/// deep copy per delay node); this frame records only the delta: retired
/// running entries, instantly-completed sync nodes, and the small scalar
/// counters.  `remaining_preds` and the `started` bitset are restored by
/// replaying the deltas backwards, and the ready arrays (a few dozen ids)
/// are the only verbatim copies.
struct DelayFrame {
  Time now = 0;
  int free_cores = 0;
  bool accel_free = true;
  std::size_t completed = 0;
  Time sum_finish_host = 0;
  Time sum_finish_accel = 0;
  int n_running_host = 0;
  int n_running_accel = 0;
  std::size_t accel_ready_count = 0;
  std::size_t down_ptr = 0;
  std::vector<NodeId> ready_host;
  std::vector<NodeId> ready_accel;
  std::vector<NodeId> zero_completed;
  std::vector<std::pair<std::size_t, Running>> retired;  ///< (index, entry)
  std::vector<NodeId> newly;  ///< scratch for the retirement scan
};

/// Immutable per-solve context shared (read-only) by every worker.
struct SearchContext {
  SearchContext(const Dag& dag, int m_in, const BnbConfig& config_in)
      : flat(dag),
        m(m_in),
        config(config_in),
        down(graph::down_lengths(flat)) {
    const std::size_t n = flat.num_nodes();
    by_down.resize(n);
    for (NodeId v = 0; v < n; ++v) by_down[v] = v;
    std::sort(by_down.begin(), by_down.end(),
              [this](NodeId a, NodeId b) { return prior(a, b); });
    single_offload = flat.num_offload_nodes() == 1;
  }

  /// Priority order inside the ready lists: critical (largest down) first.
  [[nodiscard]] bool prior(NodeId a, NodeId b) const {
    return down[a] != down[b] ? down[a] > down[b] : a < b;
  }

  FlatDag flat;
  int m;
  BnbConfig config;
  std::vector<Time> down;
  std::vector<NodeId> by_down;  ///< node ids, descending down(v)
  bool single_offload = false;
};

/// The full mutable search position (was the Solver's member soup).  The
/// sequential DFS mutates one instance in place with undo frames; the
/// parallel frontier snapshots copies, each copy the root of an
/// independent subtree that a worker explores with its own frame pool.
struct SearchState {
  Time now = 0;
  int free_cores = 0;
  bool accel_free = true;
  std::size_t completed = 0;
  Time unstarted_host_work = 0;
  Time unstarted_accel_work = 0;
  std::size_t accel_ready_count = 0;  ///< unstarted entries in ready_accel
                                      ///  (gates the dominance rule)
  Time sum_finish_host = 0;   ///< Σ finish over running host nodes
  Time sum_finish_accel = 0;  ///< Σ finish over running accelerator nodes
  int n_running_host = 0;
  int n_running_accel = 0;
  std::size_t down_ptr = 0;  ///< first possibly-unstarted slot of by_down
  std::vector<std::uint32_t> remaining_preds;
  std::vector<NodeId> ready_host;   ///< sorted by exploration priority
  std::vector<NodeId> ready_accel;  ///< sorted by exploration priority
  std::vector<Running> running;
  DynamicBitset started;  ///< started or finished
};

/// One frontier task: an independent subtree rooted at `state`.  min_host /
/// min_accel carry the canonical-order suffix constraints of the pending
/// decision (see DfsEngine::search), depth counts the splits from the root.
struct Subproblem {
  SearchState state;
  std::size_t min_host = 0;
  std::size_t min_accel = 0;
  int depth = 0;
};

/// Coordination shared by every worker of one parallel solve.  The
/// incumbent is the load-bearing member: a bound CAS-tightened by one
/// worker immediately prunes all other subtrees.
///
/// Every mutable member is an atomic published without locks — the
/// structure is deliberately lock-free, so there is no capability for the
/// thread-safety analysis to track; instead the invariants are enforced by
/// construction: the atomics are lock-free on every supported target
/// (static_assert below) and `deadline` is const after construction, so no
/// worker can observe a torn or stale value of either kind.
struct SharedSearch {
  SharedSearch(Time initial,
               std::chrono::steady_clock::time_point limit)
      : best(initial), initial_best(initial), deadline(limit) {}
  std::atomic<Time> best;                ///< incumbent upper bound
  const Time initial_best;               ///< the root heuristic upper bound
  std::atomic<std::uint64_t> nodes{0};   ///< flushed decision-node total
  std::atomic<bool> aborted{false};      ///< any worker ran out of budget
  std::atomic<int> hungry{0};  ///< workers currently without local work
  std::atomic<long long> in_flight{0};   ///< queued + executing subproblems
  const std::chrono::steady_clock::time_point deadline;
};
static_assert(std::atomic<Time>::is_always_lock_free &&
                  std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<long long>::is_always_lock_free,
              "SharedSearch members must be lock-free: workers poll them "
              "on the search hot path");

/// Splitting stops at this depth even if workers are still hungry: a
/// frontier this deep means the tree is too thin to parallelise and the
/// O(n) state copies per split would dominate the subtree they hand off.
constexpr int kMaxSplitDepth = 64;

/// Local decision nodes between polls of the shared/wall-clock budget.
constexpr std::uint64_t kBudgetPollMask = 0x3FF;  // every 1024 nodes

/// Depth-first branch-and-bound over left-shifted schedules (see bnb.h)
/// with
///  - an incrementally maintained lower bound (the path term reads the
///    first unstarted entry of a down-sorted node order instead of sweeping
///    all n nodes per search node; the area terms are running sums),
///  - O(1) ready-list removal: ready nodes stay in their priority-sorted
///    arrays and branches mark them via the `started` bitset, which keeps
///    the branch enumeration order — and therefore the explored node
///    sequence and any budget-truncated result — bit-identical to the
///    historical erase/insert implementation, and
///  - an undo-based delay branch (DelayFrame) instead of a full state
///    snapshot.
///
/// One engine instance is the sequential solver (shared == nullptr: local
/// incumbent, exact node-budget truncation).  In parallel mode each worker
/// owns one engine that runs many subtree Subproblems back to back against
/// the shared incumbent, flushing its node count every 1024 nodes.
class DfsEngine {
 public:
  DfsEngine(const SearchContext& ctx, SharedSearch* shared)
      : ctx_(ctx), shared_(shared) {
    if (shared_ == nullptr) {
      deadline_ = search_deadline(ctx.config);
    } else {
      deadline_ = shared_->deadline;
      initial_best_ = shared_->initial_best;
    }
  }

  /// Builds the root search state (time 0, sources ready).
  void init_root() {
    const std::size_t n = ctx_.flat.num_nodes();
    s_.remaining_preds.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      s_.remaining_preds[v] = static_cast<std::uint32_t>(ctx_.flat.in_degree(v));
    }
    s_.free_cores = ctx_.m;
    s_.started = DynamicBitset(n);
    for (NodeId v = 0; v < n; ++v) {
      if (ctx_.flat.wcet(v) == 0) continue;
      if (ctx_.flat.device(v) != graph::kHostDevice) {
        s_.unstarted_accel_work += ctx_.flat.wcet(v);
      } else {
        s_.unstarted_host_work += ctx_.flat.wcet(v);
      }
    }
    s_.running.reserve(static_cast<std::size_t>(ctx_.m) + 1);
    s_.ready_host.reserve(n);
    s_.ready_accel.reserve(n);

    std::vector<NodeId> newly;
    for (NodeId v = 0; v < n; ++v) {
      if (s_.remaining_preds[v] == 0) newly.push_back(v);
    }
    absorb(newly, nullptr);
  }

  void set_best(Time best) {
    best_ = best;
    initial_best_ = best;
  }
  [[nodiscard]] Time best() const { return best_; }
  [[nodiscard]] std::uint64_t nodes() const { return nodes_; }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] const SearchState& state() const { return s_; }

  /// The engine's telemetry so far (node count filled in from the live
  /// counter; the worker-level steal/split fields stay zero here).
  [[nodiscard]] SearchStats stats() const {
    SearchStats out = stats_;
    out.nodes = nodes_;
    return out;
  }

  /// Runs the DFS from the current state (sequential entry point).
  void run(std::size_t min_host, std::size_t min_accel) {
    search(min_host, min_accel);
  }

  /// Runs the DFS from a frontier subproblem (parallel entry point).
  void run_subproblem(const Subproblem& sp) {
    s_ = sp.state;
    search(sp.min_host, sp.min_accel);
  }

  /// Expands one decision node of `sp` breadth-first: every branch the DFS
  /// would explore becomes a child Subproblem (canonical order preserved).
  /// Mirrors search() exactly — budget, incumbent update on completion,
  /// lower-bound prune — so frontier expansion is itself part of the
  /// branch-and-bound, not a preprocessing pass.
  void expand(const Subproblem& sp, std::vector<Subproblem>& children) {
    s_ = sp.state;
    if (out_of_budget()) return;
    ++nodes_;

    if (s_.completed == ctx_.flat.num_nodes()) {
      offer_best(s_.now);
      return;
    }
    {
      const Time bound = current_best();
      if (lower_bound() >= bound) {
        count_prune(bound);
        return;
      }
    }

    const auto child = [&](std::size_t min_host, std::size_t min_accel) {
      Subproblem c;
      c.state = s_;
      c.min_host = min_host;
      c.min_accel = min_accel;
      c.depth = sp.depth + 1;
      children.push_back(std::move(c));
    };

    // Dominance: a lone offload node starts the moment it is ready.
    if (ctx_.single_offload && s_.accel_free && s_.accel_ready_count > 0) {
      std::size_t i = 0;
      while (s_.started.test_unchecked(s_.ready_accel[i])) ++i;
      const NodeId v = s_.ready_accel[i];
      const std::size_t saved_ptr = s_.down_ptr;
      start_node(v, /*on_accel=*/true);
      child(sp.min_host, 0);
      undo_start(v, /*on_accel=*/true);
      s_.down_ptr = saved_ptr;
      return;
    }

    if (s_.free_cores > 0) {
      for (std::size_t i = sp.min_host; i < s_.ready_host.size(); ++i) {
        const NodeId v = s_.ready_host[i];
        if (s_.started.test_unchecked(v)) continue;
        const std::size_t saved_ptr = s_.down_ptr;
        start_node(v, /*on_accel=*/false);
        child(i + 1, s_.ready_accel.size());
        undo_start(v, /*on_accel=*/false);
        s_.down_ptr = saved_ptr;
      }
    }

    if (s_.accel_free) {
      for (std::size_t i = sp.min_accel; i < s_.ready_accel.size(); ++i) {
        const NodeId v = s_.ready_accel[i];
        if (s_.started.test_unchecked(v)) continue;
        const std::size_t saved_ptr = s_.down_ptr;
        start_node(v, /*on_accel=*/true);
        child(sp.min_host, i + 1);
        undo_start(v, /*on_accel=*/true);
        s_.down_ptr = saved_ptr;
      }
    }

    if (s_.running.empty()) return;  // nothing in flight: delaying deadlocks
    advance_to_next_event();
    child(0, 0);
    undo_event();
  }

  /// Adds any node count not yet flushed to the shared total (call once
  /// when a worker finishes).
  void flush_nodes() {
    if (shared_ == nullptr) return;
    shared_->nodes.fetch_add(nodes_ - flushed_nodes_,
                             std::memory_order_relaxed);
    flushed_nodes_ = nodes_;
  }

 private:
  [[nodiscard]] Time current_best() const {
    return shared_ == nullptr ? best_
                              : shared_->best.load(std::memory_order_relaxed);
  }

  /// Attributes a `lower_bound() >= bound` cut to the bound that made it:
  /// an incumbent some completed schedule tightened below the root
  /// heuristic, or the heuristic upper bound itself.
  void count_prune(Time bound_used) {
    if (bound_used < initial_best_) {
      ++stats_.prune_incumbent;
    } else {
      ++stats_.prune_bound;
    }
  }

  /// Tightens the incumbent.  Sequential: plain min.  Parallel: CAS-min on
  /// the shared atomic — safe because the bound only ever decreases and a
  /// concurrent reader seeing a stale (larger) value merely prunes less.
  void offer_best(Time t) {
    if (shared_ == nullptr) {
      best_ = std::min(best_, t);
      return;
    }
    Time cur = shared_->best.load(std::memory_order_relaxed);
    while (t < cur && !shared_->best.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }

  void sorted_insert(std::vector<NodeId>& list, NodeId v) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [this](NodeId a, NodeId b) { return ctx_.prior(a, b); });
    list.insert(it, v);
  }

  /// Drops entries this time step's branches have started; the survivors
  /// keep their relative (priority) order.
  void compact(std::vector<NodeId>& list) {
    std::erase_if(list,
                  [this](NodeId v) { return s_.started.test_unchecked(v); });
  }

  /// Files newly ready nodes; zero-WCET nodes complete instantly (recorded
  /// in `zero_record` when a delay frame needs to undo them).
  void absorb(std::vector<NodeId>& newly, std::vector<NodeId>* zero_record) {
    while (!newly.empty()) {
      const NodeId v = newly.back();
      newly.pop_back();
      if (ctx_.flat.wcet(v) == 0) {
        s_.started.set_unchecked(v);
        ++s_.completed;
        if (zero_record != nullptr) zero_record->push_back(v);
        for (const NodeId w : ctx_.flat.successors(v)) {
          if (--s_.remaining_preds[w] == 0) newly.push_back(w);
        }
        continue;
      }
      if (ctx_.flat.device(v) != graph::kHostDevice) {
        sorted_insert(s_.ready_accel, v);
        ++s_.accel_ready_count;
      } else {
        sorted_insert(s_.ready_host, v);
      }
    }
  }

  [[nodiscard]] Time lower_bound() {
    const std::size_t n = ctx_.flat.num_nodes();
    // Path bound: every unstarted node starts at >= now.  by_down is
    // sorted by descending down(v), so the first unstarted entry IS the
    // maximum; the pointer only moves over nodes already started and is
    // saved/restored around every branch.
    while (s_.down_ptr < n &&
           s_.started.test_unchecked(ctx_.by_down[s_.down_ptr])) {
      ++s_.down_ptr;
    }
    Time lb = s_.now;
    if (s_.down_ptr < n) {
      lb = std::max(lb, s_.now + ctx_.down[ctx_.by_down[s_.down_ptr]]);
    }
    // Running nodes finish at their finish time followed by their tail.
    for (const auto& r : s_.running) {
      lb = std::max(lb, r.finish + ctx_.down[r.node] - ctx_.flat.wcet(r.node));
    }
    // Area bounds from running sums of finish times.
    const Time running_host_rem =
        s_.sum_finish_host - static_cast<Time>(s_.n_running_host) * s_.now;
    const Time running_accel_rem =
        s_.sum_finish_accel - static_cast<Time>(s_.n_running_accel) * s_.now;
    const Time host_work = s_.unstarted_host_work + running_host_rem;
    lb = std::max(lb, s_.now + (host_work + ctx_.m - 1) / ctx_.m);
    lb = std::max(lb, s_.now + s_.unstarted_accel_work + running_accel_rem);
    return lb;
  }

  bool out_of_budget() {
    if (aborted_) return true;
    if (shared_ == nullptr) {
      // Sequential mode: the node budget truncates at exactly max_nodes
      // (golden-pinned); only the steady_clock read is amortised.
      if (nodes_ >= ctx_.config.max_nodes) {
        aborted_ = true;
        return true;
      }
      if ((nodes_ & kBudgetPollMask) == 0) {
        ++stats_.budget_polls;
        // Fault seam inside the amortised branch: the per-node hot path
        // (tens of millions of nodes/s) never pays for it.
        HEDRA_FAULT("exact.bnb.node");
        if (std::chrono::steady_clock::now() >= deadline_) {
          aborted_ = true;
          return true;
        }
      }
      return false;
    }
    // Parallel mode: the budgets are shared.  Flush the local node count
    // and poll the shared state every 1024 nodes — so the node budget may
    // overshoot by up to 1024 nodes per worker (documented in bnb.h).
    // No fault seam here: a throw would escape the worker thread.
    if ((nodes_ & kBudgetPollMask) == 0) {
      ++stats_.budget_polls;
      const std::uint64_t total =
          shared_->nodes.fetch_add(nodes_ - flushed_nodes_,
                                   std::memory_order_relaxed) +
          (nodes_ - flushed_nodes_);
      flushed_nodes_ = nodes_;
      if (shared_->aborted.load(std::memory_order_relaxed) ||
          total >= ctx_.config.max_nodes ||
          std::chrono::steady_clock::now() >= deadline_) {
        shared_->aborted.store(true, std::memory_order_relaxed);
        aborted_ = true;
        return true;
      }
    }
    return false;
  }

  void start_node(NodeId v, bool on_accel) {
    s_.started.set_unchecked(v);
    const Time finish = s_.now + ctx_.flat.wcet(v);
    s_.running.push_back(Running{finish, v, on_accel});
    if (on_accel) {
      s_.accel_free = false;
      s_.unstarted_accel_work -= ctx_.flat.wcet(v);
      s_.sum_finish_accel += finish;
      ++s_.n_running_accel;
      --s_.accel_ready_count;
    } else {
      --s_.free_cores;
      s_.unstarted_host_work -= ctx_.flat.wcet(v);
      s_.sum_finish_host += finish;
      ++s_.n_running_host;
    }
  }

  void undo_start(NodeId v, bool on_accel) {
    s_.started.reset_unchecked(v);
    HEDRA_ASSERT(!s_.running.empty() && s_.running.back().node == v);
    const Time finish = s_.running.back().finish;
    s_.running.pop_back();
    if (on_accel) {
      s_.accel_free = true;
      s_.unstarted_accel_work += ctx_.flat.wcet(v);
      s_.sum_finish_accel -= finish;
      --s_.n_running_accel;
      ++s_.accel_ready_count;
    } else {
      ++s_.free_cores;
      s_.unstarted_host_work += ctx_.flat.wcet(v);
      s_.sum_finish_host -= finish;
      --s_.n_running_host;
    }
  }

  /// The delay move: retires every running node finishing at the next
  /// completion event, advances time, and absorbs the newly ready nodes.
  /// The delta is recorded in a pooled DelayFrame (frames are pooled by
  /// delay depth so steady-state search allocates nothing — the vectors
  /// keep their high-water capacity); undo_event() restores it exactly.
  void advance_to_next_event() {
    Time next = s_.running.front().finish;
    for (const auto& r : s_.running) next = std::min(next, r.finish);

    if (delay_depth_ == frame_pool_.size()) frame_pool_.emplace_back();
    DelayFrame& frame = frame_pool_[delay_depth_++];
    frame.now = s_.now;
    frame.free_cores = s_.free_cores;
    frame.accel_free = s_.accel_free;
    frame.completed = s_.completed;
    frame.sum_finish_host = s_.sum_finish_host;
    frame.sum_finish_accel = s_.sum_finish_accel;
    frame.n_running_host = s_.n_running_host;
    frame.n_running_accel = s_.n_running_accel;
    frame.accel_ready_count = s_.accel_ready_count;
    frame.down_ptr = s_.down_ptr;
    frame.ready_host.assign(s_.ready_host.begin(), s_.ready_host.end());
    frame.ready_accel.assign(s_.ready_accel.begin(), s_.ready_accel.end());
    frame.zero_completed.clear();
    frame.retired.clear();
    frame.newly.clear();

    std::vector<NodeId>& newly = frame.newly;
    for (std::size_t i = 0; i < s_.running.size();) {
      if (s_.running[i].finish == next) {
        const Running r = s_.running[i];
        frame.retired.emplace_back(i, r);
        if (r.on_accel) {
          s_.accel_free = true;
          s_.sum_finish_accel -= r.finish;
          --s_.n_running_accel;
        } else {
          ++s_.free_cores;
          s_.sum_finish_host -= r.finish;
          --s_.n_running_host;
        }
        ++s_.completed;
        for (const NodeId w : ctx_.flat.successors(r.node)) {
          if (--s_.remaining_preds[w] == 0) newly.push_back(w);
        }
        s_.running.erase(s_.running.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // Entries started by this time step's branches are dropped so the
    // arrays are pure (sorted, unstarted-only) again for the new time.
    compact(s_.ready_host);
    compact(s_.ready_accel);
    s_.now = next;
    absorb(newly, &frame.zero_completed);
  }

  /// Undoes the topmost advance_to_next_event(): scalars, ready arrays,
  /// instant completions, retired running entries (back at their original
  /// positions).
  void undo_event() {
    DelayFrame& frame = frame_pool_[delay_depth_ - 1];
    s_.now = frame.now;
    s_.free_cores = frame.free_cores;
    s_.accel_free = frame.accel_free;
    s_.completed = frame.completed;
    s_.sum_finish_host = frame.sum_finish_host;
    s_.sum_finish_accel = frame.sum_finish_accel;
    s_.n_running_host = frame.n_running_host;
    s_.n_running_accel = frame.n_running_accel;
    s_.accel_ready_count = frame.accel_ready_count;
    s_.down_ptr = frame.down_ptr;
    s_.ready_host.assign(frame.ready_host.begin(), frame.ready_host.end());
    s_.ready_accel.assign(frame.ready_accel.begin(), frame.ready_accel.end());
    for (const NodeId v : frame.zero_completed) {
      s_.started.reset_unchecked(v);
      for (const NodeId w : ctx_.flat.successors(v)) ++s_.remaining_preds[w];
    }
    for (auto it = frame.retired.rbegin(); it != frame.retired.rend(); ++it) {
      s_.running.insert(
          s_.running.begin() + static_cast<std::ptrdiff_t>(it->first),
          it->second);
      for (const NodeId w : ctx_.flat.successors(it->second.node)) {
        ++s_.remaining_preds[w];
      }
    }
    --delay_depth_;
  }

  /// DFS over decisions at the current event time.  `min_host` / `min_accel`
  /// are positions in the (priority-sorted) ready arrays: only suffix
  /// entries not yet started may still start at this time, cancelling
  /// permutation symmetry of simultaneous starts exactly as the historical
  /// erase-based enumeration did.
  void search(std::size_t min_host, std::size_t min_accel) {
    if (out_of_budget()) return;
    ++nodes_;

    if (s_.completed == ctx_.flat.num_nodes()) {
      offer_best(s_.now);
      return;
    }
    {
      const Time bound = current_best();
      if (lower_bound() >= bound) {
        count_prune(bound);
        return;
      }
    }

    // Dominance: a lone offload node starts the moment it is ready.
    if (ctx_.single_offload && s_.accel_free && s_.accel_ready_count > 0) {
      std::size_t i = 0;
      while (s_.started.test_unchecked(s_.ready_accel[i])) ++i;
      const NodeId v = s_.ready_accel[i];
      const std::size_t saved_ptr = s_.down_ptr;
      start_node(v, /*on_accel=*/true);
      search(min_host, 0);
      undo_start(v, /*on_accel=*/true);
      s_.down_ptr = saved_ptr;
      return;
    }

    // Branch: start a ready host node (canonical suffix order).
    if (s_.free_cores > 0) {
      for (std::size_t i = min_host; i < s_.ready_host.size(); ++i) {
        const NodeId v = s_.ready_host[i];
        if (s_.started.test_unchecked(v)) continue;
        const std::size_t saved_ptr = s_.down_ptr;
        start_node(v, /*on_accel=*/false);
        // Canonical order for simultaneous starts: accelerator starts come
        // before host starts, so none are allowed after this one.
        search(i + 1, s_.ready_accel.size());
        undo_start(v, /*on_accel=*/false);
        s_.down_ptr = saved_ptr;
        if (aborted_) return;
      }
    }

    // Branch: start a ready offload node (multi-offload case only; the
    // single-offload case is handled by the dominance rule above).
    if (s_.accel_free) {
      for (std::size_t i = min_accel; i < s_.ready_accel.size(); ++i) {
        const NodeId v = s_.ready_accel[i];
        if (s_.started.test_unchecked(v)) continue;
        const std::size_t saved_ptr = s_.down_ptr;
        start_node(v, /*on_accel=*/true);
        search(min_host, i + 1);
        undo_start(v, /*on_accel=*/true);
        s_.down_ptr = saved_ptr;
        if (aborted_) return;
      }
    }

    // Branch: delay everything else to the next completion event.
    if (s_.running.empty()) return;  // nothing in flight: delaying deadlocks
    advance_to_next_event();
    search(0, 0);
    undo_event();
  }

  const SearchContext& ctx_;
  SharedSearch* shared_ = nullptr;  ///< null = sequential (deterministic)
  SearchState s_;

  /// One reusable frame per delay depth.  A deque so references handed out
  /// to a frame stay valid while deeper recursion grows the pool.
  std::deque<DelayFrame> frame_pool_;
  std::size_t delay_depth_ = 0;

  Time best_ = 0;  ///< sequential-mode incumbent (parallel uses shared_)
  Time initial_best_ = 0;  ///< the root heuristic UB (prune attribution)
  std::uint64_t nodes_ = 0;
  std::uint64_t flushed_nodes_ = 0;
  SearchStats stats_;  ///< local counters; nodes filled in by stats()
  bool aborted_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

/// Worker loop of the parallel solve: drain the own deque bottom-first;
/// when empty, steal the oldest (shallowest) subproblem from the next
/// victim in ring order.  A popped subproblem is *split* (one breadth-first
/// expansion, children pushed locally) whenever some worker is hungry and
/// the subtree is shallow enough to be worth handing off; otherwise it runs
/// to exhaustion in the fast in-place DFS.  Termination: `in_flight` counts
/// queued + executing subproblems, so 0 means the whole tree is done.
void worker_loop(const SearchContext& ctx, SharedSearch& shared,
                 std::vector<WorkStealingDeque<Subproblem>>& deques, int wid,
                 int jobs, SearchStats& stats_out) {
  DfsEngine engine(ctx, &shared);
  std::vector<Subproblem> children;
  Subproblem sp;
  // Scheduling telemetry lives here (the engine counts search-tree
  // events): plain locals, written out once when the worker retires.
  std::uint64_t steals = 0;
  std::uint64_t splits = 0;
  std::uint64_t split_refusals = 0;
  for (;;) {
    bool got = deques[static_cast<std::size_t>(wid)].pop_bottom(sp);
    if (!got) {
      shared.hungry.fetch_add(1, std::memory_order_relaxed);
      while (!got) {
        if (shared.in_flight.load(std::memory_order_acquire) == 0) break;
        for (int k = 1; k < jobs && !got; ++k) {
          got = deques[static_cast<std::size_t>((wid + k) % jobs)].steal_top(
              sp);
        }
        if (!got) std::this_thread::yield();
      }
      shared.hungry.fetch_sub(1, std::memory_order_relaxed);
      if (!got) break;
      ++steals;
    }
    const bool split = sp.depth < kMaxSplitDepth &&
                       shared.hungry.load(std::memory_order_relaxed) > 0 &&
                       !shared.aborted.load(std::memory_order_relaxed);
    if (split) {
      ++splits;
      children.clear();
      engine.expand(sp, children);
      // Reverse push so pop_bottom explores children in canonical branch
      // order while steal_top hands thieves the oldest entries.
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        shared.in_flight.fetch_add(1, std::memory_order_acq_rel);
        deques[static_cast<std::size_t>(wid)].push_bottom(std::move(*it));
      }
    } else {
      ++split_refusals;
      engine.run_subproblem(sp);
    }
    shared.in_flight.fetch_sub(1, std::memory_order_acq_rel);
  }
  engine.flush_nodes();
  stats_out = engine.stats();
  stats_out.steals = steals;
  stats_out.splits = splits;
  stats_out.split_refusals = split_refusals;
}

BnbResult parallel_min_makespan(const SearchContext& ctx, BnbResult seed,
                                int jobs) {
  SharedSearch shared(seed.heuristic_upper_bound, search_deadline(ctx.config));

  std::vector<WorkStealingDeque<Subproblem>> deques(
      static_cast<std::size_t>(jobs));
  {
    DfsEngine root_engine(ctx, &shared);
    root_engine.init_root();
    Subproblem root;
    root.state = root_engine.state();
    shared.in_flight.store(1, std::memory_order_relaxed);
    deques[0].push_bottom(std::move(root));
  }

  std::vector<SearchStats> per_worker(static_cast<std::size_t>(jobs));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(jobs - 1));
  for (int wid = 1; wid < jobs; ++wid) {
    threads.emplace_back([&ctx, &shared, &deques, &per_worker, wid, jobs] {
      worker_loop(ctx, shared, deques, wid, jobs,
                  per_worker[static_cast<std::size_t>(wid)]);
    });
  }
  worker_loop(ctx, shared, deques, /*wid=*/0, jobs, per_worker[0]);
  for (auto& t : threads) t.join();

  seed.makespan = shared.best.load(std::memory_order_relaxed);
  seed.nodes_explored = shared.nodes.load(std::memory_order_relaxed);
  seed.proven_optimal = !shared.aborted.load(std::memory_order_relaxed);
  seed.outcome = seed.proven_optimal ? util::Outcome::kComplete
                                     : util::Outcome::kBudgetExhausted;
  seed.worker_stats = std::move(per_worker);
  for (const SearchStats& w : seed.worker_stats) {
    seed.stats.nodes += w.nodes;
    seed.stats.prune_incumbent += w.prune_incumbent;
    seed.stats.prune_bound += w.prune_bound;
    seed.stats.budget_polls += w.budget_polls;
    seed.stats.steals += w.steals;
    seed.stats.splits += w.splits;
    seed.stats.split_refusals += w.split_refusals;
  }
  return seed;
}

/// Flushes one solve's aggregate telemetry into the global metrics
/// registry (no-ops when metrics are disabled; never touched per node).
void flush_search_metrics(const BnbResult& result) {
  HEDRA_METRIC("exact.bnb.solves");
  HEDRA_METRIC_ADD("exact.bnb.nodes", result.stats.nodes);
  HEDRA_METRIC_ADD("exact.bnb.prune_incumbent", result.stats.prune_incumbent);
  HEDRA_METRIC_ADD("exact.bnb.prune_bound", result.stats.prune_bound);
  HEDRA_METRIC_ADD("exact.bnb.budget_polls", result.stats.budget_polls);
  HEDRA_METRIC_ADD("exact.bnb.steals", result.stats.steals);
  HEDRA_METRIC_ADD("exact.bnb.splits", result.stats.splits);
  HEDRA_METRIC_ADD("exact.bnb.split_refusals", result.stats.split_refusals);
}

}  // namespace

BnbResult min_makespan(const Dag& dag, int m, const BnbConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot solve an empty graph");
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot solve a cyclic graph");
  HEDRA_REQUIRE(dag.max_device() <= 1,
                "exact solvers model a single accelerator device; "
                "multi-device DAGs are not supported");
  const SearchContext ctx(dag, m, config);

  BnbResult result;
  result.root_lower_bound = makespan_lower_bound(dag, m);
  result.heuristic_upper_bound = best_heuristic_makespan(ctx.flat, m).makespan;
  if (result.heuristic_upper_bound == result.root_lower_bound) {
    // Root-bound shortcut: no search ran, worker_stats stays empty.
    result.makespan = result.heuristic_upper_bound;
    result.proven_optimal = true;
    flush_search_metrics(result);
    return result;
  }

  const int jobs =
      config.jobs >= 1 ? config.jobs : ThreadPool::default_workers();
  if (jobs > 1) {
    BnbResult parallel = parallel_min_makespan(ctx, result, jobs);
    flush_search_metrics(parallel);
    return parallel;
  }

  DfsEngine engine(ctx, nullptr);
  engine.set_best(result.heuristic_upper_bound);
  engine.init_root();
  engine.run(0, 0);
  result.makespan = engine.best();
  result.proven_optimal = !engine.aborted();
  result.nodes_explored = engine.nodes();
  result.outcome = result.proven_optimal ? util::Outcome::kComplete
                                         : util::Outcome::kBudgetExhausted;
  result.stats = engine.stats();
  result.worker_stats.push_back(result.stats);
  flush_search_metrics(result);
  return result;
}

std::string explain_search(const BnbResult& result) {
  std::ostringstream os;
  os << "bnb: makespan=" << result.makespan
     << (result.proven_optimal ? " (proven optimal)" : " (budget exhausted)")
     << " lb=" << result.root_lower_bound
     << " ub0=" << result.heuristic_upper_bound << "\n";
  const SearchStats& s = result.stats;
  os << "search: nodes=" << s.nodes << " prune_incumbent="
     << s.prune_incumbent << " prune_bound=" << s.prune_bound
     << " budget_polls=" << s.budget_polls << " steals=" << s.steals
     << " splits=" << s.splits << " split_refusals=" << s.split_refusals
     << "\n";
  if (result.worker_stats.empty()) {
    os << "workers: none (root bound closed the gap before any search)\n";
    return os.str();
  }
  for (std::size_t w = 0; w < result.worker_stats.size(); ++w) {
    const SearchStats& ws = result.worker_stats[w];
    os << "worker " << w << ": nodes=" << ws.nodes << " prune_incumbent="
       << ws.prune_incumbent << " prune_bound=" << ws.prune_bound
       << " budget_polls=" << ws.budget_polls << " steals=" << ws.steals
       << " splits=" << ws.splits << " split_refusals=" << ws.split_refusals
       << "\n";
  }
  return os.str();
}

}  // namespace hedra::exact
