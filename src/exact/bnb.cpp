#include "exact/bnb.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <utility>
#include <vector>

#include "exact/bounds.h"
#include "exact/list_heuristics.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "graph/flat_dag.h"
#include "util/bitset.h"

namespace hedra::exact {

namespace {

using graph::Dag;
using graph::FlatDag;
using graph::NodeId;
using graph::Time;

struct Running {
  Time finish;
  NodeId node;
  bool on_accel;
};

/// Everything a delay branch needs to restore the search state exactly —
/// the historical solver snapshotted the whole mutable state (one O(n)
/// deep copy per delay node); this frame records only the delta: retired
/// running entries, instantly-completed sync nodes, and the small scalar
/// counters.  `remaining_preds` and the `started` bitset are restored by
/// replaying the deltas backwards, and the ready arrays (a few dozen ids)
/// are the only verbatim copies.
struct DelayFrame {
  Time now = 0;
  int free_cores = 0;
  bool accel_free = true;
  std::size_t completed = 0;
  Time sum_finish_host = 0;
  Time sum_finish_accel = 0;
  int n_running_host = 0;
  int n_running_accel = 0;
  std::size_t accel_ready_count = 0;
  std::size_t down_ptr = 0;
  std::vector<NodeId> ready_host;
  std::vector<NodeId> ready_accel;
  std::vector<NodeId> zero_completed;
  std::vector<std::pair<std::size_t, Running>> retired;  ///< (index, entry)
  std::vector<NodeId> newly;  ///< scratch for the retirement scan
};

/// Depth-first branch-and-bound over left-shifted schedules (see bnb.h),
/// rewritten over a FlatDag CSR snapshot with
///  - an incrementally maintained lower bound (the path term reads the
///    first unstarted entry of a down-sorted node order instead of sweeping
///    all n nodes per search node; the area terms are running sums),
///  - O(1) ready-list removal: ready nodes stay in their priority-sorted
///    arrays and branches mark them via the `started` bitset, which keeps
///    the branch enumeration order — and therefore the explored node
///    sequence and any budget-truncated result — bit-identical to the
///    historical erase/insert implementation, and
///  - an undo-based delay branch (DelayFrame) instead of a full state
///    snapshot.
class Solver {
 public:
  Solver(const Dag& dag, int m, const BnbConfig& config)
      : dag_(dag),
        flat_(dag),
        m_(m),
        config_(config),
        down_(graph::down_lengths(flat_)) {
    const std::size_t n = flat_.num_nodes();
    by_down_.resize(n);
    for (NodeId v = 0; v < n; ++v) by_down_[v] = v;
    std::sort(by_down_.begin(), by_down_.end(),
              [this](NodeId a, NodeId b) { return prior(a, b); });
    single_offload_ = flat_.num_offload_nodes() == 1;
  }

  BnbResult solve() {
    BnbResult result;
    result.root_lower_bound = makespan_lower_bound(dag_, m_);
    result.heuristic_upper_bound = best_heuristic_makespan(flat_, m_).makespan;
    best_ = result.heuristic_upper_bound;
    if (best_ == result.root_lower_bound) {
      result.makespan = best_;
      result.proven_optimal = true;
      return result;
    }

    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(config_.time_limit_sec));

    const std::size_t n = flat_.num_nodes();
    remaining_preds_.resize(n);
    for (NodeId v = 0; v < n; ++v) {
      remaining_preds_[v] = static_cast<std::uint32_t>(flat_.in_degree(v));
    }
    free_cores_ = m_;
    started_ = DynamicBitset(n);
    for (NodeId v = 0; v < n; ++v) {
      if (flat_.wcet(v) == 0) continue;
      if (flat_.device(v) != graph::kHostDevice) {
        unstarted_accel_work_ += flat_.wcet(v);
      } else {
        unstarted_host_work_ += flat_.wcet(v);
      }
    }
    running_.reserve(static_cast<std::size_t>(m_) + 1);
    ready_host_.reserve(n);
    ready_accel_.reserve(n);

    std::vector<NodeId> newly;
    for (NodeId v = 0; v < n; ++v) {
      if (remaining_preds_[v] == 0) newly.push_back(v);
    }
    absorb(newly, nullptr);

    aborted_ = false;
    search(0, 0);

    result.makespan = best_;
    result.proven_optimal = !aborted_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  /// Priority order inside the ready lists: critical (largest down) first.
  [[nodiscard]] bool prior(NodeId a, NodeId b) const {
    return down_[a] != down_[b] ? down_[a] > down_[b] : a < b;
  }

  void sorted_insert(std::vector<NodeId>& list, NodeId v) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [this](NodeId a, NodeId b) { return prior(a, b); });
    list.insert(it, v);
  }

  /// Drops entries this time step's branches have started; the survivors
  /// keep their relative (priority) order.
  void compact(std::vector<NodeId>& list) {
    std::erase_if(list,
                  [this](NodeId v) { return started_.test_unchecked(v); });
  }

  /// Files newly ready nodes; zero-WCET nodes complete instantly (recorded
  /// in `zero_record` when a delay frame needs to undo them).
  void absorb(std::vector<NodeId>& newly, std::vector<NodeId>* zero_record) {
    while (!newly.empty()) {
      const NodeId v = newly.back();
      newly.pop_back();
      if (flat_.wcet(v) == 0) {
        started_.set_unchecked(v);
        ++completed_;
        if (zero_record != nullptr) zero_record->push_back(v);
        for (const NodeId w : flat_.successors(v)) {
          if (--remaining_preds_[w] == 0) newly.push_back(w);
        }
        continue;
      }
      if (flat_.device(v) != graph::kHostDevice) {
        sorted_insert(ready_accel_, v);
        ++accel_ready_count_;
      } else {
        sorted_insert(ready_host_, v);
      }
    }
  }

  [[nodiscard]] Time lower_bound() {
    const std::size_t n = flat_.num_nodes();
    // Path bound: every unstarted node starts at >= now.  by_down_ is
    // sorted by descending down(v), so the first unstarted entry IS the
    // maximum; the pointer only moves over nodes already started and is
    // saved/restored around every branch.
    while (down_ptr_ < n && started_.test_unchecked(by_down_[down_ptr_])) ++down_ptr_;
    Time lb = now_;
    if (down_ptr_ < n) lb = std::max(lb, now_ + down_[by_down_[down_ptr_]]);
    // Running nodes finish at their finish time followed by their tail.
    for (const auto& r : running_) {
      lb = std::max(lb, r.finish + down_[r.node] - flat_.wcet(r.node));
    }
    // Area bounds from running sums of finish times.
    const Time running_host_rem =
        sum_finish_host_ - static_cast<Time>(n_running_host_) * now_;
    const Time running_accel_rem =
        sum_finish_accel_ - static_cast<Time>(n_running_accel_) * now_;
    const Time host_work = unstarted_host_work_ + running_host_rem;
    lb = std::max(lb, now_ + (host_work + m_ - 1) / m_);
    lb = std::max(lb, now_ + unstarted_accel_work_ + running_accel_rem);
    return lb;
  }

  bool out_of_budget() {
    if (aborted_) return true;
    if (nodes_ >= config_.max_nodes) {
      aborted_ = true;
      return true;
    }
    if ((nodes_ & 0xFFF) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  void start_node(NodeId v, bool on_accel) {
    started_.set_unchecked(v);
    const Time finish = now_ + flat_.wcet(v);
    running_.push_back(Running{finish, v, on_accel});
    if (on_accel) {
      accel_free_ = false;
      unstarted_accel_work_ -= flat_.wcet(v);
      sum_finish_accel_ += finish;
      ++n_running_accel_;
      --accel_ready_count_;
    } else {
      --free_cores_;
      unstarted_host_work_ -= flat_.wcet(v);
      sum_finish_host_ += finish;
      ++n_running_host_;
    }
  }

  void undo_start(NodeId v, bool on_accel) {
    started_.reset_unchecked(v);
    HEDRA_ASSERT(!running_.empty() && running_.back().node == v);
    const Time finish = running_.back().finish;
    running_.pop_back();
    if (on_accel) {
      accel_free_ = true;
      unstarted_accel_work_ += flat_.wcet(v);
      sum_finish_accel_ -= finish;
      --n_running_accel_;
      ++accel_ready_count_;
    } else {
      ++free_cores_;
      unstarted_host_work_ += flat_.wcet(v);
      sum_finish_host_ -= finish;
      --n_running_host_;
    }
  }

  /// DFS over decisions at the current event time.  `min_host` / `min_accel`
  /// are positions in the (priority-sorted) ready arrays: only suffix
  /// entries not yet started may still start at this time, cancelling
  /// permutation symmetry of simultaneous starts exactly as the historical
  /// erase-based enumeration did.
  void search(std::size_t min_host, std::size_t min_accel) {
    if (out_of_budget()) return;
    ++nodes_;

    if (completed_ == flat_.num_nodes()) {
      best_ = std::min(best_, now_);
      return;
    }
    if (lower_bound() >= best_) return;

    // Dominance: a lone offload node starts the moment it is ready.
    if (single_offload_ && accel_free_ && accel_ready_count_ > 0) {
      std::size_t i = 0;
      while (started_.test_unchecked(ready_accel_[i])) ++i;
      const NodeId v = ready_accel_[i];
      const std::size_t saved_ptr = down_ptr_;
      start_node(v, /*on_accel=*/true);
      search(min_host, 0);
      undo_start(v, /*on_accel=*/true);
      down_ptr_ = saved_ptr;
      return;
    }

    // Branch: start a ready host node (canonical suffix order).
    if (free_cores_ > 0) {
      for (std::size_t i = min_host; i < ready_host_.size(); ++i) {
        const NodeId v = ready_host_[i];
        if (started_.test_unchecked(v)) continue;
        const std::size_t saved_ptr = down_ptr_;
        start_node(v, /*on_accel=*/false);
        // Canonical order for simultaneous starts: accelerator starts come
        // before host starts, so none are allowed after this one.
        search(i + 1, ready_accel_.size());
        undo_start(v, /*on_accel=*/false);
        down_ptr_ = saved_ptr;
        if (aborted_) return;
      }
    }

    // Branch: start a ready offload node (multi-offload case only; the
    // single-offload case is handled by the dominance rule above).
    if (accel_free_) {
      for (std::size_t i = min_accel; i < ready_accel_.size(); ++i) {
        const NodeId v = ready_accel_[i];
        if (started_.test_unchecked(v)) continue;
        const std::size_t saved_ptr = down_ptr_;
        start_node(v, /*on_accel=*/true);
        search(min_host, i + 1);
        undo_start(v, /*on_accel=*/true);
        down_ptr_ = saved_ptr;
        if (aborted_) return;
      }
    }

    // Branch: delay everything else to the next completion event.
    if (running_.empty()) return;  // nothing in flight: delaying deadlocks
    Time next = running_.front().finish;
    for (const auto& r : running_) next = std::min(next, r.finish);

    // Frames are pooled by delay depth so steady-state search allocates
    // nothing (the vectors keep their high-water capacity).
    if (delay_depth_ == frame_pool_.size()) frame_pool_.emplace_back();
    DelayFrame& frame = frame_pool_[delay_depth_++];
    frame.now = now_;
    frame.free_cores = free_cores_;
    frame.accel_free = accel_free_;
    frame.completed = completed_;
    frame.sum_finish_host = sum_finish_host_;
    frame.sum_finish_accel = sum_finish_accel_;
    frame.n_running_host = n_running_host_;
    frame.n_running_accel = n_running_accel_;
    frame.accel_ready_count = accel_ready_count_;
    frame.down_ptr = down_ptr_;
    frame.ready_host.assign(ready_host_.begin(), ready_host_.end());
    frame.ready_accel.assign(ready_accel_.begin(), ready_accel_.end());
    frame.zero_completed.clear();
    frame.retired.clear();
    frame.newly.clear();

    std::vector<NodeId>& newly = frame.newly;
    for (std::size_t i = 0; i < running_.size();) {
      if (running_[i].finish == next) {
        const Running r = running_[i];
        frame.retired.emplace_back(i, r);
        if (r.on_accel) {
          accel_free_ = true;
          sum_finish_accel_ -= r.finish;
          --n_running_accel_;
        } else {
          ++free_cores_;
          sum_finish_host_ -= r.finish;
          --n_running_host_;
        }
        ++completed_;
        for (const NodeId w : flat_.successors(r.node)) {
          if (--remaining_preds_[w] == 0) newly.push_back(w);
        }
        running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // Entries started by this time step's branches are dropped so the
    // arrays are pure (sorted, unstarted-only) again for the new time.
    compact(ready_host_);
    compact(ready_accel_);
    now_ = next;
    absorb(newly, &frame.zero_completed);

    search(0, 0);

    // Undo the event: scalars, ready arrays, instant completions, retired
    // running entries (back at their original positions).
    now_ = frame.now;
    free_cores_ = frame.free_cores;
    accel_free_ = frame.accel_free;
    completed_ = frame.completed;
    sum_finish_host_ = frame.sum_finish_host;
    sum_finish_accel_ = frame.sum_finish_accel;
    n_running_host_ = frame.n_running_host;
    n_running_accel_ = frame.n_running_accel;
    accel_ready_count_ = frame.accel_ready_count;
    down_ptr_ = frame.down_ptr;
    ready_host_.assign(frame.ready_host.begin(), frame.ready_host.end());
    ready_accel_.assign(frame.ready_accel.begin(), frame.ready_accel.end());
    for (const NodeId v : frame.zero_completed) {
      started_.reset_unchecked(v);
      for (const NodeId w : flat_.successors(v)) ++remaining_preds_[w];
    }
    for (auto it = frame.retired.rbegin(); it != frame.retired.rend(); ++it) {
      running_.insert(
          running_.begin() + static_cast<std::ptrdiff_t>(it->first),
          it->second);
      for (const NodeId w : flat_.successors(it->second.node)) {
        ++remaining_preds_[w];
      }
    }
    --delay_depth_;
  }

  const Dag& dag_;
  FlatDag flat_;
  int m_;
  BnbConfig config_;
  std::vector<Time> down_;
  std::vector<NodeId> by_down_;  ///< node ids, descending down(v)
  bool single_offload_ = false;

  // Mutable search state (was the snapshotted `State` struct).
  Time now_ = 0;
  std::vector<std::uint32_t> remaining_preds_;
  std::vector<NodeId> ready_host_;   ///< sorted by exploration priority
  std::vector<NodeId> ready_accel_;  ///< sorted by exploration priority
  std::vector<Running> running_;
  int free_cores_ = 0;
  bool accel_free_ = true;
  std::size_t completed_ = 0;
  DynamicBitset started_;            ///< started or finished
  Time unstarted_host_work_ = 0;
  Time unstarted_accel_work_ = 0;
  std::size_t accel_ready_count_ = 0;  ///< unstarted entries in ready_accel_
                                       ///  (gates the dominance rule)
  Time sum_finish_host_ = 0;    ///< Σ finish over running host nodes
  Time sum_finish_accel_ = 0;   ///< Σ finish over running accelerator nodes
  int n_running_host_ = 0;
  int n_running_accel_ = 0;
  std::size_t down_ptr_ = 0;    ///< first possibly-unstarted slot of by_down_

  /// One reusable frame per delay depth.  A deque so references handed out
  /// to a frame stay valid while deeper recursion grows the pool.
  std::deque<DelayFrame> frame_pool_;
  std::size_t delay_depth_ = 0;

  Time best_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

BnbResult min_makespan(const Dag& dag, int m, const BnbConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot solve an empty graph");
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot solve a cyclic graph");
  HEDRA_REQUIRE(dag.max_device() <= 1,
                "exact solvers model a single accelerator device; "
                "multi-device DAGs are not supported");
  Solver solver(dag, m, config);
  return solver.solve();
}

}  // namespace hedra::exact
