#include "exact/bnb.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "exact/bounds.h"
#include "exact/list_heuristics.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "util/bitset.h"

namespace hedra::exact {

namespace {

using graph::Dag;
using graph::NodeId;
using graph::Time;

struct Running {
  Time finish;
  NodeId node;
  bool on_accel;
};

/// Mutable search state; the advance branch snapshots the whole struct.
struct State {
  Time now = 0;
  std::vector<std::size_t> remaining_preds;
  std::vector<NodeId> ready_host;   ///< sorted by exploration priority
  std::vector<NodeId> ready_accel;  ///< sorted by exploration priority
  std::vector<Running> running;
  int free_cores = 0;
  bool accel_free = true;
  std::size_t completed = 0;
  DynamicBitset started;            ///< started or finished
  Time unstarted_host_work = 0;
  Time unstarted_accel_work = 0;
};

class Solver {
 public:
  Solver(const Dag& dag, int m, const BnbConfig& config)
      : dag_(dag), m_(m), config_(config), cp_(dag) {
    const std::size_t n = dag.num_nodes();
    down_.resize(n);
    for (NodeId v = 0; v < n; ++v) down_[v] = cp_.down(v);
    single_offload_ = dag.offload_nodes().size() == 1;
  }

  BnbResult solve() {
    BnbResult result;
    result.root_lower_bound = makespan_lower_bound(dag_, m_);
    result.heuristic_upper_bound = best_heuristic_makespan(dag_, m_).makespan;
    best_ = result.heuristic_upper_bound;
    if (best_ == result.root_lower_bound) {
      result.makespan = best_;
      result.proven_optimal = true;
      return result;
    }

    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(config_.time_limit_sec));

    State root;
    const std::size_t n = dag_.num_nodes();
    root.remaining_preds.resize(n);
    for (NodeId v = 0; v < n; ++v) root.remaining_preds[v] = dag_.in_degree(v);
    root.free_cores = m_;
    root.started = DynamicBitset(n);
    for (NodeId v = 0; v < n; ++v) {
      if (dag_.wcet(v) == 0) continue;
      if (dag_.kind(v) == graph::NodeKind::kOffload) {
        root.unstarted_accel_work += dag_.wcet(v);
      } else {
        root.unstarted_host_work += dag_.wcet(v);
      }
    }
    std::vector<NodeId> newly;
    for (NodeId v = 0; v < n; ++v) {
      if (root.remaining_preds[v] == 0) newly.push_back(v);
    }
    absorb(root, newly);

    aborted_ = false;
    state_ = std::move(root);
    search(0, 0);

    result.makespan = best_;
    result.proven_optimal = !aborted_;
    result.nodes_explored = nodes_;
    return result;
  }

 private:
  /// Priority order inside the ready lists: critical (largest down) first.
  bool prior(NodeId a, NodeId b) const {
    return down_[a] != down_[b] ? down_[a] > down_[b] : a < b;
  }

  void sorted_insert(std::vector<NodeId>& list, NodeId v) {
    const auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [this](NodeId a, NodeId b) { return prior(a, b); });
    list.insert(it, v);
  }

  /// Files newly ready nodes; zero-WCET nodes complete instantly.
  void absorb(State& s, std::vector<NodeId>& newly) {
    while (!newly.empty()) {
      const NodeId v = newly.back();
      newly.pop_back();
      if (dag_.wcet(v) == 0) {
        s.started.set(v);
        ++s.completed;
        for (const NodeId w : dag_.successors(v)) {
          if (--s.remaining_preds[w] == 0) newly.push_back(w);
        }
        continue;
      }
      if (dag_.kind(v) == graph::NodeKind::kOffload) {
        sorted_insert(s.ready_accel, v);
      } else {
        sorted_insert(s.ready_host, v);
      }
    }
  }

  [[nodiscard]] Time lower_bound(const State& s) const {
    // Path bound: every unstarted node starts at >= now; every running node
    // finishes at its finish time and is followed by its longest tail.
    Time lb = s.now;
    for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
      if (!s.started.test(v)) lb = std::max(lb, s.now + down_[v]);
    }
    Time running_host_rem = 0;
    Time running_accel_rem = 0;
    for (const auto& r : s.running) {
      lb = std::max(lb, r.finish + down_[r.node] - dag_.wcet(r.node));
      if (r.on_accel) running_accel_rem += r.finish - s.now;
      else running_host_rem += r.finish - s.now;
    }
    // Area bounds.
    const Time host_work = s.unstarted_host_work + running_host_rem;
    lb = std::max(lb, s.now + (host_work + m_ - 1) / m_);
    lb = std::max(lb, s.now + s.unstarted_accel_work + running_accel_rem);
    return lb;
  }

  bool out_of_budget() {
    if (aborted_) return true;
    if (nodes_ >= config_.max_nodes) {
      aborted_ = true;
      return true;
    }
    if ((nodes_ & 0xFFF) == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      aborted_ = true;
      return true;
    }
    return false;
  }

  void start_node(State& s, NodeId v, bool on_accel) {
    s.started.set(v);
    s.running.push_back(Running{s.now + dag_.wcet(v), v, on_accel});
    if (on_accel) {
      s.accel_free = false;
      s.unstarted_accel_work -= dag_.wcet(v);
    } else {
      --s.free_cores;
      s.unstarted_host_work -= dag_.wcet(v);
    }
  }

  void undo_start(State& s, NodeId v, bool on_accel) {
    s.started.reset(v);
    HEDRA_ASSERT(!s.running.empty() && s.running.back().node == v);
    s.running.pop_back();
    if (on_accel) {
      s.accel_free = true;
      s.unstarted_accel_work += dag_.wcet(v);
    } else {
      ++s.free_cores;
      s.unstarted_host_work += dag_.wcet(v);
    }
  }

  /// DFS over decisions at the current event time.  `min_host` / `min_accel`
  /// restrict which ready-list suffixes may still start at this time,
  /// cancelling permutation symmetry of simultaneous starts.
  void search(std::size_t min_host, std::size_t min_accel) {
    if (out_of_budget()) return;
    ++nodes_;
    State& s = state_;

    if (s.completed == dag_.num_nodes()) {
      best_ = std::min(best_, s.now);
      return;
    }
    if (lower_bound(s) >= best_) return;

    // Dominance: a lone offload node starts the moment it is ready.
    if (single_offload_ && s.accel_free && !s.ready_accel.empty()) {
      const NodeId v = s.ready_accel.front();
      s.ready_accel.erase(s.ready_accel.begin());
      start_node(s, v, /*on_accel=*/true);
      search(min_host, 0);
      undo_start(s, v, /*on_accel=*/true);
      sorted_insert(s.ready_accel, v);
      return;
    }

    // Branch: start a ready host node (canonical suffix order).
    if (s.free_cores > 0) {
      for (std::size_t i = min_host; i < s.ready_host.size(); ++i) {
        const NodeId v = s.ready_host[i];
        s.ready_host.erase(s.ready_host.begin() +
                           static_cast<std::ptrdiff_t>(i));
        start_node(s, v, /*on_accel=*/false);
        // Canonical order for simultaneous starts: accelerator starts come
        // before host starts, so none are allowed after this one.
        search(i, s.ready_accel.size());
        undo_start(s, v, /*on_accel=*/false);
        s.ready_host.insert(
            s.ready_host.begin() + static_cast<std::ptrdiff_t>(i), v);
        if (aborted_) return;
      }
    }

    // Branch: start a ready offload node (multi-offload case only; the
    // single-offload case is handled by the dominance rule above).
    if (s.accel_free) {
      for (std::size_t i = min_accel; i < s.ready_accel.size(); ++i) {
        const NodeId v = s.ready_accel[i];
        s.ready_accel.erase(s.ready_accel.begin() +
                            static_cast<std::ptrdiff_t>(i));
        start_node(s, v, /*on_accel=*/true);
        search(min_host, i);
        undo_start(s, v, /*on_accel=*/true);
        s.ready_accel.insert(
            s.ready_accel.begin() + static_cast<std::ptrdiff_t>(i), v);
        if (aborted_) return;
      }
    }

    // Branch: delay everything else to the next completion event.
    if (s.running.empty()) return;  // nothing in flight: delaying deadlocks
    const State snapshot = s;
    Time next = s.running.front().finish;
    for (const auto& r : s.running) next = std::min(next, r.finish);
    std::vector<NodeId> newly;
    for (auto it = s.running.begin(); it != s.running.end();) {
      if (it->finish == next) {
        if (it->on_accel) s.accel_free = true;
        else ++s.free_cores;
        ++s.completed;
        for (const NodeId w : dag_.successors(it->node)) {
          if (--s.remaining_preds[w] == 0) newly.push_back(w);
        }
        it = s.running.erase(it);
      } else {
        ++it;
      }
    }
    s.now = next;
    absorb(s, newly);
    search(0, 0);
    state_ = snapshot;
  }

  const Dag& dag_;
  int m_;
  BnbConfig config_;
  graph::CriticalPathInfo cp_;
  std::vector<Time> down_;
  bool single_offload_ = false;

  State state_;
  Time best_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace

BnbResult min_makespan(const Dag& dag, int m, const BnbConfig& config) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot solve an empty graph");
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot solve a cyclic graph");
  HEDRA_REQUIRE(dag.max_device() <= 1,
                "exact solvers model a single accelerator device; "
                "multi-device DAGs are not supported");
  Solver solver(dag, m, config);
  return solver.solve();
}

}  // namespace hedra::exact
