#include "exact/brute_force.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/algorithms.h"

namespace hedra::exact {

namespace {

using graph::Dag;
using graph::NodeId;
using graph::Time;

struct Run {
  Time finish;
  NodeId node;
  bool on_accel;
};

struct State {
  Time now = 0;
  std::vector<int> remaining_preds;
  std::vector<NodeId> ready_host;
  std::vector<NodeId> ready_accel;
  std::vector<Run> running;
  int free_cores = 0;
  bool accel_free = true;
  std::size_t completed = 0;
};

class Enumerator {
 public:
  Enumerator(const Dag& dag, int m) : dag_(dag), m_(m) {}

  Time solve() {
    State s;
    s.remaining_preds.resize(dag_.num_nodes());
    for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
      s.remaining_preds[v] = static_cast<int>(dag_.in_degree(v));
    }
    s.free_cores = m_;
    std::vector<NodeId> newly;
    for (NodeId v = 0; v < dag_.num_nodes(); ++v) {
      if (s.remaining_preds[v] == 0) newly.push_back(v);
    }
    absorb(s, newly);
    best_ = std::numeric_limits<Time>::max();
    explore(s);
    return best_;
  }

 private:
  void absorb(State& s, std::vector<NodeId>& newly) {
    while (!newly.empty()) {
      const NodeId v = newly.back();
      newly.pop_back();
      if (dag_.wcet(v) == 0) {
        ++s.completed;
        for (const NodeId w : dag_.successors(v)) {
          if (--s.remaining_preds[w] == 0) newly.push_back(w);
        }
        continue;
      }
      (dag_.kind(v) == graph::NodeKind::kOffload ? s.ready_accel
                                                 : s.ready_host)
          .push_back(v);
    }
  }

  /// Enumerate every subset of ready host jobs (size <= free cores) crossed
  /// with every choice of ready offload job (or none), then advance time.
  void explore(const State& s) {  // NOLINT(misc-no-recursion)
    if (s.completed == dag_.num_nodes()) {
      best_ = std::min(best_, s.now);
      return;
    }
    const std::size_t h = s.ready_host.size();
    const std::size_t max_start =
        std::min<std::size_t>(h, static_cast<std::size_t>(s.free_cores));
    for (std::uint32_t mask = 0; mask < (1u << h); ++mask) {
      if (static_cast<std::size_t>(__builtin_popcount(mask)) > max_start) {
        continue;
      }
      const std::size_t accel_options =
          (s.accel_free && !s.ready_accel.empty()) ? s.ready_accel.size() + 1
                                                   : 1;
      for (std::size_t accel_pick = 0; accel_pick < accel_options;
           ++accel_pick) {
        State next = s;
        // Start the chosen host subset.
        std::vector<NodeId> keep;
        for (std::size_t i = 0; i < h; ++i) {
          const NodeId v = s.ready_host[i];
          if (mask & (1u << i)) {
            next.running.push_back(Run{s.now + dag_.wcet(v), v, false});
            --next.free_cores;
          } else {
            keep.push_back(v);
          }
        }
        next.ready_host = std::move(keep);
        // Start the chosen offload job, if any (accel_pick 0 = none).
        if (accel_pick > 0) {
          const NodeId v = s.ready_accel[accel_pick - 1];
          next.ready_accel.erase(next.ready_accel.begin() +
                                 static_cast<std::ptrdiff_t>(accel_pick - 1));
          next.running.push_back(Run{s.now + dag_.wcet(v), v, true});
          next.accel_free = false;
        }
        if (next.running.empty()) continue;  // starting nothing deadlocks
        // Advance to the earliest completion.
        Time t = next.running.front().finish;
        for (const auto& r : next.running) t = std::min(t, r.finish);
        std::vector<NodeId> newly;
        for (auto it = next.running.begin(); it != next.running.end();) {
          if (it->finish == t) {
            if (it->on_accel) next.accel_free = true;
            else ++next.free_cores;
            ++next.completed;
            for (const NodeId w : dag_.successors(it->node)) {
              if (--next.remaining_preds[w] == 0) newly.push_back(w);
            }
            it = next.running.erase(it);
          } else {
            ++it;
          }
        }
        next.now = t;
        absorb(next, newly);
        explore(next);
      }
    }
  }

  const Dag& dag_;
  int m_;
  Time best_ = 0;
};

}  // namespace

Time brute_force_min_makespan(const Dag& dag, int m,
                              std::size_t max_nodes_allowed) {
  HEDRA_REQUIRE(dag.num_nodes() > 0, "cannot solve an empty graph");
  HEDRA_REQUIRE(dag.num_nodes() <= max_nodes_allowed,
                "graph too large for brute force");
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(graph::is_acyclic(dag), "cannot solve a cyclic graph");
  HEDRA_REQUIRE(dag.max_device() <= 1,
                "exact solvers model a single accelerator device; "
                "multi-device DAGs are not supported");
  Enumerator e(dag, m);
  return e.solve();
}

}  // namespace hedra::exact
