#include "exact/bounds.h"

#include <algorithm>

#include "graph/critical_path.h"

namespace hedra::exact {

Time LowerBounds::best() const noexcept {
  return std::max({critical_path, host_area, accel_area});
}

LowerBounds makespan_lower_bounds(const Dag& dag, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  LowerBounds lb;
  lb.critical_path = graph::critical_path_length(dag);
  const Time host_vol = dag.host_volume();
  lb.host_area = (host_vol + m - 1) / m;
  // Each accelerator device serialises its own work, so the busiest device
  // is a lower bound; devices overlap each other, so their volumes must NOT
  // be summed (with a single device this is exactly vol_off).
  for (const auto device : dag.device_ids()) {
    lb.accel_area = std::max(lb.accel_area, dag.volume_on(device));
  }
  return lb;
}

Time makespan_lower_bound(const Dag& dag, int m) {
  return makespan_lower_bounds(dag, m).best();
}

}  // namespace hedra::exact
