#include "exact/list_heuristics.h"

namespace hedra::exact {

HeuristicResult best_heuristic_makespan(const graph::FlatDag& flat, int m,
                                        int random_tries) {
  HeuristicResult best;
  bool have = false;
  const auto consider = [&](sim::Policy policy, std::uint64_t seed) {
    sim::SimConfig config;
    config.cores = m;
    config.policy = policy;
    config.seed = seed;
    config.validate = false;  // hot path; the simulator is golden-pinned
    const graph::Time makespan = sim::simulated_makespan(flat, config);
    if (!have || makespan < best.makespan) {
      best.makespan = makespan;
      best.policy = policy;
      have = true;
    }
  };
  consider(sim::Policy::kCriticalPathFirst, 1);
  consider(sim::Policy::kBreadthFirst, 1);
  consider(sim::Policy::kDepthFirst, 1);
  consider(sim::Policy::kIndexOrder, 1);
  for (int i = 0; i < random_tries; ++i) {
    consider(sim::Policy::kRandom, 0x9e3779b9u + static_cast<std::uint64_t>(i));
  }
  return best;
}

HeuristicResult best_heuristic_makespan(const graph::Dag& dag, int m,
                                        int random_tries) {
  const graph::FlatDag flat(dag);
  return best_heuristic_makespan(flat, m, random_tries);
}

}  // namespace hedra::exact
