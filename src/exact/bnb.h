#pragma once

/// \file bnb.h
/// Exact minimum-makespan solver for a heterogeneous DAG task on m identical
/// host cores plus one accelerator device — hedra's substitute for the
/// paper's CPLEX ILP (§5: "an ILP formulation that computes the minimum time
/// interval needed to execute a given heterogeneous DAG task on m cores and
/// one accelerator device").  Both compute the same quantity; see DESIGN.md.
///
/// Method: depth-first branch-and-bound over *left-shifted* schedules: every
/// job starts at time 0 or at a completion event.  At each event time the
/// solver branches on starting any eligible ready job (host jobs on free
/// cores, offload jobs on the free accelerator) or on deliberately delaying
/// the remaining ready jobs to the next completion.  The delay branch is
/// required for exactness: non-delay (greedy) schedules are NOT always
/// optimal for P|prec|Cmax — see the regression test with the classic
/// counterexample.  Identical host cores are never distinguished, and
/// simultaneous starts are generated in canonical order only.
///
/// Dominance rules (proved safe in comments):
///  - with a single offload node, v_off starts the moment it is ready (the
///    accelerator has no other user, so left-shifting v_off never hurts);
///  - pruning by max(path bound, host area bound, accelerator area bound).
///
/// The search is budgeted (node count + wall clock).  On exhaustion the best
/// schedule found so far is returned with proven_optimal = false; the
/// figure-7 harness reports the fraction of instances proven optimal.
///
/// Parallel mode (`BnbConfig::jobs > 1`): the root expands breadth-first
/// into a frontier of independent subtree tasks, workers drain per-worker
/// deques (stealing the shallowest pending subtree from a victim when their
/// own runs dry), and the incumbent upper bound is a shared atomic that
/// every worker prunes against and CAS-updates.  Proven-optimal makespans
/// are exactly the sequential ones (see DESIGN.md for the safety argument);
/// `nodes_explored` and any budget-truncated (unproven) makespan may vary
/// run to run.  `jobs == 1` is the deterministic mode: the sequential DFS,
/// bit-identical to the historical solver and the committed goldens.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "util/deadline.h"

namespace hedra::exact {

/// Search budget and options.
struct BnbConfig {
  std::uint64_t max_nodes = 20'000'000;  ///< decision nodes before giving up
  // hedra-lint: allow(float-in-bound, wall-clock budget knob, never a bound)
  double time_limit_sec = 10.0;          ///< wall-clock budget per instance
  /// External deadline (e.g. a per-request admission deadline) intersected
  /// with time_limit_sec: the search stops at whichever expires first.  The
  /// default never expires, so batch callers see no behaviour change.
  util::Deadline deadline;
  /// Worker threads for the subtree search.  1 (the default) is the
  /// deterministic sequential DFS; <= 0 selects all hardware threads.  The
  /// node and wall-clock budgets are shared across workers (the node total
  /// is polled every 1024 local nodes, so a parallel run may overshoot
  /// max_nodes by at most 1024 nodes per worker).
  int jobs = 1;
};

/// Search telemetry of one worker (or of the whole solve when aggregated).
/// Plain local counters on the search path — no atomics, no locks, no
/// clock reads — flushed once when the worker retires, so recording costs
/// a handful of register increments per node and never perturbs the
/// explored tree (sequential output stays bit-identical to the goldens).
struct SearchStats {
  std::uint64_t nodes = 0;            ///< decision nodes expanded
  /// Subtrees cut by `lower_bound() >= best`, split by what `best` was:
  /// an incumbent some schedule completion tightened below the root
  /// heuristic, vs the initial heuristic upper bound itself.
  std::uint64_t prune_incumbent = 0;
  std::uint64_t prune_bound = 0;
  std::uint64_t budget_polls = 0;     ///< amortised budget/clock checks
  std::uint64_t steals = 0;           ///< subproblems stolen from a victim
  std::uint64_t splits = 0;           ///< subproblems expanded breadth-first
  std::uint64_t split_refusals = 0;   ///< popped but run in place instead
};

/// Solver outcome.
struct BnbResult {
  graph::Time makespan = 0;       ///< best (optimal if proven_optimal)
  bool proven_optimal = false;
  std::uint64_t nodes_explored = 0;
  graph::Time root_lower_bound = 0;
  graph::Time heuristic_upper_bound = 0;
  /// kComplete when optimality was proven; kBudgetExhausted when any budget
  /// (node cap, time limit, external deadline) truncated the search — the
  /// makespan is then a sound upper bound, not proven minimal.
  util::Outcome outcome = util::Outcome::kComplete;
  SearchStats stats;  ///< aggregate search telemetry over all workers
  /// Per-worker telemetry: one entry in sequential mode, `jobs` entries in
  /// parallel mode (worker 0 first).  Empty for the root-bound shortcut
  /// where no search ran.
  std::vector<SearchStats> worker_stats;
};

/// Minimum makespan of `dag` on m cores + 1 accelerator.  Requires an
/// acyclic, non-empty graph; any number of offload nodes is supported (they
/// share the single accelerator).
[[nodiscard]] BnbResult min_makespan(const graph::Dag& dag, int m,
                                     const BnbConfig& config = {});

/// explain()-style structured summary of a solve: the headline result,
/// the aggregate search counters, and one line per worker — the tool for
/// "where did the budget go" when a parallel solve is slow.
[[nodiscard]] std::string explain_search(const BnbResult& result);

}  // namespace hedra::exact
