#pragma once

/// \file brute_force.h
/// Exhaustive minimum-makespan search for tiny instances, used ONLY to
/// cross-validate the branch-and-bound solver in tests.  It enumerates, at
/// every event time, every subset of ready jobs that could start (host jobs
/// bounded by free cores, offload jobs by the single accelerator), with no
/// pruning and no dominance rules — a deliberately independent and obviously
/// exhaustive implementation over left-shifted schedules.  Exponential;
/// intended for graphs with at most ~10 nodes.

#include "graph/dag.h"

namespace hedra::exact {

/// Minimum makespan by exhaustive enumeration.  Throws if the graph exceeds
/// `max_nodes_allowed` (guard against accidental blow-up in tests).
[[nodiscard]] graph::Time brute_force_min_makespan(
    const graph::Dag& dag, int m, std::size_t max_nodes_allowed = 12);

}  // namespace hedra::exact
