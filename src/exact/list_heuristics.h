#pragma once

/// \file list_heuristics.h
/// Upper-bound seeding for the branch-and-bound solver: run the simulator
/// with every deterministic ready-queue policy plus a few random orderings
/// and keep the best makespan.  Critical-path-first list scheduling is
/// usually within a few percent of optimal on these graphs, which makes the
/// B&B gap small from the start.

#include "sim/scheduler.h"

namespace hedra::exact {

/// Result of the heuristic sweep.
struct HeuristicResult {
  graph::Time makespan = 0;
  sim::Policy policy = sim::Policy::kCriticalPathFirst;
};

/// Best makespan over all policies; `random_tries` extra random orderings.
[[nodiscard]] HeuristicResult best_heuristic_makespan(const graph::Dag& dag,
                                                      int m,
                                                      int random_tries = 4);

/// Overload over a prebuilt CSR snapshot — the B&B solver seeds its upper
/// bound through this, sharing one snapshot across all policy runs (and
/// skipping per-run trace validation; the simulator itself is pinned by the
/// golden-trace suite).
[[nodiscard]] HeuristicResult best_heuristic_makespan(
    const graph::FlatDag& flat, int m, int random_tries = 4);

}  // namespace hedra::exact
