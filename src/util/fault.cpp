#include "util/fault.h"

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <map>
#include <optional>

#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_annotations.h"

namespace hedra::fault {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

/// FNV-1a over the site name — the per-site RNG key, so each site's draw
/// stream is independent of every other site's and of registration order.
std::uint64_t fnv1a(const char* text) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char* p = text; *p != '\0'; ++p) {
    hash ^= static_cast<unsigned char>(*p);
    hash *= 1099511628211ULL;
  }
  return hash;
}

struct Site {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  bool seen = false;  ///< executed at least once while enabled (the
                      ///< inventory bit — survives configure()/reset())
  std::optional<Trigger> trigger;  ///< exact-match trigger (beats wildcard)
  std::optional<Rng> rng;          ///< lazily forked from (seed, name hash)
};

/// Zeroes a site's triggers and counters but keeps its inventory bit.
void wipe_site(Site* site) {
  const bool seen = site->seen;
  *site = Site{};
  site->seen = seen;
}

struct Registry {
  util::Mutex mutex;
  /// Ordered map: enumeration is sorted, never address-dependent.
  std::map<std::string, Site> sites HEDRA_GUARDED_BY(mutex);
  std::optional<Trigger> wildcard HEDRA_GUARDED_BY(mutex);
  std::uint64_t seed HEDRA_GUARDED_BY(mutex) = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: sites may fire at exit
  return *r;
}

/// Parses one "site=value[!kill]" entry.
void parse_entry(std::string_view entry, std::string* site, Trigger* trigger) {
  const auto bad = [&](const std::string& why) -> void {
    throw Error("malformed fault spec entry '" + std::string(entry) +
                "': " + why);
  };
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    bad("expected '<site>=<rate|@N>[!kill]'");
  }
  *site = std::string(trim(entry.substr(0, eq)));
  std::string_view value = trim(entry.substr(eq + 1));
  if (value.empty()) bad("empty trigger value");
  *trigger = Trigger{};
  if (const std::size_t bang = value.find('!');
      bang != std::string_view::npos) {
    const std::string_view action = value.substr(bang + 1);
    if (action == "kill") {
      trigger->action = Action::kKill;
    } else if (action == "throw") {
      trigger->action = Action::kThrow;
    } else {
      bad("unknown action '" + std::string(action) + "'");
    }
    value = trim(value.substr(0, bang));
  }
  if (!value.empty() && value.front() == '@') {
    const std::int64_t nth = parse_int(value.substr(1));
    if (nth < 1) bad("@N needs N >= 1");
    trigger->nth = static_cast<std::uint64_t>(nth);
    return;
  }
  const double rate = parse_real(value);
  if (rate < 0.0 || rate > 1.0) bad("rate must be within [0, 1]");
  trigger->rate = rate;
}

}  // namespace

namespace detail {

void hit(const char* name) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  Site& site = r.sites[name];  // self-registration on first execution
  site.seen = true;
  ++site.hits;
  const Trigger* trigger =
      site.trigger.has_value()
          ? &*site.trigger
          : (r.wildcard.has_value() ? &*r.wildcard : nullptr);
  if (trigger == nullptr) return;
  bool should_fire = false;
  if (trigger->nth > 0) {
    should_fire = site.hits == trigger->nth;
  } else if (trigger->rate > 0.0) {
    if (!site.rng.has_value()) site.rng.emplace(r.seed ^ fnv1a(name));
    should_fire = site.rng->uniform_real() < trigger->rate;
  }
  if (!should_fire) return;
  std::string site_name(name);
  ++site.fired;
  const Action action = trigger->action;
  lock.unlock();  // never throw (or die) while holding the registry lock
  if (action == Action::kKill) std::raise(SIGKILL);
  throw Injected(site_name);
}

}  // namespace detail

void configure(const std::string& spec, std::uint64_t seed) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  r.wildcard.reset();
  r.seed = seed;
  for (auto& [name, site] : r.sites) {
    wipe_site(&site);  // keep the inventory, clear triggers and counters
  }
  bool any = false;
  for (const std::string& entry : split(spec, ',')) {
    if (trim(entry).empty()) continue;
    std::string site_name;
    Trigger trigger;
    parse_entry(trim(entry), &site_name, &trigger);
    if (site_name == "*") {
      r.wildcard = trigger;
    } else {
      r.sites[site_name].trigger = trigger;
    }
    any = true;
  }
  detail::g_enabled.store(any, std::memory_order_relaxed);
}

void arm(const std::string& site, const Trigger& trigger) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  Site& entry = r.sites[site];
  wipe_site(&entry);
  entry.trigger = trigger;
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  detail::g_enabled.store(false, std::memory_order_relaxed);
  r.wildcard.reset();
  for (auto& [name, site] : r.sites) wipe_site(&site);
}

void clear_registry() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  detail::g_enabled.store(false, std::memory_order_relaxed);
  r.wildcard.reset();
  r.sites.clear();
}

bool install_from_env() {
  const char* spec = std::getenv("HEDRA_FAULTS");
  if (spec == nullptr || *spec == '\0') return false;
  std::uint64_t seed = 0;
  if (const char* seed_text = std::getenv("HEDRA_FAULT_SEED");
      seed_text != nullptr && *seed_text != '\0') {
    seed = static_cast<std::uint64_t>(parse_int(seed_text));
  }
  configure(spec, seed);
  return enabled();
}

std::vector<std::string> registered_sites() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) {
    if (site.seen) names.push_back(name);
  }
  return names;
}

std::vector<SiteStats> stats() {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  std::vector<SiteStats> out;
  out.reserve(r.sites.size());
  for (const auto& [name, site] : r.sites) {
    if (site.seen) out.push_back(SiteStats{name, site.hits, site.fired});
  }
  return out;
}

std::uint64_t hits(const std::string& site) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.hits;
}

std::uint64_t fired(const std::string& site) {
  Registry& r = registry();
  util::MutexLock lock(r.mutex);
  const auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

}  // namespace hedra::fault
