#pragma once

/// \file crc32.h
/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the frame
/// checksum of the serve journal.  Chosen over a cheaper additive checksum
/// because the journal's failure mode is a TORN WRITE: a frame whose header
/// landed but whose payload is half-missing must be detected with
/// overwhelming probability, and CRC-32 detects all burst errors up to 32
/// bits plus any odd number of bit flips.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hedra::util {

/// CRC-32 of `data`, seeded with `seed` (pass a previous result to chain
/// buffers; the default is the standard empty-message seed).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

[[nodiscard]] inline std::uint32_t crc32(std::string_view data,
                                         std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace hedra::util
