#include "util/rng.h"

namespace hedra {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  HEDRA_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for exact uniformity.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform_real() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  HEDRA_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli probability outside [0, 1]");
  return uniform_real() < p;
}

std::size_t Rng::index(std::size_t size) {
  HEDRA_REQUIRE(size > 0, "Rng::index requires non-empty range");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

Rng Rng::fork() noexcept {
  Rng child(0);
  for (auto& word : child.state_) word = next_u64();
  // Avoid the (astronomically unlikely) all-zero state.
  child.state_[0] |= 1;
  return child;
}

}  // namespace hedra
