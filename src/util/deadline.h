#pragma once

/// \file deadline.h
/// Cooperative deadline / budget tokens for the long-running entry points.
///
/// A batch reproduction can afford open-ended computation; an admission
/// SERVICE cannot.  The paper's fixpoint (taskset/contention_rta.h) has an
/// input-dependent iteration count, the exact solver explores an
/// exponential tree, and the sweep engine fans out arbitrarily large grids
/// — so every such entry point takes an optional budget token and answers
/// with a typed util::Outcome instead of silently truncating:
///
///   - kComplete         the computation ran to its mathematical end;
///   - kBudgetExhausted  a deadline / work cap cut it short — the partial
///                       answer is SOUND but possibly pessimistic (a
///                       truncated admission test reports "not admitted",
///                       a truncated B&B keeps its incumbent unproven,
///                       a truncated sweep returns completed points only);
///   - kFailed           the computation could not produce even a partial
///                       answer (an injected fault, a corrupt journal...).
///
/// The ladder is strict: degradation must always *fail closed*.  Nothing
/// here preempts anything — callers poll `Budget::consume()` at their
/// natural iteration boundaries (one fixpoint step, one B&B node batch, one
/// simulated event, one sweep point), which keeps the zero-budget hot paths
/// branch-free apart from one predictable test.
///
/// Clock reads are amortised: `consume()` touches the monotonic clock only
/// every `kClockStride` work units, so a budget check costs an increment
/// and a compare in the steady state.  Counters are atomics, so one Budget
/// may be shared by the thread-pool fan-out paths (exactness of the cutoff
/// is within one stride per thread, same contract as the parallel B&B's
/// node budget).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace hedra::util {

/// Nanoseconds on the monotonic clock (Deadline::Clock).  The single
/// sanctioned time source for telemetry: src/obs/ records durations with
/// this and never touches a clock type directly (enforced by the
/// `obs-clock` lint rule), so observability inherits the same
/// wall-clock-free discipline as the analysis layers.
[[nodiscard]] std::int64_t monotonic_now_ns() noexcept;

/// Typed completion status of a budgeted computation.
enum class Outcome {
  kComplete = 0,         ///< ran to the mathematical end
  kBudgetExhausted = 1,  ///< deadline / work cap hit; partial result is sound
  kFailed = 2,           ///< no usable result (fault, corruption)
};

/// Short stable name ("complete" / "budget-exhausted" / "failed").
[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

/// A point on the monotonic clock before which work must finish.  The
/// default-constructed Deadline never expires, so APIs can take one by
/// value with no "optional" wrapper.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  constexpr Deadline() noexcept = default;

  /// Expires `budget` from now (non-positive budgets are already expired).
  [[nodiscard]] static Deadline after(std::chrono::nanoseconds budget);

  /// Convenience: after() in fractional seconds.
  [[nodiscard]] static Deadline after_seconds(double seconds);

  /// Expires at `when`.
  [[nodiscard]] static Deadline at(Clock::time_point when) noexcept;

  /// The unlimited default, spelled out.
  [[nodiscard]] static constexpr Deadline never() noexcept { return {}; }

  [[nodiscard]] bool unlimited() const noexcept { return unlimited_; }

  /// True once the monotonic clock passed the deadline (reads the clock).
  [[nodiscard]] bool expired() const noexcept {
    return !unlimited_ && Clock::now() >= when_;
  }

  /// Time left; zero when expired, Clock::duration::max() when unlimited.
  [[nodiscard]] Clock::duration remaining() const noexcept;

  /// The expiry instant; requires !unlimited().
  [[nodiscard]] Clock::time_point when() const noexcept { return when_; }

  /// The earlier of two deadlines (unlimited is the identity).
  [[nodiscard]] static Deadline sooner(const Deadline& a, const Deadline& b);

 private:
  Clock::time_point when_{};
  bool unlimited_ = true;
};

/// Cooperative budget token: a Deadline plus an optional work-unit cap,
/// with a sticky exhausted flag.  Thread-compatible: counters are relaxed
/// atomics, so one Budget can be threaded through a parallel fan-out; the
/// cutoff is then exact to within kClockStride units per thread.
///
/// Not copyable (it is a live token, not a value); pass `Budget*` — the
/// convention everywhere is that a null budget means "unlimited".
class Budget {
 public:
  static constexpr std::uint64_t kUnlimitedWork =
      std::numeric_limits<std::uint64_t>::max();
  /// Work units between monotonic-clock reads.
  static constexpr std::uint64_t kClockStride = 256;

  /// Unlimited budget (never exhausts; consume() stays cheap).
  Budget() noexcept = default;

  explicit Budget(Deadline deadline,
                  std::uint64_t max_work = kUnlimitedWork) noexcept
      : deadline_(deadline), max_work_(max_work) {}

  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  /// Records `units` of work.  Returns true while the budget holds; returns
  /// false — permanently — once the work cap is crossed or the deadline has
  /// passed.  The clock is polled at most once per kClockStride units.
  bool consume(std::uint64_t units = 1) noexcept;

  /// Sticky: true once any consume() observed exhaustion (or
  /// force_exhaust() ran).  Does not read the clock.
  [[nodiscard]] bool exhausted() const noexcept {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// Like exhausted(), but also polls the deadline right now — the check to
  /// run before committing to an expensive non-interruptible step.
  [[nodiscard]] bool check_now() noexcept;

  /// Marks the budget exhausted (e.g. an outer layer cancelling work).
  void force_exhaust() noexcept {
    exhausted_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const Deadline& deadline() const noexcept { return deadline_; }

  /// The Outcome this budget implies for a computation that finished its
  /// control flow: kBudgetExhausted if the token tripped, else kComplete.
  [[nodiscard]] Outcome outcome() const noexcept {
    return exhausted() ? Outcome::kBudgetExhausted : Outcome::kComplete;
  }

 private:
  Deadline deadline_;
  std::uint64_t max_work_ = kUnlimitedWork;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<bool> exhausted_{false};
};

}  // namespace hedra::util
