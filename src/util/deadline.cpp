#include "util/deadline.h"

namespace hedra::util {

std::int64_t monotonic_now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Deadline::Clock::now().time_since_epoch())
      .count();
}

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kComplete:
      return "complete";
    case Outcome::kBudgetExhausted:
      return "budget-exhausted";
    case Outcome::kFailed:
      return "failed";
  }
  return "unknown";
}

Deadline Deadline::after(std::chrono::nanoseconds budget) {
  Deadline d;
  d.unlimited_ = false;
  d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(budget);
  return d;
}

Deadline Deadline::after_seconds(double seconds) {
  return after(std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(seconds)));
}

Deadline Deadline::at(Clock::time_point when) noexcept {
  Deadline d;
  d.unlimited_ = false;
  d.when_ = when;
  return d;
}

Deadline::Clock::duration Deadline::remaining() const noexcept {
  if (unlimited_) return Clock::duration::max();
  const auto now = Clock::now();
  return now >= when_ ? Clock::duration::zero() : when_ - now;
}

Deadline Deadline::sooner(const Deadline& a, const Deadline& b) {
  if (a.unlimited()) return b;
  if (b.unlimited()) return a;
  return a.when_ <= b.when_ ? a : b;
}

bool Budget::consume(std::uint64_t units) noexcept {
  if (exhausted_.load(std::memory_order_relaxed)) return false;
  const std::uint64_t before = used_.fetch_add(units, std::memory_order_relaxed);
  const std::uint64_t after = before + units;
  if (after > max_work_) {
    exhausted_.store(true, std::memory_order_relaxed);
    return false;
  }
  // Amortised clock poll: at most once per kClockStride consumed units.
  // (before / stride != after / stride) is true exactly when the counter
  // crossed a stride boundary, so concurrent consumers poll about once per
  // stride in aggregate, not each.
  if (!deadline_.unlimited() &&
      (before / kClockStride != after / kClockStride || before == 0)) {
    if (deadline_.expired()) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

bool Budget::check_now() noexcept {
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (deadline_.expired()) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace hedra::util
