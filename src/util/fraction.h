#pragma once

/// \file fraction.h
/// Exact rational arithmetic on 64-bit integers.
///
/// Every response-time bound in the paper has the shape
/// `integer + integer / m`, so analysis results are exact rationals with a
/// small denominator.  Using Frac (instead of double) makes scenario
/// comparisons such as `C_off >= R_hom(G_par)` exact, which matters because
/// Theorem 1 switches formulas precisely at the equality point.
///
/// Intermediate products are computed in 128-bit arithmetic and checked for
/// int64 overflow on normalisation.  Building with -DHEDRA_CHECKED_FRAC=ON
/// (the sanitizer CI configuration) additionally cross-checks every 64x64
/// product against an independent __builtin_mul_overflow computation, so
/// the two arithmetic paths audit each other.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace hedra {

/// An exact rational number num/den with den > 0, always kept normalised
/// (gcd(|num|, den) == 1).  Arithmetic throws hedra::Error on overflow or
/// division by zero.
class Frac {
 public:
  /// Zero.
  constexpr Frac() noexcept : num_(0), den_(1) {}

  /// Integer value.
  constexpr Frac(std::int64_t value) noexcept  // NOLINT(google-explicit-constructor)
      : num_(value), den_(1) {}

  /// num/den, normalised.  Throws if den == 0.
  Frac(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const noexcept { return num_; }
  [[nodiscard]] std::int64_t den() const noexcept { return den_; }

  /// True if the value is an integer.
  [[nodiscard]] bool is_integer() const noexcept { return den_ == 1; }

  /// Closest double; fine for reporting, never used for comparisons.
  [[nodiscard]] double to_double() const noexcept;

  /// Largest integer <= value.
  [[nodiscard]] std::int64_t floor() const noexcept;

  /// Smallest integer >= value.
  [[nodiscard]] std::int64_t ceil() const noexcept;

  /// "7/2" or "3" when integral.
  [[nodiscard]] std::string to_string() const;

  Frac& operator+=(const Frac& rhs);
  Frac& operator-=(const Frac& rhs);
  Frac& operator*=(const Frac& rhs);
  Frac& operator/=(const Frac& rhs);

  friend Frac operator+(Frac lhs, const Frac& rhs) { return lhs += rhs; }
  friend Frac operator-(Frac lhs, const Frac& rhs) { return lhs -= rhs; }
  friend Frac operator*(Frac lhs, const Frac& rhs) { return lhs *= rhs; }
  friend Frac operator/(Frac lhs, const Frac& rhs) { return lhs /= rhs; }
  /// Negation throws on the one unrepresentable case (num == INT64_MIN).
  friend Frac operator-(const Frac& f);

  friend bool operator==(const Frac& a, const Frac& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Frac& a, const Frac& b) noexcept;

 private:
  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Frac& f);

/// max/min helpers (std::max works too; these read better in formulas).
[[nodiscard]] Frac frac_max(const Frac& a, const Frac& b) noexcept;
[[nodiscard]] Frac frac_min(const Frac& a, const Frac& b) noexcept;

/// Parses "3", "-2", "1.5" or "7/3" into an exact rational.  Finite decimals
/// are exactly representable (1.5 = 3/2), so spec files can carry decimal
/// factors without losing exactness.  Throws hedra::Error on malformed input
/// ("", "1.2.3", "1/0", "x").
[[nodiscard]] Frac parse_frac(std::string_view text);

/// Shortest spec-friendly rendering, the inverse of parse_frac: integers as
/// "3", exact finite decimals as "1.5"/"0.25", everything else as "7/3".
[[nodiscard]] std::string frac_spec_string(const Frac& f);

}  // namespace hedra
