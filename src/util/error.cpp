#include "util/error.h"

#include <sstream>

namespace hedra::detail {

void throw_require_failure(const char* expr, const char* file, int line,
                           const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: " << msg << " [" << expr << " at " << file
     << ":" << line << "]";
  throw Error(os.str());
}

void throw_assert_failure(const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "internal invariant violated (hedra bug): " << expr << " at " << file
     << ":" << line;
  throw InternalError(os.str());
}

}  // namespace hedra::detail
