#pragma once

/// \file table.h
/// ASCII table rendering for benchmark harnesses.  The per-figure benches
/// print the same rows/series the paper's figures plot; this class keeps the
/// output aligned and readable.

#include <string>
#include <vector>

namespace hedra {

/// Column alignment.
enum class Align { kLeft, kRight };

/// Accumulates rows, then renders with per-column widths.
class TextTable {
 public:
  /// Column headers; every subsequent row must have the same arity.
  explicit TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns = {});

  /// Appends a data row (arity must match headers).
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void add_separator();

  /// Renders the full table, including a header separator.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace hedra
