#include "util/csv.h"

namespace hedra {

void CsvWriter::row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) os_ << sep_;
    first = false;
    os_ << escape(field);
  }
  os_ << '\n';
  ++rows_;
}

void CsvWriter::row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> owned;
  owned.reserve(fields.size());
  for (const auto f : fields) owned.emplace_back(f);
  row(owned);
}

std::string CsvWriter::escape(std::string_view field) const {
  const bool needs_quotes =
      field.find(sep_) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos ||
      field.find('\r') != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace hedra
