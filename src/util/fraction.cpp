#include "util/fraction.h"

#include <limits>
#include <numeric>
#include <ostream>

#include "util/error.h"

namespace hedra {

namespace {

using Int128 = __int128;

std::int64_t checked_narrow(Int128 v) {
  HEDRA_REQUIRE(v >= std::numeric_limits<std::int64_t>::min() &&
                    v <= std::numeric_limits<std::int64_t>::max(),
                "Frac arithmetic overflowed 64-bit range");
  return static_cast<std::int64_t>(v);
}

/// |v| as an unsigned magnitude.  Well-defined for INT64_MIN (2^63 fits
/// uint64), unlike the naive `v < 0 ? -v : v` which is UB there.
constexpr std::uint64_t abs_u64(std::int64_t v) noexcept {
  const auto u = static_cast<std::uint64_t>(v);
  return v < 0 ? ~u + 1 : u;
}

/// -v, or the overflow error when v == INT64_MIN (the one int64 whose
/// negation is unrepresentable).
std::int64_t checked_negate(std::int64_t v) {
  HEDRA_REQUIRE(v != std::numeric_limits<std::int64_t>::min(),
                "Frac arithmetic overflowed 64-bit range");
  return -v;
}

/// v / g where g exactly divides |v|.  Works in the magnitude domain so
/// that v == INT64_MIN (whose |v| = 2^63 only exists unsigned) divides
/// cleanly; the quotient is always representable because |v/g| <= |v|.
std::int64_t divide_exact(std::int64_t v, std::uint64_t g) noexcept {
  const std::uint64_t q = abs_u64(v) / g;
  return v < 0 ? static_cast<std::int64_t>(~q + 1) : static_cast<std::int64_t>(q);
}

/// The audited 64x64 -> 128 product.  Under HEDRA_CHECKED_FRAC every
/// product is recomputed through __builtin_mul_overflow and the two
/// independent arithmetic paths must agree — a product that fits 64 bits
/// must match the wide result bit-for-bit, and one that overflows must
/// land outside the 64-bit range.  The sanitizer CI job builds with the
/// flag on, so a logic drift in either path fails loudly there instead of
/// silently corrupting a response-time bound.
Int128 mul_128(std::int64_t a, std::int64_t b) {
  const Int128 wide = Int128(a) * b;
#ifdef HEDRA_CHECKED_FRAC
  std::int64_t narrow = 0;
  if (__builtin_mul_overflow(a, b, &narrow)) {
    HEDRA_REQUIRE(wide < Int128(std::numeric_limits<std::int64_t>::min()) ||
                      wide > Int128(std::numeric_limits<std::int64_t>::max()),
                  "HEDRA_CHECKED_FRAC: overflow audit disagrees with the "
                  "128-bit product");
  } else {
    HEDRA_REQUIRE(wide == Int128(narrow),
                  "HEDRA_CHECKED_FRAC: __builtin_mul_overflow product "
                  "disagrees with the 128-bit product");
  }
#endif
  return wide;
}

}  // namespace

Frac::Frac(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  HEDRA_REQUIRE(den != 0, "Frac denominator must be non-zero");
  // Reduce on unsigned magnitudes FIRST: |INT64_MIN| is representable in
  // uint64, so the gcd and the exact divisions below are overflow-free.
  // Only after reduction is the sign moved to the numerator; a residual
  // INT64_MIN that must flip sign is a genuine unrepresentable value
  // (e.g. 1/INT64_MIN needs den = 2^63 > INT64_MAX) and throws.
  const std::uint64_t g = std::gcd(abs_u64(num_), abs_u64(den_));
  if (g > 1) {
    num_ = divide_exact(num_, g);
    den_ = divide_exact(den_, g);
  }
  if (den_ < 0) {
    num_ = checked_negate(num_);
    den_ = checked_negate(den_);
  }
}

double Frac::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::int64_t Frac::floor() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ < 0) ? q - 1 : q;
}

std::int64_t Frac::ceil() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ > 0) ? q + 1 : q;
}

std::string Frac::to_string() const {
  if (is_integer()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Frac& Frac::operator+=(const Frac& rhs) {
  const Int128 n =
      mul_128(num_, rhs.den_) + mul_128(rhs.num_, den_);
  const Int128 d = mul_128(den_, rhs.den_);
  // Normalise in 128 bits before narrowing so that e.g. 1/3 + 2/3 never
  // overflows spuriously.
  Int128 a = n < 0 ? -n : n;
  Int128 b = d;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  const Int128 g = a == 0 ? 1 : a;
  *this = Frac(checked_narrow(n / g), checked_narrow(d / g));
  return *this;
}

Frac& Frac::operator-=(const Frac& rhs) {
  return *this += Frac(checked_negate(rhs.num_), rhs.den_);
}

Frac operator-(const Frac& f) { return Frac(checked_negate(f.num_), f.den_); }

Frac& Frac::operator*=(const Frac& rhs) {
  // Cross-reduce first to keep intermediates small.  gcd runs on unsigned
  // magnitudes so INT64_MIN numerators reduce without UB; both gcds are
  // >= 1 because denominators are always positive.
  const std::uint64_t g1 =
      std::gcd(abs_u64(num_), static_cast<std::uint64_t>(rhs.den_));
  const std::uint64_t g2 =
      std::gcd(abs_u64(rhs.num_), static_cast<std::uint64_t>(den_));
  const Int128 n = mul_128(divide_exact(num_, g1), divide_exact(rhs.num_, g2));
  const Int128 d =
      mul_128(divide_exact(den_, g2), divide_exact(rhs.den_, g1));
  *this = Frac(checked_narrow(n), checked_narrow(d));
  return *this;
}

Frac& Frac::operator/=(const Frac& rhs) {
  HEDRA_REQUIRE(rhs.num_ != 0, "Frac division by zero");
  return *this *= Frac(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Frac& a, const Frac& b) noexcept {
  const Int128 lhs = Int128(a.num_) * b.den_;  // never overflows Int128
  const Int128 rhs = Int128(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Frac& f) {
  return os << f.to_string();
}

Frac frac_max(const Frac& a, const Frac& b) noexcept { return a < b ? b : a; }
Frac frac_min(const Frac& a, const Frac& b) noexcept { return b < a ? b : a; }

namespace {

std::int64_t parse_int_strict(std::string_view text, std::string_view whole) {
  HEDRA_REQUIRE(!text.empty(), "malformed rational '" + std::string(whole) +
                                   "': empty component");
  std::int64_t value = 0;
  bool negative = false;
  std::size_t i = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    i = 1;
    HEDRA_REQUIRE(text.size() > 1, "malformed rational '" + std::string(whole) +
                                       "': sign without digits");
  }
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  for (; i < text.size(); ++i) {
    HEDRA_REQUIRE(text[i] >= '0' && text[i] <= '9',
                  "malformed rational '" + std::string(whole) +
                      "': unexpected character '" + std::string(1, text[i]) +
                      "'");
    const std::int64_t digit = text[i] - '0';
    HEDRA_REQUIRE(value <= (kMax - digit) / 10,
                  "malformed rational '" + std::string(whole) +
                      "': overflows 64-bit range");
    value = value * 10 + digit;
  }
  return negative ? -value : value;
}

}  // namespace

Frac parse_frac(std::string_view text) {
  HEDRA_REQUIRE(!text.empty(), "cannot parse an empty rational");
  const auto slash = text.find('/');
  if (slash != std::string_view::npos) {
    HEDRA_REQUIRE(text.find('.') == std::string_view::npos &&
                      text.find('/', slash + 1) == std::string_view::npos,
                  "malformed rational '" + std::string(text) + "'");
    const std::int64_t num = parse_int_strict(text.substr(0, slash), text);
    const std::int64_t den = parse_int_strict(text.substr(slash + 1), text);
    HEDRA_REQUIRE(den != 0, "malformed rational '" + std::string(text) +
                                "': zero denominator");
    return Frac(num, den);
  }
  const auto dot = text.find('.');
  if (dot == std::string_view::npos) return Frac(parse_int_strict(text, text));
  const std::string_view frac_digits = text.substr(dot + 1);
  HEDRA_REQUIRE(!frac_digits.empty() &&
                    frac_digits.find_first_not_of("0123456789") ==
                        std::string_view::npos,
                "malformed rational '" + std::string(text) + "'");
  HEDRA_REQUIRE(frac_digits.size() <= 18,
                "malformed rational '" + std::string(text) +
                    "': too many decimal places");
  const std::string_view whole_part = text.substr(0, dot);
  const bool negative = !whole_part.empty() && whole_part[0] == '-';
  // "-0.5" has integer part 0, so the sign must be applied to the whole
  // value, not just the integer component.
  const std::int64_t integral =
      whole_part.empty() || whole_part == "-" || whole_part == "+"
          ? 0
          : parse_int_strict(whole_part, text);
  std::int64_t den = 1;
  for (std::size_t i = 0; i < frac_digits.size(); ++i) den *= 10;
  const std::int64_t frac_part = parse_int_strict(frac_digits, text);
  const std::int64_t whole_abs = integral < 0 ? -integral : integral;
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  HEDRA_REQUIRE(whole_abs <= (kMax - frac_part) / den,
                "malformed rational '" + std::string(text) +
                    "': overflows 64-bit range");
  const std::int64_t magnitude = whole_abs * den + frac_part;
  return Frac(negative || integral < 0 ? -magnitude : magnitude, den);
}

std::string frac_spec_string(const Frac& f) {
  if (f.is_integer()) return std::to_string(f.num());
  // A denominator of the form 2^a * 5^b has an exact finite decimal.
  std::int64_t den = f.den();
  int twos = 0;
  int fives = 0;
  while (den % 2 == 0) {
    den /= 2;
    ++twos;
  }
  while (den % 5 == 0) {
    den /= 5;
    ++fives;
  }
  // 10^places must fit int64 (and the scaled numerator below must too);
  // beyond that the ratio form is the exact spelling anyway.
  if (den != 1) return f.to_string();
  const int places = twos > fives ? twos : fives;
  if (places > 18) return f.to_string();
  std::int64_t scale = 1;
  for (int i = 0; i < places; ++i) scale *= 10;
  // scale/f.den() is integral by construction.
  const std::int64_t factor = scale / f.den();
  // Magnitude-domain arithmetic: INT64_MIN numerators (reachable with odd
  // 5^b denominators, e.g. INT64_MIN/5) must not be negated as int64.
  const std::uint64_t num_abs = abs_u64(f.num());
  if (num_abs > static_cast<std::uint64_t>(
                    std::numeric_limits<std::int64_t>::max()) /
                    static_cast<std::uint64_t>(factor)) {
    return f.to_string();
  }
  const std::int64_t scaled_abs =
      static_cast<std::int64_t>(num_abs * static_cast<std::uint64_t>(factor));
  std::string digits = std::to_string(scaled_abs % scale);
  digits.insert(digits.begin(),
                static_cast<std::size_t>(places) - digits.size(), '0');
  return (f.num() < 0 ? "-" : "") + std::to_string(scaled_abs / scale) + "." +
         digits;
}

}  // namespace hedra
