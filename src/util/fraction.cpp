#include "util/fraction.h"

#include <limits>
#include <numeric>
#include <ostream>

#include "util/error.h"

namespace hedra {

namespace {

using Int128 = __int128;

std::int64_t checked_narrow(Int128 v) {
  HEDRA_REQUIRE(v >= std::numeric_limits<std::int64_t>::min() &&
                    v <= std::numeric_limits<std::int64_t>::max(),
                "Frac arithmetic overflowed 64-bit range");
  return static_cast<std::int64_t>(v);
}

}  // namespace

Frac::Frac(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  HEDRA_REQUIRE(den != 0, "Frac denominator must be non-zero");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_ < 0 ? -num_ : num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

double Frac::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::int64_t Frac::floor() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ < 0) ? q - 1 : q;
}

std::int64_t Frac::ceil() const noexcept {
  const std::int64_t q = num_ / den_;
  return (num_ % den_ != 0 && num_ > 0) ? q + 1 : q;
}

std::string Frac::to_string() const {
  if (is_integer()) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Frac& Frac::operator+=(const Frac& rhs) {
  const Int128 n =
      Int128(num_) * rhs.den_ + Int128(rhs.num_) * den_;
  const Int128 d = Int128(den_) * rhs.den_;
  // Normalise in 128 bits before narrowing so that e.g. 1/3 + 2/3 never
  // overflows spuriously.
  Int128 a = n < 0 ? -n : n;
  Int128 b = d;
  while (b != 0) {
    const Int128 t = a % b;
    a = b;
    b = t;
  }
  const Int128 g = a == 0 ? 1 : a;
  *this = Frac(checked_narrow(n / g), checked_narrow(d / g));
  return *this;
}

Frac& Frac::operator-=(const Frac& rhs) { return *this += Frac(-rhs.num_, rhs.den_); }

Frac& Frac::operator*=(const Frac& rhs) {
  // Cross-reduce first to keep intermediates small.
  const std::int64_t g1 = std::gcd(num_ < 0 ? -num_ : num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_ < 0 ? -rhs.num_ : rhs.num_, den_);
  const Int128 n = Int128(num_ / g1) * (rhs.num_ / g2);
  const Int128 d = Int128(den_ / g2) * (rhs.den_ / g1);
  *this = Frac(checked_narrow(n), checked_narrow(d));
  return *this;
}

Frac& Frac::operator/=(const Frac& rhs) {
  HEDRA_REQUIRE(rhs.num_ != 0, "Frac division by zero");
  return *this *= Frac(rhs.den_, rhs.num_);
}

std::strong_ordering operator<=>(const Frac& a, const Frac& b) noexcept {
  const Int128 lhs = Int128(a.num_) * b.den_;
  const Int128 rhs = Int128(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Frac& f) {
  return os << f.to_string();
}

Frac frac_max(const Frac& a, const Frac& b) noexcept { return a < b ? b : a; }
Frac frac_min(const Frac& a, const Frac& b) noexcept { return b < a ? b : a; }

}  // namespace hedra
