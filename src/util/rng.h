#pragma once

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All experiments in the paper are Monte-Carlo over randomly generated DAG
/// tasks; reproducibility therefore hinges on a self-contained, seedable
/// generator whose output is identical across platforms.  We implement
/// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, and provide the
/// handful of distributions the generators need.  std::mt19937 +
/// std::uniform_int_distribution is deliberately avoided: the distributions
/// are not portable across standard-library implementations.

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.h"

namespace hedra {

/// xoshiro256** PRNG with explicit, portable distributions.
class Rng {
 public:
  /// Seeds the state from `seed` via SplitMix64 (any seed is fine, including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform_real() noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, size).  Requires size > 0.
  std::size_t index(std::size_t size);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    HEDRA_REQUIRE(!items.empty(), "Rng::pick on empty span");
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator; used to give each experiment
  /// replication its own stream so replications are order-independent.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace hedra
