#pragma once

/// \file strings.h
/// Small string utilities shared by I/O and reporting code.

#include <string>
#include <string_view>
#include <vector>

namespace hedra {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delim);

/// Strips leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text,
                               std::string_view prefix) noexcept;

/// Fixed-precision decimal formatting ("12.34"); locale-independent.
[[nodiscard]] std::string format_double(double value, int decimals);

/// "+12.3%" / "-4.5%" percentage formatting used in experiment reports.
[[nodiscard]] std::string format_percent(double value, int decimals = 1);

/// Parses a signed 64-bit integer; throws hedra::Error on malformed input.
[[nodiscard]] std::int64_t parse_int(std::string_view text);

/// Parses a double; throws hedra::Error on malformed input.
[[nodiscard]] double parse_real(std::string_view text);

}  // namespace hedra
