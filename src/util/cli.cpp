#include "util/cli.h"

#include <iostream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace hedra {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

std::int64_t* ArgParser::add_int(const std::string& name,
                                 std::int64_t default_value,
                                 const std::string& help) {
  HEDRA_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  ints_.push_back(std::make_unique<std::int64_t>(default_value));
  options_.push_back(Option{name, help, Kind::kInt,
                            std::to_string(default_value), ints_.size() - 1});
  return ints_.back().get();
}

double* ArgParser::add_real(const std::string& name, double default_value,
                            const std::string& help) {
  HEDRA_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  reals_.push_back(std::make_unique<double>(default_value));
  options_.push_back(Option{name, help, Kind::kReal,
                            format_double(default_value, 4),
                            reals_.size() - 1});
  return reals_.back().get();
}

bool* ArgParser::add_flag(const std::string& name, const std::string& help) {
  HEDRA_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  flags_.push_back(std::make_unique<bool>(false));
  options_.push_back(Option{name, help, Kind::kFlag, "false",
                            flags_.size() - 1});
  return flags_.back().get();
}

std::string* ArgParser::add_string(const std::string& name,
                                   const std::string& default_value,
                                   const std::string& help) {
  HEDRA_REQUIRE(find(name) == nullptr, "duplicate option --" + name);
  strings_.push_back(std::make_unique<std::string>(default_value));
  options_.push_back(
      Option{name, help, Kind::kString, default_value, strings_.size() - 1});
  return strings_.back().get();
}

ArgParser::Option* ArgParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt.name == name) return &opt;
  }
  return nullptr;
}

void ArgParser::assign(Option& opt, const std::string& value) {
  switch (opt.kind) {
    case Kind::kInt:
      *ints_[opt.slot] = parse_int(value);
      return;
    case Kind::kReal:
      *reals_[opt.slot] = parse_real(value);
      return;
    case Kind::kString:
      *strings_[opt.slot] = value;
      return;
    case Kind::kFlag:
      HEDRA_REQUIRE(value == "true" || value == "false",
                    "flag --" + opt.name + " takes no value");
      *flags_[opt.slot] = (value == "true");
      return;
  }
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    HEDRA_REQUIRE(starts_with(arg, "--"),
                  "unexpected positional argument '" + arg + "'");
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Option* opt = find(arg);
    HEDRA_REQUIRE(opt != nullptr, "unknown option --" + arg);
    if (opt->kind == Kind::kFlag && !has_value) {
      *flags_[opt->slot] = true;
      continue;
    }
    if (!has_value) {
      HEDRA_REQUIRE(i + 1 < argc, "option --" + arg + " expects a value");
      value = argv[++i];
    }
    assign(*opt, value);
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt.name;
    if (opt.kind != Kind::kFlag) os << " <" << opt.default_text << ">";
    os << "\n      " << opt.help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace hedra
