#include "util/table.h"

#include <algorithm>
#include <sstream>

#include "util/error.h"

namespace hedra {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  HEDRA_REQUIRE(!headers_.empty(), "TextTable requires at least one column");
  if (aligns_.empty()) {
    aligns_.assign(headers_.size(), Align::kRight);
    aligns_[0] = Align::kLeft;
  }
  HEDRA_REQUIRE(aligns_.size() == headers_.size(),
                "TextTable alignment arity mismatch");
}

void TextTable::add_row(std::vector<std::string> cells) {
  HEDRA_REQUIRE(cells.size() == headers_.size(),
                "TextTable row arity mismatch");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto emit_cell = [&](std::ostringstream& os, const std::string& text,
                             std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::kRight) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  const auto emit_rule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  std::ostringstream os;
  emit_rule(os);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ';
    emit_cell(os, headers_[c], c);
    os << " |";
  }
  os << '\n';
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.separator) {
      emit_rule(os);
      continue;
    }
    os << "|";
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << ' ';
      emit_cell(os, row.cells[c], c);
      os << " |";
    }
    os << '\n';
  }
  emit_rule(os);
  return os.str();
}

}  // namespace hedra
