#pragma once

/// \file cli.h
/// Tiny declarative command-line parser for the bench/example binaries.
/// Supports `--flag`, `--name value` and `--name=value`; prints usage and
/// rejects unknown options so typos in experiment sweeps fail loudly.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hedra {

/// Declarative option set; values are read back after parse().
class ArgParser {
 public:
  /// `program` and `summary` appear in the usage text.
  ArgParser(std::string program, std::string summary);

  /// Registers options.  The returned pointer stays valid for the parser's
  /// lifetime and is filled in by parse().
  std::int64_t* add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help);
  double* add_real(const std::string& name, double default_value,
                   const std::string& help);
  bool* add_flag(const std::string& name, const std::string& help);
  std::string* add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help);

  /// Parses argv.  Returns false (after printing usage) if `--help` was
  /// requested.  Throws hedra::Error on unknown/malformed options.
  bool parse(int argc, const char* const* argv);

  /// Usage text.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kReal, kFlag, kString };

  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    std::string default_text;
    // Stable storage: options are stored via unique ownership in vectors.
    std::size_t slot;
  };

  Option* find(const std::string& name);
  void assign(Option& opt, const std::string& value);

  std::string program_;
  std::string summary_;
  std::vector<Option> options_;
  // Deques would also work; vectors of unique_ptr give pointer stability.
  std::vector<std::unique_ptr<std::int64_t>> ints_;
  std::vector<std::unique_ptr<double>> reals_;
  std::vector<std::unique_ptr<bool>> flags_;
  std::vector<std::unique_ptr<std::string>> strings_;
};

}  // namespace hedra
