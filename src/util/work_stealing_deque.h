#pragma once

/// \file work_stealing_deque.h
/// Per-worker work-stealing deque for the parallel branch-and-bound search.
///
/// The owner treats its deque as a stack (push_bottom / pop_bottom), so a
/// worker explores its own subtrees in depth-first order; thieves take from
/// the opposite end (steal_top), which holds the *oldest* — and therefore
/// shallowest and typically largest — subtrees.  That end-asymmetry is the
/// whole point of the structure: it keeps owners cache-hot on recent work
/// while handing thieves the coarsest-grained tasks, minimising steal
/// traffic (the work-first principle of Blumofe & Leiserson).
///
/// This is the lock-guarded fallback implementation: every operation takes
/// one uncontended mutex.  The interface is Chase–Lev-shaped on purpose so a
/// lock-free array-based implementation can replace the body without
/// touching any caller; profiling the B&B workload shows deque traffic is a
/// few thousand operations per solve against tens of millions of search
/// nodes, so the mutex is nowhere near the critical path today.

#include <cstddef>
#include <deque>
#include <utility>

#include "util/thread_annotations.h"

namespace hedra {

template <typename T>
class WorkStealingDeque {
 public:
  WorkStealingDeque() = default;
  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner end: pushes a task onto the bottom (most recent) end.
  void push_bottom(T item) HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    items_.push_back(std::move(item));
  }

  /// Owner end: pops the most recently pushed task (LIFO).  Returns false
  /// when the deque is empty.
  [[nodiscard]] bool pop_bottom(T& out) HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.back());
    items_.pop_back();
    return true;
  }

  /// Thief end: steals the oldest task (FIFO).  Returns false when empty.
  [[nodiscard]] bool steal_top(T& out) HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  [[nodiscard]] std::size_t size() const HEDRA_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const HEDRA_EXCLUDES(mutex_) {
    return size() == 0;
  }

 private:
  mutable util::Mutex mutex_;
  std::deque<T> items_ HEDRA_GUARDED_BY(mutex_);
};

}  // namespace hedra
