#pragma once

/// \file thread_annotations.h
/// Clang Thread Safety Analysis annotations + annotated lock primitives.
///
/// The concurrency invariants DESIGN.md states in prose — which fields a
/// mutex guards, which functions must (or must not) hold it, which types
/// are capabilities — are only trustworthy if a machine checks them on
/// every build.  Clang's `-Wthread-safety` does exactly that, *statically*,
/// on paths no test executes (TSan only sees races a test happens to run).
///
/// Two layers live here:
///
///  1. `HEDRA_*` attribute macros.  Thin portable wrappers over Clang's
///     thread-safety attributes; they expand to nothing on GCC/MSVC, so the
///     default toolchain builds are untouched and the dedicated lint CI job
///     (clang + `-Wthread-safety -Werror`) is the enforcement point.
///
///  2. Annotated primitives `Mutex`, `MutexLock`, `CondVar`.  libstdc++'s
///     `std::mutex` carries no capability attributes, so Clang cannot see
///     facts through `std::lock_guard<std::mutex>`; these zero-overhead
///     wrappers (a `std::mutex` / `std::unique_lock` / `std::condition_
///     variable` with attributes attached) make every lock acquisition
///     visible to the analysis.  All lock-guarded structures in the tree
///     use them — `hedra_lint.py` rule `raw-mutex` keeps it that way.
///
/// Usage pattern:
///
///     class HEDRA_CAPABILITY("mutex") ... // only for new capability types
///
///     util::Mutex mutex_;
///     std::deque<T> items_ HEDRA_GUARDED_BY(mutex_);
///     void drain() HEDRA_REQUIRES(mutex_);
///     std::size_t size() const HEDRA_EXCLUDES(mutex_);

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define HEDRA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HEDRA_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex", "role", ...).
#define HEDRA_CAPABILITY(x) HEDRA_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define HEDRA_SCOPED_CAPABILITY HEDRA_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define HEDRA_GUARDED_BY(x) HEDRA_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define HEDRA_PT_GUARDED_BY(x) HEDRA_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capability.
#define HEDRA_REQUIRES(...) \
  HEDRA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the capability
/// (deadlock prevention for self-calling APIs).
#define HEDRA_EXCLUDES(...) \
  HEDRA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability (held on return).
#define HEDRA_ACQUIRE(...) \
  HEDRA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capability (not held on return).
#define HEDRA_RELEASE(...) \
  HEDRA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `value`.
#define HEDRA_TRY_ACQUIRE(value, ...) \
  HEDRA_THREAD_ANNOTATION(try_acquire_capability(value, __VA_ARGS__))

/// Function returning a reference to the given capability.
#define HEDRA_RETURN_CAPABILITY(x) HEDRA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function is trusted, the analysis skips its body.
/// Every use must carry a comment arguing why it is sound.
#define HEDRA_NO_THREAD_SAFETY_ANALYSIS \
  HEDRA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hedra::util {

/// `std::mutex` with capability attributes, so Clang tracks what it guards.
/// Same size, same cost; prefer `MutexLock` over manual lock()/unlock().
class HEDRA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HEDRA_ACQUIRE() { mu_.lock(); }
  void unlock() HEDRA_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() HEDRA_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over `Mutex` (a `std::unique_lock` underneath, so `CondVar`
/// can wait on it).  Supports early `unlock()` for the drop-before-throw
/// pattern; the destructor releases only if still held.
class HEDRA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HEDRA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HEDRA_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases before scope end (e.g. to throw without holding the lock).
  void unlock() HEDRA_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// `std::condition_variable` bound to `Mutex`/`MutexLock`.  `wait` requires
/// the caller to hold the lock — exactly the invariant the standard leaves
/// as undefined behaviour when violated; here Clang proves it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases `lock`, blocks, reacquires before returning.  The
  /// analysis treats the capability as held across the call (it is released
  /// only while blocked, and reacquired before control returns), which is
  /// the sound approximation for guarded accesses around the wait.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Predicate form: loops until `pred()` holds.  `pred` runs under the
  /// lock, so it may read guarded state.
  template <typename Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace hedra::util
