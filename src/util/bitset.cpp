#include "util/bitset.h"

#include <bit>

namespace hedra {

std::size_t DynamicBitset::count() const noexcept {
  std::size_t total = 0;
  for (const auto word : words_) total += std::popcount(word);
  return total;
}

bool DynamicBitset::any() const noexcept {
  for (const auto word : words_) {
    if (word != 0) return true;
  }
  return false;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& rhs) {
  HEDRA_REQUIRE(size_ == rhs.size_, "bitset size mismatch in operator|=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= rhs.words_[i];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& rhs) {
  HEDRA_REQUIRE(size_ == rhs.size_, "bitset size mismatch in operator&=");
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= rhs.words_[i];
  return *this;
}

std::vector<std::size_t> DynamicBitset::to_indices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(bit));
      word &= word - 1;
    }
  }
  return out;
}

}  // namespace hedra
