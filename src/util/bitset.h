#pragma once

/// \file bitset.h
/// Fixed-capacity dynamic bitset used for node sets (reachability, Pred/Succ
/// sets, transitive closures).  std::vector<bool> is avoided for its proxy
/// semantics; std::bitset needs a compile-time size.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.h"

namespace hedra {

/// A set of small integers in [0, size()).
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// All-zero set over [0, size).
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void set(std::size_t i) {
    check(i);
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void reset(std::size_t i) {
    check(i);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    check(i);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  // -- Unchecked variants for hot inner loops (the B&B solver flips and
  //    tests membership bits millions of times per second over indices that
  //    are node ids of the same graph, so the range check is pure
  //    overhead).  Callers own the bounds proof.

  void set_unchecked(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }

  void reset_unchecked(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  [[nodiscard]] bool test_unchecked(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// In-place union; sizes must match.
  DynamicBitset& operator|=(const DynamicBitset& rhs);

  /// In-place intersection; sizes must match.
  DynamicBitset& operator&=(const DynamicBitset& rhs);

  friend bool operator==(const DynamicBitset& a,
                         const DynamicBitset& b) noexcept = default;

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> to_indices() const;

 private:
  void check(std::size_t i) const {
    HEDRA_REQUIRE(i < size_, "DynamicBitset index out of range");
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace hedra
