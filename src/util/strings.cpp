#include "util/strings.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace hedra {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, value);
  return buf;
}

std::int64_t parse_int(std::string_view text) {
  text = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  HEDRA_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
                "malformed integer: '" + std::string(text) + "'");
  return value;
}

double parse_real(std::string_view text) {
  text = trim(text);
  // std::from_chars for double is not available everywhere; strtod suffices
  // and the string is bounded.
  const std::string owned(text);
  char* end = nullptr;
  const double value = std::strtod(owned.c_str(), &end);
  HEDRA_REQUIRE(end == owned.c_str() + owned.size() && !owned.empty() &&
                    std::isfinite(value),
                "malformed real: '" + owned + "'");
  return value;
}

}  // namespace hedra
