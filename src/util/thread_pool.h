#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool for the experiment engine.
///
/// The Monte-Carlo sweeps evaluate hundreds of independently seeded DAG
/// replications per parameter point; `parallel_for_each` fans those out over
/// a fixed set of workers while keeping results **deterministic**: work is
/// claimed by atomic index, every item writes only to its own output slot,
/// and reduction happens on the calling thread in index order.  Given the
/// per-replication seeding of exp/experiment.h, an N-worker run is therefore
/// bit-identical to a serial one.
///
/// Exceptions thrown by items are captured; the first one (by item index) is
/// rethrown on the calling thread after all workers have drained.

#include <cstddef>
#include <functional>
#include <vector>

namespace hedra {

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads.  `workers == 1` is a valid
  /// degenerate pool: items run inline on the calling thread and no thread
  /// is spawned, which keeps single-job runs free of scheduling noise.
  /// Requires workers >= 1.
  explicit ThreadPool(int workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers (outstanding parallel_for_each calls finish first).
  ~ThreadPool();

  /// Number of threads that execute work, the calling thread included.
  [[nodiscard]] int workers() const noexcept { return workers_; }

  /// Hardware concurrency, clamped to >= 1; the default for `--jobs 0`.
  [[nodiscard]] static int default_workers() noexcept;

  /// Runs fn(0) ... fn(count - 1), distributing items over the pool; the
  /// calling thread participates.  Blocks until every item completed.  If
  /// any item throws, the exception of the smallest-index failing item is
  /// rethrown here once all claimed items finished.  Reentrant: a call
  /// issued from inside an item (on this or any other pool) runs its items
  /// inline on the calling thread — nested parallelism never deadlocks the
  /// dispatch protocol or oversubscribes the machine.  Concurrent calls
  /// from two independent (non-pool) threads remain invalid.
  void parallel_for_each(std::size_t count,
                         const std::function<void(std::size_t)>& fn);

  /// Deterministic map: out[i] = fn(i).  Results land in index order no
  /// matter which worker computed them.
  template <typename R>
  std::vector<R> parallel_map(std::size_t count,
                              const std::function<R(std::size_t)>& fn) {
    std::vector<R> out(count);
    parallel_for_each(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< null for the degenerate 1-worker pool
  int workers_ = 1;
};

}  // namespace hedra
