#pragma once

/// \file fault.h
/// Deterministic fault injection for robustness testing.
///
/// Long-running services fail at the seams — allocations, fixpoint
/// iterations, journal writes, queue hand-offs — and a robustness contract
/// is only testable if those seams can be made to fail ON DEMAND.  This
/// registry provides named fault *sites*:
///
///     HEDRA_FAULT("serve.journal.write");
///
/// compiles to a single relaxed atomic load when injection is disabled (the
/// production state: no registry lookup, no lock, no RNG), and when enabled
/// consults the site's trigger:
///
///   - `rate` triggers fire with probability p per hit, drawn from a
///     per-site RNG forked deterministically from the global fault seed and
///     an FNV-1a hash of the site name — so a faulting run is exactly
///     reproducible from (spec, seed) and independent of unrelated sites;
///   - `@N` triggers fire on exactly the N-th hit of that site (1-based),
///     the tool for "kill the journal mid-append on the 3rd record";
///   - the action is either *throw* (a hedra::fault::Injected, a subclass
///     of hedra::Error naming the site — the default; callers treat it as
///     any other failure and must fail CLOSED) or *kill* (raise(SIGKILL),
///     for crash-recovery tests that need the process to vanish without
///     unwinding).
///
/// Configuration is a comma-separated spec, programmatic or via the
/// environment (`HEDRA_FAULTS`, seed in `HEDRA_FAULT_SEED`) — the library
/// NEVER reads the environment on its own; binaries that want env-driven
/// faults call install_from_env() explicitly:
///
///     HEDRA_FAULTS='*=0.01'                          # 1% at every site
///     HEDRA_FAULTS='serve.journal.write.mid=@2!kill' # die mid-2nd-append
///     HEDRA_FAULTS='taskset.rta.iteration=0.05,serve.queue.push=@1'
///
/// `*` matches every site; an exact entry overrides the wildcard.  Sites
/// self-register on first execution, so `registered_sites()` enumerates
/// every seam a workload actually crossed — run the workload once under
/// `*=0` (enabled, never fires) to take the inventory, then arm sites one
/// by one (the fail-closed property test does exactly this).

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/error.h"

namespace hedra::fault {

/// Thrown when an armed fault site fires with the throw action.
class Injected : public Error {
 public:
  explicit Injected(const std::string& site)
      : Error("injected fault at site '" + site + "'"), site_(site) {}

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  std::string site_;
};

/// What an armed site does when it fires.
enum class Action {
  kThrow,  ///< throw fault::Injected (default)
  kKill,   ///< raise(SIGKILL): the process dies without unwinding
};

/// When an armed site fires.
struct Trigger {
  double rate = 0.0;      ///< fire probability per hit (ignored if nth > 0)
  std::uint64_t nth = 0;  ///< fire on exactly this hit (1-based); 0 = off
  Action action = Action::kThrow;
};

/// Counters of one registered site.
struct SiteStats {
  std::string name;
  std::uint64_t hits = 0;   ///< times the site executed while enabled
  std::uint64_t fired = 0;  ///< times it actually injected
};

namespace detail {
extern std::atomic<bool> g_enabled;
/// Registry hit path; called only while enabled.
void hit(const char* site);
}  // namespace detail

/// True while any trigger (or a `*=0` discovery config) is installed.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Parses and installs a spec (see file comment), replacing any previous
/// configuration and clearing counters.  An empty spec disables injection.
/// Throws hedra::Error naming the offending entry on malformed specs.
void configure(const std::string& spec, std::uint64_t seed = 0);

/// Arms one site programmatically (enables injection).  Counters of the
/// site are reset; other sites keep their state.
void arm(const std::string& site, const Trigger& trigger);

/// Disables injection and clears every trigger and counter.  Registered
/// site NAMES are kept — the inventory outlives a reset so discovery runs
/// compose with per-site arming.
void reset();

/// Forgets everything, inventory included (test isolation).
void clear_registry();

/// Reads HEDRA_FAULTS / HEDRA_FAULT_SEED and configures accordingly.
/// Returns true if a spec was installed.  No-op without the variable.
bool install_from_env();

/// Every site name that has executed at least once while enabled (sorted).
[[nodiscard]] std::vector<std::string> registered_sites();

/// Counters per registered site (sorted by name).
[[nodiscard]] std::vector<SiteStats> stats();

/// Hits of one site so far (0 if never seen).
[[nodiscard]] std::uint64_t hits(const std::string& site);

/// Fires of one site so far (0 if never seen).
[[nodiscard]] std::uint64_t fired(const std::string& site);

}  // namespace hedra::fault

/// A named fault-injection seam.  Zero overhead when injection is disabled
/// (one relaxed atomic load, statically predicted not-taken).
#define HEDRA_FAULT(site)                        \
  do {                                           \
    if (::hedra::fault::enabled()) [[unlikely]]  \
      ::hedra::fault::detail::hit(site);         \
  } while (false)
