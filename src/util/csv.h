#pragma once

/// \file csv.h
/// Minimal CSV writer for experiment output.  Fields containing separators,
/// quotes or newlines are quoted per RFC 4180.

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace hedra {

/// Streams rows of a CSV document.  The writer does not own the stream.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',') : os_(os), sep_(sep) {}

  /// Writes one row; values are escaped as needed.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string_view> fields);

  /// Convenience: builds a row from heterogeneous printable values.
  template <typename... Ts>
  void cells(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(to_field(values)), ...);
    row(fields);
  }

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(const char* s) { return s; }
  template <typename T>
  static std::string to_field(const T& v) {
    if constexpr (std::is_floating_point_v<T>) {
      return std::to_string(v);
    } else {
      return std::to_string(v);
    }
  }

  std::string escape(std::string_view field) const;

  std::ostream& os_;
  char sep_;
  std::size_t rows_ = 0;
};

}  // namespace hedra
