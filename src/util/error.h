#pragma once

/// \file error.h
/// Error-handling machinery for hedra.
///
/// Public API misuse (bad arguments, malformed graphs, ...) throws
/// hedra::Error via HEDRA_REQUIRE.  Internal invariants use HEDRA_ASSERT,
/// which also throws (so property tests can observe violations) but is
/// worded as a library bug.

#include <stdexcept>
#include <string>

namespace hedra {

/// Exception thrown on precondition violations and invalid inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Exception thrown when an internal invariant does not hold (a hedra bug).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failure(const char* expr, const char* file,
                                        int line, const std::string& msg);
[[noreturn]] void throw_assert_failure(const char* expr, const char* file,
                                       int line);
}  // namespace detail

}  // namespace hedra

/// Validate a caller-supplied precondition; throws hedra::Error on failure.
#define HEDRA_REQUIRE(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hedra::detail::throw_require_failure(#expr, __FILE__, __LINE__,  \
                                             (msg));                     \
    }                                                                     \
  } while (false)

/// Validate an internal invariant; throws hedra::InternalError on failure.
#define HEDRA_ASSERT(expr)                                                   \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::hedra::detail::throw_assert_failure(#expr, __FILE__, __LINE__);      \
    }                                                                        \
  } while (false)
