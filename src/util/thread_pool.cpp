#include "util/thread_pool.h"

#include <atomic>
#include <exception>
#include <limits>
#include <thread>

#include "util/error.h"
#include "util/thread_annotations.h"

namespace hedra {

namespace {

/// Depth of ThreadPool item execution on this thread (any pool).  Nested
/// parallel_for_each calls issued from inside an item run their items
/// inline instead of dispatching: dispatching to the same pool would
/// deadlock the single-job-slot protocol, and dispatching to a second pool
/// from a worker oversubscribes the machine.  Inline nested execution keeps
/// Runner::sweep --jobs N composable with callbacks that parallelise
/// internally (e.g. the parallel B&B).
thread_local int pool_item_depth = 0;

struct ItemDepthGuard {
  ItemDepthGuard() { ++pool_item_depth; }
  ~ItemDepthGuard() { --pool_item_depth; }
};

}  // namespace

/// Shared state of one parallel_for_each call.  Workers claim items through
/// a single atomic cursor, so no item is run twice and the claim order never
/// affects results (each item owns its output slot).
struct ThreadPool::Impl {
  explicit Impl(int extra_workers) {
    threads.reserve(static_cast<std::size_t>(extra_workers));
    try {
      for (int i = 0; i < extra_workers; ++i) {
        threads.emplace_back([this] { worker_loop(); });
      }
    } catch (...) {
      // A failed spawn (thread limits) must not leave the already-started
      // workers joinable, or ~vector<std::thread> would std::terminate.
      {
        util::MutexLock lock(mutex);
        shutting_down = true;
      }
      wake.notify_all();
      for (auto& t : threads) t.join();
      throw;
    }
  }

  ~Impl() {
    {
      util::MutexLock lock(mutex);
      shutting_down = true;
    }
    wake.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop() HEDRA_EXCLUDES(mutex) {
    std::uint64_t last_seen_job = 0;
    for (;;) {
      {
        util::MutexLock lock(mutex);
        while (!shutting_down && job_id == last_seen_job) wake.wait(lock);
        if (shutting_down) return;
        last_seen_job = job_id;
      }
      run_items();
      if (active_workers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        util::MutexLock lock(mutex);
        done.notify_all();
      }
    }
  }

  /// Claims and runs items until the cursor passes `count`.  `fn` and
  /// `count` are stable for the duration of a dispatched job (set under
  /// `mutex` before the wake, cleared only after every worker drained), so
  /// the claim loop reads them lock-free.
  void run_items() HEDRA_EXCLUDES(mutex) {
    const ItemDepthGuard guard;
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*fn)(i);
      } catch (...) {
        util::MutexLock lock(mutex);
        // Keep the smallest-index failure so reruns are reproducible even
        // when several items throw in one batch.
        if (!error || i < error_index) {
          error = std::current_exception();
          error_index = i;
        }
      }
    }
  }

  std::vector<std::thread> threads;
  util::Mutex mutex;
  util::CondVar wake;
  util::CondVar done;
  bool shutting_down HEDRA_GUARDED_BY(mutex) = false;

  // Per-call state.  `job_id`, `error`, `error_index` are only touched
  // under `mutex`; `fn`/`count` are published under `mutex` before `wake`
  // and read lock-free inside a job (see run_items).
  std::uint64_t job_id HEDRA_GUARDED_BY(mutex) = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> cursor{0};
  std::atomic<int> active_workers{0};
  std::exception_ptr error HEDRA_GUARDED_BY(mutex);
  std::size_t error_index HEDRA_GUARDED_BY(mutex) = 0;
};

ThreadPool::ThreadPool(int workers) : workers_(workers) {
  HEDRA_REQUIRE(workers >= 1, "thread pool needs at least one worker");
  if (workers > 1) impl_ = new Impl(workers - 1);
}

ThreadPool::~ThreadPool() { delete impl_; }

int ThreadPool::default_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::parallel_for_each(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // 1-worker pool, or a nested call from inside a pool item (the worker is
  // already a parallel lane — dispatching again would deadlock the one-job
  // dispatch protocol or oversubscribe): run inline, fail on first error.
  if (impl_ == nullptr || pool_item_depth > 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    util::MutexLock lock(impl_->mutex);
    HEDRA_REQUIRE(impl_->fn == nullptr,
                  "parallel_for_each may not be called concurrently from "
                  "two independent threads on one pool");
    impl_->fn = &fn;
    impl_->count = count;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->active_workers.store(static_cast<int>(impl_->threads.size()),
                                std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->error_index = std::numeric_limits<std::size_t>::max();
    ++impl_->job_id;
  }
  impl_->wake.notify_all();
  impl_->run_items();  // the calling thread participates
  {
    util::MutexLock lock(impl_->mutex);
    while (impl_->active_workers.load(std::memory_order_acquire) != 0) {
      impl_->done.wait(lock);
    }
    impl_->fn = nullptr;
    if (impl_->error) {
      std::exception_ptr error = impl_->error;
      impl_->error = nullptr;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

}  // namespace hedra
