#pragma once

/// \file sim.h (taskset)
/// Discrete-event simulation of a WHOLE sporadic task set on one shared
/// platform — the taskset layer's counterpart of sim/scheduler.h, layered
/// on the same ingredients (graph::FlatDag CSR snapshots, a binary min-heap
/// of timed events) but with two new dimensions:
///
///  - RELEASES: every task τ_i releases a job at 0, T_i, 2·T_i, ... (the
///    synchronous periodic arrival pattern, the densest a sporadic task is
///    allowed); each job is an independent instance of the task's DAG.
///  - SHARING: host cores are partitioned — task i schedules its host-ready
///    nodes on its own `cores_per_task[i]` dedicated cores under the chosen
///    ready-queue policy — while every accelerator class d is SHARED: one
///    FIFO queue per device across all tasks' jobs, served by the
///    platform's n_d units.  This is exactly the resource model
///    taskset/contention_rta.h bounds, so observed per-job response times
///    must stay below the admitted bounds (the fig12 sweep and the
///    randomized property tests count violations with exact rationals).
///
/// Semantics carried over from the single-DAG simulator: non-preemptive
/// execution, zero-WCET host nodes retire instantly as pure
/// synchronisation points, zero-WCET accelerator nodes queue for a unit
/// like any offload, and every dispatch is work-conserving.  Determinism:
/// all same-time ready events are ordered by (task, job, node id), so runs
/// are bit-reproducible for every policy (kRandom draws from the seeded
/// portable RNG).

#include <cstdint>
#include <span>
#include <vector>

#include "sim/scheduler.h"
#include "taskset/taskset.h"
#include "util/deadline.h"

namespace hedra::taskset {

struct TasksetSimConfig {
  sim::Policy policy = sim::Policy::kBreadthFirst;
  std::uint64_t seed = 1;  ///< used by Policy::kRandom only
  int jobs_per_task = 3;   ///< releases simulated per task (>= 1)
  /// Wall-clock cut for the event loop (default: never).  On expiry the
  /// simulation stops at an event boundary; finished jobs keep their exact
  /// records, unfinished ones stay marked and the result reports
  /// Outcome::kBudgetExhausted — never a fabricated response time.
  util::Deadline deadline;
};

/// One job's observed lifetime.
struct JobRecord {
  graph::Time release = 0;
  graph::Time finish = 0;
  bool finished = false;  ///< false on a budget-cut run: finish is unset

  [[nodiscard]] graph::Time response() const noexcept {
    return finish - release;
  }
};

/// Per-task observations.
struct TaskObservation {
  std::vector<JobRecord> jobs;       ///< jobs_per_task entries, release order
  graph::Time worst_response = 0;    ///< max over the FINISHED jobs
};

struct TasksetSimResult {
  std::vector<TaskObservation> tasks;  ///< aligned with the set
  graph::Time makespan = 0;            ///< completion of the last job
  /// kComplete when every released job ran to completion; kBudgetExhausted
  /// when the config deadline cut the event loop short.
  util::Outcome outcome = util::Outcome::kComplete;
  std::size_t jobs_unfinished = 0;     ///< > 0 only when budget-cut
};

/// Simulates every released job to completion.  `cores_per_task` is the
/// host partition (one entry per task, every entry >= 1; typically the
/// `cores` column of taskset::contention_rta's admission) and must fit the
/// platform: Σ_i cores_per_task[i] <= platform.cores.  Device units and
/// WCETs come from the set's platform and DAGs; WCETs are device-time (the
/// generator's speedup scaling already applied), so no further scaling
/// happens here — and a platform carrying WCET speedups is REJECTED
/// (hedra::Error): its nominal-WCET convention cannot be executed
/// verbatim, so simulating it would falsely undercut the scaled admission
/// bounds.  Bake speedups into the WCETs at generation instead.
[[nodiscard]] TasksetSimResult simulate_taskset(
    const TaskSet& set, std::span<const int> cores_per_task,
    const TasksetSimConfig& config);

}  // namespace hedra::taskset
