#include "taskset/taskset.h"

#include <fstream>
#include <sstream>

#include "graph/dag_io.h"
#include "util/strings.h"

namespace hedra::taskset {

namespace {

/// vol_d(G) without forcing arena-backed tasks to materialise a Dag.
graph::Time task_volume_on(const DagTask& task, graph::DeviceId device) {
  if (!task.has_flat_view()) return task.dag().volume_on(device);
  const graph::FlatView view = task.flat_view();
  graph::Time volume = 0;
  for (graph::NodeId v = 0; v < view.num_nodes(); ++v) {
    if (view.device(v) == device) volume += view.wcet(v);
  }
  return volume;
}

}  // namespace

void TaskSet::validate() const {
  platform_.validate();
  const auto num_devices =
      static_cast<graph::DeviceId>(platform_.num_devices());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const DagTask& task = tasks_[i];
    HEDRA_REQUIRE(!task.name().empty(), "task names must be non-empty");
    HEDRA_REQUIRE(task.name().find_first_of(" \t\r\n") == std::string::npos,
                  "task name '" + task.name() + "' contains whitespace");
    for (std::size_t j = 0; j < i; ++j) {
      HEDRA_REQUIRE(tasks_[j].name() != task.name(),
                    "duplicate task name '" + task.name() + "'");
    }
    // Arena-backed fast path: the view's max device decides support without
    // materialising.  On violation fall through to the Dag-based check so
    // the message (which names the offending node) stays identical.
    if (task.has_flat_view() && task.flat_view().max_device() <= num_devices) {
      continue;
    }
    const auto issues = model::check_supports(platform_, task.dag());
    HEDRA_REQUIRE(issues.empty(), "task '" + task.name() +
                                      "' does not fit the platform: " +
                                      issues.front());
  }
}

Frac TaskSet::task_device_utilization(std::size_t i,
                                      graph::DeviceId device) const {
  HEDRA_REQUIRE(i < tasks_.size(), "task index out of range");
  return Frac(task_volume_on(tasks_[i], device), tasks_[i].period());
}

// hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
double TaskSet::device_utilization(graph::DeviceId device) const {
  double total = 0.0;  // hedra-lint: allow(float-in-bound, reporting aggregate)
  for (const DagTask& task : tasks_) {
    // hedra-lint: allow(float-in-bound, reporting aggregate)
    total += static_cast<double>(task_volume_on(task, device)) /
             // hedra-lint: allow(float-in-bound, reporting aggregate)
             static_cast<double>(task.period());
  }
  return total;
}

// hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
double TaskSet::total_utilization() const {
  double total = 0.0;  // hedra-lint: allow(float-in-bound, reporting aggregate)
  for (const DagTask& task : tasks_) total += task.utilization().to_double();
  return total;
}

std::string TaskSet::to_text() const {
  validate();
  std::ostringstream os;
  os << "platform " << platform_.spec() << "\n";
  for (const DagTask& task : tasks_) {
    os << "task " << task.name() << " period " << task.period()
       << " deadline " << task.deadline() << "\n"
       << graph::write_dag_text(task.dag()) << "endtask\n";
  }
  return os.str();
}

TaskSet TaskSet::from_text(const std::string& text) {
  const auto lines = split(text, '\n');
  auto fail = [&](std::size_t line, const std::string& reason) -> void {
    throw Error("taskset line " + std::to_string(line + 1) + ": " + reason);
  };

  TaskSet set;
  bool have_platform = false;
  std::size_t i = 0;
  while (i < lines.size()) {
    const std::string_view line = trim(lines[i]);
    if (line.empty() || line[0] == '#') {
      ++i;
      continue;
    }
    // Directives are matched by their EXACT first token, so a misspelling
    // like "tasks" or "platformX" is an unknown directive, not a silently
    // accepted near-miss.
    const std::string_view directive = line.substr(0, line.find_first_of(" \t"));
    if (directive == "platform") {
      if (have_platform) fail(i, "duplicate platform directive");
      const std::string spec(trim(line.substr(directive.size())));
      set.platform_ = Platform::parse(spec);
      have_platform = true;
      ++i;
      continue;
    }
    if (directive == "task") {
      if (!have_platform) fail(i, "the platform directive must come first");
      if (set.tasks_.size() >= kMaxParsedTasks) {
        fail(i, "task count exceeds the parser cap of " +
                    std::to_string(kMaxParsedTasks));
      }
      // "task <name> period <T> deadline <D>"
      std::istringstream header{std::string(line)};
      std::string keyword, name, period_kw, deadline_kw, trailing;
      graph::Time period = 0;
      graph::Time deadline = 0;
      header >> keyword >> name >> period_kw >> period >> deadline_kw >>
          deadline;
      // `>>` stops at the first non-digit, so "deadline 40O" would silently
      // read 40; any leftover token is a malformed header.
      if (header.fail() || period_kw != "period" ||
          deadline_kw != "deadline" || (header >> trailing)) {
        fail(i, "expected 'task <name> period <T> deadline <D>', got '" +
                    std::string(line) + "'");
      }
      const std::size_t header_line = i;
      ++i;
      std::string dag_text;
      bool closed = false;
      while (i < lines.size()) {
        const std::string_view body = trim(lines[i]);
        if (body == "endtask") {
          closed = true;
          ++i;
          break;
        }
        dag_text += lines[i];
        dag_text += '\n';
        ++i;
      }
      if (!closed) fail(header_line, "task '" + name + "' has no endtask");
      // validate() would catch the duplicate too, but only after parsing
      // everything and without a line number; failing here names the line.
      for (const DagTask& existing : set.tasks_) {
        if (existing.name() == name) {
          fail(header_line, "duplicate task name '" + name + "'");
        }
      }
      try {
        set.add(DagTask(graph::read_dag_text(dag_text), period, deadline,
                        name));
      } catch (const Error& e) {
        fail(header_line, "task '" + name + "': " + e.what());
      }
      continue;
    }
    fail(i, "unknown directive '" + std::string(line) + "'");
  }
  HEDRA_REQUIRE(have_platform, "taskset text has no platform directive");
  set.validate();
  return set;
}

void save_taskset_file(const TaskSet& set, const std::string& path) {
  std::ofstream out(path);
  HEDRA_REQUIRE(out.good(), "cannot open file for writing: " + path);
  out << set.to_text();
  HEDRA_REQUIRE(out.good(), "failed writing taskset file: " + path);
}

TaskSet load_taskset_file(const std::string& path) {
  std::ifstream in(path);
  HEDRA_REQUIRE(in.good(), "cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return TaskSet::from_text(buffer.str());
}

}  // namespace hedra::taskset
