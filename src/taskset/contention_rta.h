#pragma once

/// \file contention_rta.h
/// Federated-style admission test for sporadic DAG task sets whose offload
/// nodes CONTEND for shared accelerator classes.
///
/// The single-task platform bound (analysis/platform_rta.h) already accounts
/// for a task's own device serialisation:
///
///   R_i(m_i) <= vol_host_i/m_i + Σ_d vol_{i,d}/(n_d·s_d)
///             + max_P Σ_{v∈P} w_v   (the weighted chain walk).
///
/// On a shared platform, device d additionally executes work of the OTHER
/// tasks while τ_i's job is pending: in any window of length L, a competing
/// sporadic task τ_j (with constrained deadline D_j <= T_j and a response
/// bound <= D_j) has at most  n_jobs_j(L) = floor((L + D_j)/T_j) + 1  jobs
/// whose execution overlaps the window — the classic carry-in argument of
/// the sporadic-DAG interference literature (Dong & Liu, arXiv:1808.00017;
/// Dinh et al., arXiv:1905.05119).  Each such job places at most vol_{j,d}
/// device-d ticks on the class's n_d units, so the device-saturated waiting
/// of the Graham chain argument grows by  Σ_{j≠i} n_jobs_j(L)·vol_{j,d} /
/// (n_d·s_d),  and the response bound becomes the least fixpoint of
///
///   R = R_i(m_i) + Σ_d Σ_{j≠i} (floor((R + D_j)/T_j) + 1)·vol_{j,d}
///                             / (n_d·s_d) ,
///
/// iterated in EXACT rational arithmetic from R = R_i(m_i).  The right-hand
/// side is non-decreasing in R, so the iteration either reaches a fixpoint
/// or crosses D_i (unschedulable at this core count).  A task with no
/// device-sharing competitors — in particular any SINGLE-task set — takes
/// zero iterations past the seed, so its bound equals
/// AnalysisCache::r_platform with exact rational equality (regression-
/// pinned; the acceptance criterion of this subsystem).
///
/// Host cores are PARTITIONED, federated-style: tasks are processed in
/// index order (the priority order), each receiving the smallest dedicated
/// m_i <= remaining cores whose fixpoint meets D_i — the seed bound is
/// non-increasing in m_i (vol_host/m shrinks faster than the chain term
/// grows, exactly as in the single-task bound), so the smallest feasible
/// m_i wastes no cores on later tasks.  Devices are NOT partitioned; they
/// are exactly the contention the fixpoint charges for.  The set is
/// admitted iff every task gets a feasible allocation within the m cores.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "taskset/taskset.h"
#include "util/deadline.h"
#include "util/fraction.h"

namespace hedra::taskset {

/// One shared accelerator class's contribution to a task's inflated bound.
struct DeviceContention {
  graph::DeviceId device = 0;     ///< device id (>= 1)
  graph::Time own_volume = 0;     ///< vol_{i,d}, the task's own device work
  /// Σ_{j≠i} n_jobs_j(R)·vol_{j,d}/(n_d·s_d) at the fixpoint — the
  /// carry-in interference other tasks add on this class.
  Frac interference;
  /// Index of the competitor contributing most to `interference`
  /// (meaningless when interference is zero).
  std::size_t dominant_competitor = 0;
};

/// Per-task outcome of the admission test.
struct TaskAdmission {
  std::string name;
  int cores = 0;        ///< dedicated host cores m_i (0: none left to try)
  bool schedulable = false;
  /// Inflated response bound at `cores` (the fixpoint when schedulable;
  /// the first value crossing the deadline otherwise; zero when cores==0).
  Frac response;
  int iterations = 0;   ///< fixpoint iterations taken (1 = no contention)
  /// kComplete when the verdict is mathematically final.  kBudgetExhausted
  /// when the reported fixpoint was TRUNCATED — by the iteration guard or
  /// by a caller-supplied budget — so "not schedulable" means "not PROVEN
  /// schedulable within budget", never a proof of infeasibility.  A
  /// truncated task is always reported unschedulable (fail closed).
  util::Outcome outcome = util::Outcome::kComplete;
  std::vector<DeviceContention> devices;  ///< classes with shared work only
};

/// Fixpoint-engine telemetry for one whole-set analysis.  Plain local
/// counters on the analysis path — no atomics, no locks, no clock reads —
/// so recording never perturbs the iteration sequence or the verdict
/// (analysis output is bit-identical with telemetry compiled in).
struct FixpointTelemetry {
  std::uint64_t fixpoint_solves = 0;  ///< (task, core-count) fixpoints run
  /// Which arithmetic engine each solve took: the L-scaled integer fast
  /// path vs the exact-rational fallback (see fixpoint_int's contract —
  /// both produce bit-identical value sequences).
  std::uint64_t int_path = 0;
  std::uint64_t frac_path = 0;
  std::uint64_t iterations = 0;       ///< fixpoint iterations, all solves
  std::uint64_t seed_evals = 0;       ///< seed-bound (chain-walk) evaluations
  std::uint64_t truncated = 0;        ///< solves cut by budget or the cap
};

/// Whole-set verdict.
struct ContentionAnalysis {
  bool schedulable = false;
  int cores_used = 0;   ///< Σ m_i over schedulable tasks
  /// kBudgetExhausted iff any task's verdict was budget-truncated; such an
  /// analysis never reports schedulable == true (fail closed).
  util::Outcome outcome = util::Outcome::kComplete;
  std::vector<TaskAdmission> tasks;
  FixpointTelemetry telemetry;  ///< where the analysis work went
};

/// Runs the admission test.  Requires a validated, non-empty set.
///
/// `budget` (nullable = unlimited) is consumed cooperatively — one unit per
/// fixpoint iteration and per seed-bound evaluation.  On exhaustion the
/// remaining work is SKIPPED and every affected task reports
/// Outcome::kBudgetExhausted with schedulable == false: a budget-cut
/// analysis can under-admit, never over-admit.
[[nodiscard]] ContentionAnalysis contention_rta(const TaskSet& set,
                                                util::Budget* budget = nullptr);

/// The inflated response-time fixpoint of task `index` on `cores` dedicated
/// host cores, ignoring the partitioning step — the building block
/// contention_rta iterates, exposed for tests and tooling.  Returns the
/// fixpoint (which may exceed the deadline); sets `converged` to false if
/// the iteration crossed the deadline instead of stabilising.
[[nodiscard]] Frac contention_response(const TaskSet& set, std::size_t index,
                                       int cores, bool* converged = nullptr,
                                       util::Budget* budget = nullptr);

/// Human-readable verdict: per-task allocation and bound vs deadline, and —
/// for the tightest task — the dominating (competitor task, device) pair,
/// i.e. the contention edge to relieve first when the set is rejected.
[[nodiscard]] std::string explain(const ContentionAnalysis& analysis,
                                  const TaskSet& set);

/// explain()-style summary of where the analysis spent its work: solve and
/// iteration totals, the int-path/frac-path split, and the truncation
/// count.  Separate from explain() so the verdict text (golden-pinned by
/// the tooling examples) is unchanged by the telemetry layer.
[[nodiscard]] std::string explain_fixpoint(const ContentionAnalysis& analysis);

}  // namespace hedra::taskset
