#include "taskset/sim.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

#include "graph/critical_path.h"
#include "graph/flat_dag.h"
#include "util/fault.h"
#include "util/rng.h"

namespace hedra::taskset {

namespace {

using graph::FlatDag;
using graph::NodeId;
using graph::Time;

/// One ready node instance of one task.
struct Item {
  std::uint32_t job = 0;  ///< job index within the task
  NodeId node = 0;

  friend bool operator<(const Item& a, const Item& b) noexcept {
    return a.job != b.job ? a.job < b.job : a.node < b.node;
  }
};

/// Host-side ready set of ONE task, indexed by the scheduling policy — the
/// taskset counterpart of the single-DAG simulator's policy structures.
/// Items are inserted in deterministic (job, node) order per time step.
class HostReady {
 public:
  HostReady(sim::Policy policy, const std::vector<Time>* down)
      : policy_(policy), down_(down) {}

  [[nodiscard]] bool empty() const noexcept {
    return head_ >= items_.size();
  }

  void push(const Item& item) {
    switch (policy_) {
      case sim::Policy::kBreadthFirst:
      case sim::Policy::kDepthFirst:
      case sim::Policy::kRandom:
        items_.push_back(item);
        break;
      case sim::Policy::kCriticalPathFirst:
      case sim::Policy::kIndexOrder:
        items_.push_back(item);
        std::push_heap(items_.begin(), items_.end(),
                       [this](const Item& a, const Item& b) {
                         return lower_priority(a, b);
                       });
        break;
    }
  }

  Item pop(Rng& rng) {
    Item out;
    switch (policy_) {
      case sim::Policy::kBreadthFirst:
        // FIFO via a head index — an O(1) pop like the single-DAG
        // simulator's deque, without shifting the vector.
        out = items_[head_++];
        if (head_ == items_.size()) {
          items_.clear();
          head_ = 0;
        }
        break;
      case sim::Policy::kDepthFirst:
        out = items_.back();
        items_.pop_back();
        break;
      case sim::Policy::kRandom: {
        const std::size_t pick = rng.index(items_.size());
        out = items_[pick];
        items_[pick] = items_.back();
        items_.pop_back();
        break;
      }
      case sim::Policy::kCriticalPathFirst:
      case sim::Policy::kIndexOrder:
        std::pop_heap(items_.begin(), items_.end(),
                      [this](const Item& a, const Item& b) {
                        return lower_priority(a, b);
                      });
        out = items_.back();
        items_.pop_back();
        break;
    }
    return out;
  }

 private:
  /// True if `a` ranks below `b` (heap "less": the top is the best pick).
  [[nodiscard]] bool lower_priority(const Item& a, const Item& b) const {
    if (policy_ == sim::Policy::kCriticalPathFirst) {
      const Time da = (*down_)[a.node];
      const Time db = (*down_)[b.node];
      if (da != db) return da < db;  // longer remaining path wins
    }
    return b < a;  // smallest (job, node) wins ties / index order
  }

  sim::Policy policy_;
  const std::vector<Time>* down_;
  std::vector<Item> items_;
  std::size_t head_ = 0;  ///< FIFO read position (kBreadthFirst only)
};

/// A node instance finishing at `time`; `unit` identifies the resource to
/// free: -1 = a host core of `task`, d >= 1 = one unit of device d.
struct Completion {
  Time time = 0;
  std::uint64_t seq = 0;  ///< insertion order, for deterministic ties
  std::uint32_t task = 0;
  std::uint32_t job = 0;
  NodeId node = 0;
  int unit = -1;

  friend bool operator>(const Completion& a, const Completion& b) noexcept {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

struct Release {
  Time time = 0;
  std::uint32_t task = 0;
  std::uint32_t job = 0;
};

}  // namespace

TasksetSimResult simulate_taskset(const TaskSet& set,
                                  std::span<const int> cores_per_task,
                                  const TasksetSimConfig& config) {
  set.validate();
  HEDRA_REQUIRE(!set.empty(), "cannot simulate an empty task set");
  // The simulator executes WCETs verbatim (device-time).  A platform with
  // WCET speedups declares the DAGs' WCETs to be NOMINAL — the contention
  // analysis divides its device terms by s_d — so simulating them unscaled
  // would take longer than the admitted bounds allow.  Refuse loudly
  // rather than produce spurious "violations": bake speedups into the
  // WCETs at generation (gen::HierarchicalParams::device_speedup) and
  // simulate on the unscaled platform.
  HEDRA_REQUIRE(!set.platform().has_speedups(),
                "taskset simulation runs in device-time; platforms with "
                "WCET speedups cannot be executed verbatim — apply the "
                "scaling at generation instead");
  HEDRA_REQUIRE(config.jobs_per_task >= 1, "need at least one job per task");
  HEDRA_REQUIRE(cores_per_task.size() == set.size(),
                "need one host-core count per task");
  int partitioned = 0;
  for (const int cores : cores_per_task) {
    HEDRA_REQUIRE(cores >= 1, "every task needs at least one dedicated core");
    partitioned += cores;
  }
  HEDRA_REQUIRE(partitioned <= set.platform().cores,
                "host partition exceeds the platform's cores");

  const std::size_t num_tasks = set.size();
  const auto jobs = static_cast<std::uint32_t>(config.jobs_per_task);
  const int num_devices = set.platform().num_devices();
  Rng rng(config.seed);

  // The taskset sweeps call this thousands of times on small sets, so every
  // container that does not escape the call lives in per-thread scratch:
  // the state is rebuilt from scratch below (resize/assign/clear), only the
  // heap capacity carries over between calls.
  //
  // Per-task CSR views: arena-backed tasks are viewed in place (no Dag, no
  // snapshot); eager tasks snapshot once into `snapshots` (reserved so the
  // views' pointee never reallocates).  Down-lengths feed the CP policy
  // only, exactly as in the single-DAG simulator.
  thread_local std::vector<FlatDag> snapshots;
  snapshots.clear();
  snapshots.reserve(num_tasks);
  thread_local std::vector<graph::FlatView> views;
  views.clear();
  views.reserve(num_tasks);
  for (const DagTask& task : set) {
    if (task.has_flat_view()) {
      views.push_back(task.flat_view());
    } else {
      snapshots.emplace_back(task.dag());
      views.push_back(snapshots.back().view());
    }
  }
  std::vector<std::vector<Time>> down(num_tasks);
  if (config.policy == sim::Policy::kCriticalPathFirst) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      down[i] = graph::down_lengths(views[i]);
    }
  }

  // Per-task release statics: the in-degree template copied into each job's
  // pending counts, and the root nodes pre-classified by destination (the
  // classification is per-DAG, not per-job — no reason to redo it on every
  // release).  Roots are kept in ascending node order, matching the
  // original per-release scan.
  thread_local std::vector<std::vector<std::uint32_t>> indeg_template;
  thread_local std::vector<std::vector<NodeId>> sync_roots;
  thread_local std::vector<std::vector<NodeId>> host_roots;
  thread_local std::vector<std::vector<std::pair<graph::DeviceId, NodeId>>>
      device_roots;
  indeg_template.resize(num_tasks);
  sync_roots.resize(num_tasks);
  host_roots.resize(num_tasks);
  device_roots.resize(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    const graph::FlatView& flat = views[i];
    sync_roots[i].clear();
    host_roots[i].clear();
    device_roots[i].clear();
    auto& indeg = indeg_template[i];
    indeg.resize(flat.num_nodes());
    for (NodeId v = 0; v < flat.num_nodes(); ++v) {
      indeg[v] = static_cast<std::uint32_t>(flat.in_degree(v));
      if (indeg[v] != 0) continue;
      const graph::DeviceId device = flat.device(v);
      if (device == graph::kHostDevice && flat.wcet(v) == 0) {
        sync_roots[i].push_back(v);
      } else if (device == graph::kHostDevice) {
        host_roots[i].push_back(v);
      } else {
        device_roots[i].emplace_back(device, v);
      }
    }
  }

  // Per-(task, job) node state: outstanding predecessor counts and the
  // number of unfinished nodes.  Pending counts are fully overwritten at
  // each job's release (copy-assigned from the in-degree template), so the
  // inner vectors only need the right shape here, not fresh contents.
  thread_local std::vector<std::vector<std::vector<std::uint32_t>>> pending;
  thread_local std::vector<std::vector<std::size_t>> unfinished;
  pending.resize(num_tasks);
  unfinished.resize(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    pending[i].resize(jobs);
    unfinished[i].assign(jobs, views[i].num_nodes());
  }

  TasksetSimResult result;
  result.tasks.assign(num_tasks, {});
  for (std::size_t i = 0; i < num_tasks; ++i) {
    result.tasks[i].jobs.assign(jobs, {});
  }

  // All releases, time-major (synchronous periodic pattern).
  thread_local std::vector<Release> releases;
  releases.clear();
  releases.reserve(num_tasks * jobs);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    for (std::uint32_t j = 0; j < jobs; ++j) {
      releases.push_back(Release{set[i].period() * j,
                                 static_cast<std::uint32_t>(i), j});
    }
  }
  std::sort(releases.begin(), releases.end(),
            [](const Release& a, const Release& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.task != b.task) return a.task < b.task;
              return a.job < b.job;
            });
  std::size_t next_release = 0;

  // The completion queue is provably drained when the run ends (every job
  // finished means every dispatched node retired), so the per-thread
  // instance starts each call empty with its buffer intact.
  thread_local std::priority_queue<Completion, std::vector<Completion>,
                                   std::greater<Completion>>
      completions;
  while (!completions.empty()) completions.pop();  // a prior throw may leak
  std::uint64_t seq = 0;

  thread_local std::vector<HostReady> host_ready;
  host_ready.clear();
  host_ready.reserve(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    host_ready.emplace_back(config.policy, &down[i]);
  }
  // FIFO per shared device class, as a vector + head cursor (the deque's
  // chunked layout buys nothing at these queue depths).
  thread_local std::vector<std::vector<std::pair<std::uint32_t, Item>>>
      device_queue;
  device_queue.resize(static_cast<std::size_t>(num_devices) + 1);
  for (auto& queue : device_queue) queue.clear();
  thread_local std::vector<std::size_t> device_head;
  device_head.assign(static_cast<std::size_t>(num_devices) + 1, 0);
  thread_local std::vector<int> free_units;
  free_units.assign(static_cast<std::size_t>(num_devices) + 1, 0);
  for (int d = 1; d <= num_devices; ++d) {
    free_units[static_cast<std::size_t>(d)] =
        set.platform().units_of(static_cast<graph::DeviceId>(d));
  }
  thread_local std::vector<int> free_cores;
  free_cores.assign(cores_per_task.begin(), cores_per_task.end());

  // Same-time ready nodes are staged per destination and flushed in sorted
  // (task, job, node) order, so insertion order — and with it every policy's
  // pick — is independent of event-processing order.
  thread_local std::vector<std::vector<Item>> host_staging;
  host_staging.resize(num_tasks);
  for (auto& staging : host_staging) staging.clear();
  thread_local std::vector<std::vector<std::pair<std::uint32_t, Item>>>
      device_staging;
  device_staging.resize(static_cast<std::size_t>(num_devices) + 1);
  for (auto& staging : device_staging) staging.clear();

  std::size_t jobs_remaining = num_tasks * jobs;

  // Completes (task, job, node) at time t; zero-WCET host successors retire
  // instantly and cascade.  The cascade stack lives outside the lambda —
  // one allocation for the whole run, not one per completion.
  thread_local std::vector<Item> cascade;
  const auto complete_node = [&](std::uint32_t task, std::uint32_t job,
                                 NodeId node, Time t) {
    cascade.clear();
    cascade.push_back(Item{job, node});
    const graph::FlatView& view = views[task];
    auto& task_pending = pending[task];
    auto& task_unfinished = unfinished[task];
    auto& task_result = result.tasks[task];
    auto& task_staging = host_staging[task];
    while (!cascade.empty()) {
      const Item item = cascade.back();
      cascade.pop_back();
      if (--task_unfinished[item.job] == 0) {
        JobRecord& record = task_result.jobs[item.job];
        record.finish = t;
        record.finished = true;
        task_result.worst_response =
            std::max(task_result.worst_response, record.response());
        result.makespan = std::max(result.makespan, t);
        --jobs_remaining;
      }
      auto& counts = task_pending[item.job];
      for (const NodeId succ : view.successors(item.node)) {
        if (--counts[succ] != 0) continue;
        const graph::DeviceId device = view.device(succ);
        if (device == graph::kHostDevice && view.wcet(succ) == 0) {
          cascade.push_back(Item{item.job, succ});  // pure sync point
        } else if (device == graph::kHostDevice) {
          task_staging.push_back(Item{item.job, succ});
        } else {
          device_staging[device].push_back({task, Item{item.job, succ}});
        }
      }
    }
  };

  std::uint64_t events = 0;
  while (jobs_remaining > 0) {
    HEDRA_FAULT("taskset.sim.event");
    // Deadline poll amortised over event rounds; an expiry stops the loop
    // at an event boundary, so finished jobs keep exact records.
    if (!config.deadline.unlimited() && (++events & 0xFF) == 0 &&
        config.deadline.expired()) {
      result.outcome = util::Outcome::kBudgetExhausted;
      break;
    }
    HEDRA_REQUIRE(!completions.empty() || next_release < releases.size(),
                  "taskset simulation stalled (hedra bug)");
    Time t = std::numeric_limits<Time>::max();
    if (!completions.empty()) t = completions.top().time;
    if (next_release < releases.size()) {
      t = std::min(t, releases[next_release].time);
    }

    // Retire every completion at t.
    while (!completions.empty() && completions.top().time == t) {
      const Completion done = completions.top();
      completions.pop();
      if (done.unit < 0) {
        ++free_cores[done.task];
      } else {
        ++free_units[static_cast<std::size_t>(done.unit)];
      }
      complete_node(done.task, done.job, done.node, t);
    }

    // Release every job arriving at t.  Root destinations are static per
    // task; the loops below only spread the precomputed classification over
    // the job index (completion order within one release is commutative —
    // staging is globally sorted before any pick).
    while (next_release < releases.size() &&
           releases[next_release].time == t) {
      const Release release = releases[next_release++];
      pending[release.task][release.job] = indeg_template[release.task];
      result.tasks[release.task].jobs[release.job].release = t;
      for (const NodeId v : sync_roots[release.task]) {
        complete_node(release.task, release.job, v, t);
      }
      for (const NodeId v : host_roots[release.task]) {
        host_staging[release.task].push_back(Item{release.job, v});
      }
      for (const auto& [device, v] : device_roots[release.task]) {
        device_staging[device].push_back({release.task, Item{release.job, v}});
      }
    }

    // Flush staged ready nodes in deterministic order.
    for (std::size_t i = 0; i < num_tasks; ++i) {
      auto& staging = host_staging[i];
      if (staging.empty()) continue;
      std::sort(staging.begin(), staging.end());
      for (const Item& item : staging) host_ready[i].push(item);
      staging.clear();
    }
    for (int d = 1; d <= num_devices; ++d) {
      auto& staging = device_staging[static_cast<std::size_t>(d)];
      if (staging.empty()) continue;
      std::sort(staging.begin(), staging.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first < b.first;
                  return a.second < b.second;
                });
      for (const auto& entry : staging) {
        device_queue[static_cast<std::size_t>(d)].push_back(entry);
      }
      staging.clear();
    }

    // Work-conserving dispatch: each task's dedicated cores, then each
    // shared device's free units (FIFO across tasks).
    for (std::size_t i = 0; i < num_tasks; ++i) {
      while (free_cores[i] > 0 && !host_ready[i].empty()) {
        const Item item = host_ready[i].pop(rng);
        --free_cores[i];
        completions.push(Completion{t + views[i].wcet(item.node), seq++,
                                    static_cast<std::uint32_t>(i), item.job,
                                    item.node, -1});
      }
    }
    for (int d = 1; d <= num_devices; ++d) {
      auto& queue = device_queue[static_cast<std::size_t>(d)];
      auto& head = device_head[static_cast<std::size_t>(d)];
      auto& units = free_units[static_cast<std::size_t>(d)];
      while (units > 0 && head < queue.size()) {
        const auto [task, item] = queue[head++];
        --units;
        completions.push(Completion{t + views[task].wcet(item.node), seq++,
                                    task, item.job, item.node, d});
      }
      if (head == queue.size() && head != 0) {
        queue.clear();
        head = 0;
      }
    }
  }
  result.jobs_unfinished = jobs_remaining;
  return result;
}

}  // namespace hedra::taskset
