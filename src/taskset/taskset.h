#pragma once

/// \file taskset.h
/// First-class sporadic task SETS over one shared heterogeneous platform.
///
/// The paper analyses a single DAG task in isolation; its DAC-2018 setting,
/// however, is a platform shared by many sporadic DAG tasks whose offload
/// nodes contend for the same accelerator classes.  taskset::TaskSet binds a
/// vector of `τ_i = <G_i, T_i, D_i>` tasks (model::DagTask) to ONE
/// model::Platform — m host cores plus K named accelerator classes with n_d
/// units and optional per-class WCET speedups — and is the object the
/// taskset-level analysis (taskset/contention_rta.h), generator
/// (taskset/gen.h) and simulator (taskset/sim.h) all operate on.
///
/// Unlike model::TaskSet (a bare task vector for the federated
/// schedulability-study example), a taskset::TaskSet knows its platform:
/// validation checks every task's device placements against it, and the
/// per-device utilisation accessors expose how loaded each shared
/// accelerator class is — the quantity the contention analysis inflates
/// per-task bounds with.
///
/// The text round-trip format mirrors graph/dag_io.h, one directive per
/// line with '#' comments:
///
///     platform 4:gpu*2,dsp
///     task tau1 period 1200 deadline 1100
///     node v1 5
///     node v2 9 offload
///     edge v1 v2
///     endtask
///     task tau2 ...
///
/// Task names must be unique and whitespace-free; the DAG lines between
/// `task` and `endtask` are exactly the dag_io format, so `.dag` files can
/// be pasted into a taskset verbatim.

#include <string>
#include <vector>

#include "model/platform.h"
#include "model/task.h"
#include "util/fraction.h"

namespace hedra::taskset {

using model::DagTask;
using model::Platform;

/// Sporadic DAG tasks sharing one heterogeneous platform.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(Platform platform) : platform_(std::move(platform)) {}
  TaskSet(Platform platform, std::vector<DagTask> tasks)
      : platform_(std::move(platform)), tasks_(std::move(tasks)) {}

  void add(DagTask task) { tasks_.push_back(std::move(task)); }

  [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }

  [[nodiscard]] const DagTask& operator[](std::size_t i) const {
    HEDRA_REQUIRE(i < tasks_.size(), "task index out of range");
    return tasks_[i];
  }

  [[nodiscard]] auto begin() const noexcept { return tasks_.begin(); }
  [[nodiscard]] auto end() const noexcept { return tasks_.end(); }

  /// Throws hedra::Error if the platform is invalid, any task name is
  /// empty, duplicated or contains whitespace (the round-trip format could
  /// not represent it), or some task places a node on a device the platform
  /// does not provide (the violation names the task).
  void validate() const;

  /// vol_d(G_i) / T_i — task i's exact utilisation of accelerator class d
  /// (d = 0 selects the host).  Device-TIME ticks; divide by n_d for a
  /// per-unit load.
  [[nodiscard]] Frac task_device_utilization(std::size_t i,
                                             graph::DeviceId device) const;

  /// Σ_i vol_d(G_i)/T_i across tasks (double: periods from
  /// utilisation-driven generators are large and mutually coprime, so the
  /// exact rational sum can overflow 64-bit numerators — same rationale as
  /// model::TaskSet).
  // hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
  [[nodiscard]] double device_utilization(graph::DeviceId device) const;

  /// Σ_i vol(G_i)/T_i — host and accelerator workload combined.
  // hedra-lint: allow(float-in-bound, reporting aggregate, bounds stay exact)
  [[nodiscard]] double total_utilization() const;

  /// Serialises the set; round-trips through from_text.  Calls validate().
  [[nodiscard]] std::string to_text() const;

  /// Task-count cap for from_text: hostile input declaring an absurd number
  /// of tasks fails with a named line instead of exhausting memory.
  static constexpr std::size_t kMaxParsedTasks = 4096;

  /// Parses the textual format.  Throws hedra::Error with a line number on
  /// malformed input (missing platform line, duplicate task names, bad
  /// period/deadline, counts beyond kMaxParsedTasks, dag_io errors rethrown
  /// with the task named).  Never exhibits UB on arbitrary bytes: every
  /// failure is a typed Error naming the offending line.
  [[nodiscard]] static TaskSet from_text(const std::string& text);

 private:
  Platform platform_;
  std::vector<DagTask> tasks_;
};

/// File convenience wrappers.
void save_taskset_file(const TaskSet& set, const std::string& path);
[[nodiscard]] TaskSet load_taskset_file(const std::string& path);

}  // namespace hedra::taskset
