#include "taskset/gen.h"

#include <cmath>

#include "gen/flat_gen.h"
#include "gen/taskset_gen.h"
#include "graph/critical_path.h"
#include "graph/flat_batch.h"

namespace hedra::taskset {

void TaskSetGenConfig::validate() const {
  HEDRA_REQUIRE(num_tasks >= 1, "task set needs at least one task");
  HEDRA_REQUIRE(total_utilization > 0.0, "total utilisation must be positive");
  HEDRA_REQUIRE(cores >= 1, "platform needs at least one host core");
  dag_params.validate();
  if (dag_params.num_devices > 0) {
    HEDRA_REQUIRE(coff_ratio > 0.0 && coff_ratio < 1.0,
                  "coff_ratio must lie strictly inside (0, 1) when devices "
                  "are populated");
  }
  HEDRA_REQUIRE(
      device_units.empty() ||
          device_units.size() ==
              static_cast<std::size_t>(dag_params.num_devices),
      "device_units must be empty or have one entry per device class");
  for (const int units : device_units) {
    HEDRA_REQUIRE(units >= 1, "device_units entries must be >= 1");
  }
}

model::Platform TaskSetGenConfig::platform() const {
  model::Platform platform =
      model::Platform::symmetric(cores, dag_params.num_devices);
  if (!device_units.empty()) platform.device_units = device_units;
  platform.validate();
  return platform;
}

TaskSet generate_task_set(const TaskSetGenConfig& config, Rng& rng) {
  config.validate();
  const auto utils =
      gen::uunifast(config.num_tasks, config.total_utilization, rng);
  TaskSet set(config.platform());
  // All tasks generate straight into ONE shared arena (same RNG stream as
  // the legacy Dag generators — regression-pinned): period and deadline
  // derive from the flat arrays, and every task stays arena-backed — the
  // contention analysis and taskset simulator run off the CSR views, and a
  // field-identical Dag is only materialised if a consumer asks for one.
  auto arena = std::make_shared<graph::FlatDagBatch>();
  for (int i = 0; i < config.num_tasks; ++i) {
    Rng task_rng = rng.fork();
    if (config.dag_params.num_devices > 0) {
      gen::generate_multi_device_flat(config.dag_params, config.coff_ratio,
                                      task_rng, *arena);
    } else {
      gen::generate_hierarchical_flat(config.dag_params, task_rng, *arena);
    }
    const graph::FlatView view = arena->view(static_cast<std::size_t>(i));
    graph::Time total = 0;
    for (const graph::Time c : view.wcets()) total += c;
    // hedra-lint: allow(float-in-bound, UUniFast period sampling)
    const double u = utils[static_cast<std::size_t>(i)];
    // hedra-lint: allow(float-in-bound, UUniFast period sampling)
    const auto vol = static_cast<double>(total);
    const graph::Time len = graph::critical_path_length(view);
    const graph::Time period = std::max<graph::Time>(
        len, static_cast<graph::Time>(std::ceil(vol / u)));
    graph::Time deadline = period;
    if (!config.implicit_deadlines && period > len) {
      deadline = task_rng.uniform_int(len, period);
    }
    set.add(DagTask(arena, static_cast<std::size_t>(i), period, deadline,
                    "tau" + std::to_string(i + 1)));
  }
  set.validate();
  return set;
}

std::vector<TaskSet> generate_taskset_batch(const TaskSetGenConfig& config,
                                            int count, std::uint64_t seed) {
  HEDRA_REQUIRE(count >= 0, "batch count must be non-negative");
  Rng master(seed);
  std::vector<TaskSet> batch;
  batch.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    Rng set_rng = master.fork();
    batch.push_back(generate_task_set(config, set_rng));
  }
  return batch;
}

}  // namespace hedra::taskset
