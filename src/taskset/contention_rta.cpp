#include "taskset/contention_rta.h"

#include <algorithm>
#include <sstream>

#include "analysis/analysis_cache.h"

namespace hedra::taskset {

namespace {

/// Per-set quantities shared by every fixpoint evaluation: the platform's
/// unit/speedup vectors and each task's per-device volumes.
struct SetQuantities {
  std::vector<int> units;                       ///< n_d, indexed d−1
  std::vector<Frac> speedups;                   ///< s_d, indexed d−1
  std::vector<std::vector<graph::Time>> volume; ///< [task][device d−1]
};

SetQuantities measure(const TaskSet& set) {
  const Platform& platform = set.platform();
  SetQuantities q;
  const auto num_devices = static_cast<std::size_t>(platform.num_devices());
  q.units.resize(num_devices);
  q.speedups.resize(num_devices, Frac(1));
  for (std::size_t d = 0; d < num_devices; ++d) {
    const auto device = static_cast<graph::DeviceId>(d + 1);
    q.units[d] = platform.units_of(device);
    q.speedups[d] = platform.speedup_of(device);
  }
  q.volume.resize(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    q.volume[i].resize(num_devices, 0);
    for (std::size_t d = 0; d < num_devices; ++d) {
      q.volume[i][d] =
          set[i].dag().volume_on(static_cast<graph::DeviceId>(d + 1));
    }
  }
  return q;
}

/// floor((L + D_j)/T_j) + 1 — jobs of τ_j whose execution can overlap a
/// window of length L, given τ_j meets its deadline.
Frac carry_in_jobs(const Frac& window, const DagTask& competitor) {
  return Frac((window + Frac(competitor.deadline())).floor() /
                  competitor.period() +
              1);
}

/// One evaluation of the interference sum at window length `window`.
/// Returns Σ_d Σ_{j≠i} n_jobs_j·vol_{j,d}/(n_d·s_d) and fills
/// `per_device` (parallel to q.units) with the per-class totals.
Frac interference_at(const TaskSet& set, const SetQuantities& q,
                     std::size_t index, const Frac& window,
                     std::vector<Frac>* per_device,
                     std::vector<std::size_t>* dominant) {
  // n_jobs_j depends only on (window, j) — compute it once per competitor,
  // not once per (competitor, device): this sits in the innermost loop of
  // the admission fixpoint.
  std::vector<Frac> n_jobs(set.size());
  for (std::size_t j = 0; j < set.size(); ++j) {
    if (j != index) n_jobs[j] = carry_in_jobs(window, set[j]);
  }
  Frac total;
  for (std::size_t d = 0; d < q.units.size(); ++d) {
    if (q.volume[index][d] == 0) continue;  // task never touches the class
    Frac device_total;
    Frac best;
    std::size_t best_task = index;
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (j == index || q.volume[j][d] == 0) continue;
      const Frac contribution =
          n_jobs[j] * Frac(q.volume[j][d], q.units[d]) / q.speedups[d];
      device_total += contribution;
      if (best_task == index || contribution > best) {
        best = contribution;
        best_task = j;
      }
    }
    total += device_total;
    if (per_device != nullptr) (*per_device)[d] = device_total;
    if (dominant != nullptr) (*dominant)[d] = best_task;
  }
  return total;
}

struct FixpointResult {
  Frac response;
  bool converged = false;
  int iterations = 0;
  std::vector<Frac> per_device;          ///< interference per class, d−1
  std::vector<std::size_t> dominant;     ///< dominant competitor per class
};

/// Iterates R ← seed + I(R) from R = seed until stable or past `deadline`.
/// The right-hand side is non-decreasing in R, so the sequence is monotone;
/// a generous iteration cap guards against pathological slow convergence.
FixpointResult fixpoint(const TaskSet& set, const SetQuantities& q,
                        std::size_t index, const Frac& seed,
                        graph::Time deadline) {
  constexpr int kMaxIterations = 1000;
  FixpointResult out;
  out.per_device.assign(q.units.size(), Frac());
  out.dominant.assign(q.units.size(), index);
  Frac response = seed;
  for (int k = 1; k <= kMaxIterations; ++k) {
    out.iterations = k;
    const Frac next =
        seed + interference_at(set, q, index, response, &out.per_device,
                               &out.dominant);
    if (next == response) {
      out.response = response;
      out.converged = true;
      return out;
    }
    response = next;
    if (response > Frac(deadline)) {
      out.response = response;
      return out;  // crossed the deadline; diverging
    }
  }
  out.response = response;
  return out;  // iteration cap: treat as unschedulable
}

}  // namespace

Frac contention_response(const TaskSet& set, std::size_t index, int cores,
                         bool* converged) {
  HEDRA_REQUIRE(index < set.size(), "task index out of range");
  HEDRA_REQUIRE(cores >= 1, "need at least one dedicated host core");
  const SetQuantities q = measure(set);
  analysis::AnalysisCache cache(set[index].dag());
  const Frac seed = cache.r_platform(cores, q.units, q.speedups);
  const FixpointResult result =
      fixpoint(set, q, index, seed, set[index].deadline());
  if (converged != nullptr) *converged = result.converged;
  return result.response;
}

ContentionAnalysis contention_rta(const TaskSet& set) {
  HEDRA_REQUIRE(!set.empty(), "contention_rta needs a non-empty task set");
  set.validate();
  const SetQuantities q = measure(set);

  ContentionAnalysis out;
  out.schedulable = true;
  int remaining = set.platform().cores;
  for (std::size_t i = 0; i < set.size(); ++i) {
    TaskAdmission admission;
    admission.name = set[i].name();
    analysis::AnalysisCache cache(set[i].dag());
    const graph::Time deadline = set[i].deadline();

    FixpointResult best;
    int assigned = 0;
    // The seed bound is non-increasing in m_i, so the first feasible core
    // count is the smallest one; every evaluation reuses the per-DAG cache
    // (the chain walk is the only per-m work).
    for (int m = 1; m <= remaining; ++m) {
      const Frac seed = cache.r_platform(m, q.units, q.speedups);
      FixpointResult result = fixpoint(set, q, i, seed, deadline);
      if (result.converged && result.response <= Frac(deadline)) {
        best = std::move(result);
        assigned = m;
        break;
      }
      if (m == remaining) best = std::move(result);  // best effort to report
    }

    admission.cores = assigned > 0 ? assigned : remaining;
    admission.schedulable = assigned > 0;
    admission.response = best.response;
    admission.iterations = best.iterations;
    // With zero cores left the fixpoint never ran, so there is no
    // per-device breakdown to report.
    for (std::size_t d = 0; d < best.per_device.size(); ++d) {
      if (q.volume[i][d] == 0 && best.per_device[d] == Frac()) continue;
      DeviceContention contention;
      contention.device = static_cast<graph::DeviceId>(d + 1);
      contention.own_volume = q.volume[i][d];
      contention.interference = best.per_device[d];
      contention.dominant_competitor = best.dominant[d];
      admission.devices.push_back(std::move(contention));
    }
    if (assigned > 0) {
      remaining -= assigned;
      out.cores_used += assigned;
    } else {
      out.schedulable = false;
    }
    out.tasks.push_back(std::move(admission));
  }
  return out;
}

std::string explain(const ContentionAnalysis& analysis, const TaskSet& set) {
  HEDRA_REQUIRE(analysis.tasks.size() == set.size(),
                "analysis does not match the task set");
  std::ostringstream os;
  os << "taskset admission ("
     << set.platform().describe() << "): "
     << (analysis.schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE") << ", "
     << analysis.cores_used << "/" << set.platform().cores
     << " host cores partitioned\n";

  // The tightest task — the first unschedulable one, or the admitted task
  // with the largest R/D — names the contention edge to relieve first.
  std::size_t tightest = 0;
  bool found_failing = false;
  Frac best_ratio(-1);
  for (std::size_t i = 0; i < analysis.tasks.size(); ++i) {
    const TaskAdmission& task = analysis.tasks[i];
    if (!task.schedulable && !found_failing) {
      tightest = i;
      found_failing = true;
    }
    if (!found_failing) {
      const Frac ratio = task.response / Frac(set[i].deadline());
      if (ratio > best_ratio) {
        best_ratio = ratio;
        tightest = i;
      }
    }
  }

  for (std::size_t i = 0; i < analysis.tasks.size(); ++i) {
    const TaskAdmission& task = analysis.tasks[i];
    os << "  " << task.name << ": ";
    if (task.cores == 0) {
      os << "no host cores left -> NOT schedulable\n";
      continue;
    }
    os << task.cores << " core" << (task.cores == 1 ? "" : "s") << ", R = "
       << task.response << " (= " << task.response.to_double() << ") vs D = "
       << set[i].deadline() << " -> "
       << (task.schedulable ? "schedulable" : "NOT schedulable");
    if (task.iterations > 1) {
      os << " after " << task.iterations << " contention iterations";
    }
    os << "\n";
  }

  const TaskAdmission& tight = analysis.tasks[tightest];
  const DeviceContention* dominant = nullptr;
  for (const DeviceContention& device : tight.devices) {
    if (device.interference == Frac()) continue;
    if (dominant == nullptr || device.interference > dominant->interference) {
      dominant = &device;
    }
  }
  if (dominant != nullptr) {
    os << "  dominating contention: task "
       << set[dominant->dominant_competitor].name() << " on device "
       << set.platform().device_name(dominant->device) << " (d"
       << dominant->device << ") adds " << dominant->interference
       << " ticks to " << tight.name << "'s bound\n";
  } else {
    os << "  no device contention: every per-task bound is the isolated "
          "platform bound\n";
  }
  return os.str();
}

}  // namespace hedra::taskset
