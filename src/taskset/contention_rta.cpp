#include "taskset/contention_rta.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "analysis/analysis_cache.h"
#include "analysis/batch_kernels.h"
#include "obs/metrics.h"
#include "util/fault.h"

namespace hedra::taskset {

namespace {

/// Per-set quantities shared by every fixpoint evaluation: the platform's
/// unit/speedup vectors, each task's per-device volumes, and the
/// precomputed per-job interference rationals vol_{j,d}/(n_d·s_d) — the
/// innermost fixpoint loop multiplies those by integer job counts instead
/// of re-deriving the fraction every iteration.
struct SetQuantities {
  std::vector<int> units;                       ///< n_d, indexed d−1
  std::vector<Frac> speedups;                   ///< s_d, indexed d−1
  std::vector<std::vector<graph::Time>> volume; ///< [task][device d−1]
  std::vector<std::vector<Frac>> unit_volume;   ///< vol/(n_d·s_d), same shape

  // Integer-fixpoint precomputation (see fixpoint_int): every unit volume
  // as an integer at the common base scale B = lcm of their denominators,
  // plus __int128 magnitude bounds so each fixpoint call can clear the
  // overflow guard with a handful of multiplies instead of re-scanning.
  graph::Time base_scale = 0;  ///< B; 0 = unusable, take the Frac path
  std::vector<std::vector<graph::Time>> scaled_uv;  ///< uv·B, same shape
  __int128 step_weight = 0;  ///< Σ_{j,d} uv·B · n_jobs_max_j
  __int128 timing_max = 0;   ///< max_j max(D_j, T_j), and the set's D_max
};

constexpr graph::Time kMaxScale = graph::Time{1} << 20;
// Headroom: one fixpoint step past the deadline must not overflow int64.
constexpr __int128 kMaxMagnitude = __int128{1} << 56;

/// vol_d(G) from the arena view when the task is arena-backed — the fig12
/// pipeline never materialises a Dag for this.
graph::Time task_volume_on(const DagTask& task, graph::DeviceId device) {
  if (!task.has_flat_view()) return task.dag().volume_on(device);
  const graph::FlatView view = task.flat_view();
  graph::Time volume = 0;
  for (graph::NodeId v = 0; v < view.num_nodes(); ++v) {
    if (view.device(v) == device) volume += view.wcet(v);
  }
  return volume;
}

/// Returns per-thread scratch rebuilt for `set` — valid until the next
/// measure() call on this thread (the admission loop holds it across one
/// set, never across two).
const SetQuantities& measure(const TaskSet& set) {
  thread_local SetQuantities q;
  q.base_scale = 0;
  q.step_weight = 0;
  q.timing_max = 0;
  const Platform& platform = set.platform();
  const auto num_devices = static_cast<std::size_t>(platform.num_devices());
  q.units.resize(num_devices);
  q.speedups.resize(num_devices, Frac(1));
  for (std::size_t d = 0; d < num_devices; ++d) {
    const auto device = static_cast<graph::DeviceId>(d + 1);
    q.units[d] = platform.units_of(device);
    q.speedups[d] = platform.speedup_of(device);
  }
  q.volume.resize(set.size());
  q.unit_volume.resize(set.size());
  for (std::size_t i = 0; i < set.size(); ++i) {
    q.volume[i].resize(num_devices, 0);
    q.unit_volume[i].resize(num_devices);
    for (std::size_t d = 0; d < num_devices; ++d) {
      q.volume[i][d] =
          task_volume_on(set[i], static_cast<graph::DeviceId>(d + 1));
      // Dividing by a unit speedup is the identity on normalised rationals;
      // skipping it keeps the value (and every downstream comparison)
      // bit-identical while sparing the gcd work.
      Frac uv(q.volume[i][d], q.units[d]);
      if (q.speedups[d] != Frac(1)) uv = uv / q.speedups[d];
      q.unit_volume[i][d] = uv;
    }
  }

  // Base scale and magnitude bounds for the integer fixpoint.  Job counts
  // are evaluated at windows that never exceed the analysed task's
  // deadline, so (D_max + D_j)/T_j + 1 bounds n_jobs_j for every task in
  // the set.
  graph::Time base = 1;
  for (const auto& task_uv : q.unit_volume) {
    for (const Frac& uv : task_uv) {
      base = std::lcm(base, uv.den());
      if (base > kMaxScale) return q;  // base_scale stays 0: Frac path only
    }
  }
  graph::Time d_max = 0;
  for (const DagTask& task : set) {
    d_max = std::max(d_max, task.deadline());
    q.timing_max = std::max(q.timing_max, __int128{task.deadline()});
    q.timing_max = std::max(q.timing_max, __int128{task.period()});
  }
  q.scaled_uv.resize(set.size());
  for (std::size_t j = 0; j < set.size(); ++j) {
    const __int128 n_jobs_max =
        (__int128{d_max} + set[j].deadline()) / set[j].period() + 1;
    q.scaled_uv[j].resize(num_devices);
    for (std::size_t d = 0; d < num_devices; ++d) {
      const Frac& uv = q.unit_volume[j][d];
      q.scaled_uv[j][d] = uv.num() * (base / uv.den());
      q.step_weight += __int128{q.scaled_uv[j][d]} * n_jobs_max;
    }
  }
  q.base_scale = base;
  return q;
}

/// floor((L + D_j)/T_j) + 1 — jobs of τ_j whose execution can overlap a
/// window of length L, given τ_j meets its deadline.
graph::Time carry_in_jobs(const Frac& window, const DagTask& competitor) {
  return (window + Frac(competitor.deadline())).floor() /
             competitor.period() +
         1;
}

/// One evaluation of the interference sum at window length `window`.
/// Returns Σ_d Σ_{j≠i} n_jobs_j·vol_{j,d}/(n_d·s_d) and fills
/// `per_device` (parallel to q.units) with the per-class totals.
/// `n_jobs` is caller-owned scratch (the fixpoint re-evaluates this in its
/// innermost loop; the buffer survives across iterations).
Frac interference_at(const TaskSet& set, const SetQuantities& q,
                     std::size_t index, const Frac& window,
                     std::vector<graph::Time>& n_jobs,
                     std::vector<Frac>* per_device,
                     std::vector<std::size_t>* dominant) {
  // n_jobs_j depends only on (window, j) — compute it once per competitor,
  // not once per (competitor, device).
  n_jobs.assign(set.size(), 0);
  for (std::size_t j = 0; j < set.size(); ++j) {
    if (j != index) n_jobs[j] = carry_in_jobs(window, set[j]);
  }
  Frac total;
  for (std::size_t d = 0; d < q.units.size(); ++d) {
    if (q.volume[index][d] == 0) continue;  // task never touches the class
    Frac device_total;
    Frac best;
    std::size_t best_task = index;
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (j == index || q.volume[j][d] == 0) continue;
      const Frac contribution = Frac(n_jobs[j]) * q.unit_volume[j][d];
      device_total += contribution;
      if (best_task == index || contribution > best) {
        best = contribution;
        best_task = j;
      }
    }
    total += device_total;
    if (per_device != nullptr) (*per_device)[d] = device_total;
    if (dominant != nullptr) (*dominant)[d] = best_task;
  }
  return total;
}

struct FixpointResult {
  Frac response;
  bool converged = false;
  /// True when the iteration was cut short — by the kMaxIterations guard or
  /// by the caller's budget — rather than converging or provably crossing
  /// the deadline.  Distinct from plain rejection: the verdict is
  /// "truncated", not "infeasible" (Outcome::kBudgetExhausted upstream).
  bool truncated = false;
  int iterations = 0;
  std::vector<Frac> per_device;          ///< interference per class, d−1
  std::vector<std::size_t> dominant;     ///< dominant competitor per class
};

constexpr int kMaxIterations = 1000;

/// Iterates R ← seed + I(R) from R = seed until stable or past `deadline`.
/// The right-hand side is non-decreasing in R, so the sequence is monotone;
/// a generous iteration cap guards against pathological slow convergence.
FixpointResult fixpoint_frac(const TaskSet& set, const SetQuantities& q,
                             std::size_t index, const Frac& seed,
                             graph::Time deadline, util::Budget* budget) {
  FixpointResult out;
  out.per_device.assign(q.units.size(), Frac());
  out.dominant.assign(q.units.size(), index);
  std::vector<graph::Time> n_jobs;
  Frac response = seed;
  for (int k = 1; k <= kMaxIterations; ++k) {
    HEDRA_FAULT("taskset.rta.iteration");
    if (budget != nullptr && !budget->consume()) {
      out.truncated = true;  // budget cut mid-fixpoint: sound partial only
      out.response = response;
      return out;
    }
    out.iterations = k;
    const Frac next =
        seed + interference_at(set, q, index, response, n_jobs,
                               &out.per_device, &out.dominant);
    if (next == response) {
      out.response = response;
      out.converged = true;
      return out;
    }
    response = next;
    if (response > Frac(deadline)) {
      out.response = response;
      return out;  // crossed the deadline; diverging
    }
  }
  out.response = response;
  out.truncated = true;  // iteration cap: truncated, NOT proven infeasible
  return out;
}

/// Every rational the fixpoint touches has a denominator dividing
/// L = lcm(seed.den, all unit-volume denominators), so when L is small and
/// the magnitudes leave int64 headroom the whole iteration runs on
/// L-scaled integers — same sequence of values, same convergence step,
/// same dominant-competitor ties (scaled comparisons preserve order), with
/// every gcd normalisation replaced by integer adds and multiplies.  The
/// Monte-Carlo sweeps (unit speedups, n_d <= a few) always take this path;
/// exotic platforms fall back to the Frac loop above.
///
/// L = B·f with B the precomputed base scale and f = seed.den/gcd(B,
/// seed.den): the stored base-scaled unit volumes reach scale L with one
/// multiply by f per term, so nothing is allocated or re-derived per call.
FixpointResult fixpoint_int(const TaskSet& set, const SetQuantities& q,
                            graph::Time L, graph::Time f, std::size_t index,
                            const Frac& seed, graph::Time deadline,
                            util::Budget* budget) {
  using graph::Time;
  const Time seed_scaled = seed.num() * (L / seed.den());
  const Time deadline_scaled = deadline * L;
  const std::size_t num_tasks = set.size();
  const std::size_t num_devices = q.units.size();

  FixpointResult out;
  out.dominant.assign(num_devices, index);
  thread_local std::vector<Time> per_device;
  per_device.assign(num_devices, 0);
  thread_local std::vector<Time> n_jobs;
  n_jobs.assign(num_tasks, 0);

  Time response = seed_scaled;
  bool crossed = false;
  for (int k = 1; k <= kMaxIterations; ++k) {
    HEDRA_FAULT("taskset.rta.iteration");
    if (budget != nullptr && !budget->consume()) {
      out.truncated = true;  // budget cut mid-fixpoint: sound partial only
      break;
    }
    out.iterations = k;
    // n_jobs_j = floor((R + D_j)/T_j) + 1 on L-scaled integers.
    for (std::size_t j = 0; j < num_tasks; ++j) {
      if (j == index) continue;
      n_jobs[j] = (response + set[j].deadline() * L) / (set[j].period() * L) + 1;
    }
    Time total = 0;
    for (std::size_t d = 0; d < num_devices; ++d) {
      if (q.volume[index][d] == 0) continue;
      Time device_total = 0;
      Time best = 0;
      std::size_t best_task = index;
      for (std::size_t j = 0; j < num_tasks; ++j) {
        if (j == index || q.volume[j][d] == 0) continue;
        const Time contribution = n_jobs[j] * q.scaled_uv[j][d] * f;
        device_total += contribution;
        if (best_task == index || contribution > best) {
          best = contribution;
          best_task = j;
        }
      }
      total += device_total;
      per_device[d] = device_total;
      out.dominant[d] = best_task;
    }
    const Time next = seed_scaled + total;
    if (next == response) {
      out.converged = true;
      break;
    }
    response = next;
    if (response > deadline_scaled) {
      crossed = true;
      break;  // crossed the deadline; diverging
    }
  }
  // Ran the cap down without converging or provably crossing the deadline:
  // the verdict is "truncated", exactly as in the Frac path.
  if (!out.converged && !crossed) out.truncated = true;
  out.response = Frac(response, L);
  out.per_device.resize(num_devices);
  for (std::size_t d = 0; d < num_devices; ++d) {
    out.per_device[d] = Frac(per_device[d], L);
  }
  return out;
}

/// Dispatches to the integer fast path when safe, recording which engine
/// ran and what it cost into `telemetry` (nullable: contention_response
/// has no whole-set accumulator).  Counters only — the dispatch decision
/// and the returned values are untouched.
FixpointResult fixpoint(const TaskSet& set, const SetQuantities& q,
                        std::size_t index, const Frac& seed,
                        graph::Time deadline, util::Budget* budget,
                        FixpointTelemetry* telemetry = nullptr) {
  bool int_path = false;
  std::optional<FixpointResult> result;
  if (q.base_scale > 0) {
    // L = lcm(B, seed.den) = B·f; seed.den divides L by construction.
    const graph::Time f =
        seed.den() / std::gcd(q.base_scale, seed.den());
    const graph::Time L = q.base_scale * f;
    if (L <= kMaxScale) {
      const __int128 seed_scaled =
          __int128{seed.num()} * (L / seed.den());
      if (seed_scaled >= 0 &&
          seed_scaled + __int128{f} * q.step_weight <= kMaxMagnitude &&
          q.timing_max * L <= kMaxMagnitude) {
        int_path = true;
        result = fixpoint_int(set, q, L, f, index, seed, deadline, budget);
      }
    }
  }
  if (!result) {
    result = fixpoint_frac(set, q, index, seed, deadline, budget);
  }
  if (telemetry != nullptr) {
    ++telemetry->fixpoint_solves;
    if (int_path) {
      ++telemetry->int_path;
    } else {
      ++telemetry->frac_path;
    }
    telemetry->iterations += static_cast<std::uint64_t>(result->iterations);
    if (result->truncated) ++telemetry->truncated;
  }
  return *result;
}

/// Per-task isolated platform bound R(m), served from the arena view when
/// the task is arena-backed (no Dag, no FlatDag snapshot) and from a
/// per-DAG AnalysisCache otherwise.  Both paths return bit-identical
/// rationals (the view path is AnalysisCache::r_platform's exact formula).
class SeedBound {
 public:
  SeedBound(const DagTask& task, const SetQuantities& q) : q_(q) {
    if (task.has_flat_view()) {
      view_.emplace(task.flat_view());
      quantities_ = analysis::platform_quantities_view(*view_);
    } else {
      cache_.emplace(task.dag());
    }
  }

  [[nodiscard]] Frac operator()(int m) {
    if (view_) {
      return analysis::platform_bound(quantities_, *view_, m, q_.units,
                                      q_.speedups);
    }
    return cache_->r_platform(m, q_.units, q_.speedups);
  }

 private:
  const SetQuantities& q_;
  std::optional<graph::FlatView> view_;
  analysis::PlatformQuantities quantities_;
  std::optional<analysis::AnalysisCache> cache_;
};

}  // namespace

Frac contention_response(const TaskSet& set, std::size_t index, int cores,
                         bool* converged, util::Budget* budget) {
  HEDRA_REQUIRE(index < set.size(), "task index out of range");
  HEDRA_REQUIRE(cores >= 1, "need at least one dedicated host core");
  const SetQuantities& q = measure(set);
  SeedBound seed_bound(set[index], q);
  const Frac seed = seed_bound(cores);
  const FixpointResult result =
      fixpoint(set, q, index, seed, set[index].deadline(), budget);
  if (converged != nullptr) *converged = result.converged;
  return result.response;
}

ContentionAnalysis contention_rta(const TaskSet& set, util::Budget* budget) {
  HEDRA_REQUIRE(!set.empty(), "contention_rta needs a non-empty task set");
  set.validate();
  const SetQuantities& q = measure(set);

  ContentionAnalysis out;
  out.schedulable = true;
  int remaining = set.platform().cores;
  for (std::size_t i = 0; i < set.size(); ++i) {
    TaskAdmission admission;
    admission.name = set[i].name();
    SeedBound seed_bound(set[i], q);
    const graph::Time deadline = set[i].deadline();

    FixpointResult best;
    int assigned = 0;
    // The seed bound is non-increasing in m_i, so the first feasible core
    // count is the smallest one; every evaluation reuses the per-task
    // quantities (the chain walk is the only per-m work).
    for (int m = 1; m <= remaining; ++m) {
      // One unit per seed-bound evaluation (the chain walk), on top of the
      // per-iteration units the fixpoint itself consumes.  On exhaustion
      // the remaining trials are skipped and the task is reported
      // truncated-unschedulable — under-admission, never over-admission.
      if (budget != nullptr && !budget->consume()) {
        best.truncated = true;
        break;
      }
      const Frac seed = seed_bound(m);
      ++out.telemetry.seed_evals;
      FixpointResult result =
          fixpoint(set, q, i, seed, deadline, budget, &out.telemetry);
      if (result.converged && result.response <= Frac(deadline)) {
        best = std::move(result);
        assigned = m;
        break;
      }
      if (result.truncated || m == remaining) {
        best = std::move(result);  // best effort to report
        if (best.truncated) break;  // budget gone: stop trying core counts
      }
    }

    admission.cores = assigned > 0 ? assigned : remaining;
    admission.schedulable = assigned > 0;
    admission.response = best.response;
    admission.iterations = best.iterations;
    admission.outcome = best.truncated ? util::Outcome::kBudgetExhausted
                                       : util::Outcome::kComplete;
    if (best.truncated) out.outcome = util::Outcome::kBudgetExhausted;
    // With zero cores left the fixpoint never ran, so there is no
    // per-device breakdown to report.
    for (std::size_t d = 0; d < best.per_device.size(); ++d) {
      if (q.volume[i][d] == 0 && best.per_device[d] == Frac()) continue;
      DeviceContention contention;
      contention.device = static_cast<graph::DeviceId>(d + 1);
      contention.own_volume = q.volume[i][d];
      contention.interference = best.per_device[d];
      contention.dominant_competitor = best.dominant[d];
      admission.devices.push_back(std::move(contention));
    }
    if (assigned > 0) {
      remaining -= assigned;
      out.cores_used += assigned;
    } else {
      out.schedulable = false;
    }
    out.tasks.push_back(std::move(admission));
  }
  // One flush per analysis: the hot loops above touch only the plain
  // locals in out.telemetry; the registry sees the totals here.
  HEDRA_METRIC("taskset.rta.analyses");
  HEDRA_METRIC_ADD("taskset.rta.fixpoint_solves",
                   out.telemetry.fixpoint_solves);
  HEDRA_METRIC_ADD("taskset.rta.int_path", out.telemetry.int_path);
  HEDRA_METRIC_ADD("taskset.rta.frac_path", out.telemetry.frac_path);
  HEDRA_METRIC_ADD("taskset.rta.iterations", out.telemetry.iterations);
  HEDRA_METRIC_ADD("taskset.rta.seed_evals", out.telemetry.seed_evals);
  HEDRA_METRIC_ADD("taskset.rta.truncated", out.telemetry.truncated);
  return out;
}

std::string explain_fixpoint(const ContentionAnalysis& analysis) {
  const FixpointTelemetry& t = analysis.telemetry;
  std::ostringstream os;
  os << "rta fixpoint: solves=" << t.fixpoint_solves << " (int_path="
     << t.int_path << " frac_path=" << t.frac_path << ") iterations="
     << t.iterations << " seed_evals=" << t.seed_evals << " truncated="
     << t.truncated << "\n";
  return os.str();
}

std::string explain(const ContentionAnalysis& analysis, const TaskSet& set) {
  HEDRA_REQUIRE(analysis.tasks.size() == set.size(),
                "analysis does not match the task set");
  std::ostringstream os;
  os << "taskset admission ("
     << set.platform().describe() << "): "
     << (analysis.schedulable ? "SCHEDULABLE" : "NOT SCHEDULABLE");
  if (analysis.outcome == util::Outcome::kBudgetExhausted) {
    os << " (budget exhausted: truncated tasks are not PROVEN infeasible)";
  }
  os << ", " << analysis.cores_used << "/" << set.platform().cores
     << " host cores partitioned\n";

  // The tightest task — the first unschedulable one, or the admitted task
  // with the largest R/D — names the contention edge to relieve first.
  std::size_t tightest = 0;
  bool found_failing = false;
  Frac best_ratio(-1);
  for (std::size_t i = 0; i < analysis.tasks.size(); ++i) {
    const TaskAdmission& task = analysis.tasks[i];
    if (!task.schedulable && !found_failing) {
      tightest = i;
      found_failing = true;
    }
    if (!found_failing) {
      const Frac ratio = task.response / Frac(set[i].deadline());
      if (ratio > best_ratio) {
        best_ratio = ratio;
        tightest = i;
      }
    }
  }

  for (std::size_t i = 0; i < analysis.tasks.size(); ++i) {
    const TaskAdmission& task = analysis.tasks[i];
    os << "  " << task.name << ": ";
    if (task.cores == 0) {
      os << "no host cores left -> NOT schedulable\n";
      continue;
    }
    os << task.cores << " core" << (task.cores == 1 ? "" : "s") << ", R = "
       << task.response << " (= " << task.response.to_double() << ") vs D = "
       << set[i].deadline() << " -> ";
    if (task.outcome == util::Outcome::kBudgetExhausted) {
      os << "BUDGET EXHAUSTED (analysis truncated after " << task.iterations
         << " iterations; treated as NOT schedulable, not proven infeasible)";
    } else {
      os << (task.schedulable ? "schedulable" : "NOT schedulable");
      if (task.iterations > 1) {
        os << " after " << task.iterations << " contention iterations";
      }
    }
    os << "\n";
  }

  const TaskAdmission& tight = analysis.tasks[tightest];
  const DeviceContention* dominant = nullptr;
  for (const DeviceContention& device : tight.devices) {
    if (device.interference == Frac()) continue;
    if (dominant == nullptr || device.interference > dominant->interference) {
      dominant = &device;
    }
  }
  if (dominant != nullptr) {
    os << "  dominating contention: task "
       << set[dominant->dominant_competitor].name() << " on device "
       << set.platform().device_name(dominant->device) << " (d"
       << dominant->device << ") adds " << dominant->interference
       << " ticks to " << tight.name << "'s bound\n";
  } else {
    os << "  no device contention: every per-task bound is the isolated "
          "platform bound\n";
  }
  return os.str();
}

}  // namespace hedra::taskset
