#pragma once

/// \file gen.h (taskset)
/// Random generation of sporadic task sets over a shared heterogeneous
/// platform — the multi-device successor of gen/taskset_gen.h, following
/// the standard recipe of the real-time literature: per-task utilisations
/// from UUniFast (Bini & Buttazzo), DAG structure and device placement from
/// the existing generators (gen::generate_hierarchical /
/// gen::generate_multi_device, so offload selection, per-device volume mix
/// and speedup scaling all apply per task), periods derived as
/// T_i = vol(G_i)/u_i, and constrained deadlines drawn between len(G_i) and
/// T_i.
///
/// Determinism mirrors the experiment engine: every task of a set builds
/// from its own fork of the set's RNG, and every set of a batch from its
/// own fork of the master — so sets are order-independent, any single set
/// regenerates in isolation, and sweeps that fan batches out over a thread
/// pool stay bit-identical to serial runs (the fig12 harness pins this).

#include <cstdint>
#include <vector>

#include "gen/params.h"
#include "taskset/taskset.h"
#include "util/rng.h"

namespace hedra::taskset {

/// Parameters for one random task set.
struct TaskSetGenConfig {
  int num_tasks = 4;
  /// Target Σ vol(G_i)/T_i (host + accelerator device-time combined).
  // hedra-lint: allow(float-in-bound, UUniFast sampling target, not a bound)
  double total_utilization = 2.0;
  /// Per-task DAG shape.  num_devices > 0 populates that many accelerator
  /// classes per task (gen::generate_multi_device, honouring
  /// offloads_per_device / device_mix / device_speedup); num_devices == 0
  /// generates pure host DAGs.
  gen::HierarchicalParams dag_params = gen::HierarchicalParams::small_tasks();
  /// Target C_off/vol ratio per task (only with num_devices > 0).
  // hedra-lint: allow(float-in-bound, generator shape knob, not a bound)
  double coff_ratio = 0.2;
  /// Implicit (D = T) or constrained deadlines uniform in [len(G), T].
  bool implicit_deadlines = true;
  /// Host cores of the shared platform.
  int cores = 4;
  /// Execution units per accelerator class (empty = 1 each), forwarded to
  /// the platform — generation itself is unit-agnostic.
  std::vector<int> device_units;

  void validate() const;

  /// The shared platform the generated sets run on: `cores` host cores plus
  /// one class per generated device ("acc1".."accK") with the requested
  /// units.  Speedups are NOT put on the platform: dag_params.device_speedup
  /// already scales the generated WCETs to device-time, so analysing the
  /// set with a speedup-carrying platform would double-count the scaling.
  [[nodiscard]] model::Platform platform() const;
};

/// Generates one task set (tasks named "tau1".."tauN").  Each task's period
/// is vol(G_i)/u_i rounded up and floored at len(G_i), exactly as in
/// gen::generate_task_set.
[[nodiscard]] TaskSet generate_task_set(const TaskSetGenConfig& config,
                                        Rng& rng);

/// `count` independent sets, each from its own fork of `seed`'s master RNG
/// (the experiment-engine replication recipe).
[[nodiscard]] std::vector<TaskSet> generate_taskset_batch(
    const TaskSetGenConfig& config, int count, std::uint64_t seed);

}  // namespace hedra::taskset
