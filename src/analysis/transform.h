#pragma once

/// \file transform.h
/// The DAG transformation of §3.4 (Algorithm 1): `τ ⇒ τ'`.
///
/// Given G with a single offloaded node v_off, the transformation inserts a
/// zero-WCET synchronisation node v_sync immediately before v_off and the
/// sub-DAG G_par of nodes that can potentially execute in parallel with
/// v_off, guaranteeing that v_off and G_par *actually* begin execution
/// together.  This is what makes subtracting offloaded work from the
/// self-interference factor safe (§3.3) — without it, the host can sit idle
/// while the accelerator runs (Figure 1(c)) and the reduced bound is wrong.
///
/// Faithful to Algorithm 1:
///  - line 1:    Pred(v_off) / Succ(v_off) via reachability on G;
///  - lines 3-8: every direct predecessor v_i of v_off loses its edge to
///               v_off (replaced by (v_i, v_sync)) and all its *other*
///               successors are re-parented under v_sync;
///  - line 9:    edge (v_sync, v_off);
///  - lines 10-13: successors of *indirect* predecessors of v_off that are
///               not themselves predecessors of v_off are re-parented under
///               v_sync;
///  - lines 14-17: G_par is the subgraph of the ORIGINAL G induced by
///               V \ Pred(v_off) \ Succ(v_off) \ {v_off}.
///
/// Preconditions (§2 model): acyclic, single source and sink, exactly one
/// offload node that is neither source nor sink, no transitive edges.
/// Transitive freeness is what lets line 12 use "v_j ∉ Pred(v_off)" as a
/// parallelism test without consulting Succ(v_off).

#include <vector>

#include "graph/dag.h"
#include "graph/subgraph.h"

namespace hedra::analysis {

using graph::Dag;
using graph::NodeId;

/// Result of Algorithm 1.
struct TransformResult {
  /// G' = (V', E'): the input graph plus v_sync, rewired.  Node ids of the
  /// original graph are preserved; v_sync is the last node.
  Dag transformed;
  /// Id of v_sync within `transformed`.
  NodeId vsync = graph::kInvalidNode;
  /// Id of v_off (same in input and `transformed`).
  NodeId voff = graph::kInvalidNode;
  /// G_par as an induced subgraph of the *original* graph, with id mappings.
  /// May be empty when no node is parallel to v_off.
  graph::Subgraph gpar;
  /// Pred(v_off) and Succ(v_off) on the original graph (informational).
  std::vector<NodeId> pred_of_voff;
  std::vector<NodeId> succ_of_voff;
  /// Rewiring statistics.
  std::size_t edges_removed = 0;
  std::size_t edges_added = 0;
};

/// Runs Algorithm 1.  Throws hedra::Error if the graph violates the model
/// preconditions listed above.
[[nodiscard]] TransformResult transform_for_offload(const Dag& dag);

/// Membership ids of V_par = V \ Pred(v_off) \ Succ(v_off) \ {v_off} on the
/// original graph, without building G'.  Useful for scenario statistics.
[[nodiscard]] std::vector<NodeId> parallel_nodes(const Dag& dag, NodeId voff);

}  // namespace hedra::analysis
