#pragma once

/// \file multi_offload.h
/// EXTENSION (not part of the DAC'18 paper; listed there as future work §7):
/// a sound response-time bound for DAGs with *several* offloaded nodes
/// sharing the single accelerator device.
///
/// Derivation (two-resource Graham argument).  Fix any work-conserving
/// schedule and build the usual interference chain C backwards from the last
/// completing node.  At any instant where the head of the chain is ready but
/// not executing, either
///   (a) it is a host node, so all m host cores are busy with host work not
///       in C, or
///   (b) it is an offload node, so the accelerator is busy with offload work
///       not in C.
/// Hence
///
///   R <= len(C) + (vol_host − host(C))/m + (vol_off − off(C))
///
/// and maximising the right-hand side over all source-to-sink chains gives
///
///   R_multi = vol_host/m + vol_off
///             + max over paths P of Σ_{v∈P, host} C_v·(m−1)/m,
///
/// a weighted-longest-path computation (offload nodes contribute weight 0).
/// With a single offload node this is in general *incomparable* with
/// Theorem 1 (no v_sync is inserted, so no serialisation penalty, but no
/// parallel-execution guarantee either); the ablation bench compares them.
///
/// analysis/platform_rta.h generalises this argument to K named accelerator
/// devices (R <= vol_host/m + Σ_d vol_d + max_P Σ_{v∈P,host} C_v·(m−1)/m).
/// This two-resource implementation is deliberately kept independent as the
/// K = 1 reference: tests/analysis/platform_rta_test.cpp pins the exact
/// rational equality rta_platform == rta_multi_offload on generated
/// single-device batches.

#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// Sound bound for any number of kOffload nodes executing on ONE
/// accelerator under any work-conserving scheduler.  Requires m >= 1 and an
/// acyclic graph; works for zero offload nodes too (reduces to Eq. 1's value
/// only when the critical path maximises the weighted path — in general it
/// equals vol/m + max_P Σ C_v (m−1)/m, the chain form of the Graham bound).
[[nodiscard]] Frac rta_multi_offload(const graph::Dag& dag, int m);

}  // namespace hedra::analysis
