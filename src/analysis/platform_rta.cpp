#include "analysis/platform_rta.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"

namespace hedra::analysis {

Frac evaluate_platform_bound(graph::Time vol_host,
                             graph::Time device_volume_sum,
                             graph::Time max_host_path, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  return Frac(vol_host, m) + Frac(device_volume_sum) +
         Frac(max_host_path * (m - 1), m);
}

/// Accelerator nodes contribute weight 0 but still extend paths, exactly as
/// in rta_multi_offload.
graph::Time max_host_path(const graph::Dag& dag,
                          std::span<const graph::NodeId> order) {
  std::vector<graph::Time> best(dag.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : order) {
    graph::Time incoming = 0;
    for (const auto p : dag.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        dag.device(v) == graph::kHostDevice ? dag.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

graph::Time max_host_path(const graph::Dag& dag) {
  return max_host_path(dag, graph::topological_order(dag));
}

graph::Time max_host_path(const graph::FlatDag& flat) {
  std::vector<graph::Time> best(flat.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : flat.topological_order()) {
    graph::Time incoming = 0;
    for (const auto p : flat.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        flat.device(v) == graph::kHostDevice ? flat.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

namespace {

/// Shared DP of the generalised walk; `Graph` is Dag or FlatDag (identical
/// accessor vocabulary).  Exact rational arithmetic so the all-units-1
/// reduction to max_host_path·(m−1)/m is an equality, not an approximation.
template <typename Graph>
Frac weighted_chain_walk(const Graph& graph,
                         std::span<const graph::NodeId> order,
                         const ChainWeighting& weighting) {
  HEDRA_REQUIRE(weighting.m >= 1, "core count m must be >= 1");
  const bool scaled = !weighting.speedup.empty();
  std::vector<Frac> best(graph.num_nodes());
  Frac max_weighted;
  for (const auto v : order) {
    Frac incoming;
    for (const auto p : graph.predecessors(v)) {
      incoming = frac_max(incoming, best[p]);
    }
    const graph::DeviceId device = graph.device(v);
    const int units =
        device == graph::kHostDevice ? weighting.m : weighting.units_of(device);
    Frac weight(graph.wcet(v) * (units - 1), units);
    if (scaled && device != graph::kHostDevice) {
      // Effective execution time on a sped-up class is C_v/s_d.
      weight /= weighting.speedup_of(device);
    }
    best[v] = incoming + weight;
    max_weighted = frac_max(max_weighted, best[v]);
  }
  return max_weighted;
}

}  // namespace

Frac max_host_path(const graph::Dag& dag, const ChainWeighting& weighting) {
  const auto order = graph::topological_order(dag);
  return weighted_chain_walk(dag, order, weighting);
}

Frac max_host_path(const graph::FlatDag& flat,
                   const ChainWeighting& weighting) {
  return weighted_chain_walk(flat, flat.topological_order(), weighting);
}

PlatformAnalysis analyze_platform(const graph::Dag& dag,
                                  const model::Platform& platform) {
  platform.validate();
  HEDRA_REQUIRE(dag.num_nodes() > 0, "empty graph");
  {
    const auto issues = model::check_supports(platform, dag);
    HEDRA_REQUIRE(issues.empty(),
                  "platform does not support the DAG: " + issues.front());
  }

  PlatformAnalysis out;
  out.platform = platform;
  out.m = platform.cores;
  out.vol_host = dag.volume_on(graph::kHostDevice);
  out.max_host_path = max_host_path(dag);
  std::vector<int> units(platform.num_devices(), 1);
  std::vector<Frac> speedups(platform.num_devices(), Frac(1));
  for (int d = 1; d <= platform.num_devices(); ++d) {
    const auto device = static_cast<graph::DeviceId>(d);
    DeviceTerm term;
    term.device = device;
    term.name = platform.device_name(device);
    term.volume = dag.volume_on(device);
    term.node_count = dag.nodes_on(device).size();
    term.units = platform.units_of(device);
    term.speedup = platform.speedup_of(device);
    term.term = Frac(term.volume, term.units) / term.speedup;
    units[d - 1] = term.units;
    speedups[d - 1] = term.speedup;
    out.devices.push_back(std::move(term));
  }

  const int m = out.m;
  out.host_term = Frac(out.vol_host, m);
  if (platform.has_multi_units() || platform.has_speedups()) {
    Frac device_term;
    for (const auto& term : out.devices) device_term += term.term;
    out.device_term = device_term;
    ChainWeighting weighting{m, units, {}};
    if (platform.has_speedups()) weighting.speedup = speedups;
    out.path_term = max_host_path(dag, weighting);
    out.bound = out.host_term + out.device_term + out.path_term;
  } else {
    // The pre-multiplicity formula, kept on its own integer-walk path so
    // single-unit platforms produce bit-identical analyses (and explain()
    // output) to the historical implementation.
    graph::Time device_volume_sum = 0;
    for (const auto& term : out.devices) device_volume_sum += term.volume;
    out.device_term = Frac(device_volume_sum);
    out.path_term = Frac(out.max_host_path * (m - 1), m);
    out.bound = evaluate_platform_bound(out.vol_host, device_volume_sum,
                                        out.max_host_path, m);
  }
  return out;
}

Frac rta_platform(const graph::Dag& dag, const model::Platform& platform) {
  return analyze_platform(dag, platform).bound;
}

Frac rta_platform(const graph::Dag& dag, int m) {
  return rta_platform(dag, model::platform_for(dag, m));
}

std::string explain(const PlatformAnalysis& analysis) {
  std::ostringstream os;
  const int m = analysis.m;
  const bool multi = analysis.platform.has_multi_units() ||
                     analysis.platform.has_speedups();
  os << "platform response-time bound (" << analysis.platform.describe()
     << ")\n";
  if (multi) {
    os << "  R_plat = vol_host/m + sum_d vol_d/"
       << (analysis.platform.has_speedups() ? "(n_d*s_d)" : "n_d")
       << " + max weighted chain\n";
  } else {
    os << "  R_plat = vol_host/m + sum_d vol_d + max_host_path*(m-1)/m\n";
  }
  os << "  host:      vol_host = " << analysis.vol_host << " over m = " << m
     << " cores -> " << analysis.host_term << "\n";
  if (analysis.devices.empty()) {
    os << "  devices:   (none; chain form of the Graham bound)\n";
  }
  for (const auto& term : analysis.devices) {
    os << "  device d" << term.device << " (" << term.name
       << "): vol = " << term.volume << " across " << term.node_count
       << " node" << (term.node_count == 1 ? "" : "s");
    if (multi) {
      os << " on " << term.units << " unit" << (term.units == 1 ? "" : "s");
      if (term.speedup != Frac(1)) os << " at " << term.speedup << "x speed";
      os << " -> +" << term.term << "\n";
    } else {
      os << " -> +" << term.volume << "\n";
    }
  }
  if (multi) {
    os << "  chain:     max path of C_v*(units-1)/units weights"
       << " (host units = m) -> " << analysis.path_term << "\n";
  } else {
    os << "  chain:     max host path = " << analysis.max_host_path
       << " * (m-1)/m" << " -> " << analysis.path_term << "\n";
  }
  os << "  bound:     R_plat = " << analysis.host_term << " + "
     << analysis.device_term << " + " << analysis.path_term << " = "
     << analysis.bound << " (= " << analysis.bound.to_double() << ")\n";
  return os.str();
}

}  // namespace hedra::analysis
