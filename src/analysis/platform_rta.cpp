#include "analysis/platform_rta.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "graph/algorithms.h"

namespace hedra::analysis {

Frac evaluate_platform_bound(graph::Time vol_host,
                             graph::Time device_volume_sum,
                             graph::Time max_host_path, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  return Frac(vol_host, m) + Frac(device_volume_sum) +
         Frac(max_host_path * (m - 1), m);
}

/// Accelerator nodes contribute weight 0 but still extend paths, exactly as
/// in rta_multi_offload.
graph::Time max_host_path(const graph::Dag& dag,
                          std::span<const graph::NodeId> order) {
  std::vector<graph::Time> best(dag.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : order) {
    graph::Time incoming = 0;
    for (const auto p : dag.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        dag.device(v) == graph::kHostDevice ? dag.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

graph::Time max_host_path(const graph::Dag& dag) {
  return max_host_path(dag, graph::topological_order(dag));
}

graph::Time max_host_path(const graph::FlatView& view) {
  std::vector<graph::Time> best(view.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : view.topological_order()) {
    graph::Time incoming = 0;
    for (const auto p : view.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        view.device(v) == graph::kHostDevice ? view.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

graph::Time max_host_path(const graph::FlatDag& flat) {
  return max_host_path(flat.view());
}

namespace {

/// Per-resource weight C_v·(r−1)/r (optionally /s_d) expressed over one
/// common denominator so the DP runs on int64 instead of Frac: node v
/// contributes `wcet(v) · factor[device(v)]` to a path value, and the walk
/// result is Frac(max_scaled, denom) — the SAME normalised rational the
/// per-node Frac arithmetic produces, at a fraction of the cost.
struct ScaledWeights {
  std::vector<std::int64_t> factor;  ///< indexed by device id (0 = host)
  std::int64_t denom = 1;
  bool usable = false;
};

ScaledWeights scale_weights(graph::DeviceId max_device,
                            const ChainWeighting& weighting) {
  ScaledWeights out;
  // Common denominator: host nodes weigh (m−1)/m, device-d nodes weigh
  // (n_d−1)·den(s_d) / (n_d·num(s_d)).
  std::int64_t denom = weighting.m;
  for (graph::DeviceId d = 1; d <= max_device; ++d) {
    const int units = weighting.units_of(d);
    if (units <= 1) continue;  // weight 0 regardless of speedup
    const Frac speedup = weighting.speedup_of(d);
    const std::int64_t device_denom = static_cast<std::int64_t>(units) *
                                      speedup.num();
    if (device_denom > (std::int64_t{1} << 31)) return out;
    denom = std::lcm(denom, device_denom);
    if (denom > (std::int64_t{1} << 31)) return out;
  }
  out.denom = denom;
  out.factor.assign(static_cast<std::size_t>(max_device) + 1, 0);
  out.factor[graph::kHostDevice] = denom / weighting.m * (weighting.m - 1);
  for (graph::DeviceId d = 1; d <= max_device; ++d) {
    const int units = weighting.units_of(d);
    if (units <= 1) continue;
    const Frac speedup = weighting.speedup_of(d);
    const __int128 factor = static_cast<__int128>(denom) /
                            (static_cast<std::int64_t>(units) * speedup.num()) *
                            (units - 1) * speedup.den();
    if (factor > (std::int64_t{1} << 31)) return out;
    out.factor[d] = static_cast<std::int64_t>(factor);
  }
  out.usable = true;
  return out;
}

/// Exact Frac DP of the generalised walk; `Graph` is Dag, FlatDag or
/// FlatView (identical accessor vocabulary).  The fallback for weightings
/// whose common denominator would risk int64 overflow.
template <typename Graph>
Frac weighted_chain_walk_frac(const Graph& graph,
                              std::span<const graph::NodeId> order,
                              const ChainWeighting& weighting) {
  const bool scaled = !weighting.speedup.empty();
  std::vector<Frac> best(graph.num_nodes());
  Frac max_weighted;
  for (const auto v : order) {
    Frac incoming;
    for (const auto p : graph.predecessors(v)) {
      incoming = frac_max(incoming, best[p]);
    }
    const graph::DeviceId device = graph.device(v);
    const int units =
        device == graph::kHostDevice ? weighting.m : weighting.units_of(device);
    Frac weight(graph.wcet(v) * (units - 1), units);
    if (scaled && device != graph::kHostDevice) {
      // Effective execution time on a sped-up class is C_v/s_d.
      weight /= weighting.speedup_of(device);
    }
    best[v] = incoming + weight;
    max_weighted = frac_max(max_weighted, best[v]);
  }
  return max_weighted;
}

/// Integer-scaled DP over a common denominator; falls back to the Frac DP
/// when the scaling is unrepresentable.  Exact rational equality with the
/// Frac DP in all cases (regression-pinned in platform_rta_test).
template <typename Graph>
Frac weighted_chain_walk(const Graph& graph,
                         std::span<const graph::NodeId> order,
                         const ChainWeighting& weighting) {
  HEDRA_REQUIRE(weighting.m >= 1, "core count m must be >= 1");
  for (graph::DeviceId d = 1; d <= graph.max_device(); ++d) {
    HEDRA_REQUIRE(weighting.units_of(d) >= 1,
                  "every device class needs >= 1 execution unit");
    HEDRA_REQUIRE(weighting.speedup_of(d) > Frac(0),
                  "every device speedup must be strictly positive");
  }
  const ScaledWeights scale = scale_weights(graph.max_device(), weighting);
  if (!scale.usable) {
    return weighted_chain_walk_frac(graph, order, weighting);
  }
  // Overflow guard: every path value is bounded by Σ_v C_v·factor_v.
  __int128 total = 0;
  std::int64_t max_factor = 0;
  for (const std::int64_t f : scale.factor) {
    max_factor = std::max(max_factor, f);
  }
  for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
    total += static_cast<__int128>(graph.wcet(v)) * max_factor;
  }
  if (total > (static_cast<__int128>(1) << 62)) {
    return weighted_chain_walk_frac(graph, order, weighting);
  }
  std::vector<std::int64_t> best(graph.num_nodes(), 0);
  std::int64_t max_weighted = 0;
  for (const auto v : order) {
    std::int64_t incoming = 0;
    for (const auto p : graph.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    best[v] = incoming + graph.wcet(v) * scale.factor[graph.device(v)];
    max_weighted = std::max(max_weighted, best[v]);
  }
  return Frac(max_weighted, scale.denom);
}

}  // namespace

Frac max_host_path(const graph::Dag& dag, const ChainWeighting& weighting) {
  const auto order = graph::topological_order(dag);
  return weighted_chain_walk(dag, order, weighting);
}

Frac max_host_path(const graph::FlatDag& flat,
                   const ChainWeighting& weighting) {
  return weighted_chain_walk(flat, flat.topological_order(), weighting);
}

Frac max_host_path(const graph::FlatView& view,
                   const ChainWeighting& weighting) {
  return weighted_chain_walk(view, view.topological_order(), weighting);
}

PlatformAnalysis analyze_platform(const graph::Dag& dag,
                                  const model::Platform& platform) {
  platform.validate();
  HEDRA_REQUIRE(dag.num_nodes() > 0, "empty graph");
  {
    const auto issues = model::check_supports(platform, dag);
    HEDRA_REQUIRE(issues.empty(),
                  "platform does not support the DAG: " + issues.front());
  }

  PlatformAnalysis out;
  out.platform = platform;
  out.m = platform.cores;
  out.vol_host = dag.volume_on(graph::kHostDevice);
  out.max_host_path = max_host_path(dag);
  std::vector<int> units(platform.num_devices(), 1);
  std::vector<Frac> speedups(platform.num_devices(), Frac(1));
  for (int d = 1; d <= platform.num_devices(); ++d) {
    const auto device = static_cast<graph::DeviceId>(d);
    DeviceTerm term;
    term.device = device;
    term.name = platform.device_name(device);
    term.volume = dag.volume_on(device);
    term.node_count = dag.nodes_on(device).size();
    term.units = platform.units_of(device);
    term.speedup = platform.speedup_of(device);
    term.term = Frac(term.volume, term.units) / term.speedup;
    units[d - 1] = term.units;
    speedups[d - 1] = term.speedup;
    out.devices.push_back(std::move(term));
  }

  const int m = out.m;
  out.host_term = Frac(out.vol_host, m);
  if (platform.has_multi_units() || platform.has_speedups()) {
    Frac device_term;
    for (const auto& term : out.devices) device_term += term.term;
    out.device_term = device_term;
    ChainWeighting weighting{m, units, {}};
    if (platform.has_speedups()) weighting.speedup = speedups;
    out.path_term = max_host_path(dag, weighting);
    out.bound = out.host_term + out.device_term + out.path_term;
  } else {
    // The pre-multiplicity formula, kept on its own integer-walk path so
    // single-unit platforms produce bit-identical analyses (and explain()
    // output) to the historical implementation.
    graph::Time device_volume_sum = 0;
    for (const auto& term : out.devices) device_volume_sum += term.volume;
    out.device_term = Frac(device_volume_sum);
    out.path_term = Frac(out.max_host_path * (m - 1), m);
    out.bound = evaluate_platform_bound(out.vol_host, device_volume_sum,
                                        out.max_host_path, m);
  }
  return out;
}

Frac rta_platform(const graph::Dag& dag, const model::Platform& platform) {
  return analyze_platform(dag, platform).bound;
}

Frac rta_platform(const graph::Dag& dag, int m) {
  return rta_platform(dag, model::platform_for(dag, m));
}

std::string explain(const PlatformAnalysis& analysis) {
  std::ostringstream os;
  const int m = analysis.m;
  const bool multi = analysis.platform.has_multi_units() ||
                     analysis.platform.has_speedups();
  os << "platform response-time bound (" << analysis.platform.describe()
     << ")\n";
  if (multi) {
    os << "  R_plat = vol_host/m + sum_d vol_d/"
       << (analysis.platform.has_speedups() ? "(n_d*s_d)" : "n_d")
       << " + max weighted chain\n";
  } else {
    os << "  R_plat = vol_host/m + sum_d vol_d + max_host_path*(m-1)/m\n";
  }
  os << "  host:      vol_host = " << analysis.vol_host << " over m = " << m
     << " cores -> " << analysis.host_term << "\n";
  if (analysis.devices.empty()) {
    os << "  devices:   (none; chain form of the Graham bound)\n";
  }
  for (const auto& term : analysis.devices) {
    os << "  device d" << term.device << " (" << term.name
       << "): vol = " << term.volume << " across " << term.node_count
       << " node" << (term.node_count == 1 ? "" : "s");
    if (multi) {
      os << " on " << term.units << " unit" << (term.units == 1 ? "" : "s");
      if (term.speedup != Frac(1)) os << " at " << term.speedup << "x speed";
      os << " -> +" << term.term << "\n";
    } else {
      os << " -> +" << term.volume << "\n";
    }
  }
  if (multi) {
    os << "  chain:     max path of C_v*(units-1)/units weights"
       << " (host units = m) -> " << analysis.path_term << "\n";
  } else {
    os << "  chain:     max host path = " << analysis.max_host_path
       << " * (m-1)/m" << " -> " << analysis.path_term << "\n";
  }
  os << "  bound:     R_plat = " << analysis.host_term << " + "
     << analysis.device_term << " + " << analysis.path_term << " = "
     << analysis.bound << " (= " << analysis.bound.to_double() << ")\n";
  return os.str();
}

}  // namespace hedra::analysis
