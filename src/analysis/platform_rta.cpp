#include "analysis/platform_rta.h"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.h"

namespace hedra::analysis {

Frac evaluate_platform_bound(graph::Time vol_host,
                             graph::Time device_volume_sum,
                             graph::Time max_host_path, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  return Frac(vol_host, m) + Frac(device_volume_sum) +
         Frac(max_host_path * (m - 1), m);
}

/// Accelerator nodes contribute weight 0 but still extend paths, exactly as
/// in rta_multi_offload.
graph::Time max_host_path(const graph::Dag& dag,
                          std::span<const graph::NodeId> order) {
  std::vector<graph::Time> best(dag.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : order) {
    graph::Time incoming = 0;
    for (const auto p : dag.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        dag.device(v) == graph::kHostDevice ? dag.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

graph::Time max_host_path(const graph::Dag& dag) {
  return max_host_path(dag, graph::topological_order(dag));
}

graph::Time max_host_path(const graph::FlatDag& flat) {
  std::vector<graph::Time> best(flat.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : flat.topological_order()) {
    graph::Time incoming = 0;
    for (const auto p : flat.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight =
        flat.device(v) == graph::kHostDevice ? flat.wcet(v) : 0;
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }
  return max_weighted;
}

PlatformAnalysis analyze_platform(const graph::Dag& dag,
                                  const model::Platform& platform) {
  platform.validate();
  HEDRA_REQUIRE(dag.num_nodes() > 0, "empty graph");
  {
    const auto issues = model::check_supports(platform, dag);
    HEDRA_REQUIRE(issues.empty(),
                  "platform does not support the DAG: " + issues.front());
  }

  PlatformAnalysis out;
  out.platform = platform;
  out.m = platform.cores;
  out.vol_host = dag.volume_on(graph::kHostDevice);
  out.max_host_path = max_host_path(dag);
  for (int d = 1; d <= platform.num_devices(); ++d) {
    const auto device = static_cast<graph::DeviceId>(d);
    DeviceTerm term;
    term.device = device;
    term.name = platform.device_name(device);
    term.volume = dag.volume_on(device);
    term.node_count = dag.nodes_on(device).size();
    out.devices.push_back(std::move(term));
  }

  const int m = out.m;
  graph::Time device_volume_sum = 0;
  for (const auto& term : out.devices) device_volume_sum += term.volume;
  out.host_term = Frac(out.vol_host, m);
  out.device_term = Frac(device_volume_sum);
  out.path_term = Frac(out.max_host_path * (m - 1), m);
  out.bound = evaluate_platform_bound(out.vol_host, device_volume_sum,
                                      out.max_host_path, m);
  return out;
}

Frac rta_platform(const graph::Dag& dag, const model::Platform& platform) {
  return analyze_platform(dag, platform).bound;
}

Frac rta_platform(const graph::Dag& dag, int m) {
  return rta_platform(dag, model::platform_for(dag, m));
}

std::string explain(const PlatformAnalysis& analysis) {
  std::ostringstream os;
  const int m = analysis.m;
  os << "platform response-time bound (" << analysis.platform.describe()
     << ")\n"
     << "  R_plat = vol_host/m + sum_d vol_d + max_host_path*(m-1)/m\n"
     << "  host:      vol_host = " << analysis.vol_host << " over m = " << m
     << " cores -> " << analysis.host_term << "\n";
  if (analysis.devices.empty()) {
    os << "  devices:   (none; chain form of the Graham bound)\n";
  }
  for (const auto& term : analysis.devices) {
    os << "  device d" << term.device << " (" << term.name
       << "): vol = " << term.volume << " across " << term.node_count
       << " node" << (term.node_count == 1 ? "" : "s") << " -> +"
       << term.volume << "\n";
  }
  os << "  chain:     max host path = " << analysis.max_host_path << " * (m-1)/m"
     << " -> " << analysis.path_term << "\n"
     << "  bound:     R_plat = " << analysis.host_term << " + "
     << analysis.device_term << " + " << analysis.path_term << " = "
     << analysis.bound << " (= " << analysis.bound.to_double() << ")\n";
  return os.str();
}

}  // namespace hedra::analysis
