#pragma once

/// \file platform_rta.h
/// EXTENSION (the DAC'18 paper names multiple accelerators as future work,
/// §7): a sound response-time bound for DAGs whose nodes are spread over a
/// heterogeneous Platform — m identical host cores plus K named accelerator
/// device classes with n_d execution units each (model/platform.h).
///
/// Derivation (K+1-resource Graham argument, generalising the two-resource
/// argument of analysis/multi_offload.h).  Fix any work-conserving schedule
/// and build the interference chain C backwards from the last completing
/// node.  At any instant where the head of the chain is ready but not
/// executing, either
///   (a) it is a host node, so all m host cores are busy with host work not
///       in C, or
///   (b) it is placed on accelerator device d, so all n_d units of d are
///       busy with device-d work not in C.
/// Summing the disjoint kinds of time (chain execution, host-saturated
/// waiting, device-saturated waiting) and bounding each gives
///
///   R <= len(C) + (vol_host − host(C))/m + Σ_d (vol_d − dev_d(C))/n_d
///     <= vol_host/m + Σ_d vol_d/n_d
///        + max_P [ Σ_{v∈P, host} C_v·(m−1)/m
///                + Σ_d Σ_{v∈P, dev d} C_v·(n_d−1)/n_d ] ,
///
/// where the maximum ranges over all source-to-sink paths P — a weighted
/// longest-path computation in which every node contributes its WCET scaled
/// by its own resource's (units−1)/units factor.  With n_d = 1 everywhere
/// the device weights vanish and the path term factors into
/// max_host_path·(m−1)/m, reproducing the pre-multiplicity bound *exactly*
/// (a regression test pins the rational equality); with K = 1, n_1 = 1 this
/// is rta_multi_offload, and with K = 0 the chain form of the classic
/// Graham bound.
///
/// The bound is monotone in each per-device volume, non-increasing in every
/// n_d (each path value has derivative (chain_d − vol_d)/n_d² <= 0), and
/// surfaces its derivation term-by-term (PlatformAnalysis + explain) so
/// tooling can show *why* a task misses or meets its deadline on a given
/// platform.
///
/// Heterogeneous WCET scaling: when the platform carries per-device
/// speedups s_d (model::Platform::device_speedup), node WCETs are read as
/// *nominal* times and device d executes C_v in C_v/s_d ticks.  Every
/// device-d occurrence in the bound scales accordingly — the device term
/// becomes vol_d/(n_d·s_d) and the chain weight (C_v/s_d)·(n_d−1)/n_d —
/// while host terms are untouched.  All speedups at 1 reduce to the
/// unscaled bound with exact rational equality.

#include <span>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "graph/flat_dag.h"
#include "model/platform.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// One accelerator device's contribution to the bound.
struct DeviceTerm {
  graph::DeviceId device = 0;  ///< device id (>= 1)
  std::string name;            ///< platform name of the device
  graph::Time volume = 0;      ///< vol_d, total nominal WCET on the device
  std::size_t node_count = 0;  ///< number of nodes placed on the device
  int units = 1;               ///< n_d, execution units of the class
  Frac speedup = Frac(1);      ///< s_d, WCET scaling of the class
  Frac term;                   ///< vol_d / (n_d · s_d)
};

/// Term-by-term decomposition of the K-device chain bound.
struct PlatformAnalysis {
  model::Platform platform;
  int m = 0;                        ///< platform.cores
  graph::Time vol_host = 0;         ///< host + sync volume
  graph::Time max_host_path = 0;    ///< max_P Σ_{v∈P, host} C_v
  std::vector<DeviceTerm> devices;  ///< one entry per platform device

  Frac host_term;    ///< vol_host / m
  Frac device_term;  ///< Σ_d vol_d / n_d
  /// Weighted-chain term: max_host_path·(m−1)/m on a single-unit platform,
  /// the full mixed-weight walk when some n_d > 1.
  Frac path_term;
  Frac bound;        ///< R_plat = host_term + device_term + path_term
};

/// Per-node weighting of the generalised chain walk: host nodes weigh
/// C_v·(m−1)/m, nodes on device d weigh (C_v/s_d)·(n_d−1)/n_d — the
/// *effective* execution time on a class with WCET speedup s_d.  `units`
/// and `speedup` are indexed d−1; devices beyond either span default to one
/// unit / unit speed, so an empty-span weighting recovers the host-only
/// walk scaled by (m−1)/m.
struct ChainWeighting {
  int m = 1;
  std::span<const int> units;
  std::span<const Frac> speedup;

  [[nodiscard]] int units_of(graph::DeviceId device) const noexcept {
    const std::size_t index = static_cast<std::size_t>(device) - 1;
    return index < units.size() ? units[index] : 1;
  }

  [[nodiscard]] Frac speedup_of(graph::DeviceId device) const noexcept {
    const std::size_t index = static_cast<std::size_t>(device) - 1;
    return index < speedup.size() ? speedup[index] : Frac(1);
  }
};

/// Computes the K-device chain bound with its full derivation.  Requires a
/// non-empty acyclic DAG every node of which is placed on the host or on one
/// of the platform's devices (model::check_supports).
[[nodiscard]] PlatformAnalysis analyze_platform(const graph::Dag& dag,
                                                const model::Platform& platform);

/// Just the bound.
[[nodiscard]] Frac rta_platform(const graph::Dag& dag,
                                const model::Platform& platform);

/// Convenience: infers the smallest supporting platform (one single-unit
/// class per device id present in the DAG) and evaluates the bound on m
/// host cores.
[[nodiscard]] Frac rta_platform(const graph::Dag& dag, int m);

/// Evaluates the single-unit chain bound from pre-measured quantities — the
/// single place the n_d = 1 formula lives; analyze_platform and
/// AnalysisCache::r_platform both delegate here.  `device_volume_sum` is
/// Σ_d vol_d.
[[nodiscard]] Frac evaluate_platform_bound(graph::Time vol_host,
                                           graph::Time device_volume_sum,
                                           graph::Time max_host_path, int m);

/// max over source-to-sink paths P of Σ_{v∈P, host} C_v — the bound's
/// self-interference chain, exposed so per-DAG caches can share the walk
/// across core counts (the quantity is m-independent).
[[nodiscard]] graph::Time max_host_path(const graph::Dag& dag);

/// Overload reusing an already-computed topological order of `dag`.
[[nodiscard]] graph::Time max_host_path(const graph::Dag& dag,
                                        std::span<const graph::NodeId> order);

/// Overload over a CSR snapshot, using its cached topological order — the
/// AnalysisCache hot path (one contiguous pass, no adjacency indirection).
[[nodiscard]] graph::Time max_host_path(const graph::FlatDag& flat);

/// Overload over a non-owning CSR view (arena batches).
[[nodiscard]] graph::Time max_host_path(const graph::FlatView& view);

/// The generalised weighted chain walk of the multiplicity bound:
/// max_P Σ_{v∈P} C_v·(r_v−1)/r_v with r_v the unit count of v's resource
/// (m for host nodes, n_d for device-d nodes).  Exact rationals throughout;
/// with all n_d = 1 this equals max_host_path·(m−1)/m exactly.
[[nodiscard]] Frac max_host_path(const graph::Dag& dag,
                                 const ChainWeighting& weighting);
[[nodiscard]] Frac max_host_path(const graph::FlatDag& flat,
                                 const ChainWeighting& weighting);
[[nodiscard]] Frac max_host_path(const graph::FlatView& view,
                                 const ChainWeighting& weighting);

/// Human-readable, term-by-term derivation of the bound (the multi-device
/// counterpart of rta_heterogeneous's explain).  Meant for tooling output
/// (see examples/dag_tool) and certification evidence trails.
[[nodiscard]] std::string explain(const PlatformAnalysis& analysis);

}  // namespace hedra::analysis
