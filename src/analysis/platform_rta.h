#pragma once

/// \file platform_rta.h
/// EXTENSION (the DAC'18 paper names multiple accelerators as future work,
/// §7): a sound response-time bound for DAGs whose nodes are spread over a
/// heterogeneous Platform — m identical host cores plus K named accelerator
/// device classes, one execution unit each (model/platform.h).
///
/// Derivation (K+1-resource Graham argument, generalising the two-resource
/// argument of analysis/multi_offload.h).  Fix any work-conserving schedule
/// and build the interference chain C backwards from the last completing
/// node.  At any instant where the head of the chain is ready but not
/// executing, either
///   (a) it is a host node, so all m host cores are busy with host work not
///       in C, or
///   (b) it is placed on accelerator device d, so unit d is busy with
///       device-d work not in C.
/// Summing the three disjoint kinds of time (chain execution, host-saturated
/// waiting, device-saturated waiting) and bounding each gives
///
///   R <= len(C) + (vol_host − host(C))/m + Σ_d (vol_d − dev_d(C))
///     <= vol_host/m + Σ_d vol_d + max_P Σ_{v∈P, host} C_v·(m−1)/m ,
///
/// where the maximum ranges over all source-to-sink paths P — a weighted
/// longest-path computation in which accelerator nodes contribute weight 0.
/// With K = 1 this is *exactly* rta_multi_offload (a regression test pins
/// the equality on generated batches), and with K = 0 it reduces to the
/// chain form of the classic Graham bound, vol/m + max_P Σ C_v·(m−1)/m.
///
/// The bound is monotone in each per-device volume and surfaces its
/// derivation term-by-term (PlatformAnalysis + explain) so tooling can show
/// *why* a task misses or meets its deadline on a given platform.

#include <span>
#include <string>
#include <vector>

#include "graph/dag.h"
#include "graph/flat_dag.h"
#include "model/platform.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// One accelerator device's contribution to the bound.
struct DeviceTerm {
  graph::DeviceId device = 0;  ///< device id (>= 1)
  std::string name;            ///< platform name of the device
  graph::Time volume = 0;      ///< vol_d, total WCET placed on the device
  std::size_t node_count = 0;  ///< number of nodes placed on the device
};

/// Term-by-term decomposition of the K-device chain bound.
struct PlatformAnalysis {
  model::Platform platform;
  int m = 0;                        ///< platform.cores
  graph::Time vol_host = 0;         ///< host + sync volume
  graph::Time max_host_path = 0;    ///< max_P Σ_{v∈P, host} C_v
  std::vector<DeviceTerm> devices;  ///< one entry per platform device

  Frac host_term;    ///< vol_host / m
  Frac device_term;  ///< Σ_d vol_d
  Frac path_term;    ///< max_host_path · (m−1) / m
  Frac bound;        ///< R_plat = host_term + device_term + path_term
};

/// Computes the K-device chain bound with its full derivation.  Requires a
/// non-empty acyclic DAG every node of which is placed on the host or on one
/// of the platform's devices (model::check_supports).
[[nodiscard]] PlatformAnalysis analyze_platform(const graph::Dag& dag,
                                                const model::Platform& platform);

/// Just the bound.
[[nodiscard]] Frac rta_platform(const graph::Dag& dag,
                                const model::Platform& platform);

/// Convenience: infers the smallest supporting platform (one unit per device
/// id present in the DAG) and evaluates the bound on m host cores.
[[nodiscard]] Frac rta_platform(const graph::Dag& dag, int m);

/// Evaluates the chain bound from pre-measured quantities — the single
/// place the formula lives; analyze_platform and AnalysisCache::r_platform
/// both delegate here.  `device_volume_sum` is Σ_d vol_d.
[[nodiscard]] Frac evaluate_platform_bound(graph::Time vol_host,
                                           graph::Time device_volume_sum,
                                           graph::Time max_host_path, int m);

/// max over source-to-sink paths P of Σ_{v∈P, host} C_v — the bound's
/// self-interference chain, exposed so per-DAG caches can share the walk
/// across core counts (the quantity is m-independent).
[[nodiscard]] graph::Time max_host_path(const graph::Dag& dag);

/// Overload reusing an already-computed topological order of `dag`.
[[nodiscard]] graph::Time max_host_path(const graph::Dag& dag,
                                        std::span<const graph::NodeId> order);

/// Overload over a CSR snapshot, using its cached topological order — the
/// AnalysisCache hot path (one contiguous pass, no adjacency indirection).
[[nodiscard]] graph::Time max_host_path(const graph::FlatDag& flat);

/// Human-readable, term-by-term derivation of the bound (the multi-device
/// counterpart of rta_heterogeneous's explain).  Meant for tooling output
/// (see examples/dag_tool) and certification evidence trails.
[[nodiscard]] std::string explain(const PlatformAnalysis& analysis);

}  // namespace hedra::analysis
