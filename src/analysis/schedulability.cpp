#include "analysis/schedulability.h"

namespace hedra::analysis {

const char* to_string(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::kHomogeneous:
      return "homogeneous";
    case AnalysisKind::kHeterogeneous:
      return "heterogeneous";
    case AnalysisKind::kBest:
      return "best";
  }
  return "?";
}

SchedulabilityReport check_schedulability(const model::DagTask& task, int m,
                                          AnalysisKind kind) {
  SchedulabilityReport report;
  report.kind = kind;
  report.deadline = task.deadline();
  switch (kind) {
    case AnalysisKind::kHomogeneous:
      report.bound = rta_homogeneous(task.dag(), m);
      break;
    case AnalysisKind::kHeterogeneous: {
      const auto analysis = analyze_heterogeneous(task.dag(), m);
      report.bound = analysis.r_het;
      report.scenario = analysis.scenario;
      break;
    }
    case AnalysisKind::kBest: {
      const auto analysis = analyze_heterogeneous(task.dag(), m);
      report.bound = frac_min(analysis.r_het, analysis.r_hom);
      report.scenario = analysis.scenario;
      break;
    }
  }
  report.schedulable = report.bound <= Frac(task.deadline());
  return report;
}

}  // namespace hedra::analysis
