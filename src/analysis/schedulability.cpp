#include "analysis/schedulability.h"

namespace hedra::analysis {

const char* to_string(AnalysisKind kind) noexcept {
  switch (kind) {
    case AnalysisKind::kHomogeneous:
      return "homogeneous";
    case AnalysisKind::kHeterogeneous:
      return "heterogeneous";
    case AnalysisKind::kBest:
      return "best";
    case AnalysisKind::kPlatform:
      return "platform";
  }
  return "?";
}

namespace {

/// Fills the platform-specific report fields from a full derivation: the
/// bound plus the accelerator class whose vol_d/n_d term is largest
/// (smallest device id tie-breaks; devices with no work never dominate).
void apply_platform_analysis(SchedulabilityReport& report,
                             const PlatformAnalysis& analysis) {
  report.bound = analysis.bound;
  for (const auto& term : analysis.devices) {
    if (term.volume > 0 && term.term > report.dominating_device_term) {
      report.dominating_device = term.device;
      report.dominating_device_term = term.term;
    }
  }
}

}  // namespace

SchedulabilityReport check_schedulability(const model::DagTask& task, int m,
                                          AnalysisKind kind) {
  SchedulabilityReport report;
  report.kind = kind;
  report.deadline = task.deadline();
  switch (kind) {
    case AnalysisKind::kHomogeneous:
      report.bound = rta_homogeneous(task.dag(), m);
      break;
    case AnalysisKind::kHeterogeneous: {
      const auto analysis = analyze_heterogeneous(task.dag(), m);
      report.bound = analysis.r_het;
      report.scenario = analysis.scenario;
      break;
    }
    case AnalysisKind::kBest: {
      const auto analysis = analyze_heterogeneous(task.dag(), m);
      report.bound = frac_min(analysis.r_het, analysis.r_hom);
      report.scenario = analysis.scenario;
      break;
    }
    case AnalysisKind::kPlatform: {
      const auto analysis =
          analyze_platform(task.dag(), model::platform_for(task.dag(), m));
      apply_platform_analysis(report, analysis);
      break;
    }
  }
  report.schedulable = report.bound <= Frac(task.deadline());
  return report;
}

SchedulabilityReport check_schedulability(const model::DagTask& task,
                                          const model::Platform& platform) {
  SchedulabilityReport report;
  report.kind = AnalysisKind::kPlatform;
  report.deadline = task.deadline();
  apply_platform_analysis(report, analyze_platform(task.dag(), platform));
  report.schedulable = report.bound <= Frac(task.deadline());
  return report;
}

}  // namespace hedra::analysis
