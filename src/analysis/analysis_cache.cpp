#include "analysis/analysis_cache.h"

#include <algorithm>
#include <utility>

#include "analysis/platform_rta.h"
#include "graph/algorithms.h"

namespace hedra::analysis {

const TransformResult& AnalysisCache::transform() {
  if (!transform_) transform_ = transform_for_offload(*dag_);
  return *transform_;
}

const graph::CriticalPathInfo& AnalysisCache::critical_path() {
  if (!cp_transformed_) cp_transformed_.emplace(transformed());
  return *cp_transformed_;
}

const std::vector<graph::NodeId>& AnalysisCache::topo_original() {
  if (!topo_original_) topo_original_ = graph::topological_order(*dag_);
  return *topo_original_;
}

const std::vector<graph::NodeId>& AnalysisCache::topo_transformed() {
  if (!topo_transformed_) {
    topo_transformed_ = graph::topological_order(transformed());
  }
  return *topo_transformed_;
}

const TheoremQuantities& AnalysisCache::quantities() {
  if (!quantities_) {
    // Inline `measure` against the cached CriticalPathInfo so the longest
    // -path pass over G' is shared with any other critical_path() user.
    const TransformResult& t = transform();
    const graph::CriticalPathInfo& info = critical_path();
    TheoremQuantities q{};
    q.len_trans = info.length();
    q.vol = t.transformed.volume();
    q.c_off = t.transformed.wcet(t.voff);
    q.len_gpar = graph::critical_path_length(t.gpar.dag);
    q.vol_gpar = t.gpar.dag.volume();
    q.voff_critical = info.on_critical_path(t.transformed, t.voff);
    quantities_ = q;
  }
  return *quantities_;
}

const PlatformQuantities& AnalysisCache::platform_quantities() {
  if (!platform_quantities_) {
    PlatformQuantities q;
    q.vol_host = dag_->volume_on(graph::kHostDevice);
    q.max_host_path = analysis::max_host_path(*dag_, topo_original());
    for (const auto device : dag_->device_ids()) {
      const graph::Time volume = dag_->volume_on(device);
      q.device_volumes.emplace_back(device, volume);
      q.device_volume_sum += volume;
    }
    platform_quantities_ = std::move(q);
  }
  return *platform_quantities_;
}

graph::Time AnalysisCache::len_original() {
  if (!len_original_) len_original_ = graph::critical_path_length(*dag_);
  return *len_original_;
}

Frac AnalysisCache::r_hom(int m) {
  // vol(G) = vol(G'), and using the original graph keeps r_hom usable
  // without forcing the transform.
  return rta_homogeneous(len_original(), dag_->volume(), m);
}

Frac AnalysisCache::r_hom_gpar(int m) {
  return analysis::r_hom_gpar(quantities(), m);
}

Scenario AnalysisCache::scenario(int m) {
  return classify(quantities(), m);
}

Frac AnalysisCache::r_het(int m) {
  const TheoremQuantities& q = quantities();
  return evaluate(q, classify(q, m), m);
}

Frac AnalysisCache::r_platform(int m) {
  const PlatformQuantities& q = platform_quantities();
  return evaluate_platform_bound(q.vol_host, q.device_volume_sum,
                                 q.max_host_path, m);
}

HetAnalysis AnalysisCache::assemble(int m) {
  const TheoremQuantities& q = quantities();
  HetAnalysis out;
  out.scenario = classify(q, m);
  out.r_het = evaluate(q, out.scenario, m);
  out.r_hom = r_hom(m);
  out.r_hom_gpar = r_hom_gpar(m);
  out.voff_on_critical_path = q.voff_critical;
  out.len_original = len_original();
  out.len_transformed = q.len_trans;
  out.volume = q.vol;
  out.len_gpar = q.len_gpar;
  out.vol_gpar = q.vol_gpar;
  out.c_off = q.c_off;
  return out;
}

HetAnalysis AnalysisCache::analyze(int m) & {
  HetAnalysis out = assemble(m);
  out.transform = transform();
  return out;
}

HetAnalysis AnalysisCache::analyze(int m) && {
  HetAnalysis out = assemble(m);
  out.transform = *std::move(transform_);
  transform_.reset();
  return out;
}

}  // namespace hedra::analysis
