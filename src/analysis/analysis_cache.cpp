#include "analysis/analysis_cache.h"

#include <algorithm>
#include <utility>

#include "analysis/batch_kernels.h"
#include "analysis/platform_rta.h"
#include "graph/algorithms.h"

namespace hedra::analysis {

const Dag& AnalysisCache::original() {
  if (dag_ == nullptr) {
    materialized_ = batch_->materialize(batch_index_);
    dag_ = &*materialized_;
  }
  return *dag_;
}

const TransformResult& AnalysisCache::transform() {
  if (!transform_) transform_ = transform_for_offload(original());
  return *transform_;
}

const graph::FlatDag& AnalysisCache::flat() {
  if (!flat_) flat_.emplace(original());
  return *flat_;
}

graph::FlatView AnalysisCache::flat_view() {
  if (batch_ != nullptr) return view_;
  return flat().view();
}

const graph::FlatDag& AnalysisCache::flat_transformed() {
  if (!flat_transformed_) flat_transformed_.emplace(transformed());
  return *flat_transformed_;
}

const graph::CriticalPathInfo& AnalysisCache::critical_path() {
  if (!cp_transformed_) {
    // Reuse the CSR snapshot when a sim call site already paid for it; the
    // analysis-only sweeps (fig6/8/9) walk τ' exactly once, so forcing a
    // snapshot for them would cost more than it saves.
    if (flat_transformed_) {
      cp_transformed_.emplace(*flat_transformed_);
    } else {
      cp_transformed_.emplace(transformed());
    }
  }
  return *cp_transformed_;
}

const std::vector<graph::NodeId>& AnalysisCache::topo_original() {
  return flat().topological_order();
}

const std::vector<graph::NodeId>& AnalysisCache::topo_transformed() {
  return flat_transformed().topological_order();
}

const TheoremQuantities& AnalysisCache::quantities() {
  if (!quantities_) {
    // Inline `measure` against the cached CriticalPathInfo so the longest
    // -path pass over G' is shared with any other critical_path() user.
    const TransformResult& t = transform();
    const graph::CriticalPathInfo& info = critical_path();
    TheoremQuantities q{};
    q.len_trans = info.length();
    q.vol = t.transformed.volume();
    q.c_off = t.transformed.wcet(t.voff);
    q.len_gpar = graph::critical_path_length(t.gpar.dag);
    q.vol_gpar = t.gpar.dag.volume();
    q.voff_critical = info.on_critical_path(t.transformed, t.voff);
    quantities_ = q;
  }
  return *quantities_;
}

const PlatformQuantities& AnalysisCache::platform_quantities() {
  if (!platform_quantities_) {
    const graph::FlatView f = flat_view();
    PlatformQuantities q;
    // Volumes via the dispatched batch kernel (SIMD masked accumulation on
    // AVX2 hosts), counts in one scalar sweep over the same device array.
    std::vector<graph::Time> volume(f.max_device() + 1, 0);
    std::vector<std::size_t> count(f.max_device() + 1, 0);
    accumulate_device_volumes(f.wcets(), f.devices(), volume);
    for (const graph::DeviceId d : f.devices()) ++count[d];
    q.vol_host = volume[graph::kHostDevice];
    q.max_host_path = analysis::max_host_path(f);
    for (graph::DeviceId d = 1; d <= f.max_device(); ++d) {
      if (count[d] == 0) continue;
      q.device_volumes.emplace_back(d, volume[d]);
      q.device_volume_sum += volume[d];
    }
    platform_quantities_ = std::move(q);
  }
  return *platform_quantities_;
}

graph::Time AnalysisCache::len_original() {
  if (!len_original_) {
    // Reuse the CSR data when already on hand — the arena view of a
    // batch-backed cache, or a snapshot another quantity built; the
    // pure-Theorem-1 path (fig6/8/9) never walks the original graph again,
    // so it should not pay for materialising one.
    if (batch_ != nullptr) {
      len_original_ = graph::critical_path_length(view_);
    } else {
      len_original_ = flat_ ? graph::critical_path_length(*flat_)
                            : graph::critical_path_length(*dag_);
    }
  }
  return *len_original_;
}

Frac AnalysisCache::r_hom(int m) {
  // vol(G) = vol(G'), and using the original graph keeps r_hom usable
  // without forcing the transform.
  if (!vol_original_) {
    if (batch_ != nullptr) {
      graph::Time vol = 0;
      for (const graph::Time c : view_.wcets()) vol += c;
      vol_original_ = vol;
    } else {
      vol_original_ = dag_->volume();
    }
  }
  return rta_homogeneous(len_original(), *vol_original_, m);
}

Frac AnalysisCache::r_hom_gpar(int m) {
  return analysis::r_hom_gpar(quantities(), m);
}

Scenario AnalysisCache::scenario(int m) {
  return classify(quantities(), m);
}

Frac AnalysisCache::r_het(int m) {
  const TheoremQuantities& q = quantities();
  return evaluate(q, classify(q, m), m);
}

Frac AnalysisCache::r_platform(int m) {
  const PlatformQuantities& q = platform_quantities();
  return evaluate_platform_bound(q.vol_host, q.device_volume_sum,
                                 q.max_host_path, m);
}

Frac AnalysisCache::r_platform(int m, std::span<const int> device_units) {
  const bool single_unit =
      std::all_of(device_units.begin(), device_units.end(),
                  [](int units) { return units == 1; });
  if (single_unit) return r_platform(m);

  const PlatformQuantities& q = platform_quantities();
  const ChainWeighting weighting{m, device_units, {}};
  Frac device_term;
  for (const auto& [device, volume] : q.device_volumes) {
    const int units = weighting.units_of(device);
    HEDRA_REQUIRE(units >= 1, "every device class needs >= 1 execution unit");
    device_term += Frac(volume, units);
  }
  return Frac(q.vol_host, m) + device_term +
         analysis::max_host_path(flat_view(), weighting);
}

Frac AnalysisCache::r_platform(int m, std::span<const int> device_units,
                               std::span<const Frac> device_speedup) {
  const bool unit_speed =
      std::all_of(device_speedup.begin(), device_speedup.end(),
                  [](const Frac& s) { return s == Frac(1); });
  if (unit_speed) return r_platform(m, device_units);

  const PlatformQuantities& q = platform_quantities();
  const ChainWeighting weighting{m, device_units, device_speedup};
  Frac device_term;
  for (const auto& [device, volume] : q.device_volumes) {
    const int units = weighting.units_of(device);
    HEDRA_REQUIRE(units >= 1, "every device class needs >= 1 execution unit");
    const Frac speedup = weighting.speedup_of(device);
    HEDRA_REQUIRE(speedup > Frac(0),
                  "every device speedup must be strictly positive");
    device_term += Frac(volume, units) / speedup;
  }
  return Frac(q.vol_host, m) + device_term +
         analysis::max_host_path(flat_view(), weighting);
}

Frac AnalysisCache::r_platform(const model::Platform& platform) {
  platform.validate();
  {
    const auto issues = model::check_supports(platform, original());
    HEDRA_REQUIRE(issues.empty(),
                  "platform does not support the DAG: " + issues.front());
  }
  std::vector<int> units(static_cast<std::size_t>(platform.num_devices()));
  std::vector<Frac> speedups(units.size(), Frac(1));
  for (std::size_t i = 0; i < units.size(); ++i) {
    const auto device = static_cast<graph::DeviceId>(i + 1);
    units[i] = platform.units_of(device);
    speedups[i] = platform.speedup_of(device);
  }
  return r_platform(platform.cores, units, speedups);
}

HetAnalysis AnalysisCache::assemble(int m) {
  const TheoremQuantities& q = quantities();
  HetAnalysis out;
  out.scenario = classify(q, m);
  out.r_het = evaluate(q, out.scenario, m);
  out.r_hom = r_hom(m);
  out.r_hom_gpar = r_hom_gpar(m);
  out.voff_on_critical_path = q.voff_critical;
  out.len_original = len_original();
  out.len_transformed = q.len_trans;
  out.volume = q.vol;
  out.len_gpar = q.len_gpar;
  out.vol_gpar = q.vol_gpar;
  out.c_off = q.c_off;
  return out;
}

HetAnalysis AnalysisCache::analyze(int m) & {
  HetAnalysis out = assemble(m);
  out.transform = transform();
  return out;
}

HetAnalysis AnalysisCache::analyze(int m) && {
  HetAnalysis out = assemble(m);
  out.transform = *std::move(transform_);
  transform_.reset();
  return out;
}

}  // namespace hedra::analysis
