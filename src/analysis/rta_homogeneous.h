#pragma once

/// \file rta_homogeneous.h
/// The homogeneous response-time bound the paper starts from (§3.1, Eq. 1),
/// due to [19]:
///
///     R_hom(τ) = len(G) + (vol(G) − len(G)) / m
///
/// valid for any work-conserving scheduler on m identical cores.  The factor
/// (vol − len)/m upper-bounds the *self-interference*: the task's own
/// workload delaying its critical path.  Results are exact rationals.

#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::analysis {

using graph::Dag;
using graph::Time;

/// Eq. 1 from precomputed len/vol.  Requires m >= 1 and vol >= len >= 0.
[[nodiscard]] Frac rta_homogeneous(Time len, Time vol, int m);

/// Eq. 1 for a DAG (len/vol computed internally).  An empty DAG yields 0,
/// which makes R_hom(G_par) well-defined when v_off has no parallel nodes.
[[nodiscard]] Frac rta_homogeneous(const Dag& dag, int m);

}  // namespace hedra::analysis
