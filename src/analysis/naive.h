#pragma once

/// \file naive.h
/// The *unsound* bound discussed in §3.2 (Figure 1(b)): since v_off does not
/// occupy a host core, one might be tempted to subtract its contribution
/// from the self-interference factor of Eq. 1 directly on the original DAG:
///
///     R_naive(τ) = len(G) + (vol(G) − len(G) − C_off) / m
///
/// The paper shows this is NOT a trustworthy upper bound: nothing forces the
/// host to run anything while v_off executes, so the schedule of Figure 1(c)
/// reaches response time 12 while R_naive = 11.  We keep the bound in the
/// library (clearly marked) because the running-example test and the
/// `paper_figures` example demonstrate the unsoundness — which is the whole
/// motivation for the transformation of §3.4.

#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// UNSOUND — do not use for schedulability verification.  See file comment.
[[nodiscard]] Frac rta_naive_subtraction(const graph::Dag& dag, int m);

}  // namespace hedra::analysis
