#include "analysis/multi_offload.h"

#include <algorithm>
#include <vector>

#include "graph/algorithms.h"

namespace hedra::analysis {

Frac rta_multi_offload(const graph::Dag& dag, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(dag.num_nodes() > 0, "empty graph");

  // Weighted longest path: host nodes weigh C_v·(m−1), offload nodes 0;
  // divide by m at the end to stay in integer arithmetic.
  const auto order = graph::topological_order(dag);
  std::vector<graph::Time> best(dag.num_nodes(), 0);
  graph::Time max_weighted = 0;
  for (const auto v : order) {
    graph::Time incoming = 0;
    for (const auto p : dag.predecessors(v)) {
      incoming = std::max(incoming, best[p]);
    }
    const graph::Time weight = dag.kind(v) == graph::NodeKind::kOffload
                                   ? 0
                                   : dag.wcet(v) * (m - 1);
    best[v] = incoming + weight;
    max_weighted = std::max(max_weighted, best[v]);
  }

  graph::Time vol_host = 0;
  graph::Time vol_off = 0;
  for (graph::NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.kind(v) == graph::NodeKind::kOffload) vol_off += dag.wcet(v);
    else vol_host += dag.wcet(v);
  }

  return Frac(vol_host, m) + Frac(vol_off) + Frac(max_weighted, m);
}

}  // namespace hedra::analysis
