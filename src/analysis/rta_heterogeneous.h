#pragma once

/// \file rta_heterogeneous.h
/// The paper's contribution: response-time analysis for heterogeneous DAG
/// tasks (§4, Theorem 1), computed on the transformed DAG τ' in which
/// v_sync guarantees that G_par and v_off begin execution simultaneously.
///
/// Three execution scenarios (all bounds exact rationals):
///
///   S1   — v_off not on the critical path of G':
///          R_het = len(G') + (vol(G') − len(G') − C_off) / m          (Eq. 2)
///   S2.1 — v_off critical and C_off ≥ R_hom(G_par):
///          R_het = len(G') + (vol(G') − len(G') − vol(G_par)) / m     (Eq. 3)
///   S2.2 — v_off critical and C_off ≤ R_hom(G_par):
///          R_het = len(G') − C_off + len(G_par)
///                  + (vol(G') − len(G') − len(G_par)) / m             (Eq. 4)
///
/// S2.1 and S2.2 coincide at C_off = R_hom(G_par); we classify the tie as
/// S2.1 (the equality is covered by a regression test).  Classification uses
/// exact rational comparison, so there is no floating-point boundary noise.

#include "analysis/rta_homogeneous.h"
#include "analysis/transform.h"
#include "graph/dag.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// Which case of Theorem 1 applied.
enum class Scenario {
  kS1,   ///< v_off not on the critical path of G'
  kS21,  ///< v_off critical, C_off >= R_hom(G_par)
  kS22,  ///< v_off critical, C_off <  R_hom(G_par)
};

[[nodiscard]] const char* to_string(Scenario s) noexcept;

/// Full output of the heterogeneous analysis.
struct HetAnalysis {
  Frac r_het;                ///< Theorem 1 bound on τ'
  Frac r_hom;                ///< Eq. 1 baseline on the ORIGINAL τ
  Frac r_hom_gpar;           ///< R_hom(G_par), the scenario discriminator
  Scenario scenario = Scenario::kS1;
  bool voff_on_critical_path = false;

  // Quantities entering the formulas (all on integer ticks).
  graph::Time len_original = 0;   ///< len(G)
  graph::Time len_transformed = 0;///< len(G')
  graph::Time volume = 0;         ///< vol(G) = vol(G')
  graph::Time len_gpar = 0;       ///< len(G_par)
  graph::Time vol_gpar = 0;       ///< vol(G_par)
  graph::Time c_off = 0;          ///< C_off

  TransformResult transform;      ///< the τ ⇒ τ' rewriting
};

/// The m-independent measurements Theorem 1 consumes: one pass over G',
/// G_par and v_off.  Classification and evaluation are pure arithmetic on
/// these, so a multi-m sweep measures once (see analysis/analysis_cache.h).
struct TheoremQuantities {
  graph::Time len_trans = 0;  ///< len(G')
  graph::Time vol = 0;        ///< vol(G) = vol(G')
  graph::Time c_off = 0;      ///< C_off
  graph::Time len_gpar = 0;   ///< len(G_par)
  graph::Time vol_gpar = 0;   ///< vol(G_par)
  bool voff_critical = false; ///< v_off on a critical path of G'?
};

/// Measures the quantities (the only graph walks of the analysis).
[[nodiscard]] TheoremQuantities measure(const TransformResult& transform);

/// R_hom(G_par) from the measured quantities (Eq. 1 arithmetic).
[[nodiscard]] Frac r_hom_gpar(const TheoremQuantities& q, int m);

/// Scenario decision from measured quantities (exact rational comparison).
[[nodiscard]] Scenario classify(const TheoremQuantities& q, int m);

/// Theorem 1 under a given scenario from measured quantities.
[[nodiscard]] Frac evaluate(const TheoremQuantities& q, Scenario scenario,
                            int m);

/// Applies Theorem 1 to an already-transformed DAG.
[[nodiscard]] Frac rta_heterogeneous(const TransformResult& transform, int m);

/// Classifies the scenario for an already-transformed DAG.
[[nodiscard]] Scenario classify_scenario(const TransformResult& transform,
                                         int m);

/// One-call pipeline: validate, transform (Algorithm 1), classify, and
/// evaluate both R_het (Theorem 1) and the R_hom baseline.
[[nodiscard]] HetAnalysis analyze_heterogeneous(const Dag& dag, int m);

/// min(R_hom(τ), R_het(τ')): a system integrator can always choose *not* to
/// transform, so the better of the two bounds is itself a sound bound.
[[nodiscard]] Frac best_bound(const Dag& dag, int m);

/// Human-readable, term-by-term derivation of an analysis result: the
/// measured DAG quantities, the scenario decision, the equation applied and
/// each of its terms.  Meant for tooling output (see examples/dag_tool) and
/// for certification evidence trails.
[[nodiscard]] std::string explain(const HetAnalysis& analysis, int m);

}  // namespace hedra::analysis
