#pragma once

/// \file analysis_cache.h
/// Per-DAG memoisation for the experiment engine.
///
/// Every figure of §5 evaluates the *same* DAG under several core counts
/// m ∈ {2, 4, 8, 16}.  Almost everything Theorem 1 consumes is
/// m-independent — the τ ⇒ τ' transformation (Algorithm 1), the critical
/// paths of G, G' and G_par, the topological orders, vol and C_off — and
/// only the final scenario classification and bound are per-m arithmetic on
/// those quantities.  AnalysisCache computes each graph walk exactly once,
/// lazily, and serves all m values from the cached quantities; a sweep over
/// four core counts therefore pays for one transform and one set of
/// longest-path passes instead of four.
///
/// An instance references (does not copy) the DAG it analyses and is meant
/// for single-threaded use; the experiment runner builds one cache per DAG
/// inside each worker task.

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "analysis/rta_heterogeneous.h"
#include "analysis/transform.h"
#include "graph/critical_path.h"
#include "graph/dag.h"
#include "graph/flat_batch.h"
#include "graph/flat_dag.h"
#include "model/platform.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// The m-independent quantities of the K-device platform bound
/// (analysis/platform_rta.h), measured once on the ORIGINAL graph: host
/// volume, per-device volumes and the maximum host-weighted path.
struct PlatformQuantities {
  graph::Time vol_host = 0;
  graph::Time max_host_path = 0;
  graph::Time device_volume_sum = 0;  ///< Σ_d vol_d
  /// (device id, vol_d) ascending by device id; one entry per accelerator
  /// device present in the graph.
  std::vector<std::pair<graph::DeviceId, graph::Time>> device_volumes;
};

class AnalysisCache {
 public:
  /// Binds to `dag`, which must outlive the cache.  No work happens here;
  /// every quantity is computed on first use.
  explicit AnalysisCache(const Dag& dag) : dag_(&dag) {}

  /// Binding to a temporary would dangle immediately.
  explicit AnalysisCache(Dag&&) = delete;

  /// Binds to DAG `index` of an arena batch (which must outlive the cache).
  /// The platform-bound paths (flat_view, platform_quantities, r_platform)
  /// then run straight over the arena with no Dag in sight; anything that
  /// genuinely needs a Dag — the §3.4 transform, labels, r_hom's
  /// Dag::volume — materialises one lazily, exactly once, via original().
  AnalysisCache(const graph::FlatDagBatch& batch, std::size_t index)
      : batch_(&batch), batch_index_(index), view_(batch.view(index)) {}

  /// The analysed Dag.  For an arena-backed cache the first call
  /// materialises it from the batch (field-identical to the legacy
  /// pipeline's object, labels included).
  [[nodiscard]] const Dag& original();

  /// CSR snapshot of the ORIGINAL graph, built once on first use.  Every
  /// graph walk the cache performs on τ runs over this snapshot, and the
  /// simulation call sites share it so a 5-policy × 4-m sweep snapshots the
  /// DAG once instead of twenty times.  Arena-backed caches materialise the
  /// Dag first; hot paths should prefer flat_view(), which never does.
  [[nodiscard]] const graph::FlatDag& flat();

  /// CSR view of the ORIGINAL graph: the arena slice for a batch-backed
  /// cache (no materialisation, no copy), flat().view() otherwise.
  [[nodiscard]] graph::FlatView flat_view();

  /// CSR snapshot of the transformed graph τ' (forces the transform).
  [[nodiscard]] const graph::FlatDag& flat_transformed();

  /// Algorithm 1 (validates the model preconditions on first call).
  [[nodiscard]] const TransformResult& transform();

  /// G' = transform().transformed.
  [[nodiscard]] const Dag& transformed() { return transform().transformed; }

  /// Longest-path data of G'.
  [[nodiscard]] const graph::CriticalPathInfo& critical_path();

  /// Deterministic topological orders (Kahn, id tie-breaks).  Served from
  /// the CSR snapshots, so the first call FORCES the corresponding
  /// snapshot; callers that only ever need an order should call
  /// graph::topological_order directly.
  [[nodiscard]] const std::vector<graph::NodeId>& topo_original();
  [[nodiscard]] const std::vector<graph::NodeId>& topo_transformed();

  /// The m-independent quantities of Theorem 1, measured once.
  [[nodiscard]] const TheoremQuantities& quantities();

  [[nodiscard]] graph::Time len_original();
  [[nodiscard]] graph::Time len_transformed() { return quantities().len_trans; }
  [[nodiscard]] graph::Time volume() { return quantities().vol; }
  [[nodiscard]] graph::Time c_off() { return quantities().c_off; }
  [[nodiscard]] bool voff_on_critical_path() {
    return quantities().voff_critical;
  }

  /// Host/per-device volumes and the max host-weighted path of the ORIGINAL
  /// graph, measured once.  These feed r_platform and never force the
  /// (single-offload-only) transform, so the cache works on multi-device
  /// DAGs too.
  [[nodiscard]] const PlatformQuantities& platform_quantities();

  /// Per-m results, pure arithmetic over the cached quantities.
  [[nodiscard]] Frac r_hom(int m);       ///< Eq. 1 on the original τ
  [[nodiscard]] Frac r_hom_gpar(int m);  ///< the scenario discriminator
  [[nodiscard]] Scenario scenario(int m);
  [[nodiscard]] Frac r_het(int m);       ///< Theorem 1 on τ'
  [[nodiscard]] Frac r_platform(int m);  ///< K-device chain bound on τ

  /// The multiplicity generalisation: n_d execution units per accelerator
  /// class (`device_units[d−1]`; devices beyond the span have one unit).
  /// All-ones spans delegate to the cached single-unit arithmetic above;
  /// otherwise the per-device volumes come from the cached
  /// PlatformQuantities and only the weighted chain walk (which depends on
  /// m and the unit vector) runs per call, over the CSR snapshot.
  [[nodiscard]] Frac r_platform(int m, std::span<const int> device_units);

  /// Heterogeneous WCET scaling on top of the multiplicity bound: device d
  /// runs nominal WCETs at speedup s_d (`device_speedup[d−1]`; devices
  /// beyond the span run at unit speed), so its device term is
  /// vol_d/(n_d·s_d) and its chain weights scale by 1/s_d.  An all-ones
  /// speedup span delegates to the unscaled overloads above (exact rational
  /// equality).
  [[nodiscard]] Frac r_platform(int m, std::span<const int> device_units,
                                std::span<const Frac> device_speedup);

  /// Same bound from a full Platform (must support the DAG's device ids;
  /// honours device_units and device_speedup).
  [[nodiscard]] Frac r_platform(const model::Platform& platform);

  /// Assembles the full HetAnalysis record (identical field-for-field to
  /// analyze_heterogeneous, which delegates here).  On an lvalue cache the
  /// cached transform is copied into the result; a single-shot rvalue cache
  /// moves it out instead, so `AnalysisCache(dag).analyze(m)` pays no copy.
  [[nodiscard]] HetAnalysis analyze(int m) &;
  [[nodiscard]] HetAnalysis analyze(int m) &&;

 private:
  const Dag* dag_ = nullptr;
  const graph::FlatDagBatch* batch_ = nullptr;
  std::size_t batch_index_ = 0;
  graph::FlatView view_;              ///< arena slice (batch-backed only)
  std::optional<Dag> materialized_;   ///< lazy Dag of a batch-backed cache
  std::optional<TransformResult> transform_;
  std::optional<graph::FlatDag> flat_;
  std::optional<graph::FlatDag> flat_transformed_;
  std::optional<graph::CriticalPathInfo> cp_transformed_;
  std::optional<TheoremQuantities> quantities_;
  std::optional<PlatformQuantities> platform_quantities_;
  std::optional<graph::Time> len_original_;
  std::optional<graph::Time> vol_original_;

  /// analyze() minus the transform field, shared by both overloads.
  [[nodiscard]] HetAnalysis assemble(int m);
};

}  // namespace hedra::analysis
