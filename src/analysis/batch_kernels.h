#pragma once

/// \file batch_kernels.h
/// Vectorized analysis kernels over arena batches.
///
/// The K-device platform bound is, per DAG, two data-parallel reductions
/// over flat arrays — per-device volume sums over `wcet`/`device`, and a
/// longest-path relaxation over the CSR in topological order — followed by
/// per-m rational arithmetic.  Over a `FlatDagBatch` arena these run as
/// branch-light loops on contiguous memory with scratch shared across the
/// whole batch, and `analyze_platform_batch` packages the result for the
/// sweep drivers (fig10/fig11/fig12, taskset admission, B&B seeding).
///
/// The volume reduction additionally has an explicit AVX2 path (masked
/// 4×int64 accumulation per device class) selected once at runtime via
/// CPU-feature dispatch; `batch_kernel_backend()` names the active backend
/// and the scalar reference implementation stays callable so tests can pin
/// SIMD == scalar on every input.  Every result is EXACTLY equal — same
/// normalised rationals — to the per-DAG `AnalysisCache::r_platform` path
/// (regression-pinned in tests/analysis/batch_kernels_test.cpp).

#include <span>
#include <vector>

#include "analysis/analysis_cache.h"
#include "graph/flat_batch.h"
#include "util/fraction.h"

namespace hedra::analysis {

/// The volume-kernel backend selected at process start: "avx2" or "scalar".
[[nodiscard]] const char* batch_kernel_backend() noexcept;

/// Adds Σ wcet[i] over nodes placed on device d into out[d], for every
/// d <= out.size()-1.  `wcets` and `devices` are one DAG's (or any
/// contiguous) attribute slice; entries of `out` are accumulated into, not
/// overwritten.  Dispatches to the AVX2 path when available.
void accumulate_device_volumes(std::span<const graph::Time> wcets,
                               std::span<const graph::DeviceId> devices,
                               std::span<graph::Time> out);

/// Scalar reference implementation of the same kernel (the dispatch target
/// on non-AVX2 hosts; exposed so tests can compare backends).
void accumulate_device_volumes_scalar(std::span<const graph::Time> wcets,
                                      std::span<const graph::DeviceId> devices,
                                      std::span<graph::Time> out);

/// Per-DAG m-independent platform quantities for a whole batch: per-device
/// volumes via the vectorized kernel, max host path via the batched
/// relaxation (scratch shared across DAGs).  Element i exactly equals
/// AnalysisCache(batch, i).platform_quantities().
[[nodiscard]] std::vector<PlatformQuantities> platform_quantities_batch(
    const graph::FlatDagBatch& batch);

/// The same quantities for ONE view (exactly equal to a view-backed
/// AnalysisCache's platform_quantities()).  For callers that hold flat
/// graphs outside a batch — e.g. arena-backed taskset tasks.
[[nodiscard]] PlatformQuantities platform_quantities_view(
    const graph::FlatView& view);

/// The K-device chain bound R(m) for one view given its precomputed
/// quantities — exactly AnalysisCache::r_platform(m, units, speedups),
/// including its single-unit / unit-speed fast paths.  Empty spans default
/// to one unit / unit speed per class.  The quantities MUST belong to
/// `view`.
[[nodiscard]] Frac platform_bound(const PlatformQuantities& quantities,
                                  const graph::FlatView& view, int m,
                                  std::span<const int> device_units,
                                  std::span<const Frac> device_speedup);

/// The K-device chain bound for every (DAG, core-count) pair of a batch.
struct PlatformBatchAnalysis {
  std::vector<PlatformQuantities> quantities;  ///< one per DAG
  std::vector<Frac> bounds;                    ///< DAG-major, cores minor
  std::size_t num_cores = 0;

  [[nodiscard]] const Frac& bound(std::size_t dag, std::size_t mi) const {
    return bounds[dag * num_cores + mi];
  }
};

/// Single-unit platforms (one execution unit per accelerator class — the
/// paper's model): bounds[i][mi] == AnalysisCache(batch, i).r_platform(
/// cores[mi]) exactly.
[[nodiscard]] PlatformBatchAnalysis analyze_platform_batch(
    const graph::FlatDagBatch& batch, std::span<const int> cores);

/// Multiplicity + heterogeneous-speed generalisation: `device_units` /
/// `device_speedup` indexed d−1 as in AnalysisCache::r_platform, empty
/// spans defaulting to one unit / unit speed.  Exactly equal to the
/// per-DAG cache results for every (DAG, m).
[[nodiscard]] PlatformBatchAnalysis analyze_platform_batch(
    const graph::FlatDagBatch& batch, std::span<const int> cores,
    std::span<const int> device_units, std::span<const Frac> device_speedup);

}  // namespace hedra::analysis
