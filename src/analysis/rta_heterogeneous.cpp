#include "analysis/rta_heterogeneous.h"

#include <sstream>

#include "graph/critical_path.h"
#include "util/strings.h"

namespace hedra::analysis {

const char* to_string(Scenario s) noexcept {
  switch (s) {
    case Scenario::kS1:
      return "S1";
    case Scenario::kS21:
      return "S2.1";
    case Scenario::kS22:
      return "S2.2";
  }
  return "?";
}

namespace {

/// Quantities shared by classification and evaluation.
struct TheoremInputs {
  graph::Time len_trans;
  graph::Time vol;
  graph::Time c_off;
  graph::Time len_gpar;
  graph::Time vol_gpar;
  bool voff_critical;
  Frac r_hom_gpar;
};

TheoremInputs gather(const TransformResult& transform, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  const Dag& g = transform.transformed;
  const graph::CriticalPathInfo info(g);
  TheoremInputs in{};
  in.len_trans = info.length();
  in.vol = g.volume();
  in.c_off = g.wcet(transform.voff);
  in.len_gpar = graph::critical_path_length(transform.gpar.dag);
  in.vol_gpar = transform.gpar.dag.volume();
  in.voff_critical = info.on_critical_path(g, transform.voff);
  in.r_hom_gpar = rta_homogeneous(transform.gpar.dag, m);
  return in;
}

Scenario classify(const TheoremInputs& in) {
  if (!in.voff_critical) return Scenario::kS1;
  // Exact rational comparison; the C_off == R_hom(G_par) tie goes to S2.1
  // (Eqs. 3 and 4 agree there, see the equivalence test).
  return Frac(in.c_off) >= in.r_hom_gpar ? Scenario::kS21 : Scenario::kS22;
}

Frac evaluate(const TheoremInputs& in, Scenario scenario, int m) {
  const Frac len(in.len_trans);
  switch (scenario) {
    case Scenario::kS1:
      // Eq. 2: v_off's workload can never delay the critical path, because
      // len(G_par) > C_off guarantees the host outlasts the accelerator.
      return len + Frac(in.vol - in.len_trans - in.c_off, m);
    case Scenario::kS21:
      // Eq. 3: the accelerator outlasts G_par, so all of vol(G_par) runs
      // strictly in parallel with v_off and generates no interference.
      return len + Frac(in.vol - in.len_trans - in.vol_gpar, m);
    case Scenario::kS22:
      // Eq. 4: v_off is critical but finishes before G_par can; replace
      // C_off by R_hom(G_par) on the critical path and drop vol(G_par) from
      // the interference term (it would otherwise be counted twice).
      return len - Frac(in.c_off) + Frac(in.len_gpar) +
             Frac(in.vol - in.len_trans - in.len_gpar, m);
  }
  throw InternalError("unreachable scenario");
}

}  // namespace

Frac rta_heterogeneous(const TransformResult& transform, int m) {
  const auto in = gather(transform, m);
  return evaluate(in, classify(in), m);
}

Scenario classify_scenario(const TransformResult& transform, int m) {
  return classify(gather(transform, m));
}

HetAnalysis analyze_heterogeneous(const Dag& dag, int m) {
  HetAnalysis out;
  out.transform = transform_for_offload(dag);
  const auto in = gather(out.transform, m);
  out.scenario = classify(in);
  out.r_het = evaluate(in, out.scenario, m);
  out.r_hom = rta_homogeneous(dag, m);
  out.r_hom_gpar = in.r_hom_gpar;
  out.voff_on_critical_path = in.voff_critical;
  out.len_original = graph::critical_path_length(dag);
  out.len_transformed = in.len_trans;
  out.volume = in.vol;
  out.len_gpar = in.len_gpar;
  out.vol_gpar = in.vol_gpar;
  out.c_off = in.c_off;
  return out;
}

Frac best_bound(const Dag& dag, int m) {
  const auto analysis = analyze_heterogeneous(dag, m);
  return frac_min(analysis.r_het, analysis.r_hom);
}

std::string explain(const HetAnalysis& analysis, int m) {
  std::ostringstream os;
  os << "heterogeneous DAG analysis (m = " << m << " cores + 1 accelerator)\n"
     << "  measured:  len(G) = " << analysis.len_original
     << ", len(G') = " << analysis.len_transformed
     << ", vol = " << analysis.volume << ", C_off = " << analysis.c_off
     << "\n"
     << "  G_par:     |V| = " << analysis.transform.gpar.dag.num_nodes()
     << ", len = " << analysis.len_gpar << ", vol = " << analysis.vol_gpar
     << ", R_hom(G_par) = " << analysis.r_hom_gpar << "\n"
     << "  scenario:  v_off "
     << (analysis.voff_on_critical_path ? "on" : "not on")
     << " the critical path of G'";
  if (analysis.voff_on_critical_path) {
    os << "; C_off " << (Frac(analysis.c_off) >= analysis.r_hom_gpar ? ">=" : "<")
       << " R_hom(G_par)";
  }
  os << " -> " << to_string(analysis.scenario) << "\n";
  switch (analysis.scenario) {
    case Scenario::kS1:
      os << "  Eq. 2:     R_het = len(G') + (vol - len(G') - C_off)/m = "
         << analysis.len_transformed << " + ("
         << analysis.volume - analysis.len_transformed - analysis.c_off
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
    case Scenario::kS21:
      os << "  Eq. 3:     R_het = len(G') + (vol - len(G') - vol(G_par))/m = "
         << analysis.len_transformed << " + ("
         << analysis.volume - analysis.len_transformed - analysis.vol_gpar
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
    case Scenario::kS22:
      os << "  Eq. 4:     R_het = len(G') - C_off + len(G_par) + (vol - "
            "len(G') - len(G_par))/m = "
         << analysis.len_transformed << " - " << analysis.c_off << " + "
         << analysis.len_gpar << " + ("
         << analysis.volume - analysis.len_transformed - analysis.len_gpar
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
  }
  os << "  baseline:  R_hom (Eq. 1) = " << analysis.r_hom << "\n"
     << "  verdict:   R_het " << (analysis.r_het <= analysis.r_hom ? "<=" : ">")
     << " R_hom";
  if (analysis.r_hom != Frac(0)) {
    os << " ("
       << format_percent(100.0 * (analysis.r_hom.to_double() -
                                  analysis.r_het.to_double()) /
                             analysis.r_het.to_double(),
                         1)
       << " tighter)";
  }
  os << "\n";
  return os.str();
}

}  // namespace hedra::analysis
