#include "analysis/rta_heterogeneous.h"

#include <sstream>

#include "analysis/analysis_cache.h"
#include "graph/critical_path.h"
#include "util/strings.h"

namespace hedra::analysis {

const char* to_string(Scenario s) noexcept {
  switch (s) {
    case Scenario::kS1:
      return "S1";
    case Scenario::kS21:
      return "S2.1";
    case Scenario::kS22:
      return "S2.2";
  }
  return "?";
}

TheoremQuantities measure(const TransformResult& transform) {
  const Dag& g = transform.transformed;
  const graph::CriticalPathInfo info(g);
  TheoremQuantities q{};
  q.len_trans = info.length();
  q.vol = g.volume();
  q.c_off = g.wcet(transform.voff);
  q.len_gpar = graph::critical_path_length(transform.gpar.dag);
  q.vol_gpar = transform.gpar.dag.volume();
  q.voff_critical = info.on_critical_path(g, transform.voff);
  return q;
}

Frac r_hom_gpar(const TheoremQuantities& q, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  // Eq. 1 on the cached len/vol; an empty G_par yields 0, matching
  // rta_homogeneous on an empty DAG.
  return rta_homogeneous(q.len_gpar, q.vol_gpar, m);
}

Scenario classify(const TheoremQuantities& q, int m) {
  if (!q.voff_critical) return Scenario::kS1;
  // Exact rational comparison; the C_off == R_hom(G_par) tie goes to S2.1
  // (Eqs. 3 and 4 agree there, see the equivalence test).
  return Frac(q.c_off) >= r_hom_gpar(q, m) ? Scenario::kS21 : Scenario::kS22;
}

Frac evaluate(const TheoremQuantities& q, Scenario scenario, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  const Frac len(q.len_trans);
  switch (scenario) {
    case Scenario::kS1:
      // Eq. 2: v_off's workload can never delay the critical path, because
      // len(G_par) > C_off guarantees the host outlasts the accelerator.
      return len + Frac(q.vol - q.len_trans - q.c_off, m);
    case Scenario::kS21:
      // Eq. 3: the accelerator outlasts G_par, so all of vol(G_par) runs
      // strictly in parallel with v_off and generates no interference.
      return len + Frac(q.vol - q.len_trans - q.vol_gpar, m);
    case Scenario::kS22:
      // Eq. 4: v_off is critical but finishes before G_par can; replace
      // C_off by R_hom(G_par) on the critical path and drop vol(G_par) from
      // the interference term (it would otherwise be counted twice).
      return len - Frac(q.c_off) + Frac(q.len_gpar) +
             Frac(q.vol - q.len_trans - q.len_gpar, m);
  }
  throw InternalError("unreachable scenario");
}

Frac rta_heterogeneous(const TransformResult& transform, int m) {
  const auto q = measure(transform);
  return evaluate(q, classify(q, m), m);
}

Scenario classify_scenario(const TransformResult& transform, int m) {
  return classify(measure(transform), m);
}

HetAnalysis analyze_heterogeneous(const Dag& dag, int m) {
  return AnalysisCache(dag).analyze(m);
}

Frac best_bound(const Dag& dag, int m) {
  AnalysisCache cache(dag);
  return frac_min(cache.r_het(m), cache.r_hom(m));
}

std::string explain(const HetAnalysis& analysis, int m) {
  std::ostringstream os;
  os << "heterogeneous DAG analysis (m = " << m << " cores + 1 accelerator)\n"
     << "  measured:  len(G) = " << analysis.len_original
     << ", len(G') = " << analysis.len_transformed
     << ", vol = " << analysis.volume << ", C_off = " << analysis.c_off
     << "\n"
     << "  G_par:     |V| = " << analysis.transform.gpar.dag.num_nodes()
     << ", len = " << analysis.len_gpar << ", vol = " << analysis.vol_gpar
     << ", R_hom(G_par) = " << analysis.r_hom_gpar << "\n"
     << "  scenario:  v_off "
     << (analysis.voff_on_critical_path ? "on" : "not on")
     << " the critical path of G'";
  if (analysis.voff_on_critical_path) {
    os << "; C_off " << (Frac(analysis.c_off) >= analysis.r_hom_gpar ? ">=" : "<")
       << " R_hom(G_par)";
  }
  os << " -> " << to_string(analysis.scenario) << "\n";
  switch (analysis.scenario) {
    case Scenario::kS1:
      os << "  Eq. 2:     R_het = len(G') + (vol - len(G') - C_off)/m = "
         << analysis.len_transformed << " + ("
         << analysis.volume - analysis.len_transformed - analysis.c_off
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
    case Scenario::kS21:
      os << "  Eq. 3:     R_het = len(G') + (vol - len(G') - vol(G_par))/m = "
         << analysis.len_transformed << " + ("
         << analysis.volume - analysis.len_transformed - analysis.vol_gpar
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
    case Scenario::kS22:
      os << "  Eq. 4:     R_het = len(G') - C_off + len(G_par) + (vol - "
            "len(G') - len(G_par))/m = "
         << analysis.len_transformed << " - " << analysis.c_off << " + "
         << analysis.len_gpar << " + ("
         << analysis.volume - analysis.len_transformed - analysis.len_gpar
         << ")/" << m << " = " << analysis.r_het << "\n";
      break;
  }
  os << "  baseline:  R_hom (Eq. 1) = " << analysis.r_hom << "\n"
     << "  verdict:   R_het " << (analysis.r_het <= analysis.r_hom ? "<=" : ">")
     << " R_hom";
  if (analysis.r_hom != Frac(0)) {
    os << " ("
       << format_percent(100.0 * (analysis.r_hom.to_double() -
                                  analysis.r_het.to_double()) /
                             analysis.r_het.to_double(),
                         1)
       << " tighter)";
  }
  os << "\n";
  return os.str();
}

}  // namespace hedra::analysis
