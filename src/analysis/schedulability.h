#pragma once

/// \file schedulability.h
/// Schedulability verification: a task τ is schedulable on m cores (plus the
/// accelerator) if its response-time upper bound does not exceed its
/// relative deadline D (§3.1).

#include "analysis/rta_heterogeneous.h"
#include "model/task.h"

namespace hedra::analysis {

/// Which analysis produces the bound.
enum class AnalysisKind {
  kHomogeneous,    ///< Eq. 1 on the original DAG (baseline, [19])
  kHeterogeneous,  ///< Theorem 1 on the transformed DAG (this paper)
  kBest,           ///< min of the two (both are sound)
};

[[nodiscard]] const char* to_string(AnalysisKind kind) noexcept;

/// Outcome of a schedulability test.
struct SchedulabilityReport {
  AnalysisKind kind = AnalysisKind::kBest;
  Frac bound;              ///< response-time upper bound
  graph::Time deadline = 0;
  bool schedulable = false;
  /// Scenario of Theorem 1; meaningful for kHeterogeneous/kBest when the
  /// heterogeneous bound was evaluated.
  Scenario scenario = Scenario::kS1;
};

/// Verifies R(τ) <= D using the requested analysis.  For kHomogeneous the
/// offload node is treated as a host node, exactly as the paper's baseline
/// does.  Throws if the DAG violates the heterogeneous model preconditions
/// and a heterogeneous analysis is requested.
[[nodiscard]] SchedulabilityReport check_schedulability(
    const model::DagTask& task, int m, AnalysisKind kind = AnalysisKind::kBest);

}  // namespace hedra::analysis
