#pragma once

/// \file schedulability.h
/// Schedulability verification: a task τ is schedulable on m cores (plus the
/// accelerator) if its response-time upper bound does not exceed its
/// relative deadline D (§3.1).

#include "analysis/platform_rta.h"
#include "analysis/rta_heterogeneous.h"
#include "model/platform.h"
#include "model/task.h"

namespace hedra::analysis {

/// Which analysis produces the bound.
enum class AnalysisKind {
  kHomogeneous,    ///< Eq. 1 on the original DAG (baseline, [19])
  kHeterogeneous,  ///< Theorem 1 on the transformed DAG (this paper)
  kBest,           ///< min of the two (both are sound)
  kPlatform,       ///< K-device chain bound R_plat (analysis/platform_rta.h)
};

[[nodiscard]] const char* to_string(AnalysisKind kind) noexcept;

/// Outcome of a schedulability test.
struct SchedulabilityReport {
  AnalysisKind kind = AnalysisKind::kBest;
  Frac bound;              ///< response-time upper bound
  graph::Time deadline = 0;
  bool schedulable = false;
  /// Scenario of Theorem 1; meaningful for kHeterogeneous/kBest when the
  /// heterogeneous bound was evaluated.
  Scenario scenario = Scenario::kS1;
  /// kPlatform only: the accelerator class with the largest volume term
  /// vol_d/n_d (0 when no device term dominates any work, i.e. K = 0 or no
  /// offloaded volume), and that term's value — the placement knob to turn
  /// first when the task misses its deadline.
  graph::DeviceId dominating_device = 0;
  Frac dominating_device_term;
};

/// Verifies R(τ) <= D using the requested analysis.  For kHomogeneous the
/// offload node is treated as a host node, exactly as the paper's baseline
/// does; kPlatform infers the smallest supporting single-unit platform
/// (model::platform_for).  Throws if the DAG violates the heterogeneous
/// model preconditions and a heterogeneous analysis is requested.
[[nodiscard]] SchedulabilityReport check_schedulability(
    const model::DagTask& task, int m, AnalysisKind kind = AnalysisKind::kBest);

/// Platform-aware test: R_plat(τ, platform) <= D, with the dominating
/// device term reported.  The platform (cores + named multi-unit device
/// classes) must support every placement in the task's DAG.
[[nodiscard]] SchedulabilityReport check_schedulability(
    const model::DagTask& task, const model::Platform& platform);

}  // namespace hedra::analysis
