#include "analysis/naive.h"

#include "graph/critical_path.h"
#include "graph/validate.h"

namespace hedra::analysis {

Frac rta_naive_subtraction(const graph::Dag& dag, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  graph::throw_if_invalid(dag, graph::heterogeneous_rules());
  const graph::NodeId voff = *dag.offload_node();
  const graph::Time len = graph::critical_path_length(dag);
  const graph::Time vol = dag.volume();
  const graph::Time c_off = dag.wcet(voff);
  return Frac(len) + Frac(vol - len - c_off, m);
}

}  // namespace hedra::analysis
