#include "analysis/batch_kernels.h"

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "analysis/platform_rta.h"
#include "util/error.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HEDRA_BATCH_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace hedra::analysis {

namespace {

using graph::DeviceId;
using graph::NodeId;
using graph::Time;

void volumes_scalar(const Time* wcet, const DeviceId* device, std::size_t n,
                    Time* out, std::size_t num_devices) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t d = device[i];
    if (d < num_devices) out[d] += wcet[i];
  }
}

#if HEDRA_BATCH_KERNELS_X86
/// One masked-accumulation sweep per device class: widen 4 u16 device ids to
/// 4 i64 lanes, compare against the broadcast class id and AND the compare
/// mask (all-ones per matching lane) into the 4 wcet lanes before adding.
/// A DAG's wcets fit int64 sums by construction (vol(G) does), so the lane
/// adds cannot wrap.
__attribute__((target("avx2"))) void volumes_avx2(const Time* wcet,
                                                  const DeviceId* device,
                                                  std::size_t n, Time* out,
                                                  std::size_t num_devices) {
  for (std::size_t d = 0; d < num_devices; ++d) {
    const __m256i target = _mm256_set1_epi64x(static_cast<long long>(d));
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      std::uint64_t packed = 0;  // 4 contiguous u16 device ids
      std::memcpy(&packed, device + i, sizeof(packed));
      const __m256i dev64 =
          _mm256_cvtepu16_epi64(_mm_cvtsi64_si128(static_cast<long long>(packed)));
      const __m256i mask = _mm256_cmpeq_epi64(dev64, target);
      const __m256i w =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wcet + i));
      acc = _mm256_add_epi64(acc, _mm256_and_si256(w, mask));
    }
    alignas(32) Time lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    Time sum = lanes[0] + lanes[1] + lanes[2] + lanes[3];
    for (; i < n; ++i) {
      if (device[i] == d) sum += wcet[i];
    }
    out[d] += sum;
  }
}
#endif

using VolumesFn = void (*)(const Time*, const DeviceId*, std::size_t, Time*,
                           std::size_t);

struct Backend {
  VolumesFn fn;
  const char* name;
};

Backend resolve_backend() noexcept {
#if HEDRA_BATCH_KERNELS_X86
  if (__builtin_cpu_supports("avx2")) return {&volumes_avx2, "avx2"};
#endif
  return {&volumes_scalar, "scalar"};
}

const Backend kBackend = resolve_backend();

/// The host-weighted longest path over one arena view, relaxing into caller
/// -owned scratch (`up` is resized, not reallocated, across a batch).
Time max_host_path_into(const graph::FlatView& view, std::vector<Time>& up) {
  const std::size_t n = view.num_nodes();
  up.assign(n, 0);
  Time best_path = 0;
  for (const NodeId v : view.topological_order()) {
    Time best = 0;
    for (const NodeId p : view.predecessors(v)) best = std::max(best, up[p]);
    // Branch-light: a device node contributes 0, not a skipped iteration.
    const Time weight =
        view.device(v) == graph::kHostDevice ? view.wcet(v) : 0;
    up[v] = best + weight;
    best_path = std::max(best_path, up[v]);
  }
  return best_path;
}

/// PlatformQuantities for one view, volumes/counts/up being batch-shared
/// scratch.  Mirrors AnalysisCache::platform_quantities exactly (same
/// device ordering, same count>0 filter).
PlatformQuantities quantities_for(const graph::FlatView& view,
                                  std::vector<Time>& volumes,
                                  std::vector<std::size_t>& counts,
                                  std::vector<Time>& up) {
  const std::size_t num_devices =
      static_cast<std::size_t>(view.max_device()) + 1;
  volumes.assign(num_devices, 0);
  counts.assign(num_devices, 0);
  const std::span<const Time> wcets = view.wcets();
  const std::span<const DeviceId> devices = view.devices();
  kBackend.fn(wcets.data(), devices.data(), wcets.size(), volumes.data(),
              num_devices);
  for (const DeviceId d : devices) ++counts[d];

  PlatformQuantities q;
  q.vol_host = volumes[graph::kHostDevice];
  q.max_host_path = max_host_path_into(view, up);
  for (DeviceId d = 1; d < num_devices; ++d) {
    if (counts[d] == 0) continue;
    q.device_volumes.emplace_back(d, volumes[d]);
    q.device_volume_sum += volumes[d];
  }
  return q;
}

}  // namespace

const char* batch_kernel_backend() noexcept { return kBackend.name; }

void accumulate_device_volumes(std::span<const Time> wcets,
                               std::span<const DeviceId> devices,
                               std::span<Time> out) {
  HEDRA_REQUIRE(wcets.size() == devices.size(),
                "wcet/device spans must have equal length");
  kBackend.fn(wcets.data(), devices.data(), wcets.size(), out.data(),
              out.size());
}

void accumulate_device_volumes_scalar(std::span<const Time> wcets,
                                      std::span<const DeviceId> devices,
                                      std::span<Time> out) {
  HEDRA_REQUIRE(wcets.size() == devices.size(),
                "wcet/device spans must have equal length");
  volumes_scalar(wcets.data(), devices.data(), wcets.size(), out.data(),
                 out.size());
}

PlatformQuantities platform_quantities_view(const graph::FlatView& view) {
  // Per-thread scratch: this runs once per task per admission call on the
  // taskset hot path, where per-call allocation is measurable.
  thread_local std::vector<Time> volumes;
  thread_local std::vector<std::size_t> counts;
  thread_local std::vector<Time> up;
  return quantities_for(view, volumes, counts, up);
}

Frac platform_bound(const PlatformQuantities& quantities,
                    const graph::FlatView& view, int m,
                    std::span<const int> device_units,
                    std::span<const Frac> device_speedup) {
  // Mirror AnalysisCache::r_platform's branch structure exactly so the
  // returned rationals are bit-identical to the cache path.
  const bool single_unit =
      std::all_of(device_units.begin(), device_units.end(),
                  [](int units) { return units == 1; });
  const bool unit_speed =
      std::all_of(device_speedup.begin(), device_speedup.end(),
                  [](const Frac& s) { return s == Frac(1); });
  if (single_unit && unit_speed) {
    return evaluate_platform_bound(quantities.vol_host,
                                   quantities.device_volume_sum,
                                   quantities.max_host_path, m);
  }
  const ChainWeighting weighting{m, device_units,
                                 unit_speed ? std::span<const Frac>{}
                                            : device_speedup};
  Frac device_term;
  for (const auto& [device, volume] : quantities.device_volumes) {
    const int units = weighting.units_of(device);
    HEDRA_REQUIRE(units >= 1, "every device class needs >= 1 execution unit");
    if (unit_speed) {
      device_term += Frac(volume, units);
    } else {
      const Frac speedup = weighting.speedup_of(device);
      HEDRA_REQUIRE(speedup > Frac(0),
                    "every device speedup must be strictly positive");
      device_term += Frac(volume, units) / speedup;
    }
  }
  return Frac(quantities.vol_host, m) + device_term +
         analysis::max_host_path(view, weighting);
}

std::vector<PlatformQuantities> platform_quantities_batch(
    const graph::FlatDagBatch& batch) {
  std::vector<PlatformQuantities> out;
  out.reserve(batch.size());
  std::vector<Time> volumes;
  std::vector<std::size_t> counts;
  std::vector<Time> up;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    out.push_back(quantities_for(batch.view(i), volumes, counts, up));
  }
  return out;
}

PlatformBatchAnalysis analyze_platform_batch(const graph::FlatDagBatch& batch,
                                             std::span<const int> cores) {
  PlatformBatchAnalysis out;
  out.num_cores = cores.size();
  out.quantities = platform_quantities_batch(batch);
  out.bounds.reserve(batch.size() * cores.size());
  for (const PlatformQuantities& q : out.quantities) {
    for (const int m : cores) {
      out.bounds.push_back(evaluate_platform_bound(
          q.vol_host, q.device_volume_sum, q.max_host_path, m));
    }
  }
  return out;
}

PlatformBatchAnalysis analyze_platform_batch(
    const graph::FlatDagBatch& batch, std::span<const int> cores,
    std::span<const int> device_units, std::span<const Frac> device_speedup) {
  const bool single_unit =
      std::all_of(device_units.begin(), device_units.end(),
                  [](int units) { return units == 1; });
  const bool unit_speed =
      std::all_of(device_speedup.begin(), device_speedup.end(),
                  [](const Frac& s) { return s == Frac(1); });
  if (single_unit && unit_speed) return analyze_platform_batch(batch, cores);

  PlatformBatchAnalysis out;
  out.num_cores = cores.size();
  out.quantities = platform_quantities_batch(batch);
  out.bounds.reserve(batch.size() * cores.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PlatformQuantities& q = out.quantities[i];
    // The device term is m-independent; only the weighted walk reruns per m.
    Frac device_term;
    for (const auto& [device, volume] : q.device_volumes) {
      const ChainWeighting probe{1, device_units, device_speedup};
      const int units = probe.units_of(device);
      HEDRA_REQUIRE(units >= 1,
                    "every device class needs >= 1 execution unit");
      const Frac speedup = probe.speedup_of(device);
      HEDRA_REQUIRE(speedup > Frac(0),
                    "every device speedup must be strictly positive");
      device_term += Frac(volume, units) / speedup;
    }
    const graph::FlatView view = batch.view(i);
    for (const int m : cores) {
      const ChainWeighting weighting{m, device_units, device_speedup};
      out.bounds.push_back(Frac(q.vol_host, m) + device_term +
                           analysis::max_host_path(view, weighting));
    }
  }
  return out;
}

}  // namespace hedra::analysis
