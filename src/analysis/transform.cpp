#include "analysis/transform.h"

#include "graph/algorithms.h"
#include "graph/validate.h"
#include "util/bitset.h"

namespace hedra::analysis {

std::vector<NodeId> parallel_nodes(const Dag& dag, NodeId voff) {
  const auto pred = graph::ancestors(dag, voff);
  const auto succ = graph::descendants(dag, voff);
  std::vector<NodeId> out;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (v != voff && !pred.test(v) && !succ.test(v)) out.push_back(v);
  }
  return out;
}

TransformResult transform_for_offload(const Dag& dag) {
  graph::throw_if_invalid(dag, graph::heterogeneous_rules());
  const NodeId voff = *dag.offload_node();
  HEDRA_REQUIRE(dag.in_degree(voff) > 0,
                "v_off must not be the source of the DAG");
  HEDRA_REQUIRE(dag.out_degree(voff) > 0,
                "v_off must not be the sink of the DAG");

  TransformResult result;
  result.voff = voff;

  // Line 1: Pred(v_off) and Succ(v_off).
  const DynamicBitset pred = graph::ancestors(dag, voff);
  const DynamicBitset succ = graph::descendants(dag, voff);
  for (const auto v : pred.to_indices()) {
    result.pred_of_voff.push_back(static_cast<NodeId>(v));
  }
  for (const auto v : succ.to_indices()) {
    result.succ_of_voff.push_back(static_cast<NodeId>(v));
  }

  // Line 2: V' = V ∪ {v_sync}, E' = E.
  Dag& g = result.transformed;
  g = dag;
  const NodeId vsync = g.add_node(0, graph::NodeKind::kSync);
  result.vsync = vsync;

  const auto move_edge_under_sync = [&](NodeId from, NodeId to) {
    g.remove_edge(from, to);
    ++result.edges_removed;
    if (!g.has_edge(vsync, to)) {
      g.add_edge(vsync, to);
      ++result.edges_added;
    }
  };

  // Lines 3-8: iterate over v_off's direct predecessors.
  DynamicBitset direct_pred(dag.num_nodes());
  const std::vector<NodeId> direct = dag.predecessors(voff);
  for (const NodeId vi : direct) {
    direct_pred.set(vi);
    // Line 5: E' = E' ∪ {(v_i, v_sync)} \ {(v_i, v_off)}.
    g.remove_edge(vi, voff);
    ++result.edges_removed;
    g.add_edge(vi, vsync);
    ++result.edges_added;
    // Lines 6-8: v_i's remaining successors become v_sync's successors.
    const std::vector<NodeId> other_succ = g.successors(vi);
    for (const NodeId vj : other_succ) {
      if (vj == vsync) continue;
      move_edge_under_sync(vi, vj);
    }
  }

  // Line 9: E' = E' ∪ {(v_sync, v_off)}.
  g.add_edge(vsync, voff);
  ++result.edges_added;

  // Lines 10-13: iterate over indirect predecessors of v_off.
  for (const auto vi_idx : pred.to_indices()) {
    const NodeId vi = static_cast<NodeId>(vi_idx);
    if (direct_pred.test(vi)) continue;
    const std::vector<NodeId> succ_snapshot = g.successors(vi);
    for (const NodeId vj : succ_snapshot) {
      // Line 12: v_j parallel to v_off iff v_j ∉ Pred(v_off).  Since the
      // input has no transitive edges, v_j ∈ Succ(v_off) is impossible here
      // (it would make (v_i, v_j) transitive via v_off).
      if (!pred.test(vj)) {
        HEDRA_ASSERT(!succ.test(vj));
        move_edge_under_sync(vi, vj);
      }
    }
  }

  // Lines 14-17: G_par induced by V \ Pred(v_off) \ Succ(v_off) \ {v_off}
  // on the ORIGINAL edge set E.
  DynamicBitset members(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (v != voff && !pred.test(v) && !succ.test(v)) members.set(v);
  }
  result.gpar = graph::induced_subgraph(dag, members);

  return result;
}

}  // namespace hedra::analysis
