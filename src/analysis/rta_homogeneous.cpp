#include "analysis/rta_homogeneous.h"

#include "graph/critical_path.h"

namespace hedra::analysis {

Frac rta_homogeneous(Time len, Time vol, int m) {
  HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
  HEDRA_REQUIRE(len >= 0, "critical path length must be non-negative");
  HEDRA_REQUIRE(vol >= len,
                "volume cannot be smaller than the critical path length");
  return Frac(len) + Frac(vol - len, m);
}

Frac rta_homogeneous(const Dag& dag, int m) {
  if (dag.num_nodes() == 0) {
    HEDRA_REQUIRE(m >= 1, "core count m must be >= 1");
    return Frac(0);
  }
  return rta_homogeneous(graph::critical_path_length(dag), dag.volume(), m);
}

}  // namespace hedra::analysis
