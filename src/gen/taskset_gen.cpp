#include "gen/taskset_gen.h"

#include <cmath>

#include "gen/offload.h"
#include "graph/critical_path.h"

namespace hedra::gen {

void TaskSetParams::validate() const {
  HEDRA_REQUIRE(num_tasks >= 1, "task set needs at least one task");
  HEDRA_REQUIRE(total_utilization > 0.0, "total utilisation must be positive");
  HEDRA_REQUIRE(coff_ratio >= 0.0 && coff_ratio < 1.0,
                "coff_ratio must lie in [0, 1)");
  dag_params.validate();
}

std::vector<double> uunifast(int n, double total, Rng& rng) {
  HEDRA_REQUIRE(n >= 1, "uunifast needs n >= 1");
  HEDRA_REQUIRE(total > 0.0, "uunifast needs positive total");
  std::vector<double> out(static_cast<std::size_t>(n));
  double sum = total;
  for (int i = 1; i < n; ++i) {
    const double next =
        sum * std::pow(rng.uniform_real(),
                       1.0 / static_cast<double>(n - i));
    out[static_cast<std::size_t>(i - 1)] = sum - next;
    sum = next;
  }
  out[static_cast<std::size_t>(n - 1)] = sum;
  return out;
}

model::TaskSet generate_task_set(const TaskSetParams& params, Rng& rng) {
  params.validate();
  const auto utils = uunifast(params.num_tasks, params.total_utilization, rng);
  model::TaskSet set;
  for (int i = 0; i < params.num_tasks; ++i) {
    graph::Dag dag = generate_hierarchical(params.dag_params, rng);
    if (params.coff_ratio > 0.0) {
      (void)select_offload_node(dag, rng);
      (void)set_offload_ratio(dag, params.coff_ratio);
    }
    const double u = utils[static_cast<std::size_t>(i)];
    const auto vol = static_cast<double>(dag.volume());
    const graph::Time len = graph::critical_path_length(dag);
    graph::Time period =
        std::max<graph::Time>(len, static_cast<graph::Time>(
                                       std::ceil(vol / u)));
    graph::Time deadline = period;
    if (!params.implicit_deadlines && period > len) {
      deadline = rng.uniform_int(len, period);
    }
    set.add(model::DagTask(std::move(dag), period, deadline,
                           "tau" + std::to_string(i + 1)));
  }
  return set;
}

}  // namespace hedra::gen
