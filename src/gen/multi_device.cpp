#include "gen/multi_device.h"

#include <algorithm>
#include <cmath>

#include "gen/hierarchical.h"

namespace hedra::gen {

using graph::Dag;
using graph::DeviceId;
using graph::NodeId;
using graph::Time;

std::vector<NodeId> select_offload_nodes(Dag& dag, int num_devices,
                                         int per_device, Rng& rng) {
  HEDRA_REQUIRE(num_devices >= 1, "need at least one accelerator device");
  HEDRA_REQUIRE(per_device >= 1, "need at least one offload node per device");
  HEDRA_REQUIRE(dag.offload_nodes().empty(),
                "graph already has offload nodes");
  std::vector<NodeId> internal;
  internal.reserve(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.in_degree(v) > 0 && dag.out_degree(v) > 0) internal.push_back(v);
  }
  const std::size_t needed =
      static_cast<std::size_t>(num_devices) * static_cast<std::size_t>(per_device);
  HEDRA_REQUIRE(internal.size() >= needed,
                "graph has " + std::to_string(internal.size()) +
                    " internal node(s) but " + std::to_string(needed) +
                    " offload placements were requested");
  rng.shuffle(internal);
  std::vector<NodeId> chosen(internal.begin(),
                             internal.begin() + static_cast<std::ptrdiff_t>(needed));
  for (int d = 1; d <= num_devices; ++d) {
    for (int j = 0; j < per_device; ++j) {
      dag.set_device(chosen[static_cast<std::size_t>(d - 1) * per_device + j],
                     static_cast<DeviceId>(d));
    }
  }
  return chosen;
}

OffloadSplit set_offload_ratio_multi(Dag& dag, double ratio,
                                     const std::vector<double>& mix,
                                     const std::vector<double>& speedup) {
  HEDRA_REQUIRE(ratio > 0.0 && ratio < 1.0,
                "offload ratio must lie strictly inside (0, 1)");
  const auto devices = dag.device_ids();
  HEDRA_REQUIRE(!devices.empty(), "no offload nodes selected");
  HEDRA_REQUIRE(mix.empty() || mix.size() == devices.size(),
                "device mix must have one weight per device present");
  // A zero weight would make weight_sum == 0 possible (division by zero →
  // llround(NaN) is undefined behaviour), and even with a positive sum it
  // silently starves its device to the 1-tick-per-node floor; reject the
  // whole class of degenerate weights up front.
  for (std::size_t i = 0; i < mix.size(); ++i) {
    HEDRA_REQUIRE(std::isfinite(mix[i]) && mix[i] > 0.0,
                  "device mix weight " + std::to_string(i) +
                      " must be finite and strictly positive");
  }
  HEDRA_REQUIRE(speedup.empty() || speedup.size() == devices.size(),
                "device speedup must have one factor per device present");
  for (std::size_t i = 0; i < speedup.size(); ++i) {
    HEDRA_REQUIRE(std::isfinite(speedup[i]) && speedup[i] > 0.0,
                  "device speedup factor " + std::to_string(i) +
                      " must be finite and strictly positive");
  }
  const Time vol_host = dag.volume_on(graph::kHostDevice);
  HEDRA_REQUIRE(vol_host > 0, "host workload must be positive");

  // Solve C_total / (vol_host + C_total) = ratio, then split by mix weight.
  const double total = ratio / (1.0 - ratio) * static_cast<double>(vol_host);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    weight_sum += mix.empty() ? 1.0 : mix[i];
  }

  OffloadSplit split;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const double weight = mix.empty() ? 1.0 : mix[i];
    // A device with speedup s executes its nominal share in 1/s of the
    // ticks, so the device-time budget shrinks by the factor.
    const double budget = total * weight / weight_sum /
                          (speedup.empty() ? 1.0 : speedup[i]);
    const auto nodes = dag.nodes_on(devices[i]);
    // Cumulative rounding spreads the budget across the device's nodes
    // without drift; every node keeps a WCET of at least 1.
    Time device_total = 0;
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      const auto cum = [&](std::size_t k) {
        return std::llround(budget * static_cast<double>(k) /
                            static_cast<double>(nodes.size()));
      };
      const Time wcet = std::max<Time>(1, cum(j + 1) - cum(j));
      dag.set_wcet(nodes[j], wcet);
      device_total += wcet;
    }
    split.per_device.emplace_back(devices[i], device_total);
    split.total += device_total;
  }
  return split;
}

double device_ratio(const Dag& dag, DeviceId device) {
  const Time vol = dag.volume();
  HEDRA_REQUIRE(vol > 0, "graph has zero volume");
  return static_cast<double>(dag.volume_on(device)) /
         static_cast<double>(vol);
}

Dag generate_multi_device(const HierarchicalParams& params, double coff_ratio,
                          Rng& rng) {
  params.validate();
  HEDRA_REQUIRE(params.num_devices >= 1,
                "generate_multi_device requires num_devices >= 1");
  HEDRA_REQUIRE(params.min_nodes >=
                    params.num_devices * params.offloads_per_device + 2,
                "node window too small for the requested offload placements");
  Dag dag = generate_hierarchical(params, rng);
  (void)select_offload_nodes(dag, params.num_devices,
                             params.offloads_per_device, rng);
  (void)set_offload_ratio_multi(dag, coff_ratio, params.device_mix,
                                params.device_speedup);
  return dag;
}

}  // namespace hedra::gen
