#pragma once

/// \file multi_device.h
/// Turning a homogeneous random DAG into a *multi-device* heterogeneous task
/// — the K-accelerator generalisation of gen/offload.h.  Mirrors the
/// paper's §5.1 recipe device by device: random distinct internal nodes are
/// placed on each accelerator class, and the per-device offloaded volumes
/// are solved against a target total C_off/vol ratio split across devices by
/// a mix vector.
///
/// The single-device pipeline (select_offload_node + set_offload_ratio)
/// stays untouched so the paper's reproduction is bit-identical; these
/// functions drive the fig10 multi-device sweep and the platform-bound
/// property tests.

#include <utility>
#include <vector>

#include "gen/params.h"
#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Places `per_device` uniformly chosen distinct internal nodes (neither
/// source nor sink) on each of devices 1..num_devices via Dag::set_device,
/// keeping labels and edges.  Returns the chosen node ids device-major
/// (device 1's nodes first).  Requires num_devices >= 1, a graph with at
/// least num_devices·per_device internal nodes, and no pre-existing offload
/// node.
std::vector<graph::NodeId> select_offload_nodes(graph::Dag& dag,
                                                int num_devices,
                                                int per_device, Rng& rng);

/// Per-device outcome of set_offload_ratio_multi, so the cumulative-rounding
/// split is verifiable by callers and tests: `total` is the realised
/// offloaded volume and `per_device` holds one (device id, vol_d) entry per
/// device present, ascending by id.  Invariant (regression-tested):
/// Σ_d vol_d == total.
struct OffloadSplit {
  graph::Time total = 0;
  std::vector<std::pair<graph::DeviceId, graph::Time>> per_device;
};

/// Sets the WCETs of the offloaded nodes so the total offloaded volume is
/// ≈ `ratio` of the final vol(G) (ratio strictly inside (0, 1)), split
/// across devices proportionally to `mix` (empty = even split; otherwise
/// one strictly positive, finite weight per device present — zero,
/// negative, NaN and infinite weights are rejected, since a zero-weight
/// sum would previously divide by zero and a near-zero weight silently
/// starved its device down to the 1-tick floor) and evenly across each
/// device's nodes (every node keeps WCET >= 1).  `speedup` (empty = all
/// 1.0; otherwise one strictly positive finite factor per device present)
/// models heterogeneous WCET scaling: device i's tick budget is divided by
/// speedup[i], so a 2× device realises half the ticks for the same nominal
/// share — the written WCETs are device-time and feed analysis/simulation
/// unscaled.  Returns the realised total plus its per-device breakdown.
OffloadSplit set_offload_ratio_multi(graph::Dag& dag, double ratio,
                                     const std::vector<double>& mix = {},
                                     const std::vector<double>& speedup = {});

/// The realised per-device ratio vol_d / vol(G).
[[nodiscard]] double device_ratio(const graph::Dag& dag,
                                  graph::DeviceId device);

/// One-call generator: hierarchical structure (params), then
/// select_offload_nodes(params.num_devices, params.offloads_per_device),
/// then set_offload_ratio_multi(coff_ratio, params.device_mix,
/// params.device_speedup).  Requires params.num_devices >= 1.
[[nodiscard]] graph::Dag generate_multi_device(const HierarchicalParams& params,
                                               double coff_ratio, Rng& rng);

}  // namespace hedra::gen
