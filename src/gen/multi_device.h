#pragma once

/// \file multi_device.h
/// Turning a homogeneous random DAG into a *multi-device* heterogeneous task
/// — the K-accelerator generalisation of gen/offload.h.  Mirrors the
/// paper's §5.1 recipe device by device: random distinct internal nodes are
/// placed on each accelerator class, and the per-device offloaded volumes
/// are solved against a target total C_off/vol ratio split across devices by
/// a mix vector.
///
/// The single-device pipeline (select_offload_node + set_offload_ratio)
/// stays untouched so the paper's reproduction is bit-identical; these
/// functions drive the fig10 multi-device sweep and the platform-bound
/// property tests.

#include <vector>

#include "gen/params.h"
#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Places `per_device` uniformly chosen distinct internal nodes (neither
/// source nor sink) on each of devices 1..num_devices via Dag::set_device,
/// keeping labels and edges.  Returns the chosen node ids device-major
/// (device 1's nodes first).  Requires num_devices >= 1, a graph with at
/// least num_devices·per_device internal nodes, and no pre-existing offload
/// node.
std::vector<graph::NodeId> select_offload_nodes(graph::Dag& dag,
                                                int num_devices,
                                                int per_device, Rng& rng);

/// Sets the WCETs of the offloaded nodes so the total offloaded volume is
/// ≈ `ratio` of the final vol(G) (ratio strictly inside (0, 1)), split
/// across devices proportionally to `mix` (empty = even split; otherwise
/// one positive weight per device present) and evenly across each device's
/// nodes (every node keeps WCET >= 1).  Returns the total offloaded volume.
graph::Time set_offload_ratio_multi(graph::Dag& dag, double ratio,
                                    const std::vector<double>& mix = {});

/// The realised per-device ratio vol_d / vol(G).
[[nodiscard]] double device_ratio(const graph::Dag& dag,
                                  graph::DeviceId device);

/// One-call generator: hierarchical structure (params), then
/// select_offload_nodes(params.num_devices, params.offloads_per_device),
/// then set_offload_ratio_multi(coff_ratio, params.device_mix).  Requires
/// params.num_devices >= 1.
[[nodiscard]] graph::Dag generate_multi_device(const HierarchicalParams& params,
                                               double coff_ratio, Rng& rng);

}  // namespace hedra::gen
