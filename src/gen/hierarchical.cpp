#include "gen/hierarchical.h"

namespace hedra::gen {

namespace {

using graph::Dag;
using graph::NodeId;

/// A recursively built fragment with unique entry/exit nodes.
struct Fragment {
  NodeId entry;
  NodeId exit;
};

class Builder {
 public:
  Builder(const HierarchicalParams& params, Rng& rng)
      : params_(params), rng_(rng) {}

  Dag build() {
    dag_ = Dag();
    (void)expand(0);
    return std::move(dag_);
  }

 private:
  NodeId new_node() {
    return dag_.add_node(rng_.uniform_int(params_.wcet_min, params_.wcet_max));
  }

  Fragment expand(int depth) {
    const bool terminal =
        depth >= params_.max_depth || !rng_.bernoulli(params_.p_par);
    if (terminal) {
      const NodeId v = new_node();
      return Fragment{v, v};
    }
    // Parallel sub-DAG: fork, k expanded branches, join.
    const NodeId fork = new_node();
    const NodeId join = new_node();
    const int k = static_cast<int>(rng_.uniform_int(2, params_.n_par));
    for (int b = 0; b < k; ++b) {
      const Fragment branch = expand(depth + 1);
      dag_.add_edge(fork, branch.entry);
      dag_.add_edge(branch.exit, join);
    }
    return Fragment{fork, join};
  }

  const HierarchicalParams& params_;
  Rng& rng_;
  Dag dag_;
};

}  // namespace

graph::Dag generate_hierarchical(const HierarchicalParams& params, Rng& rng) {
  params.validate();
  Builder builder(params, rng);
  for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
    Dag dag = builder.build();
    const auto n = static_cast<int>(dag.num_nodes());
    if (n >= params.min_nodes && n <= params.max_nodes) return dag;
  }
  throw Error(
      "hierarchical generator: no DAG within the node window after " +
      std::to_string(params.max_attempts) +
      " attempts; the window is likely unreachable for these parameters");
}

}  // namespace hedra::gen
