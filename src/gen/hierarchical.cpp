#include "gen/hierarchical.h"

#include "gen/flat_gen.h"
#include "graph/flat_batch.h"

namespace hedra::gen {

graph::Dag generate_hierarchical(const HierarchicalParams& params, Rng& rng) {
  // The rejection loop runs in reusable staging buffers (no Dag — and at
  // steady state no allocation at all — per rejected attempt); only the
  // accepted attempt materialises.  RNG consumption is identical to the
  // historical per-attempt Dag builder: the recursion never read the Dag.
  thread_local graph::StagedDag staged;
  generate_hierarchical_staged(params, rng, staged);
  graph::Dag dag;
  for (std::size_t v = 0; v < staged.num_nodes(); ++v) {
    (void)dag.add_node(staged.wcet[v]);
  }
  for (const auto& [from, to] : staged.edges) dag.add_edge(from, to);
  return dag;
}

}  // namespace hedra::gen
