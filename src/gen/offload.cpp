#include "gen/offload.h"

#include <cmath>
#include <vector>

#include "graph/validate.h"

namespace hedra::gen {

using graph::Dag;
using graph::NodeId;
using graph::Time;

NodeId select_offload_node(Dag& dag, Rng& rng) {
  HEDRA_REQUIRE(dag.offload_nodes().empty(),
                "graph already has an offload node");
  HEDRA_REQUIRE(dag.num_nodes() >= 3,
                "need at least 3 nodes to pick an internal offload node");
  std::vector<NodeId> internal;
  internal.reserve(dag.num_nodes());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    if (dag.in_degree(v) > 0 && dag.out_degree(v) > 0) internal.push_back(v);
  }
  HEDRA_REQUIRE(!internal.empty(), "graph has no internal node");
  const NodeId chosen = internal[rng.index(internal.size())];
  // Re-label in place: replace the node's kind while keeping id and edges.
  // Dag has no kind setter by design (kinds are structural); rebuild instead.
  Dag out;
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    const auto& n = dag.node(v);
    if (v == chosen) {
      out.add_node(n.wcet, graph::NodeKind::kOffload, "vOff");
    } else {
      out.add_node(n);
    }
  }
  for (const auto& [u, w] : dag.edges()) out.add_edge(u, w);
  dag = std::move(out);
  return chosen;
}

Time set_offload_ratio(Dag& dag, double ratio) {
  HEDRA_REQUIRE(ratio > 0.0 && ratio < 1.0,
                "offload ratio must lie strictly inside (0, 1)");
  const auto voff = dag.offload_node();
  HEDRA_REQUIRE(voff.has_value(), "no offload node selected");
  const Time vol_rest = dag.volume() - dag.wcet(*voff);
  HEDRA_REQUIRE(vol_rest > 0, "host workload must be positive");
  const double target = ratio / (1.0 - ratio) * static_cast<double>(vol_rest);
  const Time c_off = std::max<Time>(1, std::llround(target));
  dag.set_wcet(*voff, c_off);
  return c_off;
}

Time assign_offload_uniform(Dag& dag, double max_pct, Rng& rng) {
  HEDRA_REQUIRE(max_pct > 0.0 && max_pct < 1.0,
                "max_pct must lie strictly inside (0, 1)");
  const auto voff = dag.offload_node();
  HEDRA_REQUIRE(voff.has_value(), "no offload node selected");
  const Time vol_rest = dag.volume() - dag.wcet(*voff);
  const double upper =
      max_pct / (1.0 - max_pct) * static_cast<double>(vol_rest);
  const Time c_max = std::max<Time>(1, std::llround(upper));
  const Time c_off = rng.uniform_int(1, c_max);
  dag.set_wcet(*voff, c_off);
  return c_off;
}

double offload_ratio(const Dag& dag) {
  const auto voff = dag.offload_node();
  HEDRA_REQUIRE(voff.has_value(), "no offload node selected");
  return static_cast<double>(dag.wcet(*voff)) /
         static_cast<double>(dag.volume());
}

}  // namespace hedra::gen
