#include "gen/forkjoin.h"

namespace hedra::gen {

namespace {

using graph::Dag;
using graph::NodeId;

struct Fragment {
  NodeId entry;
  NodeId exit;
};

class Builder {
 public:
  Builder(const ForkJoinParams& params, Rng& rng) : params_(params), rng_(rng) {}

  Dag build() {
    dag_ = Dag();
    (void)fork_join(params_.depth);
    return std::move(dag_);
  }

 private:
  NodeId new_node() {
    return dag_.add_node(rng_.uniform_int(params_.wcet_min, params_.wcet_max));
  }

  /// A sequence of `len` segments chained entry-to-exit.
  Fragment sequence(int depth) {
    const int len = static_cast<int>(
        rng_.uniform_int(params_.min_segment, params_.max_segment));
    Fragment whole{graph::kInvalidNode, graph::kInvalidNode};
    for (int i = 0; i < len; ++i) {
      Fragment seg;
      if (depth > 0 && rng_.bernoulli(0.5)) {
        seg = fork_join(depth - 1);
      } else {
        const NodeId v = new_node();
        seg = Fragment{v, v};
      }
      append(whole, seg);
    }
    return whole;
  }

  void append(Fragment& whole, const Fragment& next) {
    if (whole.entry == graph::kInvalidNode) {
      whole = next;
      return;
    }
    dag_.add_edge(whole.exit, next.entry);
    whole.exit = next.exit;
  }

  Fragment fork_join(int depth) {
    const NodeId fork = new_node();
    const NodeId join = new_node();
    const int k = static_cast<int>(
        rng_.uniform_int(params_.min_branches, params_.max_branches));
    for (int b = 0; b < k; ++b) {
      const Fragment branch = sequence(depth);
      dag_.add_edge(fork, branch.entry);
      dag_.add_edge(branch.exit, join);
    }
    return Fragment{fork, join};
  }

  const ForkJoinParams& params_;
  Rng& rng_;
  Dag dag_;
};

}  // namespace

graph::Dag generate_fork_join(const ForkJoinParams& params, Rng& rng) {
  params.validate();
  Builder builder(params, rng);
  return builder.build();
}

}  // namespace hedra::gen
