#include "gen/params.h"

#include <cmath>

#include "util/error.h"

namespace hedra::gen {

HierarchicalParams HierarchicalParams::small_tasks() {
  HierarchicalParams p;
  p.max_depth = 3;
  p.n_par = 6;
  p.min_nodes = 3;
  p.max_nodes = 100;
  return p;
}

HierarchicalParams HierarchicalParams::large_tasks() {
  HierarchicalParams p;
  p.max_depth = 5;
  p.n_par = 8;
  p.min_nodes = 100;
  p.max_nodes = 400;
  return p;
}

HierarchicalParams HierarchicalParams::large_tasks_100_250() {
  HierarchicalParams p = large_tasks();
  p.max_nodes = 250;
  return p;
}

void HierarchicalParams::validate() const {
  HEDRA_REQUIRE(max_depth >= 1, "max_depth must be >= 1");
  HEDRA_REQUIRE(p_par >= 0.0 && p_par <= 1.0, "p_par must be in [0, 1]");
  HEDRA_REQUIRE(n_par >= 2, "n_par must be >= 2");
  HEDRA_REQUIRE(min_nodes >= 1 && max_nodes >= min_nodes,
                "node-count window [min_nodes, max_nodes] is empty");
  HEDRA_REQUIRE(wcet_min >= 1 && wcet_max >= wcet_min,
                "WCET window [wcet_min, wcet_max] is empty");
  HEDRA_REQUIRE(max_attempts >= 1, "max_attempts must be >= 1");
  HEDRA_REQUIRE(num_devices >= 0, "num_devices must be >= 0");
  HEDRA_REQUIRE(offloads_per_device >= 1, "offloads_per_device must be >= 1");
  HEDRA_REQUIRE(device_mix.empty() ||
                    device_mix.size() == static_cast<std::size_t>(num_devices),
                "device_mix must be empty or have one entry per device");
  for (const double share : device_mix) {
    HEDRA_REQUIRE(share > 0.0, "device_mix shares must be positive");
  }
  HEDRA_REQUIRE(
      device_units.empty() ||
          device_units.size() == static_cast<std::size_t>(num_devices),
      "device_units must be empty or have one entry per device");
  for (const int units : device_units) {
    HEDRA_REQUIRE(units >= 1, "device_units entries must be >= 1");
  }
  HEDRA_REQUIRE(
      device_speedup.empty() ||
          device_speedup.size() == static_cast<std::size_t>(num_devices),
      "device_speedup must be empty or have one entry per device");
  for (const double speedup : device_speedup) {
    HEDRA_REQUIRE(std::isfinite(speedup) && speedup > 0.0,
                  "device_speedup entries must be finite and positive");
  }
}

void LayeredParams::validate() const {
  HEDRA_REQUIRE(min_layers >= 1 && max_layers >= min_layers,
                "layer window is empty");
  HEDRA_REQUIRE(min_width >= 1 && max_width >= min_width,
                "width window is empty");
  HEDRA_REQUIRE(p_edge >= 0.0 && p_edge <= 1.0, "p_edge must be in [0, 1]");
  HEDRA_REQUIRE(wcet_min >= 1 && wcet_max >= wcet_min,
                "WCET window is empty");
}

void ForkJoinParams::validate() const {
  HEDRA_REQUIRE(depth >= 0, "depth must be >= 0");
  HEDRA_REQUIRE(min_branches >= 2 && max_branches >= min_branches,
                "branch window is empty");
  HEDRA_REQUIRE(min_segment >= 1 && max_segment >= min_segment,
                "segment window is empty");
  HEDRA_REQUIRE(wcet_min >= 1 && wcet_max >= wcet_min,
                "WCET window is empty");
}

}  // namespace hedra::gen
