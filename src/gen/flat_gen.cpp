#include "gen/flat_gen.h"

#include <cmath>
#include <numeric>

namespace hedra::gen {

namespace {

using graph::DeviceId;
using graph::NodeId;
using graph::StagedDag;
using graph::Time;

/// A recursively built fragment with unique entry/exit nodes.
struct Fragment {
  NodeId entry;
  NodeId exit;
};

/// The fork–join recursion of generate_hierarchical, writing into staging
/// buffers instead of a Dag.  Draw order is the legacy Builder's exactly:
/// (terminal? one wcet) | (fork wcet, join wcet, branch count k, then the
/// k branches depth-first), with edges recorded as the recursion unwinds.
class StagedBuilder {
 public:
  StagedBuilder(const HierarchicalParams& params, Rng& rng, StagedDag& staged)
      : params_(params), rng_(rng), staged_(staged) {}

  void build() {
    staged_.clear();
    (void)expand(0);
  }

 private:
  NodeId new_node() {
    return staged_.add_node(
        rng_.uniform_int(params_.wcet_min, params_.wcet_max));
  }

  Fragment expand(int depth) {
    const bool terminal =
        depth >= params_.max_depth || !rng_.bernoulli(params_.p_par);
    if (terminal) {
      const NodeId v = new_node();
      return Fragment{v, v};
    }
    const NodeId fork = new_node();
    const NodeId join = new_node();
    const int k = static_cast<int>(rng_.uniform_int(2, params_.n_par));
    for (int b = 0; b < k; ++b) {
      const Fragment branch = expand(depth + 1);
      staged_.add_edge(fork, branch.entry);
      staged_.add_edge(branch.exit, join);
    }
    return Fragment{fork, join};
  }

  const HierarchicalParams& params_;
  Rng& rng_;
  StagedDag& staged_;
};

/// Internal nodes (in-degree and out-degree both positive), ascending —
/// the candidate set both offload-selection steps draw from.
void collect_internal(const StagedDag& staged, std::vector<NodeId>& internal) {
  internal.clear();
  for (NodeId v = 0; v < staged.num_nodes(); ++v) {
    if (staged.in_deg[v] > 0 && staged.out_deg[v] > 0) internal.push_back(v);
  }
}

Time staged_volume(const StagedDag& staged) {
  return std::accumulate(staged.wcet.begin(), staged.wcet.end(), Time{0});
}

}  // namespace

void generate_hierarchical_staged(const HierarchicalParams& params, Rng& rng,
                                  graph::StagedDag& staged) {
  params.validate();
  StagedBuilder builder(params, rng, staged);
  for (int attempt = 0; attempt < params.max_attempts; ++attempt) {
    builder.build();
    const auto n = static_cast<int>(staged.num_nodes());
    if (n >= params.min_nodes && n <= params.max_nodes) return;
  }
  throw Error(
      "hierarchical generator: no DAG within the node window after " +
      std::to_string(params.max_attempts) +
      " attempts; the window is likely unreachable for these parameters");
}

void generate_hierarchical_flat(const HierarchicalParams& params, Rng& rng,
                                graph::FlatDagBatch& batch) {
  thread_local graph::StagedDag staged;
  generate_hierarchical_staged(params, rng, staged);
  batch.append(staged, graph::FlatDagBatch::EdgeOrder::kInsertion);
}

void generate_offload_flat(const HierarchicalParams& params, double coff_ratio,
                           Rng& rng, graph::FlatDagBatch& batch) {
  HEDRA_REQUIRE(coff_ratio > 0.0 && coff_ratio < 1.0,
                "offload ratio must lie strictly inside (0, 1)");
  thread_local graph::StagedDag staged;
  thread_local std::vector<NodeId> internal;
  generate_hierarchical_staged(params, rng, staged);

  // select_offload_node: one index draw over the internal nodes.
  HEDRA_REQUIRE(staged.num_nodes() >= 3,
                "need at least 3 nodes to pick an internal offload node");
  collect_internal(staged, internal);
  HEDRA_REQUIRE(!internal.empty(), "graph has no internal node");
  const NodeId chosen = internal[rng.index(internal.size())];
  staged.device[chosen] = 1;

  // set_offload_ratio: C_off / (vol_rest + C_off) = ratio.
  const Time vol_rest = staged_volume(staged) - staged.wcet[chosen];
  HEDRA_REQUIRE(vol_rest > 0, "host workload must be positive");
  const double target =
      coff_ratio / (1.0 - coff_ratio) * static_cast<double>(vol_rest);
  staged.wcet[chosen] = std::max<Time>(1, std::llround(target));

  batch.append(staged, graph::FlatDagBatch::EdgeOrder::kGroupedBySource,
               chosen);
}

void generate_multi_device_flat(const HierarchicalParams& params,
                                double coff_ratio, Rng& rng,
                                graph::FlatDagBatch& batch) {
  params.validate();
  HEDRA_REQUIRE(params.num_devices >= 1,
                "generate_multi_device requires num_devices >= 1");
  HEDRA_REQUIRE(params.offloads_per_device >= 1,
                "need at least one offload node per device");
  HEDRA_REQUIRE(params.min_nodes >=
                    params.num_devices * params.offloads_per_device + 2,
                "node window too small for the requested offload placements");
  HEDRA_REQUIRE(coff_ratio > 0.0 && coff_ratio < 1.0,
                "offload ratio must lie strictly inside (0, 1)");
  const auto& mix = params.device_mix;
  const auto& speedup = params.device_speedup;
  const auto num_devices = static_cast<std::size_t>(params.num_devices);
  HEDRA_REQUIRE(mix.empty() || mix.size() == num_devices,
                "device mix must have one weight per device present");
  for (std::size_t i = 0; i < mix.size(); ++i) {
    HEDRA_REQUIRE(std::isfinite(mix[i]) && mix[i] > 0.0,
                  "device mix weight " + std::to_string(i) +
                      " must be finite and strictly positive");
  }
  HEDRA_REQUIRE(speedup.empty() || speedup.size() == num_devices,
                "device speedup must have one factor per device present");
  for (std::size_t i = 0; i < speedup.size(); ++i) {
    HEDRA_REQUIRE(std::isfinite(speedup[i]) && speedup[i] > 0.0,
                  "device speedup factor " + std::to_string(i) +
                      " must be finite and strictly positive");
  }

  thread_local graph::StagedDag staged;
  thread_local std::vector<NodeId> internal;
  thread_local std::vector<NodeId> nodes_on;
  generate_hierarchical_staged(params, rng, staged);

  // select_offload_nodes: Fisher-Yates shuffle of the internal list, then
  // device-major assignment of the first `needed` entries.
  collect_internal(staged, internal);
  const std::size_t needed =
      num_devices * static_cast<std::size_t>(params.offloads_per_device);
  HEDRA_REQUIRE(internal.size() >= needed,
                "graph has " + std::to_string(internal.size()) +
                    " internal node(s) but " + std::to_string(needed) +
                    " offload placements were requested");
  rng.shuffle(internal);
  const auto per_device = static_cast<std::size_t>(params.offloads_per_device);
  for (std::size_t d = 1; d <= num_devices; ++d) {
    for (std::size_t j = 0; j < per_device; ++j) {
      staged.device[internal[(d - 1) * per_device + j]] =
          static_cast<DeviceId>(d);
    }
  }

  // set_offload_ratio_multi: C_total / (vol_host + C_total) = ratio, split
  // by mix weight, each device's budget spread by cumulative rounding over
  // its nodes in ascending id order.
  Time vol_host = 0;
  for (NodeId v = 0; v < staged.num_nodes(); ++v) {
    if (staged.device[v] == graph::kHostDevice) vol_host += staged.wcet[v];
  }
  HEDRA_REQUIRE(vol_host > 0, "host workload must be positive");
  const double total =
      coff_ratio / (1.0 - coff_ratio) * static_cast<double>(vol_host);
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < num_devices; ++i) {
    weight_sum += mix.empty() ? 1.0 : mix[i];
  }
  for (std::size_t i = 0; i < num_devices; ++i) {
    const auto d = static_cast<DeviceId>(i + 1);
    const double weight = mix.empty() ? 1.0 : mix[i];
    const double budget =
        total * weight / weight_sum / (speedup.empty() ? 1.0 : speedup[i]);
    nodes_on.clear();
    for (NodeId v = 0; v < staged.num_nodes(); ++v) {
      if (staged.device[v] == d) nodes_on.push_back(v);
    }
    const auto cum = [&](std::size_t k) {
      return std::llround(budget * static_cast<double>(k) /
                          static_cast<double>(nodes_on.size()));
    };
    for (std::size_t j = 0; j < nodes_on.size(); ++j) {
      staged.wcet[nodes_on[j]] = std::max<Time>(1, cum(j + 1) - cum(j));
    }
  }

  batch.append(staged, graph::FlatDagBatch::EdgeOrder::kInsertion);
}

}  // namespace hedra::gen
