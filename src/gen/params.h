#pragma once

/// \file params.h
/// Parameters of the random task generators used in the evaluation (§5.1).
///
/// The paper generates DAGs "by recursively expanding nodes either to
/// terminal nodes or parallel sub-DAGs, until a maximum recursion depth
/// maxdepth is reached", with expansion probability p_par, at most n_par
/// branches per parallel sub-DAG, a node-count window [n_min, n_max], and
/// per-node WCETs uniform in [C_min, C_max] = [1, 100].  `maxdepth` bounds
/// the longest possible path at 2·maxdepth + 1 nodes (fork/join nesting),
/// which matches the paper's "longest path equals 7" for maxdepth = 3 and
/// "equals 11" for maxdepth = 5.

#include <cstdint>
#include <vector>

#include "graph/dag.h"

namespace hedra::gen {

using graph::Time;

/// Parameters for the paper's recursive-expansion (Melani-style) generator.
struct HierarchicalParams {
  int max_depth = 3;      ///< maximum recursion depth
  double p_par = 0.5;     ///< probability of expanding into a parallel sub-DAG
  int n_par = 6;          ///< maximum number of branches of a parallel sub-DAG
  int min_nodes = 3;      ///< smallest acceptable DAG (retry below)
  int max_nodes = 100;    ///< largest acceptable DAG (retry above)
  Time wcet_min = 1;      ///< C_min
  Time wcet_max = 100;    ///< C_max
  int max_attempts = 100000;  ///< generation retries before giving up

  // -- Multi-device knobs (see gen/multi_device.h).  generate_hierarchical
  //    itself produces pure host DAGs and ignores these; the multi-device
  //    variant and exp::generate_batch consume them.  num_devices = 0 keeps
  //    the paper's pipeline (separate single-offload selection) untouched.
  int num_devices = 0;          ///< K accelerator device classes to populate
  int offloads_per_device = 1;  ///< offload nodes assigned to each device
  /// Relative share of the offloaded volume each device receives (size
  /// num_devices, positive entries, need not sum to 1); empty = even split.
  std::vector<double> device_mix;
  /// Execution units per accelerator class (size num_devices, entries
  /// >= 1); empty = one unit each (the paper's platform).  Generation
  /// itself ignores this — placement and volumes are unit-agnostic — but
  /// the experiment configs carry it here so a batch spec fully describes
  /// the platform the analysis/simulation sweep should provision
  /// (model::Platform, sim::SimConfig::device_units).
  std::vector<int> device_units;
  /// WCET speedup per accelerator class (size num_devices, strictly
  /// positive finite entries); empty = every device runs at the host's
  /// reference speed.  Unlike device_units this DOES affect generation:
  /// set_offload_ratio_multi divides each device's volume budget by its
  /// speedup, so a 2× device realises half the ticks for the same nominal
  /// share of work (heterogeneous WCET scaling; the generated WCETs are
  /// device-time, ready for analysis and simulation unscaled).
  std::vector<double> device_speedup;

  /// §5.1 "Small tasks": n <= 100, n_par = 6, maxdepth = 3 (longest path 7).
  /// Used for the ILP comparison.
  [[nodiscard]] static HierarchicalParams small_tasks();

  /// §5.1 "Large tasks": n in [100, 400], n_par = 8, maxdepth = 5
  /// (longest path 11).
  [[nodiscard]] static HierarchicalParams large_tasks();

  /// Figures 6/8/9 restrict large tasks to n in [100, 250].
  [[nodiscard]] static HierarchicalParams large_tasks_100_250();

  /// Throws hedra::Error if any field is out of range.
  void validate() const;
};

/// Parameters for the layered Erdős–Rényi generator (the style of [12][18]).
struct LayeredParams {
  int min_layers = 3;
  int max_layers = 8;
  int min_width = 1;
  int max_width = 10;
  double p_edge = 0.35;  ///< probability of an edge between consecutive layers
  Time wcet_min = 1;
  Time wcet_max = 100;

  void validate() const;
};

/// Parameters for the nested fork-join generator.
struct ForkJoinParams {
  int depth = 2;          ///< nesting depth
  int min_branches = 2;
  int max_branches = 4;
  int min_segment = 1;    ///< sequential nodes per branch segment
  int max_segment = 3;
  Time wcet_min = 1;
  Time wcet_max = 100;

  void validate() const;
};

}  // namespace hedra::gen
