#pragma once

/// \file taskset_gen.h
/// Random task-SET generation for schedulability studies, following the
/// standard recipe in the real-time literature: per-task utilisations from
/// UUniFast (Bini & Buttazzo), DAG structure from the hierarchical
/// generator, periods derived as T_i = vol(G_i)/u_i, and constrained
/// deadlines drawn between len(G_i) and T_i.  The paper itself evaluates a
/// single task at a time; task sets feed the federated-style
/// schedulability-study example.

#include <vector>

#include "gen/hierarchical.h"
#include "gen/params.h"
#include "model/taskset.h"
#include "util/rng.h"

namespace hedra::gen {

/// Parameters for one task set.
struct TaskSetParams {
  int num_tasks = 4;
  /// Target Σ vol(G_i)/T_i (host + accelerator workload combined).
  double total_utilization = 2.0;
  HierarchicalParams dag_params = HierarchicalParams::small_tasks();
  /// Target C_off / vol for every task; 0 disables offloading.
  double coff_ratio = 0.2;
  /// Implicit (D = T) or constrained deadlines uniform in [len(G), T].
  bool implicit_deadlines = true;

  void validate() const;
};

/// UUniFast: `n` utilisations, each in (0, total), summing to `total`.
/// The classic unbiased sampler over the utilisation simplex.
[[nodiscard]] std::vector<double> uunifast(int n, double total, Rng& rng);

/// Generates a full task set.  Each task's period is vol(G)/u_i rounded up
/// and floored at len(G) (a task with T < len(G) is trivially infeasible on
/// any number of cores, so the generator never produces one; the realised
/// utilisation is then slightly below the target).
[[nodiscard]] model::TaskSet generate_task_set(const TaskSetParams& params,
                                               Rng& rng);

}  // namespace hedra::gen
