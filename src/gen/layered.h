#pragma once

/// \file layered.h
/// Layer-by-layer Erdős–Rényi DAG generator, the alternative random-DAG
/// style cited by the paper ([12][18]): nodes are arranged in layers and
/// each pair of nodes in consecutive layers is connected with probability
/// p_edge.  A zero-WCET dummy source and sink (sync kind) enforce the
/// single-source/single-sink model; transitive edges cannot arise because
/// edges only connect consecutive layers.  Used to check that the analysis
/// behaves sensibly beyond the fork/join-structured graphs of §5.1.

#include "gen/params.h"
#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Generates one layered DAG (dummy source/sink included).
[[nodiscard]] graph::Dag generate_layered(const LayeredParams& params, Rng& rng);

}  // namespace hedra::gen
