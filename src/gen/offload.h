#pragma once

/// \file offload.h
/// Turning a homogeneous random DAG into a heterogeneous task (§5.1):
/// "Once a DAG is generated, we randomly select v_off among all the nodes.
/// C_off is assigned with the interval [1, C_off_MAX], where C_off_MAX
/// represents a percentage (up to 60%) of DAG's volume."
///
/// The experiments sweep a *target* ratio C_off / vol(G); set_offload_ratio
/// solves for the WCET that realises the target on the final volume
/// (C_off = r · vol ⇒ C_off = r/(1−r) · vol_rest, rounded, at least 1).

#include <cstdint>

#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Marks a uniformly chosen internal node (neither source nor sink) as the
/// offloaded node and returns its id.  Requires a valid single-source/sink
/// DAG with at least 3 nodes and no existing offload node.
graph::NodeId select_offload_node(graph::Dag& dag, Rng& rng);

/// Sets C_off so that C_off / vol(G) ≈ `ratio` (ratio in (0, 1)); the
/// offload node must already be selected.  Returns the assigned C_off.
graph::Time set_offload_ratio(graph::Dag& dag, double ratio);

/// The paper's randomised assignment: C_off uniform in [1, max_pct·vol_rest/
/// (1−max_pct)] so that C_off is at most `max_pct` of the final volume.
graph::Time assign_offload_uniform(graph::Dag& dag, double max_pct, Rng& rng);

/// The realised ratio C_off / vol(G) of a heterogeneous DAG.
[[nodiscard]] double offload_ratio(const graph::Dag& dag);

}  // namespace hedra::gen
