#pragma once

/// \file hierarchical.h
/// The paper's random DAG generator (§5.1), in the style of Melani et al.
/// [12]: a node expands, with probability p_par and while below max_depth,
/// into a parallel sub-DAG — a fork node, k ∈ [2, n_par] recursively
/// expanded branches, and a join node — and otherwise into a terminal node.
/// The result always has a single source and a single sink, is acyclic and
/// transitive-edge-free by construction, and its longest path has at most
/// 2·max_depth + 1 nodes.  Generation retries until the node count falls in
/// [min_nodes, max_nodes].
///
/// WCETs are uniform integers in [wcet_min, wcet_max]; the offload node is
/// NOT chosen here — see gen/offload.h, which mirrors the paper's "randomly
/// select v_off among all the nodes" step.

#include "gen/params.h"
#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Generates one DAG.  Throws hedra::Error if `params` is invalid or no
/// graph within the node window is found in max_attempts tries.
[[nodiscard]] graph::Dag generate_hierarchical(const HierarchicalParams& params,
                                               Rng& rng);

}  // namespace hedra::gen
