#include "gen/layered.h"

#include <vector>

namespace hedra::gen {

using graph::Dag;
using graph::NodeId;

graph::Dag generate_layered(const LayeredParams& params, Rng& rng) {
  params.validate();
  Dag dag;
  const NodeId source = dag.add_node(0, graph::NodeKind::kSync, "src");

  const int layers =
      static_cast<int>(rng.uniform_int(params.min_layers, params.max_layers));
  std::vector<std::vector<NodeId>> layer_nodes(layers);
  for (int l = 0; l < layers; ++l) {
    const int width =
        static_cast<int>(rng.uniform_int(params.min_width, params.max_width));
    for (int i = 0; i < width; ++i) {
      layer_nodes[l].push_back(
          dag.add_node(rng.uniform_int(params.wcet_min, params.wcet_max)));
    }
  }

  // Random edges between consecutive layers.
  for (int l = 0; l + 1 < layers; ++l) {
    for (const NodeId u : layer_nodes[l]) {
      for (const NodeId w : layer_nodes[l + 1]) {
        if (rng.bernoulli(params.p_edge)) dag.add_edge(u, w);
      }
    }
  }

  // Guarantee connectivity: every node in layer l > 0 needs a predecessor in
  // layer l-1; every node in layer l < last needs a successor in layer l+1.
  for (int l = 1; l < layers; ++l) {
    for (const NodeId w : layer_nodes[l]) {
      if (dag.in_degree(w) == 0) {
        const NodeId u = layer_nodes[l - 1][rng.index(layer_nodes[l - 1].size())];
        dag.add_edge(u, w);
      }
    }
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (const NodeId u : layer_nodes[l]) {
      if (dag.out_degree(u) == 0) {
        const NodeId w = layer_nodes[l + 1][rng.index(layer_nodes[l + 1].size())];
        dag.add_edge(u, w);
      }
    }
  }

  // Dummy source/sink give the single-source/single-sink shape of §2.
  for (const NodeId v : layer_nodes.front()) dag.add_edge(source, v);
  const NodeId sink = dag.add_node(0, graph::NodeKind::kSync, "snk");
  for (const NodeId v : layer_nodes.back()) dag.add_edge(v, sink);

  return dag;
}

}  // namespace hedra::gen
