#pragma once

/// \file flat_gen.h
/// Arena-writing batch generators (the SoA fast path).
///
/// These mirror the three per-DAG generation pipelines —
///
///   1. plain hierarchical structure          (generate_hierarchical)
///   2. single-offload §5.1 pipeline          (generate_hierarchical +
///      select_offload_node + set_offload_ratio)
///   3. multi-device pipeline                 (generate_multi_device)
///
/// — but emit CSR directly into a `graph::FlatDagBatch` arena instead of
/// allocating a `Dag` per DAG.  The fork–join recursion writes into a
/// reusable `StagedDag` scratch, so rejection-sampling attempts cost no
/// allocations at steady state.
///
/// Determinism contract (regression-pinned in tests/gen/flat_gen_test.cpp):
/// every entry point consumes the RNG stream *identically* to its legacy
/// counterpart — same draws, same order, including rejected attempts — so
/// for any seed the arena batch is bit-identical to the legacy batch
/// (`view(i)` equals `FlatDag(dag_i)` array-for-array, and `materialize(i)`
/// equals `dag_i` field-for-field).  There is no seed-schema bump.

#include "gen/params.h"
#include "graph/flat_batch.h"
#include "util/rng.h"

namespace hedra::gen {

/// Runs the rejection-sampled fork–join recursion once and leaves the
/// accepted attempt in `staged` (host-only nodes, edges in recursion
/// order).  Consumes `rng` exactly like generate_hierarchical.  Throws
/// hedra::Error if `params` is invalid or the node window is not hit within
/// max_attempts tries.
void generate_hierarchical_staged(const HierarchicalParams& params, Rng& rng,
                                  graph::StagedDag& staged);

/// Appends one plain hierarchical (host-only) DAG to `batch`.
void generate_hierarchical_flat(const HierarchicalParams& params, Rng& rng,
                                graph::FlatDagBatch& batch);

/// Appends one §5.1 heterogeneous DAG: hierarchical structure, one random
/// internal v_off (device 1), C_off set to `coff_ratio` of vol(G).
/// RNG-identical to generate_hierarchical + select_offload_node +
/// set_offload_ratio.
void generate_offload_flat(const HierarchicalParams& params, double coff_ratio,
                           Rng& rng, graph::FlatDagBatch& batch);

/// Appends one K-device DAG; RNG-identical to generate_multi_device.
void generate_multi_device_flat(const HierarchicalParams& params,
                                double coff_ratio, Rng& rng,
                                graph::FlatDagBatch& batch);

}  // namespace hedra::gen
