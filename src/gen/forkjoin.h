#pragma once

/// \file forkjoin.h
/// Nested fork-join generator: each branch is a *sequence* of segments, each
/// segment either a node or a nested fork-join.  This mirrors structured
/// OpenMP programs (`parallel`/`taskgroup` nesting), the workloads the
/// paper's introduction motivates, and complements the hierarchical
/// generator with longer sequential chains.

#include "gen/params.h"
#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::gen {

/// Generates one nested fork-join DAG (single source/sink by construction).
[[nodiscard]] graph::Dag generate_fork_join(const ForkJoinParams& params,
                                            Rng& rng);

}  // namespace hedra::gen
