#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace hedra::stats {

Summary summarize(const std::vector<double>& values) {
  HEDRA_REQUIRE(!values.empty(), "cannot summarize an empty sample");
  Summary s;
  s.count = values.size();
  double total = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (const double v : values) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(s.count);
  if (s.count >= 2) {
    double acc = 0.0;
    for (const double v : values) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(s.count - 1));
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double mean(const std::vector<double>& values) {
  return summarize(values).mean;
}

double percentile(std::vector<double> values, double p) {
  HEDRA_REQUIRE(!values.empty(), "cannot take percentile of an empty sample");
  HEDRA_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double w = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - w) + values[hi] * w;
}

double percentage_change(double a, double b) {
  HEDRA_REQUIRE(b != 0.0, "percentage change with zero reference");
  return 100.0 * (a - b) / b;
}

}  // namespace hedra::stats
