#include "stats/series.h"

#include <cmath>
#include <limits>

#include "util/error.h"

namespace hedra::stats {

std::vector<double> Series::xs() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& [x, _] : samples_) out.push_back(x);
  return out;
}

Summary Series::at(double x) const {
  const auto it = samples_.find(x);
  HEDRA_REQUIRE(it != samples_.end(), "series has no samples at this x");
  return summarize(it->second);
}

std::vector<std::pair<double, double>> Series::mean_points() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(samples_.size());
  for (const auto& [x, ys] : samples_) out.emplace_back(x, mean(ys));
  return out;
}

double Series::global_max() const {
  HEDRA_REQUIRE(!samples_.empty(), "empty series");
  double best = -std::numeric_limits<double>::infinity();
  for (const auto& [_, ys] : samples_) {
    for (const double y : ys) best = std::max(best, y);
  }
  return best;
}

double Series::argmax_mean() const {
  const auto points = mean_points();
  HEDRA_REQUIRE(!points.empty(), "empty series");
  double best_x = points.front().first;
  double best_y = points.front().second;
  for (const auto& [x, y] : points) {
    if (y > best_y) {
      best_y = y;
      best_x = x;
    }
  }
  return best_x;
}

double Series::first_sign_change() const {
  const auto points = mean_points();
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double prev = points[i - 1].second;
    const double curr = points[i].second;
    if ((prev < 0.0 && curr >= 0.0) || (prev >= 0.0 && curr < 0.0)) {
      return points[i].first;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace hedra::stats
