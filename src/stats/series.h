#pragma once

/// \file series.h
/// (x, y)-series accumulation for the figure harnesses: samples are grouped
/// by x key (e.g. the C_off/vol ratio) and summarised per group.

#include <map>
#include <string>
#include <vector>

#include "stats/descriptive.h"

namespace hedra::stats {

/// Accumulates y samples per x key; x keys are kept in ascending order.
class Series {
 public:
  explicit Series(std::string name = "") : name_(std::move(name)) {}

  void add(double x, double y) { samples_[x].push_back(y); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Ascending x keys.
  [[nodiscard]] std::vector<double> xs() const;

  /// Summary of the samples at an exact x key; throws if absent.
  [[nodiscard]] Summary at(double x) const;

  /// (x, mean) pairs for every key.
  [[nodiscard]] std::vector<std::pair<double, double>> mean_points() const;

  /// Largest sample across all keys; throws when empty.
  [[nodiscard]] double global_max() const;

  /// x of the key with the largest mean; throws when empty.
  [[nodiscard]] double argmax_mean() const;

  /// First x (ascending) at which the mean changes sign from the previous
  /// key's mean — the crossover the paper reports for Figures 6 and 9.
  /// Returns NaN when no sign change occurs.
  [[nodiscard]] double first_sign_change() const;

 private:
  std::string name_;
  std::map<double, std::vector<double>> samples_;
};

}  // namespace hedra::stats
