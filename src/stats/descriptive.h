#pragma once

/// \file descriptive.h
/// Descriptive statistics for the Monte-Carlo experiments: every figure in
/// the paper reports an average over 100 random DAGs per parameter point,
/// and §5.4 additionally reports maxima.

#include <vector>

namespace hedra::stats {

/// Summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 if n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes all summary fields.  Throws hedra::Error on an empty sample.
[[nodiscard]] Summary summarize(const std::vector<double>& values);

[[nodiscard]] double mean(const std::vector<double>& values);

/// Linear-interpolation percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// The paper's §5.2 footnote: "the percentage change computes the relative
/// change of two values": 100 · (a − b) / b.  Throws if b == 0.
[[nodiscard]] double percentage_change(double a, double b);

}  // namespace hedra::stats
