/// \file fig6_transform_impact.cpp
/// Reproduces Figure 6 (§5.2): percentage change of the average simulated
/// execution time of the original task τ with respect to the transformed
/// task τ', under the GOMP-style work-conserving breadth-first scheduler,
/// for m = 2/4/8/16 and C_off/vol from 1% to 70%.
///
/// Paper shape to compare against: the transformation *hurts* for small
/// offloads (τ faster by ~3% at m=2 ... ~15% at m=16 when C_off = 1% of
/// vol), crossovers near 11/8/6/4.5% of vol for m = 2/4/8/16, then the
/// transformation wins (τ slower by ~24% at m=2 around C_off = 28%).

#include <cstdio>
#include <iostream>

#include "exp/fig6.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser(
      "fig6_transform_impact",
      "Figure 6: average-performance impact of the DAG transformation");
  const auto* dags = parser.add_int("dags", 100, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* min_nodes = parser.add_int("min-nodes", 100, "minimum DAG size");
  const auto* max_nodes = parser.add_int("max-nodes", 250, "maximum DAG size");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig6Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.params.min_nodes = static_cast<int>(*min_nodes);
    config.params.max_nodes = static_cast<int>(*max_nodes);

    std::cout << "== Figure 6: % change of avg execution time of tau vs tau' "
                 "(breadth-first scheduler) ==\n"
              << "n in [" << *min_nodes << ", " << *max_nodes << "], "
              << *dags << " DAGs/point, seed " << *seed << "\n\n";
    const auto result = hedra::exp::run_fig6(config);
    std::cout << hedra::exp::render_fig6(result);
    if (!csv->empty()) {
      hedra::exp::write_fig6_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
