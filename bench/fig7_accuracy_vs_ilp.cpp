/// \file fig7_accuracy_vs_ilp.cpp
/// Reproduces Figure 7 (§5.3): increment of R_hom(τ) and R_het(τ') over the
/// true minimum makespan of τ on m cores + 1 accelerator.  The paper used a
/// CPLEX ILP limited to small tasks; hedra uses its exact branch-and-bound
/// solver (see DESIGN.md), which proves optimality on these sizes.  The
/// "proven optimal" column reports the fraction of instances the solver
/// closed within its budget.
///
/// Paper shape: R_het pessimism starts high for tiny C_off (19%/54% above
/// the optimum for m=2/8) and decays below 1% once C_off reaches ~48%/24.5%
/// of vol; R_hom is more accurate only below ~3.1%/11.2%.

#include <iostream>

#include "exp/fig7.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig7_accuracy_vs_ilp",
                          "Figure 7: bound accuracy vs. minimum makespan");
  const auto* dags = parser.add_int("dags", 20, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* time_limit =
      parser.add_real("time-limit", 1.0, "solver seconds per instance");
  const auto* max_nodes =
      parser.add_int("solver-nodes", 300000, "solver node budget");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  const auto* solver_jobs = parser.add_int(
      "solver-jobs", 1,
      "threads per B&B solve (work-stealing search; only effective with "
      "--jobs 1, 0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig7Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.solver.time_limit_sec = *time_limit;
    config.solver.max_nodes = static_cast<std::uint64_t>(*max_nodes);
    config.solver.jobs = static_cast<int>(*solver_jobs);

    std::cout << "== Figure 7: increment of R_hom / R_het over the minimum "
                 "makespan (exact solver) ==\n"
              << "cases: m=2 n in [3,20]; m=8 n in [30,60]; " << *dags
              << " DAGs/point, seed " << *seed << "\n\n";
    const auto result = hedra::exp::run_fig7(config);
    std::cout << hedra::exp::render_fig7(result);
    if (!csv->empty()) {
      hedra::exp::write_fig7_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
