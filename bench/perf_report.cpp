/// \file perf_report.cpp
/// The repo's recorded performance baseline: times the Monte-Carlo
/// pipeline's hot kernels single-threaded and emits machine-readable JSON.
///
/// Every kernel exercises a *stable public entry point* (simulate,
/// exact::min_makespan, AnalysisCache, run_fig10, the graph algorithms), so
/// the same harness builds before and after an optimisation and the two JSON
/// files diff into a speedup table — BENCH_PR3.json in the repo root records
/// the first such pair (flat CSR snapshots + event-heap simulator +
/// incremental B&B).  CI runs `perf_report --quick` as a smoke test and
/// validates the emitted schema (scripts/validate_perf_report.py).
///
/// Baseline kernels run single-threaded by design: the per-DAG constants
/// measured here compose multiplicatively with the experiment engine's
/// `--jobs N` fan-out.  The bnb_parallel_* pair is the exception — it times
/// the work-stealing exact solver at jobs 1 vs. all hardware threads, so the
/// report records the machine's `hardware_concurrency` (a jobs-N sample on a
/// 1-thread container is honest but shows no speedup).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis_cache.h"
#include "analysis/batch_kernels.h"
#include "dense_dag.h"
#include "exact/bnb.h"
#include "exp/experiment.h"
#include "exp/fig10.h"
#include "exp/fig11.h"
#include "exp/fig12.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "sim/scheduler.h"
#include "taskset/gen.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using hedra::Rng;
using hedra::graph::Dag;
using hedra::graph::NodeId;

struct Counter {
  std::string name;
  double value;
};

struct Benchmark {
  std::string name;
  std::string unit;   ///< unit of `value` (lower is better)
  double value = 0;   ///< best (minimum) over the repetitions
  int iterations = 0;
  std::vector<Counter> counters;  ///< derived rates etc. (higher is better)
};

double json_number(double v) { return v < 0 ? 0.0 : v; }

std::string to_json(const std::vector<Benchmark>& benchmarks, bool quick,
                    int parallel_jobs) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  // v2 replaces v1's "single_threaded": true — the report is still measured
  // one kernel at a time, but the bnb_parallel_* kernels use worker threads,
  // so the report records how many ("jobs") and what the machine offers.
  os << "{\n"
     << "  \"schema\": \"hedra-perf-report-v2\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"jobs\": " << parallel_jobs << ",\n"
     << "  \"hardware_concurrency\": " << hedra::ThreadPool::default_workers()
     << ",\n"
     << "  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const Benchmark& b = benchmarks[i];
    os << "    {\"name\": \"" << b.name << "\", \"unit\": \"" << b.unit
       << "\", \"value\": " << json_number(b.value)
       << ", \"iterations\": " << b.iterations;
    if (!b.counters.empty()) {
      os << ", \"counters\": {";
      for (std::size_t c = 0; c < b.counters.size(); ++c) {
        os << "\"" << b.counters[c].name
           << "\": " << json_number(b.counters[c].value)
           << (c + 1 < b.counters.size() ? ", " : "");
      }
      os << "}";
    }
    os << "}" << (i + 1 < benchmarks.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

/// Runs `body` `reps` times and returns the minimum wall-clock milliseconds.
template <typename Body>
double best_ms(int reps, Body&& body) {
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

std::vector<Dag> make_batch(int count, int num_devices, double ratio,
                            std::uint64_t seed, int min_nodes, int max_nodes) {
  hedra::exp::BatchConfig config;
  config.params = hedra::gen::HierarchicalParams::large_tasks_100_250();
  config.params.min_nodes = min_nodes;
  config.params.max_nodes = max_nodes;
  config.params.num_devices = num_devices;
  config.coff_ratio = ratio;
  config.count = count;
  config.seed = seed;
  return hedra::exp::generate_batch(config);
}

}  // namespace

int main(int argc, char** argv) {
  hedra::ArgParser parser("perf_report",
                          "times the pipeline's hot kernels and emits JSON");
  const auto* quick = parser.add_flag(
      "quick", "smoke mode: tiny workloads, one repetition (for CI)");
  // Deliberately NOT BENCH_PR3.json: that file is the committed before/after
  // baseline (a different, merged schema) and must not be clobbered by an
  // argless run from the repo root.
  const auto* out = parser.add_string("out", "perf_report.json",
                                      "output JSON path (- = stdout)");
  try {
    if (!parser.parse(argc, argv)) return 0;
    const bool q = *quick;
    const int reps = q ? 1 : 5;
    // Thread count for the bnb_parallel_* jobsN kernel (and the report's
    // top-level "jobs" field): everything the machine offers.
    const int parallel_jobs = hedra::ThreadPool::default_workers();
    std::vector<Benchmark> benchmarks;
    const auto record = [&](std::string name, std::string unit, double value,
                            std::vector<Counter> counters = {}) {
      benchmarks.push_back(Benchmark{std::move(name), std::move(unit), value,
                                     reps, std::move(counters)});
      const Benchmark& b = benchmarks.back();
      std::cerr << "  " << b.name << ": " << b.value << " " << b.unit << "\n";
    };

    // -- End-to-end: the fig10 simulated-policy sweep, single-threaded.
    {
      hedra::exp::Fig10Config config;
      config.devices = {1, 2, 3};
      config.ratios = {0.10, 0.30};
      config.cores = {2, 8};
      config.dags_per_point = q ? 2 : 6;
      config.seed = 7;
      config.jobs = 1;
      const double ms =
          best_ms(reps, [&] { (void)hedra::exp::run_fig10(config); });
      record("fig10_sweep", "ms", ms);
    }

    // -- End-to-end: the fig11 unit-multiplicity sweep (PR 4), same batch
    //    evaluated under n_d ∈ {1, 2, 3} units per class.
    {
      hedra::exp::Fig11Config config;
      config.devices = 2;
      config.units = {1, 2, 3};
      config.ratios = {0.10, 0.30};
      config.cores = {2, 8};
      config.dags_per_point = q ? 2 : 6;
      config.seed = 9;
      config.jobs = 1;
      const double ms =
          best_ms(reps, [&] { (void)hedra::exp::run_fig11(config); });
      record("fig11_sweep", "ms", ms);
    }

    // -- End-to-end: the fig12 taskset admission + shared-device
    //    simulation sweep (PR 5), single-threaded.
    {
      hedra::exp::Fig12Config config;
      config.utilizations = {0.25, 0.75};
      config.devices = {1, 2};
      config.units = {1, 2};
      config.cores = {4};
      config.num_tasks = 3;
      config.tasksets_per_point = q ? 2 : 6;
      config.jobs_per_task = 2;
      config.seed = 13;
      config.jobs = 1;
      const double ms =
          best_ms(reps, [&] { (void)hedra::exp::run_fig12(config); });
      record("fig12_sweep", "ms", ms);
    }

    // -- Batched anomaly runs: simulate_with_times over ONE cached CSR
    //    snapshot per DAG (the shape the property/anomaly sweeps use since
    //    they stopped re-snapshotting per call).
    {
      const auto batch =
          make_batch(q ? 2 : 8, /*devices=*/2, 0.25, 17, 60, 120);
      // Actual times are drawn ONCE, outside the timed body, so every
      // repetition measures identical work (min-over-reps stays a valid
      // regression reference).
      hedra::Rng rng(17);
      std::vector<std::vector<hedra::graph::Time>> actuals;
      actuals.reserve(batch.size());
      for (const Dag& dag : batch) {
        actuals.push_back(hedra::sim::random_actual_times(dag, 0.3, rng));
      }
      const double ms = best_ms(reps, [&] {
        for (std::size_t i = 0; i < batch.size(); ++i) {
          hedra::analysis::AnalysisCache cache(batch[i]);
          for (const auto policy : hedra::sim::all_policies()) {
            hedra::sim::SimConfig config;
            config.cores = 8;
            config.policy = policy;
            config.validate = false;
            (void)hedra::sim::simulate_with_times(cache.flat(), config,
                                                  actuals[i]);
          }
        }
      });
      record("sim_with_times_batch", "us_per_sim",
             1000.0 * ms /
                 static_cast<double>(batch.size() *
                                     hedra::sim::all_policies().size()));
    }

    // -- Simulation, per ready-queue policy (m = 8, K = 2 DAGs).
    {
      const auto batch =
          make_batch(q ? 4 : 16, /*devices=*/2, 0.25, 11, 100, 250);
      for (const auto policy : hedra::sim::all_policies()) {
        hedra::sim::SimConfig config;
        config.cores = 8;
        config.policy = policy;
        const double ms = best_ms(reps, [&] {
          for (const Dag& dag : batch) {
            (void)hedra::sim::simulated_makespan(dag, config);
          }
        });
        record(std::string("sim_") + hedra::sim::to_string(policy),
               "us_per_sim", 1000.0 * ms / static_cast<double>(batch.size()));
      }
    }

    // -- Exact solver: fig7 size classes, pure node budget.
    {
      const struct {
        const char* name;
        int m, min_nodes, max_nodes;
        std::uint64_t seed;
      } cases[] = {{"bnb_small_m2", 2, 3, 20, 21},
                   {"bnb_fig7_m8", 8, 30, 60, 22}};
      for (const auto& c : cases) {
        hedra::exp::BatchConfig batch_config;
        batch_config.params = hedra::gen::HierarchicalParams::small_tasks();
        batch_config.params.min_nodes = c.min_nodes;
        batch_config.params.max_nodes = c.max_nodes;
        batch_config.coff_ratio = 0.35;
        batch_config.count = q ? 4 : 20;
        batch_config.seed = c.seed;
        const auto batch = hedra::exp::generate_batch(batch_config);
        hedra::exact::BnbConfig solver;
        solver.max_nodes = 5'000'000;
        solver.time_limit_sec = 300.0;
        std::uint64_t nodes = 0;
        const double ms = best_ms(reps, [&] {
          nodes = 0;
          for (const Dag& dag : batch) {
            nodes += hedra::exact::min_makespan(dag, c.m, solver)
                         .nodes_explored;
          }
        });
        record(c.name, "ms",
               ms,
               {{"nodes", static_cast<double>(nodes)},
                {"nodes_per_sec",
                 ms > 0 ? 1000.0 * static_cast<double>(nodes) / ms : 0}});
      }
    }

    // -- Work-stealing exact solver (PR 6): the bnb_small_m2 workload at
    //    jobs = 1 (sequential DFS) vs. jobs = hardware threads.  On a
    //    multi-core machine the jobsN row divides the jobs1 row by ~the
    //    core count; the recorded hardware_concurrency says which it was.
    {
      hedra::exp::BatchConfig batch_config;
      batch_config.params = hedra::gen::HierarchicalParams::small_tasks();
      batch_config.params.min_nodes = 3;
      batch_config.params.max_nodes = 20;
      batch_config.coff_ratio = 0.35;
      batch_config.count = q ? 4 : 20;
      batch_config.seed = 21;
      const auto batch = hedra::exp::generate_batch(batch_config);
      // jobsN is named by role, not thread count: on a 1-thread machine it
      // degenerates to another sequential run (its "jobs" counter says so).
      const struct {
        const char* name;
        int jobs;
      } modes[] = {{"bnb_parallel_small_m2_jobs1", 1},
                   {"bnb_parallel_small_m2_jobsN", parallel_jobs}};
      for (const auto& mode : modes) {
        hedra::exact::BnbConfig solver;
        solver.max_nodes = 5'000'000;
        solver.time_limit_sec = 300.0;
        solver.jobs = mode.jobs;
        std::uint64_t nodes = 0;
        const double ms = best_ms(reps, [&] {
          nodes = 0;
          for (const Dag& dag : batch) {
            nodes +=
                hedra::exact::min_makespan(dag, 2, solver).nodes_explored;
          }
        });
        record(mode.name, "ms", ms,
               {{"jobs", static_cast<double>(mode.jobs)},
                {"nodes", static_cast<double>(nodes)},
                {"nodes_per_sec",
                 ms > 0 ? 1000.0 * static_cast<double>(nodes) / ms : 0}});
      }
    }

    // -- Platform RTA: per-DAG K-device bound across the paper's m grid.
    {
      const auto batch = make_batch(q ? 4 : 32, 3, 0.3, 31, 100, 250);
      const double ms = best_ms(reps, [&] {
        for (const Dag& dag : batch) {
          hedra::analysis::AnalysisCache cache(dag);
          for (const int m : {2, 4, 8, 16}) {
            (void)cache.r_platform(m);
          }
        }
      });
      record("platform_rta_cache", "us_per_dag",
             1000.0 * ms / static_cast<double>(batch.size()));
    }

    // -- SoA arena pipeline (PR 7): legacy per-Dag batch generation vs the
    //    arena-writing generator on the identical RNG stream, then the
    //    whole-batch vectorized K-device analysis over the arena (the
    //    analyze_platform_batch entry the sweeps consume).
    {
      hedra::exp::BatchConfig config;
      config.params = hedra::gen::HierarchicalParams::large_tasks_100_250();
      config.params.num_devices = 3;
      config.coff_ratio = 0.3;
      config.count = q ? 4 : 32;
      config.seed = 31;
      const auto count = static_cast<double>(config.count);
      const double legacy_ms =
          best_ms(reps, [&] { (void)hedra::exp::generate_batch(config); });
      record("batch_generation_legacy", "us_per_dag",
             1000.0 * legacy_ms / count);
      hedra::graph::FlatDagBatch arena;
      const double arena_ms =
          best_ms(reps, [&] { arena = hedra::exp::generate_flat_batch(config); });
      record("batch_generation_arena", "us_per_dag",
             1000.0 * arena_ms / count);
      const std::vector<int> cores{2, 4, 8, 16};
      const double rta_ms = best_ms(reps, [&] {
        (void)hedra::analysis::analyze_platform_batch(arena, cores);
      });
      record("platform_rta_batch", "us_per_dag",
             1000.0 * rta_ms / static_cast<double>(arena.size()),
             {{"backend_avx2",
               std::string(hedra::analysis::batch_kernel_backend()) == "avx2"
                   ? 1.0
                   : 0.0}});
    }

    // -- Admission service (PR 8): decision latency against a WARM
    //    snapshot.  A journal pre-loaded with a large admitted set is
    //    replayed once (setup), then each timed decision — one feasible
    //    admit plus the leave that restores the baseline — re-runs the
    //    exact contention fixpoint over the full set, which is what a
    //    long-lived daemon pays per request.  Tracks the ROADMAP item 2
    //    throughput target.
    {
      // Pure-host DAGs: the per-device carry-in sum grows linearly in the
      // task count, so a 1k-task set sharing two accelerator classes is
      // structurally inadmissible — and a daemon never *holds* a state it
      // would not have admitted.  The warm-state cost being tracked is the
      // federated partition over n tasks, which is device-independent.
      const int warm_tasks = q ? 64 : 1000;
      hedra::taskset::TaskSetGenConfig gen_config;
      gen_config.num_tasks = warm_tasks;
      gen_config.total_utilization = 0.25 * warm_tasks;
      gen_config.dag_params = hedra::gen::HierarchicalParams::small_tasks();
      gen_config.dag_params.min_nodes = 10;
      gen_config.dag_params.max_nodes = 40;
      gen_config.dag_params.num_devices = 0;
      gen_config.cores = warm_tasks + 64;  // federated: heavy tasks take
                                           // several cores; keep spares
                                           // for the candidate under test
      hedra::Rng gen_rng(71);
      hedra::taskset::TaskSet warm =
          hedra::taskset::generate_task_set(gen_config, gen_rng);
      // A daemon only ever HOLDS tasks it admitted, but UUniFast at this
      // scale can draw a structurally infeasible task (period floored at
      // the critical path) that poisons the greedy partition — apply the
      // daemon's own admission filter offline until the warm set is a
      // state the service would genuinely be in.
      for (int round = 0; round < 5; ++round) {
        const auto verdict = hedra::taskset::contention_rta(warm);
        if (verdict.schedulable) break;
        hedra::taskset::TaskSet kept(warm.platform());
        for (std::size_t i = 0; i < warm.size(); ++i) {
          if (verdict.tasks[i].schedulable) kept.add(warm[i]);
        }
        warm = std::move(kept);
      }

      // Warm snapshot via journal replay: one analysis over the full set in
      // the service constructor instead of N incremental admissions.
      const std::string journal_path = "perf_admission_warm.journal";
      std::remove(journal_path.c_str());
      {
        hedra::serve::Journal journal(journal_path);
        journal.append("platform " + warm.platform().spec());
        for (const auto& task : warm) {
          journal.append("admit\n" + hedra::serve::task_to_text(task));
        }
      }
      hedra::serve::AdmissionConfig admission_config;
      admission_config.platform = warm.platform();
      admission_config.journal_path = journal_path;
      hedra::serve::AdmissionService service(admission_config);

      // Candidates: small feasible tasks with names disjoint from tau*.
      hedra::taskset::TaskSetGenConfig cand_config = gen_config;
      cand_config.num_tasks = 4;
      cand_config.total_utilization = 0.25 * cand_config.num_tasks;
      hedra::Rng cand_rng(72);
      const hedra::taskset::TaskSet raw_candidates =
          hedra::taskset::generate_task_set(cand_config, cand_rng);
      std::vector<hedra::model::DagTask> candidates;
      for (std::size_t i = 0; i < raw_candidates.size(); ++i) {
        candidates.emplace_back(raw_candidates[i].dag(),
                                raw_candidates[i].period(),
                                raw_candidates[i].deadline(),
                                "cand" + std::to_string(i));
      }
      const int per_rep = q ? 1 : static_cast<int>(candidates.size());
      std::uint64_t admitted = 0;
      const double ms = best_ms(reps, [&] {
        admitted = 0;
        for (int i = 0; i < per_rep; ++i) {
          if (service.admit(candidates[static_cast<std::size_t>(i)])
                  .decision == hedra::serve::Decision::kAdmitted) {
            ++admitted;
            (void)service.leave(candidates[static_cast<std::size_t>(i)]
                                    .name());
          }
        }
      });
      // Every admit AND every restoring leave re-analyses the full set; both
      // count as decisions the daemon served.
      const double decisions = static_cast<double>(per_rep) +
                               static_cast<double>(admitted);
      record("admission_decisions_per_sec", "us_per_decision",
             1000.0 * ms / decisions,
             {{"decisions_per_sec", ms > 0 ? 1000.0 * decisions / ms : 0},
              {"warm_tasks", static_cast<double>(warm.size())},
              {"admitted", static_cast<double>(admitted)}});

      // -- Telemetry overhead (PR 10): the SAME warm decision loop with
      //    the metrics registry armed and a RequestTrace carried through
      //    every admit — exactly what the daemon pays per request under
      //    --trace-out.  The value is the metrics-ON latency; the
      //    metrics-OFF latency and the relative overhead ride along as
      //    counters, pinning the ISSUE's <= 2% budget in the report.
      {
        hedra::obs::set_enabled(true);
        hedra::obs::Tracer tracer;
        std::uint64_t traced_admitted = 0;
        std::uint64_t trace_seq = 0;
        const double on_ms = best_ms(reps, [&] {
          traced_admitted = 0;
          for (int i = 0; i < per_rep; ++i) {
            auto trace =
                std::make_unique<hedra::obs::RequestTrace>(++trace_seq);
            trace->begin("request");
            if (service
                    .admit(candidates[static_cast<std::size_t>(i)],
                           hedra::util::Deadline::never(), trace.get())
                    .decision == hedra::serve::Decision::kAdmitted) {
              ++traced_admitted;
              (void)service.leave(candidates[static_cast<std::size_t>(i)]
                                      .name());
            }
            tracer.submit(std::move(trace));
          }
        });
        hedra::obs::set_enabled(false);
        const double on_decisions = static_cast<double>(per_rep) +
                                    static_cast<double>(traced_admitted);
        const double off_us = 1000.0 * ms / decisions;
        const double on_us = 1000.0 * on_ms / on_decisions;
        record("admission_trace_overhead", "us_per_decision", on_us,
               {{"off_us_per_decision", off_us},
                {"overhead_pct",
                 off_us > 0 ? 100.0 * (on_us - off_us) / off_us : 0},
                {"traced_admitted", static_cast<double>(traced_admitted)}});
      }
      std::remove(journal_path.c_str());
    }

    // -- Theorem 1 pipeline across the m grid (single-offload DAGs).
    {
      const auto batch = make_batch(q ? 4 : 32, 0, 0.2, 41, 100, 250);
      const double ms = best_ms(reps, [&] {
        for (const Dag& dag : batch) {
          hedra::analysis::AnalysisCache cache(dag);
          for (const int m : {2, 4, 8, 16}) {
            (void)cache.r_het(m);
            (void)cache.r_hom(m);
          }
        }
      });
      record("het_analysis_cache", "us_per_dag",
             1000.0 * ms / static_cast<double>(batch.size()));
    }

    // -- Graph kernels.
    {
      const auto batch = make_batch(q ? 4 : 32, 0, 0.2, 51, 100, 250);
      const double ms = best_ms(reps, [&] {
        for (const Dag& dag : batch) {
          (void)hedra::graph::CriticalPathInfo(dag);
        }
      });
      record("critical_path", "us_per_dag",
             1000.0 * ms / static_cast<double>(batch.size()));
    }
    {
      const auto dense = hedra::benchdata::make_dense_batch(q ? 2 : 8, q ? 60 : 150, 0.08, 61);
      const double closure_ms = best_ms(reps, [&] {
        for (const Dag& dag : dense) {
          (void)hedra::graph::transitive_closure(dag);
        }
      });
      record("transitive_closure", "us_per_dag",
             1000.0 * closure_ms / static_cast<double>(dense.size()));
      const double reduction_ms = best_ms(reps, [&] {
        for (const Dag& dag : dense) {
          (void)hedra::graph::transitive_reduction(dag);
        }
      });
      record("transitive_reduction", "us_per_dag",
             1000.0 * reduction_ms / static_cast<double>(dense.size()));
    }

    const std::string json = to_json(benchmarks, q, parallel_jobs);
    if (*out == "-") {
      std::cout << json;
    } else {
      std::ofstream file(*out);
      HEDRA_REQUIRE(file.good(), "cannot open output file " + *out);
      file << json;
      std::cerr << "report written to " << *out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
