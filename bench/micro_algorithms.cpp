/// \file micro_algorithms.cpp
/// google-benchmark microbenchmarks for hedra's algorithms: DAG generation,
/// reachability, transformation (Algorithm 1), the RTA itself, simulation,
/// and the exact solver on small instances.  These quantify the cost of the
/// analysis pipeline (the paper's analysis is meant to run inside design
/// tools, so it should be fast).

#include <benchmark/benchmark.h>

#include "analysis/analysis_cache.h"
#include "analysis/batch_kernels.h"
#include "analysis/rta_heterogeneous.h"
#include "dense_dag.h"
#include "exact/bnb.h"
#include "exp/experiment.h"
#include "gen/hierarchical.h"
#include "gen/offload.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "graph/flat_dag.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace {

using hedra::Rng;
using hedra::graph::Dag;

Dag make_instance(int min_nodes, int max_nodes, std::uint64_t seed,
                  double ratio) {
  Rng rng(seed);
  hedra::gen::HierarchicalParams params;
  params.max_depth = 5;
  params.n_par = 8;
  params.min_nodes = min_nodes;
  params.max_nodes = max_nodes;
  Dag dag = hedra::gen::generate_hierarchical(params, rng);
  (void)hedra::gen::select_offload_node(dag, rng);
  (void)hedra::gen::set_offload_ratio(dag, ratio);
  return dag;
}

void BM_GenerateHierarchical(benchmark::State& state) {
  Rng rng(1);
  hedra::gen::HierarchicalParams params;
  params.max_depth = 5;
  params.n_par = 8;
  params.min_nodes = static_cast<int>(state.range(0));
  params.max_nodes = static_cast<int>(state.range(0)) * 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::gen::generate_hierarchical(params, rng));
  }
}
BENCHMARK(BM_GenerateHierarchical)->Arg(50)->Arg(100)->Arg(200);

void BM_CriticalPath(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 2, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::graph::critical_path_length(dag));
  }
}
BENCHMARK(BM_CriticalPath)->Arg(50)->Arg(200);

void BM_TransitiveClosure(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 3, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::graph::transitive_closure(dag));
  }
}
BENCHMARK(BM_TransitiveClosure)->Arg(50)->Arg(200);

void BM_TransformAlgorithm1(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 4, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::analysis::transform_for_offload(dag));
  }
}
BENCHMARK(BM_TransformAlgorithm1)->Arg(50)->Arg(100)->Arg(200);

void BM_FullHeterogeneousAnalysis(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 5, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::analysis::analyze_heterogeneous(dag, 8));
  }
}
BENCHMARK(BM_FullHeterogeneousAnalysis)->Arg(50)->Arg(100)->Arg(200);

// The figure sweeps evaluate every DAG under m = 2/4/8/16.  The next two
// benchmarks measure that inner loop before and after the AnalysisCache:
// uncached re-validates, re-transforms and re-walks the graphs per m (the
// pre-engine run_fig9 path); cached pays for the graph work once and serves
// all four core counts from arithmetic.
void BM_MultiCoreAnalysisUncached(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 8, 0.2);
  for (auto _ : state) {
    for (const int m : {2, 4, 8, 16}) {
      benchmark::DoNotOptimize(hedra::analysis::analyze_heterogeneous(dag, m));
    }
  }
}
BENCHMARK(BM_MultiCoreAnalysisUncached)->Arg(50)->Arg(100)->Arg(200);

void BM_MultiCoreAnalysisCached(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 8, 0.2);
  for (auto _ : state) {
    hedra::analysis::AnalysisCache cache(dag);
    for (const int m : {2, 4, 8, 16}) {
      benchmark::DoNotOptimize(cache.r_het(m));
      benchmark::DoNotOptimize(cache.r_hom(m));
    }
  }
}
BENCHMARK(BM_MultiCoreAnalysisCached)->Arg(50)->Arg(100)->Arg(200);

void BM_SimulateBreadthFirst(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 6, 0.2);
  hedra::sim::SimConfig config;
  config.cores = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::sim::simulated_makespan(dag, config));
  }
}
BENCHMARK(BM_SimulateBreadthFirst)->Arg(50)->Arg(200);

// One benchmark per ready-queue policy over a shared CSR snapshot with
// validation off — the exact shape of the fig10 Monte-Carlo inner loop.
void BM_SimulatePolicySweepShape(benchmark::State& state) {
  const Dag dag = make_instance(100, 250, 6, 0.2);
  const hedra::graph::FlatDag flat(dag);
  const auto policy =
      hedra::sim::all_policies()[static_cast<std::size_t>(state.range(0))];
  hedra::sim::SimConfig config;
  config.cores = 8;
  config.policy = policy;
  config.validate = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::sim::simulated_makespan(flat, config));
  }
  state.SetLabel(hedra::sim::to_string(policy));
}
BENCHMARK(BM_SimulatePolicySweepShape)->DenseRange(0, 4);

void BM_FlatDagBuild(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 9, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::graph::FlatDag(dag));
  }
}
BENCHMARK(BM_FlatDagBuild)->Arg(50)->Arg(200);

void BM_PlatformRtaCached(benchmark::State& state) {
  const Dag dag =
      make_instance(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)) * 2, 10, 0.2);
  for (auto _ : state) {
    hedra::analysis::AnalysisCache cache(dag);
    for (const int m : {2, 4, 8, 16}) {
      benchmark::DoNotOptimize(cache.r_platform(m));
    }
  }
}
BENCHMARK(BM_PlatformRtaCached)->Arg(50)->Arg(200);

void BM_TransitiveReduction(benchmark::State& state) {
  // Dense random id-ordered DAG: plenty of redundant edges, the workload
  // the sorted-lookup rewrite targets.
  const Dag dag = std::move(hedra::benchdata::make_dense_batch(
      1, static_cast<int>(state.range(0)), 0.1, 11)[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::graph::transitive_reduction(dag));
  }
}
BENCHMARK(BM_TransitiveReduction)->Arg(60)->Arg(150);

// The SoA arena pipeline (PR 7): whole-batch generation into one arena vs
// the legacy vector<Dag> path on the identical RNG stream, and the batched
// analysis kernels over the arena's flat arrays.
hedra::exp::BatchConfig arena_batch_config(int count) {
  hedra::exp::BatchConfig config;
  config.params = hedra::gen::HierarchicalParams::large_tasks_100_250();
  config.params.num_devices = 3;
  config.coff_ratio = 0.3;
  config.count = count;
  config.seed = 31;
  return config;
}

void BM_BatchGenerateLegacy(benchmark::State& state) {
  const auto config = arena_batch_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::exp::generate_batch(config));
  }
}
BENCHMARK(BM_BatchGenerateLegacy)->Arg(8)->Arg(32);

void BM_BatchGenerateArena(benchmark::State& state) {
  const auto config = arena_batch_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::exp::generate_flat_batch(config));
  }
}
BENCHMARK(BM_BatchGenerateArena)->Arg(8)->Arg(32);

void BM_BatchDeviceVolumes(benchmark::State& state) {
  const auto batch = hedra::exp::generate_flat_batch(
      arena_batch_config(static_cast<int>(state.range(0))));
  std::vector<hedra::graph::Time> volumes;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const hedra::graph::FlatView view = batch.view(i);
      volumes.assign(view.max_device() + 1, 0);
      hedra::analysis::accumulate_device_volumes(view.wcets(), view.devices(),
                                                 volumes);
      benchmark::DoNotOptimize(volumes.data());
    }
  }
  state.SetLabel(hedra::analysis::batch_kernel_backend());
}
BENCHMARK(BM_BatchDeviceVolumes)->Arg(32);

void BM_BatchPlatformRta(benchmark::State& state) {
  const auto batch = hedra::exp::generate_flat_batch(
      arena_batch_config(static_cast<int>(state.range(0))));
  const std::vector<int> cores{2, 4, 8, 16};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hedra::analysis::analyze_platform_batch(batch, cores));
  }
}
BENCHMARK(BM_BatchPlatformRta)->Arg(8)->Arg(32);

void BM_ExactSolverSmall(benchmark::State& state) {
  const Dag dag = make_instance(8, static_cast<int>(state.range(0)), 7, 0.3);
  hedra::exact::BnbConfig config;
  config.time_limit_sec = 5.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hedra::exact::min_makespan(dag, 2, config));
  }
}
BENCHMARK(BM_ExactSolverSmall)->Arg(12)->Arg(20);

// Node throughput of the B&B search: a batch with real search gaps, pure
// node budget, reported as nodes/second.
void BM_ExactSolverNodeThroughput(benchmark::State& state) {
  hedra::exp::BatchConfig batch_config;
  batch_config.params = hedra::gen::HierarchicalParams::small_tasks();
  batch_config.params.min_nodes = 3;
  batch_config.params.max_nodes = 20;
  batch_config.coff_ratio = 0.35;
  batch_config.count = 10;
  batch_config.seed = 21;
  const auto batch = hedra::exp::generate_batch(batch_config);
  hedra::exact::BnbConfig config;
  config.max_nodes = 500'000;
  config.time_limit_sec = 300.0;
  std::uint64_t nodes = 0;
  for (auto _ : state) {
    for (const Dag& dag : batch) {
      const auto result = hedra::exact::min_makespan(dag, 2, config);
      nodes += result.nodes_explored;
      benchmark::DoNotOptimize(result.makespan);
    }
  }
  state.counters["nodes_per_sec"] = benchmark::Counter(
      static_cast<double>(nodes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExactSolverNodeThroughput);

}  // namespace
