/// \file fig10_multi_device.cpp
/// Figure 10 (extension): the multi-device sweep the Platform model unlocks.
/// For K = 1..max accelerator device classes and a grid of total offloaded
/// ratios, compares the generalised K-device chain bound R_plat against the
/// simulated makespan of every work-conserving ready-queue policy, per core
/// count m.  Soundness (no policy above the bound, exact rationals) and
/// tightness (mean slack vs the worst policy) are reported per (K, m).

#include <iostream>

#include "exp/fig10.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig10_multi_device",
                          "Figure 10: K-device platform bound vs simulation");
  const auto* dags = parser.add_int("dags", 25, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* max_devices =
      parser.add_int("max-devices", 4, "sweep K = 1..max accelerator devices");
  const auto* per_device =
      parser.add_int("per-device", 1, "offload nodes per device");
  const auto* min_nodes = parser.add_int("min-nodes", 100, "minimum DAG size");
  const auto* max_nodes = parser.add_int("max-nodes", 250, "maximum DAG size");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig10Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.offloads_per_device = static_cast<int>(*per_device);
    config.params.min_nodes = static_cast<int>(*min_nodes);
    config.params.max_nodes = static_cast<int>(*max_nodes);
    config.devices.clear();
    for (int k = 1; k <= static_cast<int>(*max_devices); ++k) {
      config.devices.push_back(k);
    }

    std::cout << "== Figure 10: K-device platform bound vs every "
                 "work-conserving policy ==\n"
              << "K in [1, " << *max_devices << "], " << *per_device
              << " offload(s)/device, n in [" << *min_nodes << ", "
              << *max_nodes << "], " << *dags << " DAGs/point, seed " << *seed
              << "\n\n";
    const auto result = hedra::exp::run_fig10(config);
    std::cout << hedra::exp::render_fig10(result);
    if (!csv->empty()) {
      hedra::exp::write_fig10_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
