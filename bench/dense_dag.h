#pragma once

/// \file dense_dag.h
/// Shared bench workload: random id-ordered DAGs dense enough to carry many
/// transitive edges.  The hierarchical generator emits transitively reduced
/// graphs, which would make the reduction kernels trivial — so the
/// transitive-closure/reduction benchmarks (perf_report and
/// micro_algorithms) build from this instead, and must keep measuring the
/// same workload shape.

#include <cstdint>
#include <vector>

#include "graph/dag.h"
#include "util/rng.h"

namespace hedra::benchdata {

/// `count` DAGs of `n` nodes with WCETs in [1, 100] and each forward edge
/// (u, w), u < w, present with probability `p`.
inline std::vector<graph::Dag> make_dense_batch(int count, int n, double p,
                                                std::uint64_t seed) {
  std::vector<graph::Dag> batch;
  Rng rng(seed);
  for (int k = 0; k < count; ++k) {
    graph::Dag dag;
    for (int v = 0; v < n; ++v) {
      dag.add_node(rng.uniform_int(1, 100));
    }
    for (int u = 0; u < n; ++u) {
      for (int w = u + 1; w < n; ++w) {
        if (rng.bernoulli(p)) {
          dag.add_edge(static_cast<graph::NodeId>(u),
                       static_cast<graph::NodeId>(w));
        }
      }
    }
    batch.push_back(std::move(dag));
  }
  return batch;
}

}  // namespace hedra::benchdata
