/// \file admissiond.cpp
/// The admission-control daemon: hedra's contention-RTA (taskset/
/// contention_rta.h, the paper's federated admission test hardened with
/// per-request deadlines) behind a line protocol on stdin/stdout.
///
///     admissiond --platform 4:gpu*2,dsp --journal /var/lib/hedra.journal
///
/// speaks the protocol of serve/protocol.h: ADMIT (with a dag_io body
/// terminated by `endtask`), LEAVE, STATUS, QUIT.  Restarting with the same
/// --journal replays the admitted state bit-identically.
///
/// `--smoke` is the self-checking mode CI runs: it generates random task
/// sets with the fig12 generator, pipes every task through the daemon's
/// own protocol loop (real journal, real parser, real deadlines), and
/// re-derives each decision with the offline exact-rational contention_rta
/// — any divergence (an ADMIT the offline test rejects, or vice versa) is
/// a hard failure.  PROVISIONAL answers are checked for fail-closedness
/// only: they must never correspond to an applied admission.
///
/// `--faults '<spec>'` (or HEDRA_FAULTS in the environment) arms the fault
/// registry first, so the smoke doubles as a fail-closed property check
/// under injected faults.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dag_io.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "taskset/gen.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/fault.h"

namespace {

using hedra::serve::AdmissionConfig;
using hedra::serve::AdmissionService;
using hedra::serve::ServerConfig;
using hedra::serve::ServerStats;

/// Pipes `count` generated task sets through a fresh service's protocol
/// loop and cross-checks every decision offline.  Returns the number of
/// divergences (0 = pass).
int run_smoke(int count, int tasks_per_set, std::uint64_t seed,
              const ServerConfig& server_config) {
  hedra::taskset::TaskSetGenConfig gen_config;
  gen_config.num_tasks = tasks_per_set;
  gen_config.total_utilization = 2.5;
  gen_config.dag_params.max_depth = 3;
  gen_config.dag_params.n_par = 4;
  gen_config.dag_params.min_nodes = 10;
  gen_config.dag_params.max_nodes = 40;
  gen_config.dag_params.wcet_max = 50;
  gen_config.dag_params.num_devices = 2;
  gen_config.cores = 4;
  const std::vector<hedra::taskset::TaskSet> sets =
      hedra::taskset::generate_taskset_batch(gen_config, count, seed);

  // Two severities: an unsound ADMIT is fatal always; a softer mismatch
  // (REJECT/PROVISIONAL/ERROR where offline admits) is under-admission —
  // fatal only when nothing can legitimately truncate the analysis, i.e.
  // expected fail-closed behaviour under armed faults or a per-request
  // deadline.
  const bool lenient = hedra::fault::enabled() ||
                       server_config.request_deadline_sec > 0.0;
  int unsound = 0;
  int mismatches = 0;
  int checked = 0;

  // Phase 1: drive every set through the daemon's protocol loop — with any
  // armed faults live.  Outputs and final state sizes are collected so the
  // offline referee below can run with injection DISABLED (the referee
  // shares the instrumented analysis code; a fault firing inside the
  // referee would corrupt the verdict it is refereeing).
  std::vector<std::string> outputs;
  std::vector<std::size_t> final_sizes;
  for (int si = 0; si < count; ++si) {
    const hedra::taskset::TaskSet& set = sets[static_cast<std::size_t>(si)];
    std::ostringstream script;
    for (const auto& task : set) {
      script << "ADMIT " << task.name() << " period " << task.period()
             << " deadline " << task.deadline() << "\n"
             << hedra::graph::write_dag_text(task.dag()) << "endtask\n";
    }
    script << "QUIT\n";
    std::istringstream in(script.str());
    std::ostringstream out;

    AdmissionConfig config;
    config.platform = set.platform();
    AdmissionService service(config);
    (void)hedra::serve::run_server(in, out, service, server_config);
    outputs.push_back(out.str());
    final_sizes.push_back(service.snapshot()->set.size());
  }
  hedra::fault::reset();

  // Phase 2: the offline referee replays the same incremental admissions
  // with the unlimited exact-rational test.  The daemon's ADMIT set must
  // match the referee's exactly (sans faults); PROVISIONAL/REJECT/ERROR
  // answers must correspond to tasks the daemon did NOT apply.
  for (int si = 0; si < count; ++si) {
    const hedra::taskset::TaskSet& set = sets[static_cast<std::size_t>(si)];
    hedra::taskset::TaskSet admitted(set.platform());

    // Correlate responses by task name, not order: under overload SHED
    // lines from the reader overtake queued responses (documented in
    // server.h), so positional matching would misattribute decisions.
    std::map<std::string, std::string> reply_for;
    std::istringstream responses(outputs[static_cast<std::size_t>(si)]);
    std::string line;
    while (std::getline(responses, line)) {
      std::istringstream fields(line);
      std::string decision, name;
      fields >> decision >> name;
      if (!name.empty()) reply_for.emplace(name, line);
    }

    for (const auto& task : set) {
      const auto it = reply_for.find(task.name());
      line = it == reply_for.end() ? std::string("<no response>") : it->second;
      const bool daemon_admitted = line.rfind("ADMITTED", 0) == 0;

      hedra::taskset::TaskSet candidate = admitted;
      candidate.add(task);
      const auto offline = hedra::taskset::contention_rta(candidate);
      ++checked;
      if (daemon_admitted && !offline.schedulable) {
        ++unsound;
        std::cerr << "UNSOUND ADMIT: set " << si << " task " << task.name()
                  << " ('" << line << "')\n";
      }
      if (daemon_admitted != offline.schedulable) {
        ++mismatches;
        if (!lenient) {
          std::cerr << "divergence: set " << si << " task " << task.name()
                    << ": daemon said '" << line << "', offline says "
                    << (offline.schedulable ? "SCHEDULABLE"
                                            : "NOT SCHEDULABLE")
                    << "\n";
        }
      }
      if (daemon_admitted) admitted.add(task);
    }

    // The daemon's applied state must equal its acknowledged admissions.
    // With faults armed the ACK set is recomputed from the daemon's own
    // replies, so this still holds: ADMITTED implies applied, exactly.
    std::size_t acknowledged = 0;
    std::istringstream recount(outputs[static_cast<std::size_t>(si)]);
    while (std::getline(recount, line)) {
      if (line.rfind("ADMITTED", 0) == 0) ++acknowledged;
    }
    if (final_sizes[static_cast<std::size_t>(si)] != acknowledged) {
      ++unsound;
      std::cerr << "state divergence: set " << si << " final state has "
                << final_sizes[static_cast<std::size_t>(si)]
                << " tasks, acknowledged " << acknowledged << "\n";
    }
  }
  std::cout << "smoke: " << checked << " decisions cross-checked, " << unsound
            << " unsound, " << mismatches << " mismatch(es)"
            << (lenient ? " [lenient: only unsound is fatal]" : "")
            << "\n";
  return lenient ? unsound : unsound + mismatches;
}

/// Writes `text` to `path` or throws — telemetry dumps are an explicit
/// request, so a silent write failure would be a lie to the scraper.
void write_file_or_throw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.flush();
  if (!out) throw hedra::Error("cannot write '" + path + "'");
}

}  // namespace

int main(int argc, char** argv) {
  hedra::ArgParser parser("admissiond",
                          "admission-control daemon over stdin/stdout");
  const auto* platform =
      parser.add_string("platform", "4:acc", "platform spec (model::Platform)");
  const auto* journal =
      parser.add_string("journal", "", "journal file (empty = no persistence)");
  const auto* deadline_ms = parser.add_real(
      "deadline-ms", 0.0, "per-request analysis deadline (0 = unlimited)");
  const auto* queue =
      parser.add_int("queue", 64, "bounded request queue capacity");
  const auto* faults = parser.add_string(
      "faults", "", "fault-injection spec (see util/fault.h); also reads "
                    "HEDRA_FAULTS when empty");
  const auto* fault_seed =
      parser.add_int("fault-seed", 0, "fault-injection RNG seed");
  const auto* smoke = parser.add_flag(
      "smoke", "self-check: pipe generated sets through the daemon and "
               "cross-check every decision offline");
  const auto* smoke_sets =
      parser.add_int("smoke-sets", 20, "task sets in --smoke mode");
  const auto* smoke_tasks =
      parser.add_int("smoke-tasks", 4, "tasks per set in --smoke mode");
  const auto* seed = parser.add_int("seed", 44, "generator seed (--smoke)");
  const auto* trace_out = parser.add_string(
      "trace-out", "", "write a chrome://tracing JSON of per-request spans "
                       "here on exit (enables telemetry)");
  const auto* metrics_out = parser.add_string(
      "metrics-out", "", "write a hedra-metrics-v1 JSON dump here on exit "
                         "(enables telemetry)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    if (!faults->empty()) {
      hedra::fault::configure(*faults,
                              static_cast<std::uint64_t>(*fault_seed));
    } else {
      (void)hedra::fault::install_from_env();
    }

    ServerConfig server_config;
    server_config.queue_capacity = static_cast<std::size_t>(*queue);
    server_config.request_deadline_sec = *deadline_ms / 1000.0;

    // Either output flag arms the whole telemetry layer: the metrics
    // registry records, and every request carries a span tree.
    const bool telemetry = !trace_out->empty() || !metrics_out->empty();
    hedra::obs::Tracer tracer;
    if (telemetry) {
      hedra::obs::set_enabled(true);
      server_config.tracer = &tracer;
    }
    const auto dump_telemetry = [&] {
      if (!trace_out->empty()) {
        write_file_or_throw(*trace_out, tracer.chrome_trace_json());
      }
      if (!metrics_out->empty()) {
        write_file_or_throw(*metrics_out, hedra::obs::metrics_json());
      }
    };

    if (*smoke) {
      const int divergences =
          run_smoke(static_cast<int>(*smoke_sets),
                    static_cast<int>(*smoke_tasks),
                    static_cast<std::uint64_t>(*seed), server_config);
      dump_telemetry();
      return divergences == 0 ? 0 : 1;
    }

    AdmissionConfig config;
    config.platform = hedra::model::Platform::parse(*platform);
    config.journal_path = *journal;
    AdmissionService service(config);
    const ServerStats stats =
        hedra::serve::run_server(std::cin, std::cout, service, server_config);
    std::cerr << "admissiond: " << stats.requests << " requests ("
              << stats.admitted << " admitted, " << stats.rejected
              << " rejected, " << stats.provisional << " provisional, "
              << stats.errors << " errors, " << stats.shed << " shed)\n";
    dump_telemetry();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
