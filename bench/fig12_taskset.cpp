/// \file fig12_taskset.cpp
/// Figure 12 (extension): taskset-level schedulability under
/// shared-accelerator contention.  Sweeps normalised utilisation × K
/// accelerator classes × n_d units × m host cores; per cell, random
/// sporadic task sets are admitted by the federated contention test
/// (taskset/contention_rta) and every admitted set is executed on the
/// taskset simulator with shared per-device unit pools — observed per-job
/// response times are checked against the admitted bounds in exact rational
/// arithmetic (violations must be zero across the grid).

#include <iostream>

#include "exp/fig12.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig12_taskset",
                          "Figure 12: taskset admission vs contention");
  const auto* tasksets =
      parser.add_int("tasksets", 20, "task sets per parameter point");
  const auto* tasks = parser.add_int("tasks", 4, "tasks per set");
  const auto* seed = parser.add_int("seed", 44, "master RNG seed");
  const auto* max_devices =
      parser.add_int("max-devices", 2, "sweep K = 1..max accelerator classes");
  const auto* max_units = parser.add_int(
      "max-units", 2, "sweep n_d = 1..max units per accelerator class");
  const auto* sim_jobs =
      parser.add_int("jobs-per-task", 3, "releases simulated per task");
  const auto* coff =
      parser.add_real("coff-ratio", 0.2, "target C_off/vol per task");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* quick = parser.add_flag(
      "quick", "smoke mode: tiny grid and batches (for CI)");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig12Config config;
    config.tasksets_per_point = static_cast<int>(*tasksets);
    config.num_tasks = static_cast<int>(*tasks);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.jobs_per_task = static_cast<int>(*sim_jobs);
    config.coff_ratio = *coff;
    config.devices.clear();
    for (int k = 1; k <= static_cast<int>(*max_devices); ++k) {
      config.devices.push_back(k);
    }
    config.units.clear();
    for (int n = 1; n <= static_cast<int>(*max_units); ++n) {
      config.units.push_back(n);
    }
    if (*quick) {
      config.utilizations = {0.25, 0.75};
      config.devices = {1, 2};
      config.units = {1, 2};
      config.cores = {4};
      config.tasksets_per_point = 4;
      config.num_tasks = 3;
      config.jobs_per_task = 2;
    }

    std::cout << "== Figure 12: sporadic taskset admission under "
                 "shared-accelerator contention ==\n"
              << config.num_tasks << " tasks/set, "
              << config.tasksets_per_point << " sets/point, K in [1, "
              << config.devices.back() << "], n_d in [1, "
              << config.units.back() << "], " << config.jobs_per_task
              << " jobs/task simulated, seed " << config.seed << "\n\n";
    const auto result = hedra::exp::run_fig12(config);
    std::cout << hedra::exp::render_fig12(result);
    int violations = 0;
    for (const auto& summary : result.summaries) {
      violations += summary.violations;
    }
    if (!csv->empty()) {
      hedra::exp::write_fig12_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    if (violations != 0) {
      std::cerr << "error: " << violations
                << " bound violation(s) — the contention analysis is "
                   "unsound\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
