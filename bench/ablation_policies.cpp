/// \file ablation_policies.cpp
/// Ablation bench (hedra design-choice study, not a paper figure):
///
/// 1. Scheduler-policy ablation.  Figure 6 uses GOMP's breadth-first policy;
///    here every work-conserving policy is run on τ and τ' to show how much
///    of the transformation's average-case benefit is scheduler-dependent.
///    A critical-path-first scheduler already avoids many of the bad
///    schedules that v_sync rules out, so the transformation's win shrinks.
///
/// 2. Analysis-variant ablation.  For the same instances: R_hom (Eq. 1),
///    R_het (Theorem 1), min(R_hom, R_het), the unsound naive subtraction
///    (§3.2, reported for reference only), and the two-resource chain bound
///    of analysis/multi_offload.h.
///
/// Both ablations run on the exp::Runner engine (--jobs N fans the per-DAG
/// work out over a thread pool; output is identical for any N).

#include <array>
#include <iostream>
#include <vector>

#include "analysis/multi_offload.h"
#include "analysis/naive.h"
#include "exp/runner.h"
#include "sim/scheduler.h"
#include "stats/descriptive.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using hedra::analysis::AnalysisCache;
using hedra::exp::Runner;
using hedra::exp::SweepPoint;

const std::vector<double> kRatios{0.02, 0.10, 0.28, 0.50};

std::vector<SweepPoint> ratio_points(int dags, std::uint64_t seed,
                                     const std::vector<int>& cores,
                                     bool fork_seeds) {
  std::vector<SweepPoint> points;
  const auto seeds = hedra::exp::batch_seeds(seed, kRatios.size());
  for (std::size_t i = 0; i < kRatios.size(); ++i) {
    SweepPoint point;
    point.batch.params.min_nodes = 100;
    point.batch.params.max_nodes = 250;
    point.batch.coff_ratio = kRatios[i];
    point.batch.count = dags;
    // The analysis ablation reuses one seed across ratios on purpose: the
    // same underlying graphs at different C_off make the columns paired.
    point.batch.seed = fork_seeds ? seeds[i] : seed;
    point.cores = cores;
    point.ratio = kRatios[i];
    points.push_back(std::move(point));
  }
  return points;
}

void run_policy_ablation(int dags, std::uint64_t seed, int jobs) {
  const std::vector<hedra::sim::Policy> policies{
      hedra::sim::Policy::kBreadthFirst, hedra::sim::Policy::kDepthFirst,
      hedra::sim::Policy::kCriticalPathFirst,
      hedra::sim::Policy::kIndexOrder, hedra::sim::Policy::kRandom};
  struct Sample {
    std::array<double, 5> t_orig{};
    std::array<double, 5> t_trans{};
  };
  struct Row {
    double ratio;
    std::array<double, 5> avg_orig{};
    std::array<double, 5> avg_trans{};
  };

  Runner runner(jobs);
  const auto rows = runner.sweep(
      ratio_points(dags, seed, {8}, true),
      [&policies](AnalysisCache& cache, int m) {
        Sample s;
        for (std::size_t p = 0; p < policies.size(); ++p) {
          hedra::sim::SimConfig config;
          config.cores = m;
          config.policy = policies[p];
          // Monte-Carlo loop: share the cache's CSR snapshots of τ and τ'
          // across every policy and skip per-run trace validation.
          config.validate = false;
          s.t_orig[p] = static_cast<double>(
              hedra::sim::simulated_makespan(cache.flat(), config));
          s.t_trans[p] = static_cast<double>(hedra::sim::simulated_makespan(
              cache.flat_transformed(), config));
        }
        return s;
      },
      [](const SweepPoint& point, int, const std::vector<Sample>& samples) {
        Row row{point.ratio, {}, {}};
        for (const Sample& s : samples) {
          for (std::size_t p = 0; p < row.avg_orig.size(); ++p) {
            row.avg_orig[p] += s.t_orig[p] / samples.size();
            row.avg_trans[p] += s.t_trans[p] / samples.size();
          }
        }
        return row;
      });

  hedra::TextTable table(
      {"C_off/vol", "policy", "avg T(tau)", "avg T(tau')", "pct change"});
  for (const Row& row : rows) {
    for (std::size_t p = 0; p < policies.size(); ++p) {
      table.add_row({hedra::format_double(100.0 * row.ratio, 1) + "%",
                     hedra::sim::to_string(policies[p]),
                     hedra::format_double(row.avg_orig[p], 1),
                     hedra::format_double(row.avg_trans[p], 1),
                     hedra::format_percent(hedra::stats::percentage_change(
                                               row.avg_orig[p],
                                               row.avg_trans[p]),
                                           2)});
    }
    table.add_separator();
  }
  std::cout << "-- Scheduler-policy ablation (m = 8): does the "
               "transformation help under smarter schedulers? --\n"
            << table.render() << "\n";
}

void run_analysis_ablation(int dags, std::uint64_t seed, int jobs) {
  struct Sample {
    double hom, het, best, chain, naive;
  };
  struct Row {
    double ratio;
    int m;
    double hom = 0, het = 0, best = 0, chain = 0, naive = 0;
  };

  Runner runner(jobs);
  const auto rows = runner.sweep(
      ratio_points(dags, seed + 17, {2, 16}, false),
      [](AnalysisCache& cache, int m) {
        const double hom = cache.r_hom(m).to_double();
        const double het = cache.r_het(m).to_double();
        return Sample{
            hom, het, std::min(hom, het),
            hedra::analysis::rta_multi_offload(cache.original(), m).to_double(),
            hedra::analysis::rta_naive_subtraction(cache.original(), m)
                .to_double()};
      },
      [](const SweepPoint& point, int m, const std::vector<Sample>& samples) {
        Row row{point.ratio, m};
        for (const Sample& s : samples) {
          row.hom += s.hom / samples.size();
          row.het += s.het / samples.size();
          row.best += s.best / samples.size();
          row.chain += s.chain / samples.size();
          row.naive += s.naive / samples.size();
        }
        return row;
      });

  hedra::TextTable table({"C_off/vol", "m", "R_hom", "R_het", "best",
                          "chain bound", "naive (UNSOUND)"});
  for (const Row& row : rows) {
    table.add_row({hedra::format_double(100.0 * row.ratio, 1) + "%",
                   std::to_string(row.m), hedra::format_double(row.hom, 1),
                   hedra::format_double(row.het, 1),
                   hedra::format_double(row.best, 1),
                   hedra::format_double(row.chain, 1),
                   hedra::format_double(row.naive, 1)});
  }
  std::cout << "-- Analysis-variant ablation (mean bound, lower is tighter; "
               "naive shown only to illustrate what unsoundness buys) --\n"
            << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  hedra::ArgParser parser("ablation_policies",
                          "hedra ablations: scheduler policies and analysis "
                          "variants");
  const auto* dags = parser.add_int("dags", 40, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;
    std::cout << "== Ablation bench ==\n\n";
    run_policy_ablation(static_cast<int>(*dags),
                        static_cast<std::uint64_t>(*seed),
                        static_cast<int>(*jobs));
    run_analysis_ablation(static_cast<int>(*dags),
                          static_cast<std::uint64_t>(*seed),
                          static_cast<int>(*jobs));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
