/// \file ablation_policies.cpp
/// Ablation bench (hedra design-choice study, not a paper figure):
///
/// 1. Scheduler-policy ablation.  Figure 6 uses GOMP's breadth-first policy;
///    here every work-conserving policy is run on τ and τ' to show how much
///    of the transformation's average-case benefit is scheduler-dependent.
///    A critical-path-first scheduler already avoids many of the bad
///    schedules that v_sync rules out, so the transformation's win shrinks.
///
/// 2. Analysis-variant ablation.  For the same instances: R_hom (Eq. 1),
///    R_het (Theorem 1), min(R_hom, R_het), the unsound naive subtraction
///    (§3.2, reported for reference only), and the two-resource chain bound
///    of analysis/multi_offload.h.

#include <iostream>
#include <vector>

#include "analysis/multi_offload.h"
#include "analysis/naive.h"
#include "analysis/rta_heterogeneous.h"
#include "exp/experiment.h"
#include "sim/scheduler.h"
#include "stats/descriptive.h"
#include "util/cli.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using hedra::Frac;
using hedra::graph::Dag;

void run_policy_ablation(int dags, std::uint64_t seed) {
  const std::vector<double> ratios{0.02, 0.10, 0.28, 0.50};
  const std::vector<hedra::sim::Policy> policies{
      hedra::sim::Policy::kBreadthFirst, hedra::sim::Policy::kDepthFirst,
      hedra::sim::Policy::kCriticalPathFirst,
      hedra::sim::Policy::kIndexOrder, hedra::sim::Policy::kRandom};

  hedra::TextTable table(
      {"C_off/vol", "policy", "avg T(tau)", "avg T(tau')", "pct change"});
  for (const double ratio : ratios) {
    hedra::exp::BatchConfig batch_config;
    batch_config.params.min_nodes = 100;
    batch_config.params.max_nodes = 250;
    batch_config.coff_ratio = ratio;
    batch_config.count = dags;
    batch_config.seed = seed;
    const auto batch = hedra::exp::generate_batch(batch_config);
    std::vector<Dag> transformed;
    transformed.reserve(batch.size());
    for (const auto& dag : batch) {
      transformed.push_back(
          hedra::analysis::transform_for_offload(dag).transformed);
    }
    for (const auto policy : policies) {
      std::vector<double> t_orig;
      std::vector<double> t_trans;
      hedra::sim::SimConfig config;
      config.cores = 8;
      config.policy = policy;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        t_orig.push_back(static_cast<double>(
            hedra::sim::simulated_makespan(batch[i], config)));
        t_trans.push_back(static_cast<double>(
            hedra::sim::simulated_makespan(transformed[i], config)));
      }
      const double avg_o = hedra::stats::mean(t_orig);
      const double avg_t = hedra::stats::mean(t_trans);
      table.add_row({hedra::format_double(100.0 * ratio, 1) + "%",
                     hedra::sim::to_string(policy),
                     hedra::format_double(avg_o, 1),
                     hedra::format_double(avg_t, 1),
                     hedra::format_percent(
                         hedra::stats::percentage_change(avg_o, avg_t), 2)});
    }
    table.add_separator();
  }
  std::cout << "-- Scheduler-policy ablation (m = 8): does the "
               "transformation help under smarter schedulers? --\n"
            << table.render() << "\n";
}

void run_analysis_ablation(int dags, std::uint64_t seed) {
  const std::vector<double> ratios{0.02, 0.10, 0.28, 0.50};
  hedra::TextTable table({"C_off/vol", "m", "R_hom", "R_het", "best",
                          "chain bound", "naive (UNSOUND)"});
  for (const double ratio : ratios) {
    hedra::exp::BatchConfig batch_config;
    batch_config.params.min_nodes = 100;
    batch_config.params.max_nodes = 250;
    batch_config.coff_ratio = ratio;
    batch_config.count = dags;
    batch_config.seed = seed + 17;
    const auto batch = hedra::exp::generate_batch(batch_config);
    for (const int m : {2, 16}) {
      double hom = 0;
      double het = 0;
      double best = 0;
      double chain = 0;
      double naive = 0;
      for (const auto& dag : batch) {
        const auto analysis = hedra::analysis::analyze_heterogeneous(dag, m);
        hom += analysis.r_hom.to_double();
        het += analysis.r_het.to_double();
        best += hedra::frac_min(analysis.r_hom, analysis.r_het).to_double();
        chain += hedra::analysis::rta_multi_offload(dag, m).to_double();
        naive += hedra::analysis::rta_naive_subtraction(dag, m).to_double();
      }
      const double n = static_cast<double>(batch.size());
      table.add_row({hedra::format_double(100.0 * ratio, 1) + "%",
                     std::to_string(m), hedra::format_double(hom / n, 1),
                     hedra::format_double(het / n, 1),
                     hedra::format_double(best / n, 1),
                     hedra::format_double(chain / n, 1),
                     hedra::format_double(naive / n, 1)});
    }
  }
  std::cout << "-- Analysis-variant ablation (mean bound, lower is tighter; "
               "naive shown only to illustrate what unsoundness buys) --\n"
            << table.render() << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  hedra::ArgParser parser("ablation_policies",
                          "hedra ablations: scheduler policies and analysis "
                          "variants");
  const auto* dags = parser.add_int("dags", 40, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  try {
    if (!parser.parse(argc, argv)) return 0;
    std::cout << "== Ablation bench ==\n\n";
    run_policy_ablation(static_cast<int>(*dags),
                        static_cast<std::uint64_t>(*seed));
    run_analysis_ablation(static_cast<int>(*dags),
                          static_cast<std::uint64_t>(*seed));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
