/// \file fig9_hom_vs_het.cpp
/// Reproduces Figure 9 and the §5.4 in-text maxima: percentage change of
/// R_hom(τ) with respect to R_het(τ') across C_off/vol and m.
///
/// Paper shape: R_hom is better only below C_off ≈ 1.6/3.4/4.6/5% of vol
/// (sync-point penalty); beyond that R_het wins, peaking at ~70/55/40/30%
/// when C_off = R_hom(G_par), with maximum observed differences of
/// 95.0/82.5/65.3/47.7% for m = 2/4/8/16.

#include <iostream>

#include "exp/fig9.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig9_hom_vs_het",
                          "Figure 9: R_hom vs R_het percentage change");
  const auto* dags = parser.add_int("dags", 100, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* min_nodes = parser.add_int("min-nodes", 100, "minimum DAG size");
  const auto* max_nodes = parser.add_int("max-nodes", 250, "maximum DAG size");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig9Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.params.min_nodes = static_cast<int>(*min_nodes);
    config.params.max_nodes = static_cast<int>(*max_nodes);

    std::cout << "== Figure 9 + §5.4 maxima: % change of R_hom w.r.t. R_het "
                 "==\n"
              << "n in [" << *min_nodes << ", " << *max_nodes << "], "
              << *dags << " DAGs/point, seed " << *seed << "\n\n";
    const auto result = hedra::exp::run_fig9(config);
    std::cout << hedra::exp::render_fig9(result);
    if (!csv->empty()) {
      hedra::exp::write_fig9_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
