/// \file fig8_scenarios.cpp
/// Reproduces Figure 8 (§5.4): occurrence percentage of Theorem 1's
/// execution scenarios (S1 / S2.1 / S2.2) when sweeping C_off/vol from
/// 0.12% to 50% on m = 2/4/8/16.
///
/// Paper shape: S1 dominates below ~8% (v_off off the critical path,
/// m-independent), S2.2 takes over as v_off turns critical, S2.1 rises once
/// C_off exceeds R_hom(G_par) — earlier for larger m; the S2.1/S2.2
/// crossover falls near 32/20/14/10% of vol for m = 2/4/8/16.

#include <iostream>

#include "exp/fig8.h"
#include "exp/report.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig8_scenarios",
                          "Figure 8: scenario occurrence percentages");
  const auto* dags = parser.add_int("dags", 100, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* min_nodes = parser.add_int("min-nodes", 100, "minimum DAG size");
  const auto* max_nodes = parser.add_int("max-nodes", 250, "maximum DAG size");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig8Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.params.min_nodes = static_cast<int>(*min_nodes);
    config.params.max_nodes = static_cast<int>(*max_nodes);

    std::cout << "== Figure 8: occurrence of Theorem 1 scenarios ==\n"
              << "n in [" << *min_nodes << ", " << *max_nodes << "], "
              << *dags << " DAGs/point, seed " << *seed << "\n\n";
    const auto result = hedra::exp::run_fig8(config);
    std::cout << hedra::exp::render_fig8(result);
    if (!csv->empty()) {
      hedra::exp::write_fig8_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
