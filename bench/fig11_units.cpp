/// \file fig11_units.cpp
/// Figure 11 (extension): the execution-unit-multiplicity sweep the n_d
/// generalisation unlocks.  For K accelerator classes with n ∈ units
/// execution units each (applied symmetrically) and a grid of total
/// offloaded ratios, compares the generalised platform bound R_plat(n_d) —
/// vol_d/n_d device terms plus the mixed (units−1)/units weighted chain —
/// against the simulated makespan of every work-conserving ready-queue
/// policy running on the same multi-unit platform, per core count m.  The
/// same DAG batch is reused across unit counts, so the deltas isolate the
/// multiplicity effect; soundness (exact rationals) and bound tightening vs
/// n_d = 1 are reported per (n_d, m).

#include <iostream>

#include "exp/fig11.h"
#include "exp/report.h"
#include "util/cli.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  hedra::ArgParser parser("fig11_units",
                          "Figure 11: unit multiplicity vs bound and sim");
  const auto* dags = parser.add_int("dags", 25, "DAGs per parameter point");
  const auto* seed = parser.add_int("seed", 43, "master RNG seed");
  const auto* devices =
      parser.add_int("devices", 2, "K accelerator device classes");
  const auto* max_units = parser.add_int(
      "max-units", 3, "sweep n_d = 1..max units per accelerator class");
  const auto* unit_vectors = parser.add_string(
      "unit-vectors", "",
      "sweep explicit per-class unit vectors instead of the symmetric "
      "1..max-units grid, e.g. '2,1;3,1' (one comma-separated vector per "
      "';'-separated entry, one entry value per device class)");
  const auto* per_device =
      parser.add_int("per-device", 2, "offload nodes per device");
  const auto* min_nodes = parser.add_int("min-nodes", 100, "minimum DAG size");
  const auto* max_nodes = parser.add_int("max-nodes", 250, "maximum DAG size");
  const auto* csv = parser.add_string("csv", "", "also write results to CSV");
  const auto* jobs = parser.add_int(
      "jobs", 0, "worker threads (0 = all hardware threads)");
  try {
    if (!parser.parse(argc, argv)) return 0;

    hedra::exp::Fig11Config config;
    config.dags_per_point = static_cast<int>(*dags);
    config.seed = static_cast<std::uint64_t>(*seed);
    config.jobs = static_cast<int>(*jobs);
    config.devices = static_cast<int>(*devices);
    config.offloads_per_device = static_cast<int>(*per_device);
    config.params.min_nodes = static_cast<int>(*min_nodes);
    config.params.max_nodes = static_cast<int>(*max_nodes);
    config.units.clear();
    for (int n = 1; n <= static_cast<int>(*max_units); ++n) {
      config.units.push_back(n);
    }
    if (!unit_vectors->empty()) {
      for (const auto& entry : hedra::split(*unit_vectors, ';')) {
        std::vector<int> vec;
        for (const auto& value : hedra::split(hedra::trim(entry), ',')) {
          vec.push_back(static_cast<int>(hedra::parse_int(hedra::trim(value))));
        }
        config.unit_vectors.push_back(std::move(vec));
      }
    }

    std::cout << "== Figure 11: per-device multiplicity n_d vs the "
                 "generalised platform bound ==\n"
              << "K = " << *devices << ", "
              << (unit_vectors->empty()
                      ? "n_d in [1, " + std::to_string(*max_units) + "]"
                      : "unit vectors " + *unit_vectors)
              << ", " << *per_device << " offload(s)/device, n in ["
              << *min_nodes << ", " << *max_nodes << "], " << *dags
              << " DAGs/point, seed " << *seed << "\n\n";
    const auto result = hedra::exp::run_fig11(config);
    std::cout << hedra::exp::render_fig11(result);
    if (!csv->empty()) {
      hedra::exp::write_fig11_csv(result, *csv);
      std::cout << "\nCSV written to " << *csv << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
