/// \file bnb_batch.cpp
/// Sharded exact-solver batch driver: generates a deterministic batch of
/// random heterogeneous DAGs (same generator as fig7) and solves the slice
/// `index % shard_count == shard_index` with the branch-and-bound solver,
/// writing one JSON document per shard (schema hedra-bnb-batch-v1).
///
/// Because the full batch is regenerated from the seed in every process,
/// shards need no communication: `scripts/bnb_shard.py run` launches one
/// process per shard and merges the per-shard files, turning a fig7-scale
/// optimality study into a fleet of independent jobs.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exact/bnb.h"
#include "exp/experiment.h"
#include "util/cli.h"
#include "util/error.h"

namespace {

struct InstanceRow {
  std::size_t index = 0;
  std::size_t nodes = 0;
  hedra::exact::BnbResult result;
  double ms = 0.0;
};

std::string to_json(const hedra::exp::BatchConfig& batch, int m,
                    const hedra::exact::BnbConfig& solver,
                    std::int64_t shard_index, std::int64_t shard_count,
                    const std::vector<InstanceRow>& rows) {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"hedra-bnb-batch-v1\",\n"
     << "  \"m\": " << m << ",\n"
     << "  \"min_nodes\": " << batch.params.min_nodes << ",\n"
     << "  \"max_nodes\": " << batch.params.max_nodes << ",\n"
     << "  \"ratio\": " << batch.coff_ratio << ",\n"
     << "  \"count\": " << batch.count << ",\n"
     << "  \"seed\": " << batch.seed << ",\n"
     << "  \"solver\": {\"max_nodes\": " << solver.max_nodes
     << ", \"time_limit_sec\": " << solver.time_limit_sec
     << ", \"jobs\": " << solver.jobs << "},\n"
     << "  \"shard_index\": " << shard_index << ",\n"
     << "  \"shard_count\": " << shard_count << ",\n"
     << "  \"instances\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const InstanceRow& r = rows[i];
    os << "    {\"index\": " << r.index << ", \"nodes\": " << r.nodes
       << ", \"makespan\": " << r.result.makespan
       << ", \"proven\": " << (r.result.proven_optimal ? "true" : "false")
       << ", \"nodes_explored\": " << r.result.nodes_explored
       << ", \"root_lb\": " << r.result.root_lower_bound
       << ", \"heuristic_ub\": " << r.result.heuristic_upper_bound
       << ", \"ms\": " << r.ms << "}" << (i + 1 < rows.size() ? "," : "")
       << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  hedra::ArgParser parser("bnb_batch",
                          "solve one shard of a random-DAG batch exactly");
  const auto* m = parser.add_int("m", 2, "host cores");
  const auto* min_nodes = parser.add_int("min-nodes", 3, "smallest DAG");
  const auto* max_nodes = parser.add_int("max-nodes", 20, "largest DAG");
  const auto* ratio = parser.add_real("ratio", 0.35, "target C_off / vol");
  const auto* count = parser.add_int("count", 40, "instances in the batch");
  const auto* seed = parser.add_int("seed", 42, "master RNG seed");
  const auto* solver_nodes =
      parser.add_int("solver-nodes", 5000000, "solver node budget");
  const auto* time_limit =
      parser.add_real("time-limit", 300.0, "solver seconds per instance");
  const auto* jobs = parser.add_int(
      "jobs", 1, "threads per B&B solve (0 = all hardware threads)");
  const auto* shard_index = parser.add_int("shard-index", 0, "this shard");
  const auto* shard_count = parser.add_int("shard-count", 1, "total shards");
  const auto* out = parser.add_string(
      "out", "", "write shard JSON here (default: stdout)");
  try {
    if (!parser.parse(argc, argv)) return 0;
    HEDRA_REQUIRE(*shard_count >= 1, "--shard-count must be >= 1");
    HEDRA_REQUIRE(*shard_index >= 0 && *shard_index < *shard_count,
                  "--shard-index must be in [0, shard-count)");

    hedra::exp::BatchConfig batch;
    batch.params = hedra::gen::HierarchicalParams::small_tasks();
    batch.params.min_nodes = static_cast<int>(*min_nodes);
    batch.params.max_nodes = static_cast<int>(*max_nodes);
    batch.coff_ratio = *ratio;
    batch.count = static_cast<int>(*count);
    batch.seed = static_cast<std::uint64_t>(*seed);

    hedra::exact::BnbConfig solver;
    solver.max_nodes = static_cast<std::uint64_t>(*solver_nodes);
    solver.time_limit_sec = *time_limit;
    solver.jobs = static_cast<int>(*jobs);

    // Every shard regenerates the identical batch (cheap next to solving)
    // and claims its stride; indices are global, so the merged result is
    // independent of the shard count.
    const auto dags = hedra::exp::generate_batch(batch);
    std::vector<InstanceRow> rows;
    for (std::size_t i = 0; i < dags.size(); ++i) {
      if (static_cast<std::int64_t>(i % *shard_count) != *shard_index)
        continue;
      InstanceRow row;
      row.index = i;
      row.nodes = dags[i].num_nodes();
      const auto start = std::chrono::steady_clock::now();
      row.result =
          hedra::exact::min_makespan(dags[i], static_cast<int>(*m), solver);
      row.ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
      rows.push_back(row);
      std::cerr << "instance " << i << ": makespan " << row.result.makespan
                << (row.result.proven_optimal ? "" : " (budget hit)") << ", "
                << row.result.nodes_explored << " nodes\n";
    }

    const std::string json = to_json(batch, static_cast<int>(*m), solver,
                                     *shard_index, *shard_count, rows);
    if (out->empty()) {
      std::cout << json;
    } else {
      std::ofstream file(*out);
      HEDRA_REQUIRE(file.good(), "cannot open --out file");
      file << json;
      std::cerr << "shard written to " << *out << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
