#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "model/platform.h"
#include "util/error.h"

namespace hedra {
namespace {

using model::Platform;

TEST(PlatformTest, FactoriesDescribeTheExpectedShape) {
  const Platform hom = Platform::homogeneous(4);
  EXPECT_EQ(hom.cores, 4);
  EXPECT_EQ(hom.num_devices(), 0);

  const Platform paper = Platform::single_accelerator(2);
  EXPECT_EQ(paper.cores, 2);
  EXPECT_EQ(paper.num_devices(), 1);
  EXPECT_EQ(paper.device_name(1), "acc");

  const Platform sym = Platform::symmetric(8, 3);
  EXPECT_EQ(sym.num_devices(), 3);
  EXPECT_EQ(sym.device_name(1), "acc1");
  EXPECT_EQ(sym.device_name(3), "acc3");
}

TEST(PlatformTest, DeviceNameRejectsOutOfRangeIds) {
  const Platform platform = Platform::single_accelerator(2, "gpu");
  EXPECT_THROW((void)platform.device_name(0), Error);
  EXPECT_THROW((void)platform.device_name(2), Error);
}

TEST(PlatformTest, ParseRoundTripsThroughSpec) {
  for (const std::string text : {"2", "4:gpu", "16:gpu,dsp,fpga"}) {
    const Platform platform = Platform::parse(text);
    EXPECT_EQ(platform.spec(), text);
    EXPECT_EQ(Platform::parse(platform.spec()).describe(),
              platform.describe());
  }
  const Platform platform = Platform::parse("4: gpu , dsp ");
  EXPECT_EQ(platform.device_name(1), "gpu");
  EXPECT_EQ(platform.device_name(2), "dsp");
}

TEST(PlatformTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)Platform::parse(""), Error);
  EXPECT_THROW((void)Platform::parse("x"), Error);
  EXPECT_THROW((void)Platform::parse("0:gpu"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu,"), Error);     // empty name
  EXPECT_THROW((void)Platform::parse("4:gpu,gpu"), Error);  // duplicate
}

TEST(PlatformTest, ValidateRejectsBadShapes) {
  Platform platform;
  platform.cores = 0;
  EXPECT_THROW(platform.validate(), Error);
  platform.cores = 2;
  platform.device_names = {"gpu", ""};
  EXPECT_THROW(platform.validate(), Error);
  platform.device_names = {"gpu", "gpu"};
  EXPECT_THROW(platform.validate(), Error);
  platform.device_names = {"gpu", "dsp"};
  EXPECT_NO_THROW(platform.validate());
}

TEST(PlatformTest, SupportsChecksDevicePlacements) {
  const auto ex = testing::multi_device_example();
  EXPECT_TRUE(model::supports(Platform::symmetric(2, 2), ex.dag));
  EXPECT_TRUE(model::supports(Platform::symmetric(2, 5), ex.dag));

  const Platform single = Platform::single_accelerator(2);
  const auto issues = model::check_supports(single, ex.dag);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("dsp"), std::string::npos);

  // Homogeneous platforms reject any offload placement.
  EXPECT_FALSE(model::supports(Platform::homogeneous(2), ex.dag));
  EXPECT_TRUE(
      model::supports(Platform::homogeneous(2), testing::chain(3, 5)));
}

TEST(PlatformTest, PlatformForInfersTheSmallestSupportingPlatform) {
  const auto ex = testing::multi_device_example();
  const Platform inferred = model::platform_for(ex.dag, 4);
  EXPECT_EQ(inferred.cores, 4);
  EXPECT_EQ(inferred.num_devices(), 2);
  EXPECT_TRUE(model::supports(inferred, ex.dag));

  EXPECT_EQ(model::platform_for(testing::chain(3, 5), 2).num_devices(), 0);
}

}  // namespace
}  // namespace hedra
