#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/fixtures.h"
#include "model/platform.h"
#include "util/error.h"
#include "util/rng.h"

namespace hedra {
namespace {

using model::Platform;

TEST(PlatformTest, FactoriesDescribeTheExpectedShape) {
  const Platform hom = Platform::homogeneous(4);
  EXPECT_EQ(hom.cores, 4);
  EXPECT_EQ(hom.num_devices(), 0);

  const Platform paper = Platform::single_accelerator(2);
  EXPECT_EQ(paper.cores, 2);
  EXPECT_EQ(paper.num_devices(), 1);
  EXPECT_EQ(paper.device_name(1), "acc");

  const Platform sym = Platform::symmetric(8, 3);
  EXPECT_EQ(sym.num_devices(), 3);
  EXPECT_EQ(sym.device_name(1), "acc1");
  EXPECT_EQ(sym.device_name(3), "acc3");
}

TEST(PlatformTest, DeviceNameRejectsOutOfRangeIds) {
  const Platform platform = Platform::single_accelerator(2, "gpu");
  EXPECT_THROW((void)platform.device_name(0), Error);
  EXPECT_THROW((void)platform.device_name(2), Error);
}

TEST(PlatformTest, ParseRoundTripsThroughSpec) {
  for (const std::string text : {"2", "4:gpu", "16:gpu,dsp,fpga"}) {
    const Platform platform = Platform::parse(text);
    EXPECT_EQ(platform.spec(), text);
    EXPECT_EQ(Platform::parse(platform.spec()).describe(),
              platform.describe());
  }
  const Platform platform = Platform::parse("4: gpu , dsp ");
  EXPECT_EQ(platform.device_name(1), "gpu");
  EXPECT_EQ(platform.device_name(2), "dsp");
}

TEST(PlatformTest, ParseReadsUnitMultiplicities) {
  const Platform platform = Platform::parse("4:gpu*2,dsp,fpga*3");
  EXPECT_EQ(platform.cores, 4);
  EXPECT_EQ(platform.num_devices(), 3);
  EXPECT_EQ(platform.units_of(1), 2);
  EXPECT_EQ(platform.units_of(2), 1);
  EXPECT_EQ(platform.units_of(3), 3);
  EXPECT_TRUE(platform.has_multi_units());
  EXPECT_EQ(platform.spec(), "4:gpu*2,dsp,fpga*3");
  EXPECT_NE(platform.describe().find("gpu(d1 x2)"), std::string::npos);
  EXPECT_NE(platform.describe().find("dsp(d2)"), std::string::npos);

  // Whitespace around every token is tolerated, explicit *1 normalises away.
  const Platform spaced = Platform::parse(" 4 : gpu * 2 , dsp * 1 ");
  EXPECT_EQ(spaced.spec(), "4:gpu*2,dsp");
  EXPECT_FALSE(Platform::parse("2:gpu*1").has_multi_units());
}

TEST(PlatformTest, ParseReadsSpeedups) {
  // SATELLITE (PR 5): heterogeneous WCET scaling in the spec syntax.
  const Platform platform = Platform::parse("4:gpu*2@3.0,dsp@1.5,fpga");
  EXPECT_EQ(platform.speedup_of(1), Frac(3));
  EXPECT_EQ(platform.speedup_of(2), Frac(3, 2));
  EXPECT_EQ(platform.speedup_of(3), Frac(1));
  EXPECT_TRUE(platform.has_speedups());
  // Decimal factors normalise to their shortest exact spelling; the
  // default 1.0 is omitted, so pre-speedup specs round-trip unchanged.
  EXPECT_EQ(platform.spec(), "4:gpu*2@3,dsp@1.5,fpga");
  EXPECT_EQ(Platform::parse(platform.spec()), platform);
  EXPECT_NE(platform.describe().find("@1.5x"), std::string::npos);

  EXPECT_FALSE(Platform::parse("4:gpu@1").has_speedups());
  EXPECT_EQ(Platform::parse("4:gpu@1.0").spec(), "4:gpu");
  // Exact rationals survive: 7/3 has no finite decimal but still
  // round-trips.
  EXPECT_EQ(Platform::parse("4:gpu@7/3").speedup_of(1), Frac(7, 3));
  EXPECT_EQ(Platform::parse("4:gpu@7/3").spec(), "4:gpu@7/3");
}

TEST(PlatformTest, ParseRejectsMalformedSpeedups) {
  EXPECT_THROW((void)Platform::parse("4:gpu@"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu@0"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu@-1.5"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu@x"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu@1.2.3"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu@2*2"), Error);  // '*' after '@'
}

TEST(PlatformTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW((void)Platform::parse(""), Error);
  EXPECT_THROW((void)Platform::parse("x"), Error);
  EXPECT_THROW((void)Platform::parse("0:gpu"), Error);
  EXPECT_THROW((void)Platform::parse("4:"), Error);         // no device list
  EXPECT_THROW((void)Platform::parse("4:gpu,"), Error);     // empty name
  EXPECT_THROW((void)Platform::parse("4:gpu,gpu"), Error);  // duplicate
  EXPECT_THROW((void)Platform::parse("   "), Error);        // whitespace only
  EXPECT_THROW((void)Platform::parse("4.5:gpu"), Error);    // non-integer m
  EXPECT_THROW((void)Platform::parse("four:gpu"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu*"), Error);     // missing units
  EXPECT_THROW((void)Platform::parse("4:gpu*0"), Error);    // < 1 unit
  EXPECT_THROW((void)Platform::parse("4:gpu*-2"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu*x"), Error);
  EXPECT_THROW((void)Platform::parse("4:gpu*2*3"), Error);
  EXPECT_THROW((void)Platform::parse("4:*2"), Error);       // units, no name
}

TEST(PlatformTest, ParseErrorsNameTheOffendingSpec) {
  for (const std::string bad : {"4:", "four:gpu", "4:gpu*0", "4:gpu,gpu"}) {
    try {
      (void)Platform::parse(bad);
      FAIL() << "spec '" << bad << "' should not parse";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("'" + bad + "'"),
                std::string::npos)
          << "message should quote the spec: " << e.what();
    }
  }
}

/// SATELLITE PROPERTY TEST: spec() and parse() are mutual inverses over
/// randomized platforms (core counts, device counts, names, unit
/// multiplicities), with the empty-device_units representation normalising
/// to the explicit all-ones one.
TEST(PlatformTest, RandomizedPlatformsRoundTripThroughSpec) {
  const std::vector<std::string> pool{"gpu",  "dsp",  "fpga", "npu",
                                      "tpu",  "vpu",  "dla",  "isp"};
  Rng rng(0x51A7F0);
  for (int i = 0; i < 200; ++i) {
    Platform platform;
    platform.cores = static_cast<int>(rng.uniform_int(1, 64));
    const int devices = static_cast<int>(rng.uniform_int(0, 8));
    std::vector<std::string> names(pool.begin(), pool.end());
    rng.shuffle(names);
    const bool explicit_units = rng.bernoulli(0.7);
    const bool explicit_speedups = rng.bernoulli(0.5);
    const std::vector<Frac> speedup_pool{Frac(1),    Frac(2),    Frac(3, 2),
                                         Frac(5, 4), Frac(7, 3), Frac(1, 2)};
    for (int d = 0; d < devices; ++d) {
      platform.device_names.push_back(names[d]);
      if (explicit_units) {
        platform.device_units.push_back(
            static_cast<int>(rng.uniform_int(1, 6)));
      }
      if (explicit_speedups) {
        platform.device_speedup.push_back(
            speedup_pool[rng.index(speedup_pool.size())]);
      }
    }
    platform.validate();

    const Platform reparsed = Platform::parse(platform.spec());
    EXPECT_EQ(reparsed, platform) << "spec: " << platform.spec();
    EXPECT_EQ(reparsed.spec(), platform.spec());
    EXPECT_EQ(reparsed.describe(), platform.describe());
  }
}

TEST(PlatformTest, ValidateRejectsBadShapes) {
  Platform platform;
  platform.cores = 0;
  EXPECT_THROW(platform.validate(), Error);
  platform.cores = 2;
  platform.device_names = {"gpu", ""};
  EXPECT_THROW(platform.validate(), Error);
  platform.device_names = {"gpu", "gpu"};
  EXPECT_THROW(platform.validate(), Error);
  platform.device_names = {"gpu", "dsp"};
  EXPECT_NO_THROW(platform.validate());
}

TEST(PlatformTest, SupportsChecksDevicePlacements) {
  const auto ex = testing::multi_device_example();
  EXPECT_TRUE(model::supports(Platform::symmetric(2, 2), ex.dag));
  EXPECT_TRUE(model::supports(Platform::symmetric(2, 5), ex.dag));

  const Platform single = Platform::single_accelerator(2);
  const auto issues = model::check_supports(single, ex.dag);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("dsp"), std::string::npos);

  // Homogeneous platforms reject any offload placement.
  EXPECT_FALSE(model::supports(Platform::homogeneous(2), ex.dag));
  EXPECT_TRUE(
      model::supports(Platform::homogeneous(2), testing::chain(3, 5)));
}

TEST(PlatformTest, PlatformForInfersTheSmallestSupportingPlatform) {
  const auto ex = testing::multi_device_example();
  const Platform inferred = model::platform_for(ex.dag, 4);
  EXPECT_EQ(inferred.cores, 4);
  EXPECT_EQ(inferred.num_devices(), 2);
  EXPECT_TRUE(model::supports(inferred, ex.dag));

  EXPECT_EQ(model::platform_for(testing::chain(3, 5), 2).num_devices(), 0);
}

}  // namespace
}  // namespace hedra
