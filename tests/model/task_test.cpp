#include "model/task.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::model {
namespace {

TEST(TaskTest, StoresComponents) {
  const auto ex = testing::paper_example();
  const DagTask task(ex.dag, /*period=*/30, /*deadline=*/20, "demo");
  EXPECT_EQ(task.period(), 30);
  EXPECT_EQ(task.deadline(), 20);
  EXPECT_EQ(task.name(), "demo");
  EXPECT_EQ(task.dag().num_nodes(), 6u);
}

TEST(TaskTest, ConstrainedDeadlineEnforced) {
  const auto ex = testing::paper_example();
  EXPECT_THROW(DagTask(ex.dag, /*period=*/10, /*deadline=*/20), Error);
  EXPECT_THROW(DagTask(ex.dag, /*period=*/10, /*deadline=*/0), Error);
}

TEST(TaskTest, ImplicitDeadline) {
  const auto ex = testing::paper_example();
  const DagTask task = DagTask::implicit(ex.dag, 25);
  EXPECT_EQ(task.deadline(), 25);
  EXPECT_EQ(task.period(), 25);
}

TEST(TaskTest, UtilizationIsExact) {
  const auto ex = testing::paper_example();  // vol = 18
  const DagTask task(ex.dag, 36, 36);
  EXPECT_EQ(task.utilization(), Frac(1, 2));
  EXPECT_EQ(task.density(), Frac(1, 2));
}

TEST(TaskTest, HostUtilizationExcludesOffload) {
  const auto ex = testing::paper_example();  // host vol = 14
  const DagTask task(ex.dag, 28, 28);
  EXPECT_EQ(task.host_utilization(), Frac(1, 2));
}

TEST(TaskTest, LengthRatio) {
  const auto ex = testing::paper_example();  // len = 8
  const DagTask task(ex.dag, 16, 16);
  EXPECT_EQ(task.length_ratio(), Frac(1, 2));
}

TEST(TaskTest, MutableDagAllowsCoffSweeps) {
  const auto ex = testing::paper_example();
  DagTask task(ex.dag, 100, 100);
  task.mutable_dag().set_wcet(ex.voff, 10);
  EXPECT_EQ(task.utilization(), Frac(24, 100));
}

}  // namespace
}  // namespace hedra::model
