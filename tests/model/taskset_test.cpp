#include "model/taskset.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::model {
namespace {

TaskSet make_set() {
  const auto ex = testing::paper_example();  // vol 18, host vol 14
  TaskSet set;
  set.add(DagTask(ex.dag, 36, 36, "t1"));
  set.add(DagTask(ex.dag, 18, 18, "t2"));
  return set;
}

TEST(TaskSetTest, SizeAndIndexing) {
  const TaskSet set = make_set();
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set[0].name(), "t1");
  EXPECT_EQ(set[1].name(), "t2");
  EXPECT_THROW((void)set[2], Error);
}

TEST(TaskSetTest, TotalUtilization) {
  const TaskSet set = make_set();
  EXPECT_DOUBLE_EQ(set.total_utilization(), 0.5 + 1.0);
}

TEST(TaskSetTest, TotalHostUtilization) {
  const TaskSet set = make_set();
  EXPECT_DOUBLE_EQ(set.total_host_utilization(), 14.0 / 36.0 + 14.0 / 18.0);
}

TEST(TaskSetTest, IterationVisitsAll) {
  const TaskSet set = make_set();
  int count = 0;
  for (const auto& task : set) {
    EXPECT_FALSE(task.name().empty());
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(TaskSetTest, EmptySetTotalsAreZero) {
  const TaskSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_DOUBLE_EQ(set.total_utilization(), 0.0);
}

}  // namespace
}  // namespace hedra::model
