// Equivalence of the arena-backed (flat-first) taskset pipeline with the
// eager Dag-backed one: generation, metrics, admission, simulation, and
// serialisation must all be bit-identical between a task that carries a
// FlatDagBatch view and the same task rebuilt around a materialised Dag.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis_cache.h"
#include "analysis/batch_kernels.h"
#include "gen/flat_gen.h"
#include "taskset/contention_rta.h"
#include "taskset/gen.h"
#include "taskset/sim.h"
#include "util/rng.h"

namespace hedra::taskset {
namespace {

TaskSetGenConfig base_config() {
  TaskSetGenConfig config;
  config.num_tasks = 4;
  config.total_utilization = 1.5;
  config.dag_params.max_depth = 3;
  config.dag_params.n_par = 4;
  config.dag_params.min_nodes = 10;
  config.dag_params.max_nodes = 40;
  config.dag_params.wcet_max = 50;
  config.dag_params.num_devices = 2;
  config.coff_ratio = 0.25;
  config.cores = 4;
  return config;
}

/// The same tasks rebuilt around materialised Dags (the pre-arena layout).
TaskSet eager_clone(const TaskSet& set) {
  TaskSet clone(set.platform());
  for (const model::DagTask& task : set) {
    clone.add(model::DagTask(task.dag(), task.period(), task.deadline(),
                             task.name()));
  }
  return clone;
}

TEST(ArenaTasksetTest, GeneratedTasksAreArenaBacked) {
  Rng rng(33);
  const TaskSet set = generate_task_set(base_config(), rng);
  for (const model::DagTask& task : set) {
    EXPECT_TRUE(task.has_flat_view());
    const graph::FlatView view = task.flat_view();
    // The lazily materialised Dag mirrors the view field-for-field.
    const model::Dag& dag = task.dag();
    ASSERT_EQ(dag.num_nodes(), view.num_nodes());
    ASSERT_EQ(dag.num_edges(), view.num_edges());
    for (graph::NodeId v = 0; v < view.num_nodes(); ++v) {
      EXPECT_EQ(dag.wcet(v), view.wcet(v));
      EXPECT_EQ(dag.device(v), view.device(v));
    }
    // Materialisation does not detach the task from the arena.
    EXPECT_TRUE(task.has_flat_view());
  }
}

TEST(ArenaTasksetTest, MetricsMatchTheEagerPath) {
  Rng rng(34);
  const TaskSet set = generate_task_set(base_config(), rng);
  const TaskSet eager = eager_clone(set);
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(set[i].utilization(), eager[i].utilization());
    EXPECT_EQ(set[i].density(), eager[i].density());
    EXPECT_EQ(set[i].host_utilization(), eager[i].host_utilization());
    EXPECT_EQ(set[i].length_ratio(), eager[i].length_ratio());
  }
  EXPECT_EQ(set.total_utilization(), eager.total_utilization());
}

TEST(ArenaTasksetTest, MutableDagDetachesFromTheArena) {
  Rng rng(35);
  const TaskSet set = generate_task_set(base_config(), rng);
  model::DagTask task = set[0];
  const Frac before = task.utilization();
  ASSERT_TRUE(task.has_flat_view());
  model::Dag& dag = task.mutable_dag();
  EXPECT_FALSE(task.has_flat_view());
  EXPECT_EQ(task.utilization(), before);
  EXPECT_THROW((void)task.flat_view(), Error);
  (void)dag;
}

TEST(ArenaTasksetTest, AdmissionIsBitIdenticalToTheEagerPath) {
  for (const std::uint64_t seed : {11u, 57u, 203u}) {
    Rng rng(seed);
    const TaskSet set = generate_task_set(base_config(), rng);
    const TaskSet eager = eager_clone(set);
    const ContentionAnalysis a = contention_rta(set);
    const ContentionAnalysis b = contention_rta(eager);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    EXPECT_EQ(a.schedulable, b.schedulable);
    EXPECT_EQ(a.cores_used, b.cores_used);
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      SCOPED_TRACE("seed " + std::to_string(seed) + ", task " +
                   std::to_string(i));
      EXPECT_EQ(a.tasks[i].cores, b.tasks[i].cores);
      EXPECT_EQ(a.tasks[i].schedulable, b.tasks[i].schedulable);
      EXPECT_EQ(a.tasks[i].response, b.tasks[i].response);
      EXPECT_EQ(a.tasks[i].iterations, b.tasks[i].iterations);
      ASSERT_EQ(a.tasks[i].devices.size(), b.tasks[i].devices.size());
      for (std::size_t d = 0; d < a.tasks[i].devices.size(); ++d) {
        EXPECT_EQ(a.tasks[i].devices[d].device, b.tasks[i].devices[d].device);
        EXPECT_EQ(a.tasks[i].devices[d].own_volume,
                  b.tasks[i].devices[d].own_volume);
        EXPECT_EQ(a.tasks[i].devices[d].interference,
                  b.tasks[i].devices[d].interference);
        EXPECT_EQ(a.tasks[i].devices[d].dominant_competitor,
                  b.tasks[i].devices[d].dominant_competitor);
      }
    }
  }
}

TEST(ArenaTasksetTest, AdmissionMatchesEagerUnderUnitsAndSpeedups) {
  // Non-trivial unit counts and rational speedups push the fixpoint onto
  // scaled arithmetic with base > 1; the eager clone must still agree
  // exactly.
  model::Platform platform = model::Platform::symmetric(4, 2);
  platform.device_units = {2, 1};
  platform.device_speedup = {Frac(3, 2), Frac(5, 4)};

  gen::HierarchicalParams params;
  params.max_depth = 3;
  params.n_par = 4;
  params.min_nodes = 10;
  params.max_nodes = 40;
  params.wcet_max = 50;
  params.num_devices = 2;

  auto arena = std::make_shared<graph::FlatDagBatch>();
  Rng rng(91);
  for (int i = 0; i < 3; ++i) {
    Rng task_rng = rng.fork();
    gen::generate_multi_device_flat(params, 0.25, task_rng, *arena);
  }
  TaskSet set(platform);
  for (std::size_t i = 0; i < 3; ++i) {
    set.add(model::DagTask(arena, i, 4000, 4000,
                           "tau" + std::to_string(i + 1)));
  }
  const TaskSet eager = eager_clone(set);
  const ContentionAnalysis a = contention_rta(set);
  const ContentionAnalysis b = contention_rta(eager);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  EXPECT_EQ(a.schedulable, b.schedulable);
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].response, b.tasks[i].response);
    EXPECT_EQ(a.tasks[i].cores, b.tasks[i].cores);
    EXPECT_EQ(a.tasks[i].iterations, b.tasks[i].iterations);
  }
}

TEST(ArenaTasksetTest, SimulationIsBitIdenticalToTheEagerPath) {
  for (const std::uint64_t seed : {19u, 83u}) {
    Rng rng(seed);
    const TaskSet set = generate_task_set(base_config(), rng);
    const TaskSet eager = eager_clone(set);
    const std::vector<int> cores(set.size(), 1);
    TasksetSimConfig config;
    config.jobs_per_task = 3;
    config.seed = 7 * seed;
    const TasksetSimResult a = simulate_taskset(set, cores, config);
    const TasksetSimResult b = simulate_taskset(eager, cores, config);
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      EXPECT_EQ(a.tasks[i].worst_response, b.tasks[i].worst_response);
      ASSERT_EQ(a.tasks[i].jobs.size(), b.tasks[i].jobs.size());
      for (std::size_t j = 0; j < a.tasks[i].jobs.size(); ++j) {
        EXPECT_EQ(a.tasks[i].jobs[j].release, b.tasks[i].jobs[j].release);
        EXPECT_EQ(a.tasks[i].jobs[j].finish, b.tasks[i].jobs[j].finish);
      }
    }
  }
}

TEST(ArenaTasksetTest, TextRoundTripMatchesTheEagerPath) {
  Rng rng(47);
  const TaskSet set = generate_task_set(base_config(), rng);
  const TaskSet eager = eager_clone(set);
  const std::string text = set.to_text();
  EXPECT_EQ(text, eager.to_text());
  const TaskSet parsed = TaskSet::from_text(text);
  EXPECT_EQ(parsed.to_text(), text);
}

TEST(ArenaTasksetTest, PlatformBoundViewMatchesTheAnalysisCache) {
  Rng rng(61);
  const TaskSet set = generate_task_set(base_config(), rng);
  const std::vector<int> units{2, 3};
  const std::vector<Frac> speedups{Frac(3, 2), Frac(1)};
  const std::vector<int> unit_ones{1, 1};
  const std::vector<Frac> unit_speeds{Frac(1), Frac(1)};
  for (const model::DagTask& task : set) {
    const graph::FlatView view = task.flat_view();
    const analysis::PlatformQuantities q =
        analysis::platform_quantities_view(view);
    analysis::AnalysisCache cache(task.dag());
    for (int m = 1; m <= 4; ++m) {
      EXPECT_EQ(analysis::platform_bound(q, view, m, unit_ones, unit_speeds),
                cache.r_platform(m, unit_ones, unit_speeds));
      EXPECT_EQ(analysis::platform_bound(q, view, m, units, unit_speeds),
                cache.r_platform(m, units, unit_speeds));
      EXPECT_EQ(analysis::platform_bound(q, view, m, units, speedups),
                cache.r_platform(m, units, speedups));
    }
  }
}

}  // namespace
}  // namespace hedra::taskset
