#include "taskset/gen.h"

#include <gtest/gtest.h>

#include "graph/critical_path.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::taskset {
namespace {

TaskSetGenConfig base_config() {
  TaskSetGenConfig config;
  config.num_tasks = 4;
  config.total_utilization = 1.5;
  config.dag_params.max_depth = 3;
  config.dag_params.n_par = 4;
  config.dag_params.min_nodes = 10;
  config.dag_params.max_nodes = 40;
  config.dag_params.wcet_max = 50;
  config.dag_params.num_devices = 2;
  config.coff_ratio = 0.25;
  config.cores = 4;
  return config;
}

TEST(TaskSetGenConfigTest, PlatformMatchesTheRequestedShape) {
  TaskSetGenConfig config = base_config();
  config.device_units = {2, 1};
  const model::Platform platform = config.platform();
  EXPECT_EQ(platform.cores, 4);
  EXPECT_EQ(platform.num_devices(), 2);
  EXPECT_EQ(platform.units_of(1), 2);
  EXPECT_EQ(platform.units_of(2), 1);
}

TEST(TaskSetGenTest, GeneratesValidatedSetsWithPopulatedDevices) {
  Rng rng(21);
  const TaskSet set = generate_task_set(base_config(), rng);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_NO_THROW(set.validate());
  // Multi-device tasks carry one offload node per class, so the structural
  // rules allow any offload count (the paper's single-offload rule is for
  // K = 1 pipelines).
  graph::ValidationRules rules = graph::heterogeneous_rules();
  rules.required_offload_count = -1;
  for (const DagTask& task : set) {
    EXPECT_TRUE(graph::is_valid(task.dag(), rules));
    EXPECT_GT(task.dag().volume_on(1), 0);
    EXPECT_GT(task.dag().volume_on(2), 0);
    EXPECT_GE(task.period(), graph::critical_path_length(task.dag()));
    EXPECT_EQ(task.deadline(), task.period());  // implicit by default
  }
}

TEST(TaskSetGenTest, UtilizationNearTarget) {
  Rng rng(22);
  const TaskSet set = generate_task_set(base_config(), rng);
  EXPECT_LE(set.total_utilization(), 1.5 + 1e-9);
  EXPECT_GT(set.total_utilization(), 0.8);
}

TEST(TaskSetGenTest, HostOnlySetsWhenNoDevices) {
  TaskSetGenConfig config = base_config();
  config.dag_params.num_devices = 0;
  Rng rng(23);
  const TaskSet set = generate_task_set(config, rng);
  EXPECT_EQ(set.platform().num_devices(), 0);
  for (const DagTask& task : set) {
    EXPECT_TRUE(task.dag().offload_nodes().empty());
  }
}

TEST(TaskSetGenTest, ConstrainedDeadlinesStayInWindow) {
  TaskSetGenConfig config = base_config();
  config.implicit_deadlines = false;
  Rng rng(24);
  const TaskSet set = generate_task_set(config, rng);
  for (const DagTask& task : set) {
    EXPECT_LE(task.deadline(), task.period());
    EXPECT_GE(task.deadline(), graph::critical_path_length(task.dag()));
  }
}

TEST(TaskSetGenTest, DeterministicFromTheSeed) {
  Rng a(25);
  Rng b(25);
  const TaskSet sa = generate_task_set(base_config(), a);
  const TaskSet sb = generate_task_set(base_config(), b);
  EXPECT_EQ(sa.to_text(), sb.to_text());
}

TEST(TaskSetGenTest, BatchSetsAreIndependentForks) {
  // Fork-chain batches: the first k sets of a longer batch are identical to
  // a shorter batch from the same master seed (the replication contract the
  // sweep engine relies on).
  const auto long_batch = generate_taskset_batch(base_config(), 5, 31);
  const auto short_batch = generate_taskset_batch(base_config(), 3, 31);
  ASSERT_EQ(long_batch.size(), 5u);
  for (std::size_t i = 0; i < short_batch.size(); ++i) {
    EXPECT_EQ(long_batch[i].to_text(), short_batch[i].to_text());
  }
  // And distinct forks differ.
  EXPECT_NE(long_batch[0].to_text(), long_batch[1].to_text());
}

TEST(TaskSetGenTest, SpeedupShrinksDeviceVolumes) {
  TaskSetGenConfig fast = base_config();
  fast.dag_params.device_speedup = {4.0, 1.0};
  Rng a(26);
  Rng b(26);
  const TaskSet plain = generate_task_set(base_config(), a);
  const TaskSet sped = generate_task_set(fast, b);
  ASSERT_EQ(plain.size(), sped.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Same structure and placement (identical RNG stream), but device 1's
    // realised volume shrinks by ~the speedup factor.
    EXPECT_EQ(plain[i].dag().num_nodes(), sped[i].dag().num_nodes());
    EXPECT_LT(sped[i].dag().volume_on(1), plain[i].dag().volume_on(1));
    EXPECT_EQ(sped[i].dag().volume_on(2), plain[i].dag().volume_on(2));
  }
}

TEST(TaskSetGenTest, InvalidConfigsThrow) {
  Rng rng(27);
  TaskSetGenConfig config = base_config();
  config.num_tasks = 0;
  EXPECT_THROW(generate_task_set(config, rng), Error);
  config = base_config();
  config.coff_ratio = 1.0;
  EXPECT_THROW(generate_task_set(config, rng), Error);
  config = base_config();
  config.device_units = {2};  // one entry for two classes
  EXPECT_THROW(generate_task_set(config, rng), Error);
  config = base_config();
  config.cores = 0;
  EXPECT_THROW(generate_task_set(config, rng), Error);
}

}  // namespace
}  // namespace hedra::taskset
