#include "taskset/sim.h"

#include <gtest/gtest.h>

#include "taskset/contention_rta.h"
#include "taskset/gen.h"
#include "util/error.h"

namespace hedra::taskset {
namespace {

graph::Dag chain_dag(graph::Time a_wcet, graph::Time off_wcet,
                     graph::Time b_wcet, graph::DeviceId device) {
  graph::Dag dag;
  const auto a = dag.add_node(a_wcet);
  const auto b = dag.add_node_on(off_wcet, device);
  const auto c = dag.add_node(b_wcet);
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  return dag;
}

TEST(TasksetSimTest, SingleTaskMatchesHandSchedule) {
  // One chain task alone: response = sum of the chain, every job alike.
  TaskSet set(Platform::parse("2:gpu"));
  set.add(DagTask(chain_dag(5, 7, 4, 1), 100, 100, "tau1"));
  TasksetSimConfig config;
  config.jobs_per_task = 3;
  const std::vector<int> cores{1};
  const TasksetSimResult result = simulate_taskset(set, cores, config);
  ASSERT_EQ(result.tasks.size(), 1u);
  ASSERT_EQ(result.tasks[0].jobs.size(), 3u);
  for (std::uint32_t j = 0; j < 3; ++j) {
    const JobRecord& job = result.tasks[0].jobs[j];
    EXPECT_EQ(job.release, 100 * j);
    EXPECT_EQ(job.response(), 16);
  }
  EXPECT_EQ(result.tasks[0].worst_response, 16);
  EXPECT_EQ(result.makespan, 216);
}

TEST(TasksetSimTest, SharedDeviceSerializesAcrossTasks) {
  // Two tasks whose offloads collide at t = 5 on a single-unit class: the
  // FIFO tie-break (smaller task index first) delays tau2's offload by
  // tau1's 7 ticks.
  TaskSet set(Platform::parse("2:gpu"));
  set.add(DagTask(chain_dag(5, 7, 4, 1), 1000, 1000, "tau1"));
  set.add(DagTask(chain_dag(5, 7, 4, 1), 1000, 1000, "tau2"));
  TasksetSimConfig config;
  config.jobs_per_task = 1;
  const std::vector<int> cores{1, 1};
  const TasksetSimResult result = simulate_taskset(set, cores, config);
  EXPECT_EQ(result.tasks[0].worst_response, 16);
  EXPECT_EQ(result.tasks[1].worst_response, 23);  // 16 + 7 queueing
  // A second unit removes the contention entirely.
  TaskSet two_units(Platform::parse("2:gpu*2"));
  two_units.add(DagTask(chain_dag(5, 7, 4, 1), 1000, 1000, "tau1"));
  two_units.add(DagTask(chain_dag(5, 7, 4, 1), 1000, 1000, "tau2"));
  const TasksetSimResult parallel =
      simulate_taskset(two_units, cores, config);
  EXPECT_EQ(parallel.tasks[0].worst_response, 16);
  EXPECT_EQ(parallel.tasks[1].worst_response, 16);
}

TEST(TasksetSimTest, ZeroWcetDeviceNodesQueueForTheirUnit) {
  // A zero-WCET accelerator node still waits for the unit (the PR 4
  // regression semantics, carried into the taskset layer): tau2's zero-tick
  // offload cannot finish before tau1's 7-tick offload releases the unit.
  TaskSet set(Platform::parse("2:gpu"));
  set.add(DagTask(chain_dag(5, 7, 4, 1), 1000, 1000, "tau1"));
  set.add(DagTask(chain_dag(5, 0, 4, 1), 1000, 1000, "tau2"));
  TasksetSimConfig config;
  config.jobs_per_task = 1;
  const std::vector<int> cores{1, 1};
  const TasksetSimResult result = simulate_taskset(set, cores, config);
  // tau2: host 5, then its offload waits until t = 12, then host 4.
  EXPECT_EQ(result.tasks[1].worst_response, 16);
}

TEST(TasksetSimTest, DeterministicForEveryPolicy) {
  TaskSetGenConfig gen_config;
  gen_config.num_tasks = 3;
  gen_config.total_utilization = 1.2;
  gen_config.dag_params.max_depth = 3;
  gen_config.dag_params.n_par = 4;
  gen_config.dag_params.min_nodes = 10;
  gen_config.dag_params.max_nodes = 40;
  gen_config.dag_params.num_devices = 2;
  gen_config.coff_ratio = 0.25;
  gen_config.cores = 4;
  Rng rng(41);
  const TaskSet set = generate_task_set(gen_config, rng);
  const std::vector<int> cores{1, 1, 1};
  for (const auto policy : sim::all_policies()) {
    TasksetSimConfig config;
    config.policy = policy;
    config.jobs_per_task = 2;
    config.seed = 99;
    const TasksetSimResult a = simulate_taskset(set, cores, config);
    const TasksetSimResult b = simulate_taskset(set, cores, config);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t i = 0; i < a.tasks.size(); ++i) {
      EXPECT_EQ(a.tasks[i].worst_response, b.tasks[i].worst_response)
          << sim::to_string(policy);
    }
    EXPECT_EQ(a.makespan, b.makespan) << sim::to_string(policy);
  }
}

TEST(TasksetSimTest, SpeedupPlatformsAreRejected) {
  // A speedup-carrying platform declares WCETs nominal; this simulator
  // executes WCETs verbatim, so running it would falsely undercut the
  // scaled admission bounds (observed 28 vs bound 24 on this very
  // fixture).  It must refuse instead.
  TaskSet set(Platform::parse("4:gpu@2"));
  set.add(DagTask(chain_dag(10, 8, 10, 1), 200, 200, "tau1"));
  TasksetSimConfig config;
  EXPECT_THROW((void)simulate_taskset(set, std::vector<int>{1}, config),
               Error);
}

TEST(TasksetSimTest, InvalidPartitionsThrow) {
  TaskSet set(Platform::parse("2:gpu"));
  set.add(DagTask(chain_dag(5, 7, 4, 1), 100, 100, "tau1"));
  TasksetSimConfig config;
  EXPECT_THROW(simulate_taskset(set, std::vector<int>{}, config), Error);
  EXPECT_THROW(simulate_taskset(set, std::vector<int>{0}, config), Error);
  EXPECT_THROW(simulate_taskset(set, std::vector<int>{3}, config), Error);
  config.jobs_per_task = 0;
  EXPECT_THROW(simulate_taskset(set, std::vector<int>{1}, config), Error);
}

class TasksetDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TasksetDominance, BoundDominatesEveryPolicyAndPlatformShape) {
  // ACCEPTANCE CRITERION (PR 5): for admitted sets, the contention-inflated
  // bound must dominate every observed job response under EVERY
  // work-conserving ready-queue policy, for K ∈ {1, 2, 3} classes and
  // n_d ∈ {1, 2} units — exact rational comparison.
  Rng master(GetParam());
  for (const int devices : {1, 2, 3}) {
    for (const int units : {1, 2}) {
      TaskSetGenConfig gen_config;
      gen_config.num_tasks = 3;
      gen_config.total_utilization = 1.0;
      gen_config.dag_params.max_depth = 3;
      gen_config.dag_params.n_par = 4;
      gen_config.dag_params.min_nodes = 10;
      gen_config.dag_params.max_nodes = 40;
      gen_config.dag_params.wcet_max = 50;
      gen_config.dag_params.num_devices = devices;
      gen_config.coff_ratio = 0.3;
      gen_config.cores = 6;
      gen_config.device_units.assign(static_cast<std::size_t>(devices),
                                     units);
      Rng rng = master.fork();
      const TaskSet set = generate_task_set(gen_config, rng);
      const ContentionAnalysis admission = contention_rta(set);
      if (!admission.schedulable) continue;  // bound only claimed if admitted
      std::vector<int> cores;
      for (const TaskAdmission& task : admission.tasks) {
        cores.push_back(task.cores);
      }
      for (const auto policy : sim::all_policies()) {
        TasksetSimConfig config;
        config.policy = policy;
        config.jobs_per_task = 3;
        config.seed = GetParam() ^ 0x5eedu;
        const TasksetSimResult result = simulate_taskset(set, cores, config);
        for (std::size_t i = 0; i < set.size(); ++i) {
          EXPECT_LE(Frac(result.tasks[i].worst_response),
                    admission.tasks[i].response)
              << "K=" << devices << " units=" << units
              << " policy=" << sim::to_string(policy) << " task=" << i;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TasksetDominance,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hedra::taskset
