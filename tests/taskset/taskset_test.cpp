#include "taskset/taskset.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "graph/dag_io.h"
#include "util/error.h"

namespace hedra::taskset {
namespace {

graph::Dag two_node_dag(graph::Time host_wcet, graph::Time offload_wcet,
                        graph::DeviceId device) {
  graph::Dag dag;
  const auto a = dag.add_node(host_wcet);
  const auto b = dag.add_node_on(offload_wcet, device);
  dag.add_edge(a, b);
  return dag;
}

TaskSet small_set() {
  TaskSet set(Platform::parse("4:gpu*2,dsp"));
  set.add(DagTask(two_node_dag(6, 4, 1), 100, 80, "tau1"));
  set.add(DagTask(two_node_dag(3, 5, 2), 50, 50, "tau2"));
  return set;
}

TEST(TaskSetTest, ValidatesCleanSet) {
  EXPECT_NO_THROW(small_set().validate());
}

TEST(TaskSetTest, RejectsUnsupportedDevicePlacement) {
  TaskSet set(Platform::parse("4:gpu"));
  set.add(DagTask(two_node_dag(6, 4, 2), 100, 80, "tau1"));  // no device 2
  EXPECT_THROW(set.validate(), Error);
}

TEST(TaskSetTest, RejectsDuplicateAndWhitespaceNames) {
  TaskSet duplicate(Platform::parse("2:gpu"));
  duplicate.add(DagTask(two_node_dag(6, 4, 1), 100, 80, "tau"));
  duplicate.add(DagTask(two_node_dag(3, 5, 1), 50, 50, "tau"));
  EXPECT_THROW(duplicate.validate(), Error);

  TaskSet spaced(Platform::parse("2:gpu"));
  spaced.add(DagTask(two_node_dag(6, 4, 1), 100, 80, "tau one"));
  EXPECT_THROW(spaced.validate(), Error);
}

TEST(TaskSetTest, UtilizationAccounting) {
  const TaskSet set = small_set();
  // tau1: vol 10 / T 100; tau2: vol 8 / T 50.
  EXPECT_NEAR(set.total_utilization(), 10.0 / 100.0 + 8.0 / 50.0, 1e-12);
  // Host: 6/100 + 3/50; device 1: 4/100; device 2: 5/50.
  EXPECT_NEAR(set.device_utilization(graph::kHostDevice),
              6.0 / 100.0 + 3.0 / 50.0, 1e-12);
  EXPECT_NEAR(set.device_utilization(1), 4.0 / 100.0, 1e-12);
  EXPECT_NEAR(set.device_utilization(2), 5.0 / 50.0, 1e-12);
  EXPECT_EQ(set.task_device_utilization(0, 1), Frac(4, 100));
  EXPECT_EQ(set.task_device_utilization(1, 2), Frac(5, 50));
  EXPECT_EQ(set.task_device_utilization(1, 1), Frac(0));
}

TEST(TaskSetTest, TextRoundTripIsExact) {
  const TaskSet set = small_set();
  const std::string text = set.to_text();
  const TaskSet parsed = TaskSet::from_text(text);
  // Second serialisation is byte-identical — the round-trip fixpoint.
  EXPECT_EQ(parsed.to_text(), text);
  ASSERT_EQ(parsed.size(), set.size());
  EXPECT_EQ(parsed.platform(), set.platform());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(parsed[i].name(), set[i].name());
    EXPECT_EQ(parsed[i].period(), set[i].period());
    EXPECT_EQ(parsed[i].deadline(), set[i].deadline());
    EXPECT_EQ(graph::write_dag_text(parsed[i].dag()),
              graph::write_dag_text(set[i].dag()));
  }
}

TEST(TaskSetTest, TextCarriesUnitsAndSpeedups) {
  TaskSet set(Platform::parse("8:gpu*2@3.0,dsp@1.5"));
  set.add(DagTask(two_node_dag(6, 4, 1), 100, 80, "tau1"));
  const TaskSet parsed = TaskSet::from_text(set.to_text());
  EXPECT_EQ(parsed.platform().units_of(1), 2);
  EXPECT_EQ(parsed.platform().speedup_of(1), Frac(3));
  EXPECT_EQ(parsed.platform().speedup_of(2), Frac(3, 2));
}

TEST(TaskSetTest, FromTextRejectsMalformedInput) {
  EXPECT_THROW(TaskSet::from_text(""), Error);  // no platform
  EXPECT_THROW(TaskSet::from_text("task t period 5 deadline 5\nendtask\n"),
               Error);  // platform must come first
  EXPECT_THROW(TaskSet::from_text("platform 4:gpu\nplatform 2\n"), Error);
  EXPECT_THROW(
      TaskSet::from_text("platform 4:gpu\ntask t period 5 deadline 5\n"),
      Error);  // missing endtask
  EXPECT_THROW(
      TaskSet::from_text("platform 4:gpu\ntask t period 0 deadline 0\n"
                         "node v1 3\nendtask\n"),
      Error);  // bad period
  EXPECT_THROW(TaskSet::from_text("platform 4:gpu\nbogus directive\n"), Error);
  // Trailing junk on a task header must not silently truncate the value
  // ("40O" previously parsed as deadline 40).
  EXPECT_THROW(
      TaskSet::from_text("platform 4:gpu\ntask t period 50 deadline 40O\n"
                         "node v1 3\nendtask\n"),
      Error);
  EXPECT_THROW(
      TaskSet::from_text("platform 4:gpu\ntask t period 50 deadline 40 x\n"
                         "node v1 3\nendtask\n"),
      Error);
  // Directives match by exact token: near-misses are unknown directives,
  // not silently accepted tasks/platforms.
  EXPECT_THROW(
      TaskSet::from_text("platform 4:gpu\ntasks t period 50 deadline 50\n"
                         "node v1 3\nendtask\n"),
      Error);
  EXPECT_THROW(TaskSet::from_text("platformX 4:gpu\n"), Error);
}

TEST(TaskSetTest, CommentsAndBlankLinesIgnored) {
  const TaskSet parsed = TaskSet::from_text(
      "# a taskset\n\nplatform 2:gpu\n\n# first task\n"
      "task tau1 period 10 deadline 10\nnode v1 3\nendtask\n");
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].period(), 10);
}

TEST(TaskSetTest, FileRoundTrip) {
  const TaskSet set = small_set();
  const std::string path = ::testing::TempDir() + "/set.taskset";
  save_taskset_file(set, path);
  const TaskSet loaded = load_taskset_file(path);
  EXPECT_EQ(loaded.to_text(), set.to_text());
  std::remove(path.c_str());
  EXPECT_THROW(load_taskset_file(::testing::TempDir() + "/missing.taskset"),
               Error);
}

}  // namespace
}  // namespace hedra::taskset
