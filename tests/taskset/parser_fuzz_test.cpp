/// \file parser_fuzz_test.cpp
/// Satellite of the robustness PR: the text loaders must survive HOSTILE
/// input — random mutations of valid files, binary garbage, oversized
/// counts, truncation — with exactly two legal outcomes: a successful parse
/// or a typed hedra::Error naming the problem.  Crashes, hangs, and UB are
/// the bugs this suite hunts; 10k mutated cases per parser keep the odds
/// honest.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/dag_io.h"
#include "model/platform.h"
#include "taskset/taskset.h"
#include "util/rng.h"
#include "util/strings.h"

namespace hedra::taskset {
namespace {

std::string valid_taskset_text() {
  return
      "platform 4:gpu*2@3.0,dsp@1.5\n"
      "task tau1 period 1200 deadline 1100\n"
      "node v1 5\n"
      "node v2 9 offload\n"
      "node v3 4 offload:2\n"
      "node v4 7 sync\n"
      "edge v1 v2\n"
      "edge v2 v4\n"
      "edge v1 v3\n"
      "endtask\n"
      "task tau2 period 500 deadline 450\n"
      "node a 20\n"
      "node b 8 offload\n"
      "edge a b\n"
      "endtask\n";
}

/// One random mutation: byte flips, truncation, line-level edits, binary
/// splices — the failure shapes a corrupted file or hostile peer produces.
std::string mutate(const std::string& base, Rng& rng) {
  std::string text = base;
  switch (rng.uniform_int(0, 6)) {
    case 0: {  // flip a byte (any value, including non-UTF8 high bytes)
      if (text.empty()) break;
      text[rng.index(text.size())] =
          static_cast<char>(rng.uniform_int(0, 255));
      break;
    }
    case 1: {  // truncate mid-file
      text.resize(rng.index(text.size() + 1));
      break;
    }
    case 2: {  // delete a random line
      auto lines = split(text, '\n');
      lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(
                      rng.index(lines.size())));
      text.clear();
      for (const auto& line : lines) text += line + "\n";
      break;
    }
    case 3: {  // duplicate a random line
      auto lines = split(text, '\n');
      const std::size_t i = rng.index(lines.size());
      lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(i), lines[i]);
      text.clear();
      for (const auto& line : lines) text += line + "\n";
      break;
    }
    case 4: {  // swap two lines
      auto lines = split(text, '\n');
      std::swap(lines[rng.index(lines.size())],
                lines[rng.index(lines.size())]);
      text.clear();
      for (const auto& line : lines) text += line + "\n";
      break;
    }
    case 5: {  // splice binary garbage at a random offset
      std::string garbage;
      const std::size_t len = rng.index(16) + 1;
      for (std::size_t i = 0; i < len; ++i) {
        garbage += static_cast<char>(rng.uniform_int(0, 255));
      }
      text.insert(rng.index(text.size() + 1), garbage);
      break;
    }
    default: {  // scramble a number
      const std::size_t at = text.find_first_of("0123456789");
      if (at != std::string::npos) {
        text.replace(at, 1, std::to_string(rng.next_u64()));
      }
      break;
    }
  }
  return text;
}

TEST(ParserFuzzTest, TasksetFromTextSurvives10kMutations) {
  const std::string base = valid_taskset_text();
  Rng rng(20260807);
  int parsed = 0;
  int rejected = 0;
  for (int i = 0; i < 10'000; ++i) {
    // 1-3 stacked mutations per case.
    std::string text = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 3));
    for (int e = 0; e < edits; ++e) text = mutate(text, rng);
    try {
      const TaskSet set = TaskSet::from_text(text);
      // A successful parse must yield a coherent, re-serialisable set.
      (void)set.to_text();
      ++parsed;
    } catch (const Error&) {
      ++rejected;  // the only legal failure mode
    }
    // Anything else — segfault, std::bad_alloc from a hostile count,
    // std::out_of_range, a hang — fails the test (or kills the binary).
  }
  EXPECT_EQ(parsed + rejected, 10'000);
  EXPECT_GT(rejected, 0);  // the mutator does reach the error paths
}

TEST(ParserFuzzTest, PlatformParseSurvives10kMutations) {
  const std::string base = "4:gpu*2@3.0,dsp@1.5,npu";
  Rng rng(426);
  for (int i = 0; i < 10'000; ++i) {
    std::string text = base;
    const int edits = static_cast<int>(rng.uniform_int(1, 2));
    for (int e = 0; e < edits; ++e) text = mutate(text, rng);
    try {
      const model::Platform platform = model::Platform::parse(text);
      // Round-trip: what parsed must re-parse from its own spec.
      (void)model::Platform::parse(platform.spec());
    } catch (const Error&) {
    }
  }
}

TEST(ParserFuzzTest, PureBinaryGarbageIsATypedError) {
  Rng rng(99);
  for (int i = 0; i < 1'000; ++i) {
    std::string garbage;
    const std::size_t len = rng.index(256);
    for (std::size_t b = 0; b < len; ++b) {
      garbage += static_cast<char>(rng.uniform_int(0, 255));
    }
    EXPECT_THROW((void)TaskSet::from_text("\xff\x80" + garbage), Error);
    try {
      (void)model::Platform::parse(garbage);
    } catch (const Error&) {
    }
  }
}

TEST(ParserFuzzTest, TaskCountCapNamesTheLine) {
  std::ostringstream text;
  text << "platform 4:acc\n";
  for (std::size_t i = 0; i <= TaskSet::kMaxParsedTasks; ++i) {
    text << "task t" << i << " period 100 deadline 100\nnode v 1\nendtask\n";
  }
  try {
    (void)TaskSet::from_text(text.str());
    FAIL() << "expected the task-count cap to fire";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line"), std::string::npos) << what;
    EXPECT_NE(what.find("cap"), std::string::npos) << what;
  }
}

TEST(ParserFuzzTest, NodeCountCapNamesTheLine) {
  std::ostringstream text;
  text << "platform 4:acc\ntask big period 100 deadline 100\n";
  for (std::size_t i = 0; i <= graph::kMaxParsedNodes; ++i) {
    text << "node n" << i << " 1\n";
  }
  text << "endtask\n";
  try {
    (void)TaskSet::from_text(text.str());
    FAIL() << "expected the node-count cap to fire";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cap"), std::string::npos) << what;
  }
}

TEST(ParserFuzzTest, DeviceCountCapRefused) {
  std::string spec = "4:";
  for (std::size_t i = 0; i <= model::Platform::kMaxParsedDevices; ++i) {
    if (i > 0) spec += ",";
    spec += "d" + std::to_string(i);
  }
  EXPECT_THROW((void)model::Platform::parse(spec), Error);
}

TEST(ParserFuzzTest, DirectedHostileCases) {
  // Truncated endtask names the task and its line.
  try {
    (void)TaskSet::from_text(
        "platform 4:acc\ntask tau1 period 100 deadline 100\nnode v 1\n");
    FAIL() << "expected a truncation error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("endtask"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }

  // Duplicate task names are a parse error naming the second header line.
  try {
    (void)TaskSet::from_text(
        "platform 4:acc\n"
        "task tau period 100 deadline 100\nnode v 1\nendtask\n"
        "task tau period 100 deadline 100\nnode v 1\nendtask\n");
    FAIL() << "expected a duplicate-name error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos);
  }

  // An absurd declared count inside a number must not allocate: 10^18 is a
  // parseable int64 but period/deadline validation bounds it.
  EXPECT_THROW((void)TaskSet::from_text(
                   "platform 4:acc\n"
                   "task tau period 99999999999999999999 deadline 1\n"
                   "node v 1\nendtask\n"),
               Error);

  // Oversized core counts are rejected by Platform::validate.
  EXPECT_THROW((void)model::Platform::parse("99999999999999999999"), Error);
  EXPECT_THROW((void)model::Platform::parse("-3"), Error);
}

}  // namespace
}  // namespace hedra::taskset
