#include "taskset/contention_rta.h"

#include <gtest/gtest.h>

#include "analysis/analysis_cache.h"
#include "taskset/gen.h"
#include "util/error.h"
#include "util/rng.h"

namespace hedra::taskset {
namespace {

graph::Dag chain_dag(graph::Time host_wcet, graph::Time offload_wcet,
                     graph::DeviceId device) {
  graph::Dag dag;
  const auto a = dag.add_node(host_wcet);
  const auto b = dag.add_node_on(offload_wcet, device);
  const auto c = dag.add_node(host_wcet);
  dag.add_edge(a, b);
  dag.add_edge(b, c);
  return dag;
}

TaskSetGenConfig small_gen(int num_tasks, int devices, double utilization) {
  TaskSetGenConfig config;
  config.num_tasks = num_tasks;
  config.total_utilization = utilization;
  config.dag_params.max_depth = 3;
  config.dag_params.n_par = 4;
  config.dag_params.min_nodes = 10;
  config.dag_params.max_nodes = 40;
  config.dag_params.wcet_max = 50;
  config.dag_params.num_devices = devices;
  config.coff_ratio = 0.25;
  config.cores = 8;
  return config;
}

TEST(ContentionRtaTest, SingleTaskReducesToRplatformExactly) {
  // ACCEPTANCE CRITERION (PR 5): with no competitors there is no carry-in
  // interference, so the contention fixpoint must equal the single-task
  // platform bound with EXACT rational equality — over generated batches,
  // for K ∈ {1, 2, 3} and n_d ∈ {1, 2}.
  for (const int devices : {1, 2, 3}) {
    for (const int units : {1, 2}) {
      TaskSetGenConfig config = small_gen(1, devices, 0.4);
      config.device_units.assign(static_cast<std::size_t>(devices), units);
      const auto batch = generate_taskset_batch(config, 6, 97 + devices);
      for (const TaskSet& set : batch) {
        const ContentionAnalysis admission = contention_rta(set);
        ASSERT_EQ(admission.tasks.size(), 1u);
        const TaskAdmission& task = admission.tasks[0];
        ASSERT_GE(task.cores, 1);
        analysis::AnalysisCache cache(set[0].dag());
        const std::vector<int> unit_vec(static_cast<std::size_t>(devices),
                                        units);
        EXPECT_EQ(task.response, cache.r_platform(task.cores, unit_vec))
            << "K=" << devices << " units=" << units;
        EXPECT_EQ(task.iterations, 1);  // fixpoint converges at the seed
        bool converged = false;
        EXPECT_EQ(contention_response(set, 0, task.cores, &converged),
                  task.response);
        EXPECT_TRUE(converged);
      }
    }
  }
}

TEST(ContentionRtaTest, DisjointDevicesAddNoInterference) {
  // Two tasks on different accelerator classes share nothing: both bounds
  // must equal their isolated platform bounds exactly.
  TaskSet set(Platform::parse("8:gpu,dsp"));
  set.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  set.add(DagTask(chain_dag(12, 6, 2), 300, 300, "tau2"));
  const ContentionAnalysis admission = contention_rta(set);
  EXPECT_TRUE(admission.schedulable);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const TaskAdmission& task = admission.tasks[i];
    analysis::AnalysisCache cache(set[i].dag());
    const std::vector<int> units(2, 1);
    EXPECT_EQ(task.response, cache.r_platform(task.cores, units));
    for (const DeviceContention& device : task.devices) {
      EXPECT_EQ(device.interference, Frac(0));
    }
  }
}

TEST(ContentionRtaTest, SharedDeviceInflatesTheBound) {
  // Same class for both tasks: each bound strictly exceeds its isolated
  // seed by the competitor's carry-in volume share.
  TaskSet set(Platform::parse("8:gpu"));
  set.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  set.add(DagTask(chain_dag(12, 6, 1), 300, 300, "tau2"));
  const ContentionAnalysis admission = contention_rta(set);
  ASSERT_TRUE(admission.schedulable);
  for (std::size_t i = 0; i < set.size(); ++i) {
    const TaskAdmission& task = admission.tasks[i];
    analysis::AnalysisCache cache(set[i].dag());
    const std::vector<int> units(1, 1);
    EXPECT_GT(task.response, cache.r_platform(task.cores, units));
    EXPECT_GT(task.iterations, 1);
    ASSERT_EQ(task.devices.size(), 1u);
    EXPECT_GT(task.devices[0].interference, Frac(0));
    EXPECT_EQ(task.devices[0].dominant_competitor, 1 - i);
  }
  // The inflation is exactly n_jobs · vol_other at the fixpoint (n_d = 1):
  // verify against a hand-rolled evaluation for tau1.
  const TaskAdmission& tau1 = admission.tasks[0];
  analysis::AnalysisCache cache(set[0].dag());
  const std::vector<int> units(1, 1);
  const Frac seed = cache.r_platform(tau1.cores, units);
  const Frac window = tau1.response;
  const std::int64_t njobs = ((window + Frac(300)).floor() / 300) + 1;
  EXPECT_EQ(tau1.response, seed + Frac(njobs * 6));
}

TEST(ContentionRtaTest, MoreCompetitorsNeverTightenTheBound) {
  // Adding a third task sharing the class can only grow tau1's bound.
  TaskSet two(Platform::parse("8:gpu"));
  two.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  two.add(DagTask(chain_dag(12, 6, 1), 300, 300, "tau2"));
  TaskSet three(Platform::parse("8:gpu"));
  three.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  three.add(DagTask(chain_dag(12, 6, 1), 300, 300, "tau2"));
  three.add(DagTask(chain_dag(9, 7, 1), 400, 400, "tau3"));
  const Frac r_two = contention_rta(two).tasks[0].response;
  const Frac r_three = contention_rta(three).tasks[0].response;
  EXPECT_GE(r_three, r_two);
}

TEST(ContentionRtaTest, ExhaustedCoresRejectTheSet) {
  // Two tasks on one host core: the second task gets nothing.
  TaskSet set(Platform::parse("1:gpu"));
  set.add(DagTask(chain_dag(10, 8, 1), 40, 40, "tau1"));
  set.add(DagTask(chain_dag(12, 6, 1), 40, 40, "tau2"));
  const ContentionAnalysis admission = contention_rta(set);
  EXPECT_FALSE(admission.schedulable);
  EXPECT_LE(admission.cores_used, 1);
}

TEST(ContentionRtaTest, ImpossibleDeadlineRejectsTheTask) {
  TaskSet set(Platform::parse("8:gpu"));
  // len(G) = 28 > D = 20: no core count can help.
  set.add(DagTask(chain_dag(10, 8, 1), 100, 20, "tau1"));
  const ContentionAnalysis admission = contention_rta(set);
  EXPECT_FALSE(admission.schedulable);
  EXPECT_FALSE(admission.tasks[0].schedulable);
}

TEST(ContentionRtaTest, GeneratedBatchesAdmitAtLowUtilization) {
  const auto batch = generate_taskset_batch(small_gen(3, 2, 0.6), 5, 1234);
  int admitted = 0;
  for (const TaskSet& set : batch) {
    if (contention_rta(set).schedulable) ++admitted;
  }
  EXPECT_GE(admitted, 3);  // ample slack: most sets must pass
}

TEST(ContentionRtaTest, ExplainNamesTheDominatingPair) {
  TaskSet set(Platform::parse("8:gpu"));
  set.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  set.add(DagTask(chain_dag(12, 6, 1), 300, 300, "tau2"));
  const ContentionAnalysis admission = contention_rta(set);
  const std::string text = explain(admission, set);
  EXPECT_NE(text.find("SCHEDULABLE"), std::string::npos);
  EXPECT_NE(text.find("dominating contention"), std::string::npos);
  EXPECT_NE(text.find("gpu"), std::string::npos);
  EXPECT_NE(text.find("tau1"), std::string::npos);

  TaskSet lonely(Platform::parse("4:gpu"));
  lonely.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  const std::string solo = explain(contention_rta(lonely), lonely);
  EXPECT_NE(solo.find("no device contention"), std::string::npos);
}

TEST(ContentionRtaTest, SpeedupScalesTheSeedBound) {
  // A 2x-speed class halves the device term of the seed (and there is no
  // contention to inflate): the admitted bound reflects it exactly.
  TaskSet plain(Platform::parse("4:gpu"));
  plain.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  TaskSet fast(Platform::parse("4:gpu@2"));
  fast.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  const ContentionAnalysis a = contention_rta(plain);
  const ContentionAnalysis b = contention_rta(fast);
  ASSERT_EQ(a.tasks[0].cores, b.tasks[0].cores);
  EXPECT_EQ(a.tasks[0].response - b.tasks[0].response, Frac(4));
}

TEST(ContentionRtaTest, InvalidInputsThrow) {
  EXPECT_THROW(contention_rta(TaskSet(Platform::parse("4:gpu"))), Error);
  TaskSet set(Platform::parse("4:gpu"));
  set.add(DagTask(chain_dag(10, 8, 1), 200, 200, "tau1"));
  EXPECT_THROW((void)contention_response(set, 1, 2), Error);
  EXPECT_THROW((void)contention_response(set, 0, 0), Error);
}

}  // namespace
}  // namespace hedra::taskset
