#include "exp/runner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "exp/fig6.h"
#include "exp/fig9.h"
#include "graph/dag_io.h"

/// The engine's core promises: N-thread sweeps are bit-identical to serial
/// ones, and batch seeds derived from nearby master seeds can never collide
/// (the historical `seed + 0x1000 * index` scheme could).

namespace hedra::exp {
namespace {

TEST(BatchSeedsTest, SeedsWithinAGridAreDistinct) {
  const auto seeds = batch_seeds(42, 5000);
  const std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
  EXPECT_EQ(unique.size(), seeds.size());
}

TEST(BatchSeedsTest, RegressionNearbyMasterSeedsShareNoBatchSeeds) {
  // Under the old scheme, master seeds 0x1000·k apart produced literally
  // the same batch seeds at shifted grid indices (seed + 0x1000·i).  The
  // fork chain must keep the derived streams disjoint.
  const auto base = batch_seeds(42, 256);
  const std::set<std::uint64_t> base_set(base.begin(), base.end());
  for (const std::uint64_t offset :
       {std::uint64_t{0x1000}, std::uint64_t{0x1000} * 7,
        std::uint64_t{0x1000} * 255}) {
    const auto shifted = batch_seeds(42 + offset, 256);
    for (const auto seed : shifted) {
      EXPECT_EQ(base_set.count(seed), 0u)
          << "master offset 0x" << std::hex << offset;
    }
  }
}

TEST(BatchSeedsTest, DerivationIsReproducible) {
  EXPECT_EQ(batch_seeds(7, 64), batch_seeds(7, 64));
  EXPECT_NE(batch_seeds(7, 8), batch_seeds(8, 8));
}

TEST(MakeGridTest, ExpandsRatioMajorWithForkedSeeds) {
  GridSpec spec;
  spec.ratios = {0.1, 0.2, 0.3};
  spec.cores = {2, 8};
  spec.dags_per_point = 5;
  spec.seed = 99;
  const auto points = make_grid(spec);
  ASSERT_EQ(points.size(), 3u);
  const auto seeds = batch_seeds(99, 3);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].ratio, spec.ratios[i]);
    EXPECT_EQ(points[i].batch.coff_ratio, spec.ratios[i]);
    EXPECT_EQ(points[i].batch.count, 5);
    EXPECT_EQ(points[i].batch.seed, seeds[i]);
    EXPECT_EQ(points[i].cores, spec.cores);
  }
}

TEST(RunnerTest, ParallelBatchGenerationIsBitIdenticalToSerial) {
  BatchConfig config;
  config.params.min_nodes = 20;
  config.params.max_nodes = 60;
  config.coff_ratio = 0.2;
  config.count = 24;
  config.seed = 1234;
  const auto serial = generate_batch(config);
  Runner runner(4);
  const auto parallel = runner.generate(config);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(graph::write_dag_text(serial[i]),
              graph::write_dag_text(parallel[i]))
        << "replication " << i;
  }
}

TEST(RunnerTest, SweepSamplesArriveInReplicationOrder) {
  GridSpec spec;
  spec.ratios = {0.1, 0.3};
  spec.cores = {2};
  spec.dags_per_point = 16;
  spec.seed = 5;
  const auto points = make_grid(spec);
  const auto volumes = [&](int jobs) {
    Runner runner(jobs);
    return runner.sweep(
        points,
        [](analysis::AnalysisCache& cache, int) { return cache.volume(); },
        [](const SweepPoint&, int, const std::vector<graph::Time>& samples) {
          return samples;
        });
  };
  const auto serial = volumes(1);
  const auto threaded = volumes(4);
  ASSERT_EQ(serial.size(), 2u);
  EXPECT_EQ(serial, threaded);
}

/// Fig6-style determinism: the simulation-based sweep, where every sample is
/// a makespan pair, must be bit-identical across thread counts.
TEST(RunnerDeterminismTest, Fig6StyleSweepIsThreadCountInvariant) {
  Fig6Config config;
  config.cores = {2, 8};
  config.ratios = {0.05, 0.3};
  config.dags_per_point = 10;
  config.params.min_nodes = 20;
  config.params.max_nodes = 60;
  config.jobs = 1;
  const Fig6Result serial = run_fig6(config);
  config.jobs = 4;
  const Fig6Result threaded = run_fig6(config);
  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].m, threaded.rows[i].m);
    EXPECT_EQ(serial.rows[i].ratio, threaded.rows[i].ratio);
    EXPECT_EQ(serial.rows[i].avg_original, threaded.rows[i].avg_original);
    EXPECT_EQ(serial.rows[i].avg_transformed,
              threaded.rows[i].avg_transformed);
    EXPECT_EQ(serial.rows[i].pct_change, threaded.rows[i].pct_change);
  }
  ASSERT_EQ(serial.summaries.size(), threaded.summaries.size());
  for (std::size_t i = 0; i < serial.summaries.size(); ++i) {
    EXPECT_EQ(serial.summaries[i].peak_pct, threaded.summaries[i].peak_pct);
    EXPECT_EQ(serial.summaries[i].peak_ratio,
              threaded.summaries[i].peak_ratio);
  }
}

/// Fig9-style determinism: the analysis-based sweep over exact rationals.
TEST(RunnerDeterminismTest, Fig9StyleSweepIsThreadCountInvariant) {
  Fig9Config config;
  config.cores = {2, 4, 16};
  config.ratios = {0.01, 0.1, 0.4};
  config.dags_per_point = 12;
  config.params.min_nodes = 20;
  config.params.max_nodes = 60;
  config.jobs = 1;
  const Fig9Result serial = run_fig9(config);
  config.jobs = 4;
  const Fig9Result threaded = run_fig9(config);
  ASSERT_EQ(serial.rows.size(), threaded.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_EQ(serial.rows[i].m, threaded.rows[i].m);
    EXPECT_EQ(serial.rows[i].ratio, threaded.rows[i].ratio);
    EXPECT_EQ(serial.rows[i].mean_pct, threaded.rows[i].mean_pct);
    EXPECT_EQ(serial.rows[i].max_pct, threaded.rows[i].max_pct);
  }
}

TEST(RunnerTest, PerDagExceptionsPropagateToCaller) {
  GridSpec spec;
  spec.ratios = {0.1};
  spec.cores = {2};
  spec.dags_per_point = 8;
  const auto points = make_grid(spec);
  Runner runner(4);
  EXPECT_THROW(
      runner.sweep(
          points,
          [](analysis::AnalysisCache&, int) -> int { throw Error("bad dag"); },
          [](const SweepPoint&, int, const std::vector<int>& samples) {
            return samples.size();
          }),
      Error);
}

}  // namespace
}  // namespace hedra::exp
