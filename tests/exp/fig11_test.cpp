#include <gtest/gtest.h>

#include <cstdio>

#include "exp/fig11.h"
#include "exp/report.h"

/// Scaled-down fig11 runs: structure of the result, soundness of every
/// (units, ratio, m) cell, the bound-tightening shape the multiplicity
/// generalisation predicts, and bit-identical `--jobs N` output.

namespace hedra::exp {
namespace {

Fig11Config small_config() {
  Fig11Config config;
  config.devices = 2;
  config.units = {1, 2, 3};
  config.ratios = {0.15, 0.35};
  config.cores = {2, 8};
  config.dags_per_point = 5;
  config.params.min_nodes = 30;
  config.params.max_nodes = 80;
  return config;
}

TEST(Fig11HarnessTest, ProducesAllCellsAndSummaries) {
  const Fig11Result result = run_fig11(small_config());
  // units × ratios × cores cells, units × cores summaries.
  EXPECT_EQ(result.devices, 2);
  EXPECT_EQ(result.rows.size(), 12u);
  EXPECT_EQ(result.summaries.size(), 6u);
  EXPECT_EQ(result.policy_names.size(), 5u);
  for (const auto& row : result.rows) {
    EXPECT_GT(row.mean_bound, 0.0);
    EXPECT_GT(row.mean_bound_single, 0.0);
    ASSERT_EQ(row.mean_makespan.size(), result.policy_names.size());
    for (const double makespan : row.mean_makespan) {
      EXPECT_GT(makespan, 0.0);
      EXPECT_LE(makespan, row.mean_bound + 1e-9);
    }
  }
}

TEST(Fig11HarnessTest, EveryPolicyStaysBelowTheBoundOnEveryUnitCount) {
  const Fig11Result result = run_fig11(small_config());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.violations, 0) << "units=" << row.units
                                 << " ratio=" << row.ratio << " m=" << row.m;
    EXPECT_LE(row.max_sim_over_bound, 1.0);
    EXPECT_GT(row.max_sim_over_bound, 0.0);
  }
  for (const auto& summary : result.summaries) {
    EXPECT_EQ(summary.violations, 0);
  }
}

TEST(Fig11HarnessTest, MoreUnitsTightenTheBoundAndNeverSlowTheSim) {
  // Same batch across unit counts: the bound is monotonically
  // non-increasing in n_d (units = 1 rows must equal the single-unit
  // reference exactly), and the bound gain reported per summary is
  // non-negative.
  const Fig11Result result = run_fig11(small_config());
  for (const auto& row : result.rows) {
    EXPECT_LE(row.mean_bound, row.mean_bound_single + 1e-9);
    if (row.units == 1) {
      EXPECT_DOUBLE_EQ(row.mean_bound, row.mean_bound_single);
    }
  }
  for (const auto& summary : result.summaries) {
    EXPECT_GE(summary.mean_bound_gain_pct, -1e-9);
    if (summary.units == 1) {
      EXPECT_NEAR(summary.mean_bound_gain_pct, 0.0, 1e-9);
    }
  }
}

TEST(Fig11HarnessTest, ParallelRunsAreBitIdenticalToSerial) {
  Fig11Config serial = small_config();
  serial.jobs = 1;
  Fig11Config parallel = small_config();
  parallel.jobs = 4;
  const Fig11Result a = run_fig11(serial);
  const Fig11Result b = run_fig11(parallel);
  EXPECT_EQ(render_fig11(a), render_fig11(b));
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].mean_bound, b.rows[i].mean_bound);
    EXPECT_EQ(a.rows[i].mean_makespan, b.rows[i].mean_makespan);
    EXPECT_EQ(a.rows[i].max_sim_over_bound, b.rows[i].max_sim_over_bound);
  }
}

TEST(Fig11HarnessTest, ExplicitSymmetricVectorsMatchTheLegacyGrid) {
  // SATELLITE (PR 5): the asymmetric-vector path, fed all-equal vectors,
  // must reproduce the symmetric sweep field-for-field (same batches, same
  // bounds, same labels) — so the new axis cannot drift from the old one.
  Fig11Config legacy = small_config();
  Fig11Config vectors = small_config();
  vectors.unit_vectors = {{1, 1}, {2, 2}, {3, 3}};
  const Fig11Result a = run_fig11(legacy);
  const Fig11Result b = run_fig11(vectors);
  EXPECT_EQ(render_fig11(a), render_fig11(b));
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].units, b.rows[i].units);
    EXPECT_EQ(a.rows[i].unit_vector, b.rows[i].unit_vector);
    EXPECT_EQ(a.rows[i].mean_bound, b.rows[i].mean_bound);
    EXPECT_EQ(a.rows[i].mean_makespan, b.rows[i].mean_makespan);
  }
}

TEST(Fig11HarnessTest, AsymmetricUnitVectorsSweepSoundly) {
  Fig11Config config = small_config();
  config.unit_vectors = {{2, 1}, {3, 1}};
  const Fig11Result result = run_fig11(config);
  // 2 vectors × 2 ratios × 2 cores rows, 2 vectors × 2 cores summaries.
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.summaries.size(), 4u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.units, -1);  // genuinely asymmetric
    ASSERT_EQ(row.unit_vector.size(), 2u);
    EXPECT_EQ(row.violations, 0)
        << "units=" << row.unit_vector[0] << "," << row.unit_vector[1]
        << " ratio=" << row.ratio << " m=" << row.m;
    // Extra units on class 1 only still tighten vs the single-unit bound.
    EXPECT_LE(row.mean_bound, row.mean_bound_single + 1e-9);
  }
  const std::string text = render_fig11(result);
  EXPECT_NE(text.find("2-1"), std::string::npos);
  EXPECT_NE(text.find("3-1"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/f11_asym.csv";
  write_fig11_csv(result, path);
  std::remove(path.c_str());
}

TEST(Fig11HarnessTest, MalformedUnitVectorsThrow) {
  Fig11Config config = small_config();
  config.unit_vectors = {{2}};  // one entry for two classes
  EXPECT_THROW((void)run_fig11(config), Error);
  config.unit_vectors = {{2, 0}};
  EXPECT_THROW((void)run_fig11(config), Error);
}

TEST(Fig11HarnessTest, RendersAndExportsCsv) {
  const Fig11Result result = run_fig11(small_config());
  const std::string text = render_fig11(result);
  EXPECT_NE(text.find("R_plat"), std::string::npos);
  EXPECT_NE(text.find("n_d"), std::string::npos);
  EXPECT_NE(text.find("worst/bound"), std::string::npos);
  EXPECT_NE(text.find("violations 0"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/f11.csv";
  write_fig11_csv(result, path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hedra::exp
