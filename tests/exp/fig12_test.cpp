#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "exp/fig12.h"
#include "exp/report.h"

/// Scaled-down fig12 runs: structure of the result, exact-rational
/// soundness of the contention bounds against the taskset simulator in
/// every admitted cell, the acceptance-falls-with-utilisation shape, and
/// bit-identical `--jobs N` output.

namespace hedra::exp {
namespace {

Fig12Config small_config() {
  Fig12Config config;
  config.utilizations = {0.25, 1.0};
  config.devices = {1, 2};
  config.units = {1, 2};
  config.cores = {4};
  config.num_tasks = 3;
  config.tasksets_per_point = 4;
  config.jobs_per_task = 2;
  return config;
}

TEST(Fig12HarnessTest, ProducesAllCellsAndSummaries) {
  const Fig12Result result = run_fig12(small_config());
  // devices × units × cores × utilizations rows; devices × units × cores
  // summaries.
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.summaries.size(), 4u);
  EXPECT_EQ(result.policy_name, "breadth-first");
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.tasksets, 4);
    EXPECT_GE(row.admitted, 0);
    EXPECT_LE(row.admitted, row.tasksets);
    EXPECT_NEAR(row.acceptance,
                static_cast<double>(row.admitted) / row.tasksets, 1e-12);
    if (row.admitted > 0) {
      EXPECT_GT(row.mean_cores_used, 0.0);
      EXPECT_LE(row.mean_cores_used, 4.0 + 1e-9);
      EXPECT_GT(row.mean_bound_over_deadline, 0.0);
      EXPECT_LE(row.mean_bound_over_deadline, 1.0 + 1e-9);
    }
  }
}

TEST(Fig12HarnessTest, NoSoundnessViolationsAnywhere) {
  // ACCEPTANCE CRITERION (PR 5): zero exact-rational violations of the
  // contention bound across the full grid.
  const Fig12Result result = run_fig12(small_config());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.violations, 0)
        << "U=" << row.utilization << " K=" << row.devices
        << " n_d=" << row.units << " m=" << row.m;
    EXPECT_LE(row.max_obs_over_bound, 1.0 + 1e-12);
  }
  for (const auto& summary : result.summaries) {
    EXPECT_EQ(summary.violations, 0);
  }
}

TEST(Fig12HarnessTest, AcceptanceFallsWithUtilization) {
  const Fig12Result result = run_fig12(small_config());
  // Per (K, n_d, m) shape: acceptance at U = 0.25 >= acceptance at U = 1.0.
  for (const int devices : {1, 2}) {
    for (const int units : {1, 2}) {
      double low = -1.0;
      double high = -1.0;
      for (const auto& row : result.rows) {
        if (row.devices != devices || row.units != units) continue;
        if (row.utilization == 0.25) low = row.acceptance;
        if (row.utilization == 1.0) high = row.acceptance;
      }
      ASSERT_GE(low, 0.0);
      ASSERT_GE(high, 0.0);
      EXPECT_GE(low, high) << "K=" << devices << " n_d=" << units;
    }
  }
}

TEST(Fig12HarnessTest, ParallelRunsAreBitIdenticalToSerial) {
  Fig12Config serial = small_config();
  serial.jobs = 1;
  Fig12Config parallel = small_config();
  parallel.jobs = 4;
  const Fig12Result a = run_fig12(serial);
  const Fig12Result b = run_fig12(parallel);
  EXPECT_EQ(render_fig12(a), render_fig12(b));
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].admitted, b.rows[i].admitted);
    EXPECT_EQ(a.rows[i].mean_cores_used, b.rows[i].mean_cores_used);
    EXPECT_EQ(a.rows[i].mean_bound_over_deadline,
              b.rows[i].mean_bound_over_deadline);
    EXPECT_EQ(a.rows[i].max_obs_over_bound, b.rows[i].max_obs_over_bound);
    EXPECT_EQ(a.rows[i].violations, b.rows[i].violations);
  }
}

TEST(Fig12HarnessTest, RendersAndExportsCsv) {
  const Fig12Result result = run_fig12(small_config());
  const std::string text = render_fig12(result);
  EXPECT_NE(text.find("accepted"), std::string::npos);
  EXPECT_NE(text.find("worst obs/bound"), std::string::npos);
  EXPECT_NE(text.find("violations 0"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/f12.csv";
  write_fig12_csv(result, path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hedra::exp
