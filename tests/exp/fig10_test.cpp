#include <gtest/gtest.h>

#include <cstdio>

#include "exp/fig10.h"
#include "exp/report.h"

/// Scaled-down fig10 runs: structure of the result, soundness of every cell
/// (the acceptance criterion "no policy above the bound" is counted inside
/// the experiment itself), and bit-identical `--jobs N` output.

namespace hedra::exp {
namespace {

Fig10Config small_config() {
  Fig10Config config;
  config.devices = {1, 2};
  config.ratios = {0.1, 0.3};
  config.cores = {2, 8};
  config.dags_per_point = 5;
  config.params.min_nodes = 30;
  config.params.max_nodes = 80;
  return config;
}

TEST(Fig10HarnessTest, ProducesAllCellsAndSummaries) {
  const Fig10Result result = run_fig10(small_config());
  // devices × ratios × cores cells, devices × cores summaries.
  EXPECT_EQ(result.rows.size(), 8u);
  EXPECT_EQ(result.summaries.size(), 4u);
  EXPECT_EQ(result.policy_names.size(), 5u);
  for (const auto& row : result.rows) {
    EXPECT_GT(row.mean_bound, 0.0);
    ASSERT_EQ(row.mean_makespan.size(), result.policy_names.size());
    for (const double makespan : row.mean_makespan) {
      EXPECT_GT(makespan, 0.0);
      EXPECT_LE(makespan, row.mean_bound + 1e-9);
    }
  }
}

TEST(Fig10HarnessTest, EveryPolicyStaysBelowTheBound) {
  const Fig10Result result = run_fig10(small_config());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.violations, 0)
        << "K=" << row.devices << " ratio=" << row.ratio << " m=" << row.m;
    EXPECT_LE(row.max_sim_over_bound, 1.0);
    EXPECT_GT(row.max_sim_over_bound, 0.0);
  }
  for (const auto& summary : result.summaries) {
    EXPECT_EQ(summary.violations, 0);
  }
}

TEST(Fig10HarnessTest, MoreDevicesTightenTheBoundAtFixedRatio) {
  // Splitting the same offloaded volume across K devices only shrinks the
  // device term's serialisation (Σ_d vol_d is the same) but lets the
  // simulation overlap device work — mean slack should not collapse.
  const Fig10Result result = run_fig10(small_config());
  for (const auto& summary : result.summaries) {
    EXPECT_GE(summary.mean_slack_pct, 0.0);
  }
}

TEST(Fig10HarnessTest, ParallelRunsAreBitIdenticalToSerial) {
  Fig10Config serial = small_config();
  serial.jobs = 1;
  Fig10Config parallel = small_config();
  parallel.jobs = 4;
  const Fig10Result a = run_fig10(serial);
  const Fig10Result b = run_fig10(parallel);
  EXPECT_EQ(render_fig10(a), render_fig10(b));
  ASSERT_EQ(a.rows.size(), b.rows.size());
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].mean_bound, b.rows[i].mean_bound);
    EXPECT_EQ(a.rows[i].mean_makespan, b.rows[i].mean_makespan);
    EXPECT_EQ(a.rows[i].max_sim_over_bound, b.rows[i].max_sim_over_bound);
  }
}

TEST(Fig10HarnessTest, RendersAndExportsCsv) {
  const Fig10Result result = run_fig10(small_config());
  const std::string text = render_fig10(result);
  EXPECT_NE(text.find("R_plat"), std::string::npos);
  EXPECT_NE(text.find("worst/bound"), std::string::npos);
  EXPECT_NE(text.find("violations 0"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/f10.csv";
  write_fig10_csv(result, path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hedra::exp
