#include "graph/critical_path.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"

namespace hedra::graph {
namespace {

TEST(CriticalPathTest, PaperExampleLenIs8) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(critical_path_length(ex.dag), 8);
}

TEST(CriticalPathTest, PaperExamplePathIsV1V3V5) {
  const auto ex = testing::paper_example();
  // Reported deterministically; {v1, v3, v5} and {v1, v4, vOff, v5} both
  // have length 8; extraction prefers smaller ids at ties.
  const auto path = extract_critical_path(ex.dag);
  Time total = 0;
  for (const NodeId v : path) total += ex.dag.wcet(v);
  EXPECT_EQ(total, 8);
  EXPECT_EQ(path.front(), ex.v1);
  EXPECT_EQ(path.back(), ex.v5);
}

TEST(CriticalPathTest, UpDownValues) {
  const auto ex = testing::paper_example();
  const CriticalPathInfo info(ex.dag);
  EXPECT_EQ(info.up(ex.v1), 1);
  EXPECT_EQ(info.up(ex.v3), 7);
  EXPECT_EQ(info.up(ex.v5), 8);
  EXPECT_EQ(info.down(ex.v5), 1);
  EXPECT_EQ(info.down(ex.v3), 7);
  EXPECT_EQ(info.down(ex.v1), 8);
  EXPECT_EQ(info.down(ex.v4), 7);  // v4 + vOff + v5 = 2 + 4 + 1
}

TEST(CriticalPathTest, OnCriticalPathMembership) {
  const auto ex = testing::paper_example();
  const CriticalPathInfo info(ex.dag);
  EXPECT_TRUE(info.on_critical_path(ex.dag, ex.v1));
  EXPECT_TRUE(info.on_critical_path(ex.dag, ex.v3));
  EXPECT_TRUE(info.on_critical_path(ex.dag, ex.v5));
  // v1-v4-vOff-v5 also sums to 8, so these tie onto a critical path too.
  EXPECT_TRUE(info.on_critical_path(ex.dag, ex.v4));
  EXPECT_TRUE(info.on_critical_path(ex.dag, ex.voff));
  // v2's best path is 1 + 4 + 1 = 6 < 8.
  EXPECT_FALSE(info.on_critical_path(ex.dag, ex.v2));
}

TEST(CriticalPathTest, ChainLenEqualsVolume) {
  const Dag dag = testing::chain(5, 3);
  EXPECT_EQ(critical_path_length(dag), 15);
  EXPECT_EQ(extract_critical_path(dag).size(), 5u);
}

TEST(CriticalPathTest, DiamondTakesLongerBranch) {
  const Dag dag = testing::diamond(1, 10, 2, 1);
  EXPECT_EQ(critical_path_length(dag), 12);
  const auto path = extract_critical_path(dag);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[1], 1u);  // node "a" with WCET 10
}

TEST(CriticalPathTest, SingleNode) {
  Dag dag;
  dag.add_node(7);
  EXPECT_EQ(critical_path_length(dag), 7);
  EXPECT_EQ(extract_critical_path(dag), (std::vector<NodeId>{0}));
}

TEST(CriticalPathTest, EmptyGraph) {
  const Dag dag;
  EXPECT_EQ(critical_path_length(dag), 0);
  EXPECT_TRUE(extract_critical_path(dag).empty());
}

TEST(CriticalPathTest, ZeroWcetNodesDoNotStretchPath) {
  Dag dag;
  const NodeId s = dag.add_node(0, NodeKind::kSync);
  const NodeId a = dag.add_node(5);
  const NodeId t = dag.add_node(0, NodeKind::kSync);
  dag.add_edge(s, a);
  dag.add_edge(a, t);
  EXPECT_EQ(critical_path_length(dag), 5);
}

TEST(CriticalPathTest, DisconnectedComponentsTakeMax) {
  Dag dag;
  const NodeId a = dag.add_node(3);
  const NodeId b = dag.add_node(4);
  dag.add_edge(a, b);
  dag.add_node(10);  // isolated long node
  EXPECT_EQ(critical_path_length(dag), 10);
}

TEST(CriticalPathTest, MultiSourceMultiSink) {
  // G_par subgraphs routinely have several sources/sinks.
  Dag dag;
  const NodeId a = dag.add_node(2);
  const NodeId b = dag.add_node(3);
  const NodeId c = dag.add_node(4);
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  const NodeId d = dag.add_node(1);
  dag.add_edge(b, d);
  EXPECT_EQ(critical_path_length(dag), 7);  // b -> c
}

}  // namespace
}  // namespace hedra::graph
