#include "graph/dag.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(DagTest, AddNodeAssignsSequentialIds) {
  Dag dag;
  EXPECT_EQ(dag.add_node(1), 0u);
  EXPECT_EQ(dag.add_node(2), 1u);
  EXPECT_EQ(dag.num_nodes(), 2u);
}

TEST(DagTest, DefaultLabelsFollowPaperConvention) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId off = dag.add_node(5, NodeKind::kOffload);
  const NodeId sync = dag.add_node(0, NodeKind::kSync);
  EXPECT_EQ(dag.label(a), "v1");
  EXPECT_EQ(dag.label(off), "vOff");
  EXPECT_EQ(dag.label(sync), "vSync");
}

TEST(DagTest, CustomLabelPreserved) {
  Dag dag;
  const NodeId v = dag.add_node(3, NodeKind::kHost, "stage_a");
  EXPECT_EQ(dag.label(v), "stage_a");
}

TEST(DagTest, NegativeWcetRejected) {
  Dag dag;
  EXPECT_THROW(dag.add_node(-1), Error);
}

TEST(DagTest, SyncNodesMustHaveZeroWcet) {
  Dag dag;
  EXPECT_THROW(dag.add_node(3, NodeKind::kSync), Error);
  const NodeId s = dag.add_node(0, NodeKind::kSync);
  EXPECT_THROW(dag.set_wcet(s, 1), Error);
}

TEST(DagTest, AddEdgeUpdatesAdjacency) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  EXPECT_TRUE(dag.has_edge(a, b));
  EXPECT_FALSE(dag.has_edge(b, a));
  EXPECT_EQ(dag.successors(a), std::vector<NodeId>{b});
  EXPECT_EQ(dag.predecessors(b), std::vector<NodeId>{a});
  EXPECT_EQ(dag.num_edges(), 1u);
}

TEST(DagTest, SelfLoopRejected) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  EXPECT_THROW(dag.add_edge(a, a), Error);
}

TEST(DagTest, DuplicateEdgeRejected) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  EXPECT_THROW(dag.add_edge(a, b), Error);
}

TEST(DagTest, BadIdsRejected) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  EXPECT_THROW(dag.add_edge(a, 7), Error);
  EXPECT_THROW(dag.node(9), Error);
  EXPECT_THROW((void)dag.wcet(9), Error);
}

TEST(DagTest, RemoveEdge) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  dag.remove_edge(a, b);
  EXPECT_FALSE(dag.has_edge(a, b));
  EXPECT_EQ(dag.num_edges(), 0u);
  EXPECT_THROW(dag.remove_edge(a, b), Error);
}

TEST(DagTest, SourcesAndSinks) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(ex.dag.sources(), std::vector<NodeId>{ex.v1});
  EXPECT_EQ(ex.dag.sinks(), std::vector<NodeId>{ex.v5});
}

TEST(DagTest, EdgesListsAllEdges) {
  const auto ex = testing::paper_example();
  const auto edges = ex.dag.edges();
  EXPECT_EQ(edges.size(), 7u);
  EXPECT_EQ(edges.size(), ex.dag.num_edges());
}

TEST(DagTest, VolumeIncludesOffload) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(ex.dag.volume(), 18);
  EXPECT_EQ(ex.dag.host_volume(), 14);
}

TEST(DagTest, OffloadNodeLookup) {
  const auto ex = testing::paper_example();
  ASSERT_TRUE(ex.dag.offload_node().has_value());
  EXPECT_EQ(*ex.dag.offload_node(), ex.voff);
}

TEST(DagTest, NoOffloadNodeIsNullopt) {
  const Dag dag = testing::chain(3, 5);
  EXPECT_FALSE(dag.offload_node().has_value());
  EXPECT_TRUE(dag.offload_nodes().empty());
}

TEST(DagTest, MultipleOffloadNodesThrowOnSingleLookup) {
  Dag dag;
  dag.add_node(1, NodeKind::kOffload);
  dag.add_node(1, NodeKind::kOffload);
  EXPECT_THROW((void)dag.offload_node(), Error);
  EXPECT_EQ(dag.offload_nodes().size(), 2u);
}

TEST(DagTest, SetWcetChangesVolume) {
  auto ex = testing::paper_example();
  ex.dag.set_wcet(ex.voff, 10);
  EXPECT_EQ(ex.dag.volume(), 24);
  EXPECT_THROW(ex.dag.set_wcet(ex.voff, -1), Error);
}

TEST(DagTest, DegreeQueries) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(ex.dag.out_degree(ex.v1), 3u);
  EXPECT_EQ(ex.dag.in_degree(ex.v5), 3u);
  EXPECT_EQ(ex.dag.in_degree(ex.v1), 0u);
  EXPECT_EQ(ex.dag.out_degree(ex.v5), 0u);
}

TEST(DagTest, NodeKindToString) {
  EXPECT_STREQ(to_string(NodeKind::kHost), "host");
  EXPECT_STREQ(to_string(NodeKind::kOffload), "offload");
  EXPECT_STREQ(to_string(NodeKind::kSync), "sync");
}

TEST(DagTest, DeviceDefaultsMatchTheKindVocabulary) {
  Dag dag;
  const NodeId host = dag.add_node(3);
  const NodeId off = dag.add_node(5, NodeKind::kOffload);
  const NodeId sync = dag.add_node(0, NodeKind::kSync);
  EXPECT_EQ(dag.device(host), kHostDevice);
  EXPECT_EQ(dag.device(off), 1);
  EXPECT_EQ(dag.device(sync), kHostDevice);
  EXPECT_EQ(dag.kind(host), NodeKind::kHost);
  EXPECT_EQ(dag.kind(off), NodeKind::kOffload);
  EXPECT_EQ(dag.kind(sync), NodeKind::kSync);
}

TEST(DagTest, AddNodeOnPlacesAndLabelsByDevice) {
  Dag dag;
  const NodeId host = dag.add_node_on(3, kHostDevice);
  const NodeId d1 = dag.add_node_on(5, 1);
  const NodeId d3 = dag.add_node_on(7, 3);
  EXPECT_EQ(dag.kind(host), NodeKind::kHost);
  EXPECT_EQ(dag.kind(d1), NodeKind::kOffload);
  EXPECT_EQ(dag.kind(d3), NodeKind::kOffload);
  EXPECT_EQ(dag.label(host), "v1");
  EXPECT_EQ(dag.label(d1), "vOff");
  EXPECT_EQ(dag.label(d3), "vOff3");
  EXPECT_EQ(dag.device(d3), 3);
}

TEST(DagTest, PerDeviceAccessors) {
  const auto ex = testing::multi_device_example();
  EXPECT_EQ(ex.dag.volume(), 28);
  EXPECT_EQ(ex.dag.host_volume(), 17);
  EXPECT_EQ(ex.dag.volume_on(kHostDevice), 17);
  EXPECT_EQ(ex.dag.volume_on(1), 6);
  EXPECT_EQ(ex.dag.volume_on(2), 5);
  EXPECT_EQ(ex.dag.volume_on(9), 0);
  EXPECT_EQ(ex.dag.nodes_on(1), (std::vector<NodeId>{ex.gpu}));
  EXPECT_EQ(ex.dag.nodes_on(2), (std::vector<NodeId>{ex.dsp}));
  EXPECT_EQ(ex.dag.device_ids(), (std::vector<DeviceId>{1, 2}));
  EXPECT_EQ(ex.dag.max_device(), 2);
  EXPECT_EQ(ex.dag.offload_nodes(), (std::vector<NodeId>{ex.gpu, ex.dsp}));
  EXPECT_THROW((void)ex.dag.offload_node(), Error);
}

TEST(DagTest, SetDeviceMovesNodesAndRejectsSync) {
  auto ex = testing::paper_example();
  ex.dag.set_device(ex.voff, 2);
  EXPECT_EQ(ex.dag.device(ex.voff), 2);
  EXPECT_EQ(ex.dag.kind(ex.voff), NodeKind::kOffload);
  ex.dag.set_device(ex.voff, kHostDevice);
  EXPECT_EQ(ex.dag.kind(ex.voff), NodeKind::kHost);
  EXPECT_TRUE(ex.dag.offload_nodes().empty());

  Dag dag;
  const NodeId sync = dag.add_node(0, NodeKind::kSync);
  EXPECT_THROW(dag.set_device(sync, 1), Error);
  EXPECT_NO_THROW(dag.set_device(sync, kHostDevice));
}

TEST(DagTest, CopyOverloadPreservesDevicePlacement) {
  const auto ex = testing::multi_device_example();
  Dag copy;
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    copy.add_node(ex.dag.node(v));
  }
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_EQ(copy.device(v), ex.dag.device(v));
    EXPECT_EQ(copy.label(v), ex.dag.label(v));
    EXPECT_EQ(copy.wcet(v), ex.dag.wcet(v));
  }
}

TEST(DagTest, AddNodeRejectsOffDeviceSync) {
  Dag dag;
  Node node;
  node.sync = true;
  node.device = 1;
  EXPECT_THROW((void)dag.add_node(node), Error);
}

}  // namespace
}  // namespace hedra::graph
