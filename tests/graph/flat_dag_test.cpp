#include "graph/flat_dag.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"

namespace hedra::graph {
namespace {

TEST(FlatDagTest, MirrorsAdjacencyAttributesAndCounts) {
  Dag dag;
  const auto a = dag.add_node(3);
  const auto b = dag.add_node_on(5, 2, "gpu");
  const auto c = dag.add_node(0, NodeKind::kSync);
  const auto d = dag.add_node(7);
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  dag.add_edge(b, d);
  dag.add_edge(c, d);

  const FlatDag flat(dag);
  EXPECT_EQ(&flat.source(), &dag);
  EXPECT_EQ(flat.num_nodes(), dag.num_nodes());
  EXPECT_EQ(flat.num_edges(), dag.num_edges());
  EXPECT_EQ(flat.max_device(), 2);
  EXPECT_EQ(flat.num_offload_nodes(), 1u);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_EQ(flat.wcet(v), dag.wcet(v));
    EXPECT_EQ(flat.device(v), dag.device(v));
    EXPECT_EQ(flat.kind(v), dag.kind(v));
    EXPECT_EQ(flat.in_degree(v), dag.in_degree(v));
    EXPECT_EQ(flat.out_degree(v), dag.out_degree(v));
    const auto succ = flat.successors(v);
    ASSERT_EQ(succ.size(), dag.successors(v).size());
    for (std::size_t i = 0; i < succ.size(); ++i) {
      EXPECT_EQ(succ[i], dag.successors(v)[i]);
    }
    const auto pred = flat.predecessors(v);
    ASSERT_EQ(pred.size(), dag.predecessors(v).size());
    for (std::size_t i = 0; i < pred.size(); ++i) {
      EXPECT_EQ(pred[i], dag.predecessors(v)[i]);
    }
  }
  EXPECT_TRUE(flat.is_sync(c));
  EXPECT_FALSE(flat.is_sync(b));
}

TEST(FlatDagTest, TopologicalOrderMatchesDagAlgorithm) {
  const Dag dag = hedra::testing::s21_example();
  const FlatDag flat(dag);
  EXPECT_EQ(flat.topological_order(), topological_order(dag));
}

TEST(FlatDagTest, ThrowsOnCycle) {
  Dag dag;
  const auto a = dag.add_node(1);
  const auto b = dag.add_node(1);
  dag.add_edge(a, b);
  dag.add_edge(b, a);
  EXPECT_THROW(FlatDag flat(dag), Error);
}

TEST(FlatDagTest, CriticalPathInfoMatchesDagOverload) {
  const Dag dag = hedra::testing::s21_example();
  const FlatDag flat(dag);
  const CriticalPathInfo from_dag(dag);
  const CriticalPathInfo from_flat(flat);
  EXPECT_EQ(from_flat.length(), from_dag.length());
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_EQ(from_flat.up(v), from_dag.up(v));
    EXPECT_EQ(from_flat.down(v), from_dag.down(v));
  }
  EXPECT_EQ(critical_path_length(flat), critical_path_length(dag));
  const auto down = down_lengths(flat);
  for (NodeId v = 0; v < dag.num_nodes(); ++v) {
    EXPECT_EQ(down[v], from_dag.down(v));
  }
}

}  // namespace
}  // namespace hedra::graph
