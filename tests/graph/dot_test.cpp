#include "graph/dot.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(DotTest, ContainsAllNodesAndEdges) {
  const auto ex = testing::paper_example();
  const std::string dot = to_dot(ex.dag);
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_NE(dot.find(ex.dag.label(v)), std::string::npos);
  }
  std::size_t arrows = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("->", pos)) != std::string::npos) {
    ++arrows;
    pos += 2;
  }
  EXPECT_EQ(arrows, ex.dag.num_edges());
}

TEST(DotTest, OffloadAndSyncShapes) {
  Dag dag;
  dag.add_node(1);
  dag.add_node(2, NodeKind::kOffload);
  dag.add_node(0, NodeKind::kSync);
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("square"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotTest, HighlightCluster) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.highlight = {ex.v2, ex.v3};
  options.highlight_label = "GPar";
  const std::string dot = to_dot(ex.dag, options);
  EXPECT_NE(dot.find("cluster_highlight"), std::string::npos);
  EXPECT_NE(dot.find("GPar"), std::string::npos);
  EXPECT_NE(dot.find("dashed"), std::string::npos);
}

TEST(DotTest, WcetShownAndHidden) {
  const auto ex = testing::paper_example();
  DotOptions with;
  EXPECT_NE(to_dot(ex.dag, with).find("v3 (6)"), std::string::npos);
  DotOptions without;
  without.show_wcet = false;
  EXPECT_EQ(to_dot(ex.dag, without).find("v3 (6)"), std::string::npos);
}

TEST(DotTest, RankdirOption) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.rankdir_lr = true;
  EXPECT_NE(to_dot(ex.dag, options).find("rankdir=LR"), std::string::npos);
}

TEST(DotTest, BadHighlightThrows) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.highlight = {99};
  EXPECT_THROW(to_dot(ex.dag, options), Error);
}

TEST(DotTest, DevicesAreColourCoded) {
  const auto ex = testing::multi_device_example();
  const std::string dot = to_dot(ex.dag);
  // Device 1 keeps the paper's lightgrey; device 2 gets a distinct fill and
  // an "@d2" label annotation.
  EXPECT_NE(dot.find("gpu (6)\", shape=doublecircle, style=filled, "
                     "fillcolor=lightgrey"),
            std::string::npos);
  EXPECT_NE(dot.find("dsp (5) @d2\", shape=doublecircle, style=filled, "
                     "fillcolor=lightblue"),
            std::string::npos);
  // Host nodes stay plain circles.
  EXPECT_NE(dot.find("src (2)\", shape=circle"), std::string::npos);
}

TEST(DotTest, DeviceAnnotationCanBeHidden) {
  const auto ex = testing::multi_device_example();
  DotOptions options;
  options.show_device = false;
  const std::string dot = to_dot(ex.dag, options);
  EXPECT_EQ(dot.find("@d2"), std::string::npos);
  // Colour coding stays on regardless.
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

TEST(DotTest, SingleAcceleratorRenderingUnchangedByDeviceSupport) {
  // The paper's example must render exactly as before the Platform refactor:
  // no "@d" annotations, lightgrey offload fill.
  const auto ex = testing::paper_example();
  const std::string dot = to_dot(ex.dag);
  EXPECT_EQ(dot.find("@d"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=lightgrey"), std::string::npos);
  EXPECT_EQ(dot.find("lightblue"), std::string::npos);
}

}  // namespace
}  // namespace hedra::graph
