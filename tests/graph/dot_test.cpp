#include "graph/dot.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(DotTest, ContainsAllNodesAndEdges) {
  const auto ex = testing::paper_example();
  const std::string dot = to_dot(ex.dag);
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_NE(dot.find(ex.dag.label(v)), std::string::npos);
  }
  std::size_t arrows = 0;
  std::size_t pos = 0;
  while ((pos = dot.find("->", pos)) != std::string::npos) {
    ++arrows;
    pos += 2;
  }
  EXPECT_EQ(arrows, ex.dag.num_edges());
}

TEST(DotTest, OffloadAndSyncShapes) {
  Dag dag;
  dag.add_node(1);
  dag.add_node(2, NodeKind::kOffload);
  dag.add_node(0, NodeKind::kSync);
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("square"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST(DotTest, HighlightCluster) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.highlight = {ex.v2, ex.v3};
  options.highlight_label = "GPar";
  const std::string dot = to_dot(ex.dag, options);
  EXPECT_NE(dot.find("cluster_highlight"), std::string::npos);
  EXPECT_NE(dot.find("GPar"), std::string::npos);
  EXPECT_NE(dot.find("dashed"), std::string::npos);
}

TEST(DotTest, WcetShownAndHidden) {
  const auto ex = testing::paper_example();
  DotOptions with;
  EXPECT_NE(to_dot(ex.dag, with).find("v3 (6)"), std::string::npos);
  DotOptions without;
  without.show_wcet = false;
  EXPECT_EQ(to_dot(ex.dag, without).find("v3 (6)"), std::string::npos);
}

TEST(DotTest, RankdirOption) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.rankdir_lr = true;
  EXPECT_NE(to_dot(ex.dag, options).find("rankdir=LR"), std::string::npos);
}

TEST(DotTest, BadHighlightThrows) {
  const auto ex = testing::paper_example();
  DotOptions options;
  options.highlight = {99};
  EXPECT_THROW(to_dot(ex.dag, options), Error);
}

}  // namespace
}  // namespace hedra::graph
