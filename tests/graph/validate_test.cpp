#include "graph/validate.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(ValidateTest, PaperExampleIsValidHeterogeneous) {
  const auto ex = testing::paper_example();
  EXPECT_TRUE(is_valid(ex.dag, heterogeneous_rules()));
  EXPECT_NO_THROW(throw_if_invalid(ex.dag, heterogeneous_rules()));
}

TEST(ValidateTest, EmptyGraphInvalid) {
  const Dag dag;
  const auto issues = validate(dag, homogeneous_rules());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("empty"), std::string::npos);
}

TEST(ValidateTest, CycleReported) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  dag.add_edge(b, a);
  ValidationRules rules = homogeneous_rules();
  rules.require_single_source = false;
  rules.require_single_sink = false;
  const auto issues = validate(dag, rules);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues.front().find("cycle"), std::string::npos);
}

TEST(ValidateTest, MultipleSourcesReported) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  const NodeId c = dag.add_node(1);
  dag.add_edge(a, c);
  dag.add_edge(b, c);
  const auto issues = validate(dag, homogeneous_rules());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("source"), std::string::npos);
}

TEST(ValidateTest, MultipleSinksReported) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  const NodeId c = dag.add_node(1);
  dag.add_edge(a, b);
  dag.add_edge(a, c);
  const auto issues = validate(dag, homogeneous_rules());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("sink"), std::string::npos);
}

TEST(ValidateTest, TransitiveEdgeReported) {
  Dag dag = testing::chain(3, 1);
  dag.add_edge(0, 2);
  ValidationRules rules = homogeneous_rules();
  rules.require_single_sink = true;
  const auto issues = validate(dag, rules);
  ASSERT_FALSE(issues.empty());
  bool found = false;
  for (const auto& issue : issues) {
    if (issue.find("transitive") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ValidateTest, OffloadCountEnforced) {
  const Dag plain = testing::chain(3, 1);
  EXPECT_TRUE(is_valid(plain, homogeneous_rules()));
  EXPECT_FALSE(is_valid(plain, heterogeneous_rules()));

  const auto ex = testing::paper_example();
  EXPECT_FALSE(is_valid(ex.dag, homogeneous_rules()));
}

TEST(ValidateTest, AnyOffloadCountAllowed) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId o1 = dag.add_node(1, NodeKind::kOffload, "o1");
  const NodeId o2 = dag.add_node(1, NodeKind::kOffload, "o2");
  const NodeId z = dag.add_node(1);
  dag.add_edge(a, o1);
  dag.add_edge(a, o2);
  dag.add_edge(o1, z);
  dag.add_edge(o2, z);
  ValidationRules rules;
  rules.required_offload_count = -1;
  EXPECT_TRUE(is_valid(dag, rules));
}

TEST(ValidateTest, NonPositiveWcetReported) {
  Dag dag;
  const NodeId a = dag.add_node(0);  // host node with zero WCET
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  const auto issues = validate(dag, homogeneous_rules());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues.front().find("WCET"), std::string::npos);
}

TEST(ValidateTest, SyncNodesExemptFromWcetRule) {
  Dag dag;
  const NodeId s = dag.add_node(0, NodeKind::kSync);
  const NodeId b = dag.add_node(1);
  dag.add_edge(s, b);
  EXPECT_TRUE(is_valid(dag, homogeneous_rules()));
}

TEST(ValidateTest, ThrowListsAllIssues) {
  Dag dag;
  dag.add_node(0);  // zero WCET host node; also no offload for het rules
  try {
    throw_if_invalid(dag, heterogeneous_rules());
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("WCET"), std::string::npos);
    EXPECT_NE(what.find("offload"), std::string::npos);
  }
}

TEST(ValidateTest, Fig3ExampleIsValid) {
  const auto ex = testing::fig3_example();
  EXPECT_TRUE(is_valid(ex.dag, heterogeneous_rules()))
      << validate(ex.dag, heterogeneous_rules()).front();
}

}  // namespace
}  // namespace hedra::graph
