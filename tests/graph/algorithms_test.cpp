#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixtures.h"
#include "util/error.h"
#include "util/rng.h"

namespace hedra::graph {
namespace {

TEST(TopologicalOrderTest, RespectsEdges) {
  const auto ex = testing::paper_example();
  const auto order = topological_order(ex.dag);
  ASSERT_EQ(order.size(), ex.dag.num_nodes());
  std::vector<std::size_t> pos(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& [u, w] : ex.dag.edges()) EXPECT_LT(pos[u], pos[w]);
}

TEST(TopologicalOrderTest, DeterministicSmallestIdFirst) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  const NodeId c = dag.add_node(1);
  (void)a;
  (void)b;
  (void)c;
  // Three isolated nodes: order must be by id.
  EXPECT_EQ(topological_order(dag), (std::vector<NodeId>{0, 1, 2}));
}

TEST(TopologicalOrderTest, CycleThrows) {
  Dag dag;
  const NodeId a = dag.add_node(1);
  const NodeId b = dag.add_node(1);
  dag.add_edge(a, b);
  dag.add_edge(b, a);
  EXPECT_THROW(topological_order(dag), Error);
  EXPECT_FALSE(is_acyclic(dag));
}

TEST(ReachabilityTest, AncestorsOfPaperVoff) {
  const auto ex = testing::paper_example();
  const auto pred = ancestors(ex.dag, ex.voff);
  EXPECT_EQ(pred.to_indices(),
            (std::vector<std::size_t>{ex.v1, ex.v4}));
}

TEST(ReachabilityTest, DescendantsOfPaperVoff) {
  const auto ex = testing::paper_example();
  const auto succ = descendants(ex.dag, ex.voff);
  EXPECT_EQ(succ.to_indices(), (std::vector<std::size_t>{ex.v5}));
}

TEST(ReachabilityTest, SelfIsExcluded) {
  const auto ex = testing::paper_example();
  EXPECT_FALSE(ancestors(ex.dag, ex.v3).test(ex.v3));
  EXPECT_FALSE(descendants(ex.dag, ex.v3).test(ex.v3));
}

TEST(ReachabilityTest, ReachableQueries) {
  const auto ex = testing::paper_example();
  EXPECT_TRUE(reachable(ex.dag, ex.v1, ex.v5));
  EXPECT_TRUE(reachable(ex.dag, ex.v4, ex.voff));
  EXPECT_FALSE(reachable(ex.dag, ex.v2, ex.v3));
  EXPECT_FALSE(reachable(ex.dag, ex.v5, ex.v1));
}

TEST(TransitiveClosureTest, MatchesPairwiseReachability) {
  const auto ex = testing::fig3_example();
  const auto reach = transitive_closure(ex.dag);
  for (NodeId u = 0; u < ex.dag.num_nodes(); ++u) {
    for (NodeId w = 0; w < ex.dag.num_nodes(); ++w) {
      if (u == w) continue;
      EXPECT_EQ(reach[u].test(w), reachable(ex.dag, u, w))
          << ex.dag.label(u) << " -> " << ex.dag.label(w);
    }
  }
}

TEST(TransitiveEdgesTest, CleanGraphHasNone) {
  const auto ex = testing::paper_example();
  EXPECT_TRUE(transitive_edges(ex.dag).empty());
  EXPECT_TRUE(is_transitively_reduced(ex.dag));
}

TEST(TransitiveEdgesTest, DetectsShortcut) {
  Dag dag = testing::chain(3, 1);
  dag.add_edge(0, 2);  // shortcut over the chain
  const auto edges = transitive_edges(dag);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges.front(), std::make_pair(NodeId{0}, NodeId{2}));
  EXPECT_FALSE(is_transitively_reduced(dag));
}

TEST(TransitiveReductionTest, RemovesOnlyRedundantEdges) {
  Dag dag = testing::chain(4, 1);
  dag.add_edge(0, 2);
  dag.add_edge(1, 3);
  dag.add_edge(0, 3);
  const Dag reduced = transitive_reduction(dag);
  EXPECT_EQ(reduced.num_nodes(), dag.num_nodes());
  EXPECT_EQ(reduced.num_edges(), 3u);  // only the chain remains
  EXPECT_TRUE(is_transitively_reduced(reduced));
  // Reachability is preserved.
  for (NodeId u = 0; u < dag.num_nodes(); ++u) {
    for (NodeId w = 0; w < dag.num_nodes(); ++w) {
      if (u == w) continue;
      EXPECT_EQ(reachable(dag, u, w), reachable(reduced, u, w));
    }
  }
}

TEST(TransitiveReductionTest, RandomDenseGraphs) {
  // Regression for the sorted-lookup rewrite (the historical linear
  // std::find made reduction O(E·R)): dense random id-ordered DAGs carry
  // hundreds of redundant edges; reduction must drop exactly the
  // transitive ones and preserve reachability.
  Rng rng(0xA1507);
  for (int round = 0; round < 5; ++round) {
    Dag dag;
    const int n = 40;
    for (int v = 0; v < n; ++v) dag.add_node(1 + (v % 7));
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      for (NodeId w = u + 1; w < static_cast<NodeId>(n); ++w) {
        if (rng.bernoulli(0.15)) dag.add_edge(u, w);
      }
    }
    const std::size_t redundant = transitive_edges(dag).size();
    const Dag reduced = transitive_reduction(dag);
    EXPECT_EQ(reduced.num_edges(), dag.num_edges() - redundant);
    EXPECT_TRUE(is_transitively_reduced(reduced));
    for (NodeId u = 0; u < dag.num_nodes(); ++u) {
      for (NodeId w = 0; w < dag.num_nodes(); ++w) {
        if (u == w) continue;
        ASSERT_EQ(reachable(dag, u, w), reachable(reduced, u, w))
            << "round " << round << ": " << u << " -> " << w;
      }
    }
  }
}

TEST(TransitiveReductionTest, PreservesLabelsAndKinds) {
  auto ex = testing::paper_example();
  const Dag reduced = transitive_reduction(ex.dag);
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_EQ(reduced.label(v), ex.dag.label(v));
    EXPECT_EQ(reduced.kind(v), ex.dag.kind(v));
    EXPECT_EQ(reduced.wcet(v), ex.dag.wcet(v));
  }
}

TEST(ReachabilityTest, DiamondClosure) {
  const Dag dag = testing::diamond(1, 2, 3, 4);
  EXPECT_EQ(ancestors(dag, 3).count(), 3u);
  EXPECT_EQ(descendants(dag, 0).count(), 3u);
  EXPECT_EQ(ancestors(dag, 1).to_indices(), (std::vector<std::size_t>{0}));
}

}  // namespace
}  // namespace hedra::graph
