#include "graph/subgraph.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(SubgraphTest, InducesNodesAndInternalEdges) {
  const auto ex = testing::paper_example();
  const Subgraph sub = induced_subgraph(ex.dag, {ex.v2, ex.v3, ex.v5});
  EXPECT_EQ(sub.dag.num_nodes(), 3u);
  // Internal edges: v2->v5 and v3->v5; v1->v2 etc. are dropped.
  EXPECT_EQ(sub.dag.num_edges(), 2u);
  EXPECT_TRUE(sub.dag.has_edge(sub.from_parent[ex.v2], sub.from_parent[ex.v5]));
  EXPECT_TRUE(sub.dag.has_edge(sub.from_parent[ex.v3], sub.from_parent[ex.v5]));
}

TEST(SubgraphTest, MappingsAreConsistent) {
  const auto ex = testing::paper_example();
  const Subgraph sub = induced_subgraph(ex.dag, {ex.v2, ex.v3});
  ASSERT_EQ(sub.to_parent.size(), 2u);
  for (NodeId nv = 0; nv < sub.dag.num_nodes(); ++nv) {
    EXPECT_EQ(sub.from_parent[sub.to_parent[nv]], nv);
  }
  EXPECT_EQ(sub.from_parent[ex.v1], kInvalidNode);
  EXPECT_EQ(sub.from_parent[ex.voff], kInvalidNode);
}

TEST(SubgraphTest, PreservesAttributes) {
  const auto ex = testing::paper_example();
  const Subgraph sub = induced_subgraph(ex.dag, {ex.v3, ex.voff});
  const NodeId nv3 = sub.from_parent[ex.v3];
  const NodeId nvoff = sub.from_parent[ex.voff];
  EXPECT_EQ(sub.dag.wcet(nv3), 6);
  EXPECT_EQ(sub.dag.label(nv3), "v3");
  EXPECT_EQ(sub.dag.kind(nvoff), NodeKind::kOffload);
}

TEST(SubgraphTest, EmptySelection) {
  const auto ex = testing::paper_example();
  const Subgraph sub = induced_subgraph(ex.dag, std::vector<NodeId>{});
  EXPECT_EQ(sub.dag.num_nodes(), 0u);
  EXPECT_EQ(sub.dag.num_edges(), 0u);
}

TEST(SubgraphTest, FullSelectionCopiesGraph) {
  const auto ex = testing::paper_example();
  std::vector<NodeId> all;
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) all.push_back(v);
  const Subgraph sub = induced_subgraph(ex.dag, all);
  EXPECT_EQ(sub.dag.num_nodes(), ex.dag.num_nodes());
  EXPECT_EQ(sub.dag.num_edges(), ex.dag.num_edges());
}

TEST(SubgraphTest, OutOfRangeMemberThrows) {
  const auto ex = testing::paper_example();
  EXPECT_THROW(induced_subgraph(ex.dag, std::vector<NodeId>{99}), Error);
}

TEST(SubgraphTest, BitsetSizeMismatchThrows) {
  const auto ex = testing::paper_example();
  EXPECT_THROW(induced_subgraph(ex.dag, DynamicBitset(3)), Error);
}

}  // namespace
}  // namespace hedra::graph
