#include "graph/dag_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::graph {
namespace {

TEST(DagIoTest, RoundTripPreservesEverything) {
  const auto ex = testing::paper_example();
  const std::string text = write_dag_text(ex.dag);
  const Dag parsed = read_dag_text(text);
  ASSERT_EQ(parsed.num_nodes(), ex.dag.num_nodes());
  ASSERT_EQ(parsed.num_edges(), ex.dag.num_edges());
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_EQ(parsed.wcet(v), ex.dag.wcet(v));
    EXPECT_EQ(parsed.kind(v), ex.dag.kind(v));
    EXPECT_EQ(parsed.label(v), ex.dag.label(v));
  }
  for (const auto& [u, w] : ex.dag.edges()) {
    EXPECT_TRUE(parsed.has_edge(u, w));
  }
}

TEST(DagIoTest, ParsesMinimalDocument) {
  const Dag dag = read_dag_text(
      "# comment\n"
      "node a 3\n"
      "node b 5 offload\n"
      "node s 0 sync\n"
      "\n"
      "edge a b\n"
      "edge b s\n");
  EXPECT_EQ(dag.num_nodes(), 3u);
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_EQ(dag.kind(1), NodeKind::kOffload);
  EXPECT_EQ(dag.kind(2), NodeKind::kSync);
}

TEST(DagIoTest, DefaultKindIsHost) {
  const Dag dag = read_dag_text("node x 7\n");
  EXPECT_EQ(dag.kind(0), NodeKind::kHost);
}

TEST(DagIoTest, RejectsUnknownDirective) {
  EXPECT_THROW(read_dag_text("vertex a 1\n"), Error);
}

TEST(DagIoTest, RejectsUnknownKind) {
  EXPECT_THROW(read_dag_text("node a 1 gpu\n"), Error);
}

TEST(DagIoTest, RejectsDuplicateLabel) {
  EXPECT_THROW(read_dag_text("node a 1\nnode a 2\n"), Error);
}

TEST(DagIoTest, RejectsUnknownEndpoint) {
  EXPECT_THROW(read_dag_text("node a 1\nedge a b\n"), Error);
}

TEST(DagIoTest, RejectsMalformedWcet) {
  EXPECT_THROW(read_dag_text("node a one\n"), Error);
}

TEST(DagIoTest, ErrorMentionsLineNumber) {
  try {
    read_dag_text("node a 1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(DagIoTest, FileRoundTrip) {
  const auto ex = testing::fig3_example();
  const std::string path = ::testing::TempDir() + "/hedra_io_test.dag";
  save_dag_file(ex.dag, path);
  const Dag loaded = load_dag_file(path);
  EXPECT_EQ(loaded.num_nodes(), ex.dag.num_nodes());
  EXPECT_EQ(loaded.num_edges(), ex.dag.num_edges());
  std::remove(path.c_str());
}

TEST(DagIoTest, MissingFileThrows) {
  EXPECT_THROW(load_dag_file("/nonexistent/path/to.dag"), Error);
}

TEST(DagIoTest, DeviceAnnotationsRoundTrip) {
  const auto ex = testing::multi_device_example();
  const std::string text = write_dag_text(ex.dag);
  // Device 1 stays the historical bare "offload"; device 2 is explicit.
  EXPECT_NE(text.find("node gpu 6 offload\n"), std::string::npos);
  EXPECT_NE(text.find("node dsp 5 offload:2\n"), std::string::npos);
  const Dag loaded = read_dag_text(text);
  ASSERT_EQ(loaded.num_nodes(), ex.dag.num_nodes());
  for (NodeId v = 0; v < ex.dag.num_nodes(); ++v) {
    EXPECT_EQ(loaded.device(v), ex.dag.device(v));
    EXPECT_EQ(loaded.wcet(v), ex.dag.wcet(v));
    EXPECT_EQ(loaded.kind(v), ex.dag.kind(v));
  }
  // Byte-exact second round trip.
  EXPECT_EQ(write_dag_text(loaded), text);
}

TEST(DagIoTest, ParsesExplicitDeviceOne) {
  const Dag dag = read_dag_text("node a 2\nnode b 3 offload:1\nedge a b\n");
  EXPECT_EQ(dag.device(1), 1);
  // ...and writes it back in the canonical bare form.
  EXPECT_NE(write_dag_text(dag).find("node b 3 offload\n"),
            std::string::npos);
}

TEST(DagIoTest, RejectsMalformedDeviceAnnotations) {
  EXPECT_THROW((void)read_dag_text("node a 1 offload:0\n"), Error);
  EXPECT_THROW((void)read_dag_text("node a 1 offload:x\n"), Error);
  EXPECT_THROW((void)read_dag_text("node a 1 offload:99999999\n"), Error);
  EXPECT_THROW((void)read_dag_text("node a 1 sync:2\n"), Error);
}

}  // namespace
}  // namespace hedra::graph
