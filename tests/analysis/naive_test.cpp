#include "analysis/naive.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "sim/scheduler.h"
#include "util/error.h"

namespace hedra::analysis {
namespace {

TEST(NaiveTest, PaperExampleEquals11) {
  // §3.2 / Figure 1(b): 8 + (18 - 8 - 4)/2 = 11.
  const auto ex = testing::paper_example();
  EXPECT_EQ(rta_naive_subtraction(ex.dag, 2), Frac(11));
}

TEST(NaiveTest, DemonstratedUnsound) {
  // The whole point of §3.2: a legal work-conserving execution (the
  // breadth-first schedule of Figure 1(c)) takes 12 > 11.  This is the
  // motivating counterexample for the transformation.
  const auto ex = testing::paper_example();
  const Frac naive = rta_naive_subtraction(ex.dag, 2);
  sim::SimConfig config;
  config.cores = 2;
  config.policy = sim::Policy::kBreadthFirst;
  const graph::Time observed = sim::simulated_makespan(ex.dag, config);
  EXPECT_EQ(observed, 12);
  EXPECT_GT(Frac(observed), naive) << "the naive bound must be violated";
}

TEST(NaiveTest, AlwaysBelowOrEqualRhomByConstruction) {
  const auto ex = testing::paper_example();
  for (const int m : {1, 2, 4, 8}) {
    EXPECT_LE(rta_naive_subtraction(ex.dag, m).to_double(),
              8.0 + (18.0 - 8.0) / m);
  }
}

TEST(NaiveTest, RequiresHeterogeneousModel) {
  EXPECT_THROW((void)rta_naive_subtraction(testing::chain(3, 1), 2), Error);
  const auto ex = testing::paper_example();
  EXPECT_THROW((void)rta_naive_subtraction(ex.dag, 0), Error);
}

}  // namespace
}  // namespace hedra::analysis
