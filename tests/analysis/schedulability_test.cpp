#include "analysis/schedulability.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"

namespace hedra::analysis {
namespace {

model::DagTask paper_task(graph::Time deadline) {
  const auto ex = testing::paper_example();
  return model::DagTask(ex.dag, /*period=*/deadline, deadline);
}

TEST(SchedulabilityTest, HomogeneousUsesEq1) {
  const auto report =
      check_schedulability(paper_task(13), 2, AnalysisKind::kHomogeneous);
  EXPECT_EQ(report.bound, Frac(13));
  EXPECT_TRUE(report.schedulable);
}

TEST(SchedulabilityTest, HomogeneousMissesTighterDeadline) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHomogeneous);
  EXPECT_FALSE(report.schedulable);
}

TEST(SchedulabilityTest, HeterogeneousAcceptsWhatHomogeneousCannot) {
  // The paper's headline: R_het = 12 < R_hom = 13, so a deadline of 12 is
  // only provably met with the heterogeneous analysis.
  const auto hom =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHomogeneous);
  const auto het =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHeterogeneous);
  EXPECT_FALSE(hom.schedulable);
  EXPECT_TRUE(het.schedulable);
  EXPECT_EQ(het.bound, Frac(12));
  EXPECT_EQ(het.scenario, Scenario::kS1);
}

TEST(SchedulabilityTest, BestTakesTheMinimum) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kBest);
  EXPECT_EQ(report.bound, Frac(12));
  EXPECT_TRUE(report.schedulable);
}

TEST(SchedulabilityTest, BestIsNeverWorseThanEither) {
  // s21_example: R_hom = 12.5, R_het = 12.
  const model::DagTask task(testing::s21_example(), 50, 50);
  const auto best = check_schedulability(task, 2, AnalysisKind::kBest);
  const auto hom = check_schedulability(task, 2, AnalysisKind::kHomogeneous);
  const auto het = check_schedulability(task, 2, AnalysisKind::kHeterogeneous);
  EXPECT_LE(best.bound, hom.bound);
  EXPECT_LE(best.bound, het.bound);
}

TEST(SchedulabilityTest, ExactDeadlineBoundaryIsSchedulable) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHeterogeneous);
  EXPECT_TRUE(report.schedulable);  // R <= D, not R < D
  EXPECT_EQ(report.deadline, 12);
}

TEST(SchedulabilityTest, KindNamesRender) {
  EXPECT_STREQ(to_string(AnalysisKind::kHomogeneous), "homogeneous");
  EXPECT_STREQ(to_string(AnalysisKind::kHeterogeneous), "heterogeneous");
  EXPECT_STREQ(to_string(AnalysisKind::kBest), "best");
}

TEST(SchedulabilityTest, MoreCoresNeverHurtSchedulability) {
  const model::DagTask task(testing::wide_gpar_example(4), 14, 14);
  bool was_schedulable = false;
  for (const int m : {1, 2, 4, 8, 16}) {
    const auto report = check_schedulability(task, m, AnalysisKind::kBest);
    if (was_schedulable) EXPECT_TRUE(report.schedulable) << "m=" << m;
    was_schedulable = report.schedulable;
  }
}

}  // namespace
}  // namespace hedra::analysis
