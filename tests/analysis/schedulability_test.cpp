#include "analysis/schedulability.h"

#include <gtest/gtest.h>

#include "analysis/multi_offload.h"
#include "common/fixtures.h"

namespace hedra::analysis {
namespace {

model::DagTask paper_task(graph::Time deadline) {
  const auto ex = testing::paper_example();
  return model::DagTask(ex.dag, /*period=*/deadline, deadline);
}

TEST(SchedulabilityTest, HomogeneousUsesEq1) {
  const auto report =
      check_schedulability(paper_task(13), 2, AnalysisKind::kHomogeneous);
  EXPECT_EQ(report.bound, Frac(13));
  EXPECT_TRUE(report.schedulable);
}

TEST(SchedulabilityTest, HomogeneousMissesTighterDeadline) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHomogeneous);
  EXPECT_FALSE(report.schedulable);
}

TEST(SchedulabilityTest, HeterogeneousAcceptsWhatHomogeneousCannot) {
  // The paper's headline: R_het = 12 < R_hom = 13, so a deadline of 12 is
  // only provably met with the heterogeneous analysis.
  const auto hom =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHomogeneous);
  const auto het =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHeterogeneous);
  EXPECT_FALSE(hom.schedulable);
  EXPECT_TRUE(het.schedulable);
  EXPECT_EQ(het.bound, Frac(12));
  EXPECT_EQ(het.scenario, Scenario::kS1);
}

TEST(SchedulabilityTest, BestTakesTheMinimum) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kBest);
  EXPECT_EQ(report.bound, Frac(12));
  EXPECT_TRUE(report.schedulable);
}

TEST(SchedulabilityTest, BestIsNeverWorseThanEither) {
  // s21_example: R_hom = 12.5, R_het = 12.
  const model::DagTask task(testing::s21_example(), 50, 50);
  const auto best = check_schedulability(task, 2, AnalysisKind::kBest);
  const auto hom = check_schedulability(task, 2, AnalysisKind::kHomogeneous);
  const auto het = check_schedulability(task, 2, AnalysisKind::kHeterogeneous);
  EXPECT_LE(best.bound, hom.bound);
  EXPECT_LE(best.bound, het.bound);
}

TEST(SchedulabilityTest, ExactDeadlineBoundaryIsSchedulable) {
  const auto report =
      check_schedulability(paper_task(12), 2, AnalysisKind::kHeterogeneous);
  EXPECT_TRUE(report.schedulable);  // R <= D, not R < D
  EXPECT_EQ(report.deadline, 12);
}

TEST(SchedulabilityTest, KindNamesRender) {
  EXPECT_STREQ(to_string(AnalysisKind::kHomogeneous), "homogeneous");
  EXPECT_STREQ(to_string(AnalysisKind::kHeterogeneous), "heterogeneous");
  EXPECT_STREQ(to_string(AnalysisKind::kBest), "best");
  EXPECT_STREQ(to_string(AnalysisKind::kPlatform), "platform");
}

TEST(SchedulabilityTest, PlatformKindUsesTheChainBound) {
  // multi_device_example: R_plat = 28 for every m (host chain dominates).
  const auto ex = testing::multi_device_example();
  const model::DagTask task(ex.dag, 30, 28);
  const auto report = check_schedulability(task, 4, AnalysisKind::kPlatform);
  EXPECT_EQ(report.kind, AnalysisKind::kPlatform);
  EXPECT_EQ(report.bound, Frac(28));
  EXPECT_TRUE(report.schedulable);
  // The gpu class (vol 6) outweighs the dsp class (vol 5).
  EXPECT_EQ(report.dominating_device, 1);
  EXPECT_EQ(report.dominating_device_term, Frac(6));

  const model::DagTask tight(ex.dag, 30, 27);
  EXPECT_FALSE(
      check_schedulability(tight, 4, AnalysisKind::kPlatform).schedulable);
}

/// SATELLITE REGRESSION: on a single-accelerator task the kPlatform test is
/// exactly the heterogeneous two-resource path — the K = 1 chain bound
/// equals rta_multi_offload across the paper's whole m grid.
TEST(SchedulabilityTest, PlatformKindAtKOneEqualsTheHeterogeneousPathBound) {
  const auto ex = testing::paper_example();
  for (const int m : {1, 2, 4, 8, 16}) {
    const model::DagTask task(ex.dag, 100, 100);
    const auto report = check_schedulability(task, m, AnalysisKind::kPlatform);
    EXPECT_EQ(report.bound, rta_multi_offload(ex.dag, m)) << "m=" << m;
    EXPECT_EQ(report.dominating_device, 1);
    EXPECT_EQ(report.dominating_device_term, Frac(4));  // C_off = 4
  }
}

TEST(SchedulabilityTest, PlatformOverloadReportsMultiUnitBounds) {
  // With two gpu units the example's bound drops from 28 to 25 (m >= 2):
  // 17/m + (6/2 + 5) + max(17, 9 + 3·m/(m−1))·(m−1)/m.
  const auto ex = testing::multi_device_example();
  const model::DagTask task(ex.dag, 30, 25);
  const auto platform = model::Platform::parse("4:gpu*2,dsp");
  const auto report = check_schedulability(task, platform);
  EXPECT_EQ(report.kind, AnalysisKind::kPlatform);
  EXPECT_EQ(report.bound, Frac(25));
  EXPECT_TRUE(report.schedulable);
  // Splitting the gpu over two units hands dominance to the dsp class.
  EXPECT_EQ(report.dominating_device, 2);
  EXPECT_EQ(report.dominating_device_term, Frac(5));

  EXPECT_FALSE(check_schedulability(task, model::Platform::parse("4:gpu,dsp"))
                   .schedulable)
      << "single-unit bound is 28 > 25";
}

TEST(SchedulabilityTest, PlatformOverloadRejectsUnsupportedPlacements) {
  const auto ex = testing::multi_device_example();
  const model::DagTask task(ex.dag, 30, 30);
  EXPECT_THROW(
      (void)check_schedulability(task, model::Platform::parse("4:gpu")),
      Error);
}

TEST(SchedulabilityTest, HomogeneousTaskHasNoDominatingDevice) {
  const model::DagTask task(testing::chain(3, 5), 40, 40);
  const auto report = check_schedulability(task, 2, AnalysisKind::kPlatform);
  EXPECT_EQ(report.dominating_device, 0);
  EXPECT_EQ(report.dominating_device_term, Frac(0));
}

TEST(SchedulabilityTest, MoreCoresNeverHurtSchedulability) {
  const model::DagTask task(testing::wide_gpar_example(4), 14, 14);
  bool was_schedulable = false;
  for (const int m : {1, 2, 4, 8, 16}) {
    const auto report = check_schedulability(task, m, AnalysisKind::kBest);
    if (was_schedulable) {
      EXPECT_TRUE(report.schedulable) << "m=" << m;
    }
    was_schedulable = report.schedulable;
  }
}

}  // namespace
}  // namespace hedra::analysis
