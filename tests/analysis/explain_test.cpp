#include <gtest/gtest.h>

#include "analysis/rta_heterogeneous.h"
#include "common/fixtures.h"

namespace hedra::analysis {
namespace {

TEST(ExplainTest, Scenario1MentionsEq2AndQuantities) {
  const auto ex = testing::paper_example();
  const auto analysis = analyze_heterogeneous(ex.dag, 2);
  const std::string text = explain(analysis, 2);
  EXPECT_NE(text.find("Eq. 2"), std::string::npos);
  EXPECT_NE(text.find("S1"), std::string::npos);
  EXPECT_NE(text.find("len(G') = 10"), std::string::npos);
  EXPECT_NE(text.find("C_off = 4"), std::string::npos);
  EXPECT_NE(text.find("= 12"), std::string::npos);
  EXPECT_NE(text.find("not on"), std::string::npos);
}

TEST(ExplainTest, Scenario21MentionsEq3) {
  const auto analysis = analyze_heterogeneous(testing::s21_example(10), 2);
  const std::string text = explain(analysis, 2);
  EXPECT_NE(text.find("Eq. 3"), std::string::npos);
  EXPECT_NE(text.find("S2.1"), std::string::npos);
  EXPECT_NE(text.find(">= R_hom(G_par)"), std::string::npos);
}

TEST(ExplainTest, Scenario22MentionsEq4) {
  const auto analysis =
      analyze_heterogeneous(testing::wide_gpar_example(4), 2);
  const std::string text = explain(analysis, 2);
  EXPECT_NE(text.find("Eq. 4"), std::string::npos);
  EXPECT_NE(text.find("S2.2"), std::string::npos);
  EXPECT_NE(text.find("< R_hom(G_par)"), std::string::npos);
}

TEST(ExplainTest, ReportsVerdictAgainstBaseline) {
  const auto ex = testing::paper_example();
  const auto analysis = analyze_heterogeneous(ex.dag, 2);
  const std::string text = explain(analysis, 2);
  EXPECT_NE(text.find("R_hom (Eq. 1) = 13"), std::string::npos);
  EXPECT_NE(text.find("tighter"), std::string::npos);
}

}  // namespace
}  // namespace hedra::analysis
