/// \file batch_kernels_test.cpp
/// The vectorized batch kernels must be EXACTLY equal to the per-DAG
/// AnalysisCache path: same normalised rationals for every (DAG, m) bound,
/// same PlatformQuantities fields, and the SIMD volume backend must agree
/// with the scalar reference on every input shape (including the <4-lane
/// tails the masked loop peels).

#include "analysis/batch_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "exp/experiment.h"
#include "gen/params.h"
#include "util/rng.h"

namespace hedra::analysis {
namespace {

using exp::BatchConfig;
using graph::DeviceId;
using graph::FlatDagBatch;
using graph::Time;

BatchConfig small_config(std::uint64_t seed, double ratio) {
  BatchConfig config;
  config.params = gen::HierarchicalParams::small_tasks();
  config.params.min_nodes = 10;
  config.params.max_nodes = 60;
  config.coff_ratio = ratio;
  config.count = 8;
  config.seed = seed;
  return config;
}

TEST(BatchKernelsTest, BackendNameIsKnown) {
  const std::string backend = batch_kernel_backend();
  EXPECT_TRUE(backend == "avx2" || backend == "scalar") << backend;
}

TEST(BatchKernelsTest, DispatchedVolumesMatchScalarReference) {
  Rng rng(2024);
  // Sizes straddling the 4-lane SIMD width, device counts beyond what the
  // generators produce.
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 64u, 257u}) {
    for (const std::size_t num_devices : {1u, 2u, 5u}) {
      std::vector<Time> wcets(n);
      std::vector<DeviceId> devices(n);
      for (std::size_t i = 0; i < n; ++i) {
        wcets[i] = static_cast<Time>(rng.uniform_int(0, 1000));
        devices[i] = static_cast<DeviceId>(
            rng.uniform_int(0, static_cast<Time>(num_devices) - 1));
      }
      std::vector<Time> got(num_devices, 0);
      std::vector<Time> want(num_devices, 0);
      accumulate_device_volumes(wcets, devices, got);
      accumulate_device_volumes_scalar(wcets, devices, want);
      EXPECT_EQ(got, want) << "n=" << n << " devices=" << num_devices;
    }
  }
}

TEST(BatchKernelsTest, VolumesAccumulateIntoExistingEntries) {
  const std::vector<Time> wcets{5, 7, 11};
  const std::vector<DeviceId> devices{0, 1, 0};
  std::vector<Time> out{100, 200};
  accumulate_device_volumes(wcets, devices, out);
  EXPECT_EQ(out, (std::vector<Time>{116, 207}));
}

TEST(BatchKernelsTest, QuantitiesBatchMatchesAnalysisCache) {
  for (const int devices : {1, 2, 3}) {
    BatchConfig config = small_config(300u + devices, 0.3);
    config.params.num_devices = devices;
    config.params.offloads_per_device = 2;
    const FlatDagBatch batch = exp::generate_flat_batch(config);
    const std::vector<PlatformQuantities> got =
        platform_quantities_batch(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE("devices " + std::to_string(devices) + ", dag " +
                   std::to_string(i));
      AnalysisCache cache(batch, i);
      const PlatformQuantities& want = cache.platform_quantities();
      EXPECT_EQ(got[i].vol_host, want.vol_host);
      EXPECT_EQ(got[i].max_host_path, want.max_host_path);
      EXPECT_EQ(got[i].device_volume_sum, want.device_volume_sum);
      EXPECT_EQ(got[i].device_volumes, want.device_volumes);
    }
  }
}

TEST(BatchKernelsTest, SingleUnitBoundsEqualCacheExactly) {
  const std::vector<int> cores{1, 2, 4, 8};
  for (const int devices : {1, 2, 3}) {
    BatchConfig config = small_config(400u + devices, 0.25);
    config.params.num_devices = devices;
    config.params.offloads_per_device = 2;
    const FlatDagBatch batch = exp::generate_flat_batch(config);
    const PlatformBatchAnalysis result = analyze_platform_batch(batch, cores);
    ASSERT_EQ(result.quantities.size(), batch.size());
    ASSERT_EQ(result.bounds.size(), batch.size() * cores.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      AnalysisCache cache(batch, i);
      for (std::size_t mi = 0; mi < cores.size(); ++mi) {
        // Exact rational equality, not to_double closeness.
        EXPECT_EQ(result.bound(i, mi), cache.r_platform(cores[mi]))
            << "devices " << devices << ", dag " << i << ", m " << cores[mi];
      }
    }
  }
}

TEST(BatchKernelsTest, MultiplicityAndSpeedupBoundsEqualCacheExactly) {
  const std::vector<int> cores{2, 4, 8};
  BatchConfig config = small_config(777, 0.35);
  config.params.num_devices = 2;
  config.params.offloads_per_device = 2;
  const FlatDagBatch batch = exp::generate_flat_batch(config);

  const std::vector<std::vector<int>> unit_grid{{1, 1}, {2, 1}, {2, 2}};
  const std::vector<std::vector<Frac>> speed_grid{
      {Frac(1), Frac(1)}, {Frac(3), Frac(3, 2)}};
  for (const auto& units : unit_grid) {
    for (const auto& speedups : speed_grid) {
      const PlatformBatchAnalysis result =
          analyze_platform_batch(batch, cores, units, speedups);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        AnalysisCache cache(batch, i);
        for (std::size_t mi = 0; mi < cores.size(); ++mi) {
          EXPECT_EQ(result.bound(i, mi),
                    cache.r_platform(cores[mi], units, speedups))
              << "units {" << units[0] << "," << units[1] << "} dag " << i
              << " m " << cores[mi];
        }
      }
    }
  }
}

TEST(BatchKernelsTest, AllOnesGeneralOverloadDelegatesToSingleUnit) {
  const std::vector<int> cores{2, 8};
  const FlatDagBatch batch = exp::generate_flat_batch(small_config(11, 0.2));
  const std::vector<int> units{1};
  const std::vector<Frac> speedups{Frac(1)};
  const PlatformBatchAnalysis general =
      analyze_platform_batch(batch, cores, units, speedups);
  const PlatformBatchAnalysis single = analyze_platform_batch(batch, cores);
  EXPECT_EQ(general.bounds, single.bounds);
}

}  // namespace
}  // namespace hedra::analysis
