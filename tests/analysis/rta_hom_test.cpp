#include "analysis/rta_homogeneous.h"

#include <gtest/gtest.h>

#include "common/fixtures.h"
#include "graph/critical_path.h"
#include "util/error.h"

namespace hedra::analysis {
namespace {

TEST(RtaHomTest, PaperExampleEquals13) {
  // §3.2: len = 8, vol = 18, m = 2 -> R_hom = 8 + (18-8)/2 = 13.
  const auto ex = testing::paper_example();
  EXPECT_EQ(rta_homogeneous(ex.dag, 2), Frac(13));
}

TEST(RtaHomTest, SingleCoreGivesVolume) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(rta_homogeneous(ex.dag, 1), Frac(18));
}

TEST(RtaHomTest, ManyCoresApproachLen) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(rta_homogeneous(ex.dag, 1000), Frac(8) + Frac(10, 1000));
  EXPECT_GT(rta_homogeneous(ex.dag, 1000), Frac(8));
}

TEST(RtaHomTest, MonotoneInCores) {
  const auto ex = testing::paper_example();
  Frac prev = rta_homogeneous(ex.dag, 1);
  for (int m = 2; m <= 32; ++m) {
    const Frac current = rta_homogeneous(ex.dag, m);
    EXPECT_LE(current, prev) << "m=" << m;
    prev = current;
  }
}

TEST(RtaHomTest, ChainIsExactlyLenForAnyM) {
  const auto dag = testing::chain(5, 4);  // len == vol == 20
  for (const int m : {1, 2, 8}) {
    EXPECT_EQ(rta_homogeneous(dag, m), Frac(20));
  }
}

TEST(RtaHomTest, RawFormOnLenVol) {
  EXPECT_EQ(rta_homogeneous(10, 30, 4), Frac(10) + Frac(5));
  EXPECT_EQ(rta_homogeneous(0, 0, 3), Frac(0));
}

TEST(RtaHomTest, EmptyDagIsZero) {
  // R_hom(G_par) must be well-defined when G_par is empty.
  const graph::Dag empty;
  EXPECT_EQ(rta_homogeneous(empty, 2), Frac(0));
}

TEST(RtaHomTest, PreconditionsEnforced) {
  EXPECT_THROW((void)rta_homogeneous(10, 30, 0), Error);
  EXPECT_THROW((void)rta_homogeneous(-1, 30, 2), Error);
  EXPECT_THROW((void)rta_homogeneous(31, 30, 2), Error);  // vol < len
}

TEST(RtaHomTest, ResultIsExactRational) {
  const auto ex = testing::paper_example();
  const Frac bound = rta_homogeneous(ex.dag, 4);  // 8 + 10/4 = 21/2
  EXPECT_EQ(bound, Frac(21, 2));
  EXPECT_FALSE(bound.is_integer());
}

/// Graham-bound sandwich: len <= R_hom <= vol for every m.
class RtaHomSandwichTest : public ::testing::TestWithParam<int> {};

TEST_P(RtaHomSandwichTest, BoundBetweenLenAndVol) {
  const int m = GetParam();
  const auto ex = testing::fig3_example();
  const Frac bound = rta_homogeneous(ex.dag, m);
  EXPECT_GE(bound, Frac(graph::critical_path_length(ex.dag)));
  EXPECT_LE(bound, Frac(ex.dag.volume()));
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, RtaHomSandwichTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace hedra::analysis
