#include "analysis/transform.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/fixtures.h"
#include "graph/algorithms.h"
#include "graph/critical_path.h"
#include "graph/validate.h"
#include "util/error.h"

namespace hedra::analysis {
namespace {

using graph::NodeId;
using graph::NodeKind;

TEST(TransformTest, PaperExampleStructure) {
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  const graph::Dag& g = result.transformed;

  // V' = V ∪ {v_sync}, v_sync has zero WCET and sync kind.
  ASSERT_EQ(g.num_nodes(), ex.dag.num_nodes() + 1);
  EXPECT_EQ(g.kind(result.vsync), NodeKind::kSync);
  EXPECT_EQ(g.wcet(result.vsync), 0);
  EXPECT_EQ(result.voff, ex.voff);

  // The direct predecessor v4 now feeds v_sync instead of v_off.
  EXPECT_TRUE(g.has_edge(ex.v4, result.vsync));
  EXPECT_FALSE(g.has_edge(ex.v4, ex.voff));
  // (v_sync, v_off) exists.
  EXPECT_TRUE(g.has_edge(result.vsync, ex.voff));
  // v1's edges to the parallel nodes moved under v_sync ("synchronization
  // point between v4 and v2, v3").
  EXPECT_FALSE(g.has_edge(ex.v1, ex.v2));
  EXPECT_FALSE(g.has_edge(ex.v1, ex.v3));
  EXPECT_TRUE(g.has_edge(result.vsync, ex.v2));
  EXPECT_TRUE(g.has_edge(result.vsync, ex.v3));
  // v1 -> v4 stays (v4 ∈ Pred(v_off)).
  EXPECT_TRUE(g.has_edge(ex.v1, ex.v4));
  // Outgoing edges of the parallel portion are untouched.
  EXPECT_TRUE(g.has_edge(ex.v2, ex.v5));
  EXPECT_TRUE(g.has_edge(ex.v3, ex.v5));
  EXPECT_TRUE(g.has_edge(ex.voff, ex.v5));
}

TEST(TransformTest, PaperExampleLenBecomes10) {
  // §3.3: "the length of the transformed DAG in Figure 2(a) is 10".
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  EXPECT_EQ(graph::critical_path_length(result.transformed), 10);
}

TEST(TransformTest, PaperExampleGPar) {
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  // G_par = {v2, v3}: vol = 10, len = 6, no internal edges.
  EXPECT_EQ(result.gpar.dag.num_nodes(), 2u);
  EXPECT_EQ(result.gpar.dag.num_edges(), 0u);
  EXPECT_EQ(result.gpar.dag.volume(), 10);
  EXPECT_EQ(graph::critical_path_length(result.gpar.dag), 6);
  std::vector<NodeId> members = result.gpar.to_parent;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<NodeId>{ex.v2, ex.v3}));
}

TEST(TransformTest, PaperExamplePredSuccSets) {
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  EXPECT_EQ(result.pred_of_voff, (std::vector<NodeId>{ex.v1, ex.v4}));
  EXPECT_EQ(result.succ_of_voff, (std::vector<NodeId>{ex.v5}));
}

TEST(TransformTest, VolumeIsPreserved) {
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  EXPECT_EQ(result.transformed.volume(), ex.dag.volume());
}

TEST(TransformTest, Fig3EveryDescribedEdgeMove) {
  const auto ex = testing::fig3_example();
  const TransformResult result = transform_for_offload(ex.dag);
  const graph::Dag& g = result.transformed;
  const NodeId vsync = result.vsync;
  const auto id = [&](const char* name) { return ex.id(name); };

  // Green edges: direct predecessors v8, v9 now feed v_sync.
  EXPECT_TRUE(g.has_edge(id("v8"), vsync));
  EXPECT_TRUE(g.has_edge(id("v9"), vsync));
  EXPECT_FALSE(g.has_edge(id("v8"), id("vOff")));
  EXPECT_FALSE(g.has_edge(id("v9"), id("vOff")));
  // Yellow edge (v_sync, v_off).
  EXPECT_TRUE(g.has_edge(vsync, id("vOff")));
  // Black edge move: (v8, v11) -> (v_sync, v11).
  EXPECT_FALSE(g.has_edge(id("v8"), id("v11")));
  EXPECT_TRUE(g.has_edge(vsync, id("v11")));
  // Pink edge moves: (v1, v2) -> (v_sync, v2), (v3, v7) -> (v_sync, v7).
  EXPECT_FALSE(g.has_edge(id("v1"), id("v2")));
  EXPECT_TRUE(g.has_edge(vsync, id("v2")));
  EXPECT_FALSE(g.has_edge(id("v3"), id("v7")));
  EXPECT_TRUE(g.has_edge(vsync, id("v7")));
  // Edges inside Pred(v_off) are untouched.
  EXPECT_TRUE(g.has_edge(id("v1"), id("v3")));
  EXPECT_TRUE(g.has_edge(id("v3"), id("v8")));
  EXPECT_TRUE(g.has_edge(id("v3"), id("v9")));
  // Edges inside G_par are untouched.
  EXPECT_TRUE(g.has_edge(id("v2"), id("v4")));
  EXPECT_TRUE(g.has_edge(id("v4"), id("v6")));
}

TEST(TransformTest, Fig3GParMembersAndEdges) {
  const auto ex = testing::fig3_example();
  const TransformResult result = transform_for_offload(ex.dag);
  std::vector<std::string> names;
  for (const NodeId parent : result.gpar.to_parent) {
    names.push_back(ex.dag.label(parent));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"v11", "v2", "v4", "v5", "v6",
                                             "v7"}));
  // Internal edges only: v2->v4, v2->v5, v4->v6, v5->v6.
  EXPECT_EQ(result.gpar.dag.num_edges(), 4u);
}

TEST(TransformTest, GParNodesAllDependOnVsync) {
  // The whole point of the transformation: every G_par node starts after
  // v_sync, i.e. simultaneously with v_off.
  const auto ex = testing::fig3_example();
  const TransformResult result = transform_for_offload(ex.dag);
  const auto reachable_from_sync =
      graph::descendants(result.transformed, result.vsync);
  for (const NodeId parent : result.gpar.to_parent) {
    EXPECT_TRUE(reachable_from_sync.test(parent))
        << ex.dag.label(parent) << " does not depend on v_sync";
  }
}

TEST(TransformTest, TransformedGraphStaysSingleSourceSinkAcyclic) {
  for (const auto& dag :
       {testing::paper_example().dag, testing::fig3_example().dag,
        testing::s21_example(), testing::wide_gpar_example(4)}) {
    const TransformResult result = transform_for_offload(dag);
    graph::ValidationRules rules = graph::heterogeneous_rules();
    // G' may legitimately contain transitive edges via v_sync.
    rules.forbid_transitive_edges = false;
    EXPECT_TRUE(graph::is_valid(result.transformed, rules));
  }
}

TEST(TransformTest, EdgeAccounting) {
  const auto ex = testing::paper_example();
  const TransformResult result = transform_for_offload(ex.dag);
  // Removed: (v4,vOff), (v1,v2), (v1,v3).  Added: (v4,vsync), (vsync,vOff),
  // (vsync,v2), (vsync,v3).
  EXPECT_EQ(result.edges_removed, 3u);
  EXPECT_EQ(result.edges_added, 4u);
  EXPECT_EQ(result.transformed.num_edges(),
            ex.dag.num_edges() + result.edges_added - result.edges_removed);
}

TEST(TransformTest, EmptyGParChain) {
  // v1 -> vOff -> v3: nothing is parallel to v_off.
  graph::Dag dag;
  const NodeId v1 = dag.add_node(1);
  const NodeId voff = dag.add_node(5, NodeKind::kOffload);
  const NodeId v3 = dag.add_node(1);
  dag.add_edge(v1, voff);
  dag.add_edge(voff, v3);
  const TransformResult result = transform_for_offload(dag);
  EXPECT_EQ(result.gpar.dag.num_nodes(), 0u);
  EXPECT_TRUE(result.transformed.has_edge(v1, result.vsync));
  EXPECT_TRUE(result.transformed.has_edge(result.vsync, voff));
  EXPECT_EQ(graph::critical_path_length(result.transformed), 7);
}

TEST(TransformTest, SharedParallelSuccessorNoDuplicateEdge) {
  // Two direct predecessors sharing a parallel successor must produce a
  // single (v_sync, p) edge.
  graph::Dag dag;
  const NodeId v1 = dag.add_node(1);
  const NodeId d1 = dag.add_node(1);
  const NodeId d2 = dag.add_node(1);
  const NodeId p = dag.add_node(1, NodeKind::kHost, "p");
  const NodeId voff = dag.add_node(3, NodeKind::kOffload);
  const NodeId vn = dag.add_node(1);
  dag.add_edge(v1, d1);
  dag.add_edge(v1, d2);
  dag.add_edge(d1, voff);
  dag.add_edge(d2, voff);
  dag.add_edge(d1, p);
  dag.add_edge(d2, p);
  dag.add_edge(p, vn);
  dag.add_edge(voff, vn);
  const TransformResult result = transform_for_offload(dag);
  int sync_to_p = 0;
  for (const auto& [u, w] : result.transformed.edges()) {
    if (u == result.vsync && w == p) ++sync_to_p;
  }
  EXPECT_EQ(sync_to_p, 1);
}

TEST(TransformTest, RejectsOffloadAtSource) {
  graph::Dag dag;
  const NodeId voff = dag.add_node(2, NodeKind::kOffload);
  const NodeId v2 = dag.add_node(1);
  dag.add_edge(voff, v2);
  EXPECT_THROW(transform_for_offload(dag), Error);
}

TEST(TransformTest, RejectsOffloadAtSink) {
  graph::Dag dag;
  const NodeId v1 = dag.add_node(1);
  const NodeId voff = dag.add_node(2, NodeKind::kOffload);
  dag.add_edge(v1, voff);
  EXPECT_THROW(transform_for_offload(dag), Error);
}

TEST(TransformTest, RejectsMissingOffload) {
  const auto dag = testing::chain(3, 1);
  EXPECT_THROW(transform_for_offload(dag), Error);
}

TEST(TransformTest, RejectsTransitiveEdges) {
  auto ex = testing::paper_example();
  ex.dag.add_edge(ex.v1, ex.v5);  // transitive shortcut
  EXPECT_THROW(transform_for_offload(ex.dag), Error);
}

TEST(TransformTest, ParallelNodesHelper) {
  const auto ex = testing::paper_example();
  EXPECT_EQ(parallel_nodes(ex.dag, ex.voff),
            (std::vector<NodeId>{ex.v2, ex.v3}));
  const auto f3 = testing::fig3_example();
  EXPECT_EQ(parallel_nodes(f3.dag, f3.id("vOff")).size(), 6u);
}

TEST(TransformTest, InputGraphIsNotMutated) {
  const auto ex = testing::paper_example();
  const auto edges_before = ex.dag.edges();
  (void)transform_for_offload(ex.dag);
  EXPECT_EQ(ex.dag.edges(), edges_before);
  EXPECT_EQ(ex.dag.num_nodes(), 6u);
}

}  // namespace
}  // namespace hedra::analysis
