#include "analysis/rta_heterogeneous.h"

#include <gtest/gtest.h>

#include "analysis/naive.h"
#include "common/fixtures.h"
#include "util/error.h"

namespace hedra::analysis {
namespace {

TEST(RtaHetTest, PaperExampleScenario1) {
  const auto ex = testing::paper_example();
  const HetAnalysis analysis = analyze_heterogeneous(ex.dag, 2);
  // In G' the critical path runs v1-v4-vsync-v3-v5 (len 10); the v_off path
  // is only 8, so Scenario 1 applies.
  EXPECT_EQ(analysis.scenario, Scenario::kS1);
  EXPECT_FALSE(analysis.voff_on_critical_path);
  EXPECT_EQ(analysis.len_original, 8);
  EXPECT_EQ(analysis.len_transformed, 10);
  EXPECT_EQ(analysis.volume, 18);
  EXPECT_EQ(analysis.c_off, 4);
  EXPECT_EQ(analysis.len_gpar, 6);
  EXPECT_EQ(analysis.vol_gpar, 10);
  // Eq. 2: 10 + (18 - 10 - 4)/2 = 12.
  EXPECT_EQ(analysis.r_het, Frac(12));
  // Baseline Eq. 1 on τ: 13.
  EXPECT_EQ(analysis.r_hom, Frac(13));
}

TEST(RtaHetTest, PaperExampleHetBeatsHom) {
  const auto ex = testing::paper_example();
  const HetAnalysis analysis = analyze_heterogeneous(ex.dag, 2);
  EXPECT_LT(analysis.r_het, analysis.r_hom);
  EXPECT_EQ(best_bound(ex.dag, 2), Frac(12));
}

TEST(RtaHetTest, Scenario21Chain) {
  // s21_example: v1(1) -> vOff(10) -> v3(1), parallel p(1).
  // G': len = 12 via v_off; R_hom(G_par) = 1 <= C_off -> S2.1.
  const graph::Dag dag = testing::s21_example(10);
  const HetAnalysis analysis = analyze_heterogeneous(dag, 2);
  EXPECT_EQ(analysis.scenario, Scenario::kS21);
  EXPECT_TRUE(analysis.voff_on_critical_path);
  EXPECT_EQ(analysis.len_transformed, 12);
  EXPECT_EQ(analysis.r_hom_gpar, Frac(1));
  // Eq. 3: 12 + (13 - 12 - 1)/2 = 12.
  EXPECT_EQ(analysis.r_het, Frac(12));
  // Baseline: len(G) = 12, vol = 13 -> 12 + 1/2.
  EXPECT_EQ(analysis.r_hom, Frac(12) + Frac(1, 2));
}

TEST(RtaHetTest, Scenario22WideGPar) {
  // wide_gpar_example(4): G_par = 4 parallel nodes of 2; m=2:
  // R_hom(G_par) = 2 + 6/2 = 5 > C_off = 4 >= len(G_par) = 2 -> S2.2.
  const graph::Dag dag = testing::wide_gpar_example(4);
  const HetAnalysis analysis = analyze_heterogeneous(dag, 2);
  EXPECT_EQ(analysis.scenario, Scenario::kS22);
  EXPECT_TRUE(analysis.voff_on_critical_path);
  EXPECT_EQ(analysis.len_transformed, 6);  // v1 + v_off + v6 = 1+4+1
  EXPECT_EQ(analysis.r_hom_gpar, Frac(5));
  // Eq. 4: 6 - 4 + 2 + (14 - 6 - 2)/2 = 7.
  EXPECT_EQ(analysis.r_het, Frac(7));
}

TEST(RtaHetTest, Scenario21WhenCoffLarge) {
  // Same structure, C_off = 9 > R_hom(G_par) = 5 -> S2.1.
  const graph::Dag dag = testing::wide_gpar_example(9);
  const HetAnalysis analysis = analyze_heterogeneous(dag, 2);
  EXPECT_EQ(analysis.scenario, Scenario::kS21);
  // Eq. 3: len(G')=11, vol=19, vol(G_par)=8: 11 + 0/2 = 11.
  EXPECT_EQ(analysis.r_het, Frac(11));
}

TEST(RtaHetTest, Equations3And4AgreeAtTheBoundary) {
  // §4: "scenarios 2.1 and 2.2 are equivalent when C_off = R_hom(G_par)".
  // wide_gpar_example(5) with m=2 hits C_off == R_hom(G_par) == 5 exactly.
  const graph::Dag dag = testing::wide_gpar_example(5);
  const HetAnalysis analysis = analyze_heterogeneous(dag, 2);
  EXPECT_EQ(Frac(analysis.c_off), analysis.r_hom_gpar);
  EXPECT_EQ(analysis.scenario, Scenario::kS21);  // tie classified as S2.1
  // Evaluate both closed forms by hand: len(G')=7, vol=15, vol_par=8,
  // len_par=2.
  const Frac eq3 = Frac(7) + Frac(15 - 7 - 8, 2);
  const Frac eq4 = Frac(7) - Frac(5) + Frac(2) + Frac(15 - 7 - 2, 2);
  EXPECT_EQ(eq3, eq4);
  EXPECT_EQ(analysis.r_het, eq3);
}

TEST(RtaHetTest, EmptyGParFallsIntoS21) {
  // Chain v1 -> vOff -> v3: R_hom(G_par) = 0 <= C_off, v_off critical.
  graph::Dag dag;
  const auto v1 = dag.add_node(1);
  const auto voff = dag.add_node(5, graph::NodeKind::kOffload);
  const auto v3 = dag.add_node(1);
  dag.add_edge(v1, voff);
  dag.add_edge(voff, v3);
  const HetAnalysis analysis = analyze_heterogeneous(dag, 2);
  EXPECT_EQ(analysis.scenario, Scenario::kS21);
  // Eq. 3: len(G') = 7, vol = 7, vol_par = 0 -> 7 + 0 = 7.
  EXPECT_EQ(analysis.r_het, Frac(7));
}

TEST(RtaHetTest, S1ImpliesGParOutlastsCoff) {
  // Theorem 1's proof hinges on len(G_par) > C_off in Scenario 1.
  const auto ex = testing::paper_example();
  const HetAnalysis analysis = analyze_heterogeneous(ex.dag, 2);
  ASSERT_EQ(analysis.scenario, Scenario::kS1);
  EXPECT_GT(analysis.len_gpar, analysis.c_off);
}

TEST(RtaHetTest, ScenarioNamesRender) {
  EXPECT_STREQ(to_string(Scenario::kS1), "S1");
  EXPECT_STREQ(to_string(Scenario::kS21), "S2.1");
  EXPECT_STREQ(to_string(Scenario::kS22), "S2.2");
}

TEST(RtaHetTest, ScenarioDependsOnM) {
  // wide_gpar_example(4): m=2 gives R_hom(G_par)=5 > 4 -> S2.2; with m=4,
  // R_hom(G_par) = 2 + 6/4 = 3.5 < 4 -> S2.1.
  const graph::Dag dag = testing::wide_gpar_example(4);
  EXPECT_EQ(analyze_heterogeneous(dag, 2).scenario, Scenario::kS22);
  EXPECT_EQ(analyze_heterogeneous(dag, 4).scenario, Scenario::kS21);
}

TEST(RtaHetTest, RhetReducesInterferenceVersusEq1OnTransformedGraph) {
  // On the transformed DAG, R_het is never worse than applying plain Eq. 1
  // to G' (the subtraction terms are non-negative).
  for (const auto& dag :
       {testing::paper_example().dag, testing::s21_example(),
        testing::wide_gpar_example(3), testing::wide_gpar_example(7)}) {
    for (const int m : {2, 4, 8}) {
      const auto analysis = analyze_heterogeneous(dag, m);
      const Frac eq1_on_gprime =
          rta_homogeneous(analysis.transform.transformed, m);
      EXPECT_LE(analysis.r_het, eq1_on_gprime);
    }
  }
}

TEST(RtaHetTest, InvalidInputsThrow) {
  const auto ex = testing::paper_example();
  EXPECT_THROW(analyze_heterogeneous(ex.dag, 0), Error);
  EXPECT_THROW(analyze_heterogeneous(testing::chain(3, 1), 2), Error);
}

}  // namespace
}  // namespace hedra::analysis
