#include "analysis/multi_offload.h"

#include <gtest/gtest.h>

#include "analysis/rta_homogeneous.h"
#include "common/fixtures.h"
#include "sim/scheduler.h"
#include "util/error.h"

namespace hedra::analysis {
namespace {

using graph::NodeId;
using graph::NodeKind;

/// Diamond with two offload branches sharing the single accelerator.
graph::Dag two_offload_diamond() {
  graph::Dag dag;
  const NodeId v1 = dag.add_node(1);
  const NodeId o1 = dag.add_node(4, NodeKind::kOffload, "o1");
  const NodeId o2 = dag.add_node(3, NodeKind::kOffload, "o2");
  const NodeId h = dag.add_node(2);
  const NodeId vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(v1, h);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  dag.add_edge(h, vn);
  return dag;
}

TEST(MultiOffloadTest, HostOnlyChainSingleCore) {
  // Chain, m = 1: bound = vol/1 + 0 + weighted path (0 when m = 1) = vol.
  const auto dag = testing::chain(4, 5);
  EXPECT_EQ(rta_multi_offload(dag, 1), Frac(20));
}

TEST(MultiOffloadTest, HostOnlyMatchesChainForm) {
  // For host-only DAGs the bound is vol/m + max_P Σ C_v (m-1)/m, which for a
  // chain (vol == len) collapses to exactly len.
  const auto dag = testing::chain(4, 5);
  for (const int m : {2, 4, 8}) {
    EXPECT_EQ(rta_multi_offload(dag, m), Frac(20));
  }
}

TEST(MultiOffloadTest, HostOnlyEqualsEq1OnDiamond) {
  // Diamond: the weighted longest path follows the critical path, so the
  // bound coincides with Eq. 1.
  const auto dag = testing::diamond(1, 10, 2, 1);
  for (const int m : {2, 4}) {
    EXPECT_EQ(rta_multi_offload(dag, m), rta_homogeneous(dag, m));
  }
}

TEST(MultiOffloadTest, SingleOffloadValue) {
  // paper_example, m = 2: vol_host = 14, vol_off = 4; weighted path maximises
  // host content: v1+v3+v5 = 8 host ticks -> 14/2 + 4 + 8/2 = 15.
  const auto ex = testing::paper_example();
  EXPECT_EQ(rta_multi_offload(ex.dag, 2), Frac(15));
}

TEST(MultiOffloadTest, TwoOffloadsValue) {
  // two_offload_diamond, m = 2: vol_host = 4, vol_off = 7.
  // Host-weighted longest path: v1 + h + vn = 4 host ticks -> weight 4·(1/2).
  // Bound = 4/2 + 7 + 2 = 11.
  EXPECT_EQ(rta_multi_offload(two_offload_diamond(), 2), Frac(11));
}

TEST(MultiOffloadTest, SoundAgainstSimulation) {
  const auto dag = two_offload_diamond();
  for (const int m : {1, 2, 4}) {
    const Frac bound = rta_multi_offload(dag, m);
    for (const auto policy :
         {sim::Policy::kBreadthFirst, sim::Policy::kDepthFirst,
          sim::Policy::kCriticalPathFirst, sim::Policy::kIndexOrder}) {
      sim::SimConfig config;
      config.cores = m;
      config.policy = policy;
      EXPECT_LE(Frac(sim::simulated_makespan(dag, config)), bound)
          << "m=" << m << " policy=" << sim::to_string(policy);
    }
  }
}

TEST(MultiOffloadTest, AccountsForAcceleratorSerialisation) {
  // Two 10-tick offload nodes in parallel share one accelerator: any
  // execution needs >= 20 ticks of accelerator time; the bound must cover it
  // while a per-node "no interference" argument would not.
  graph::Dag dag;
  const NodeId v1 = dag.add_node(1);
  const NodeId o1 = dag.add_node(10, NodeKind::kOffload, "o1");
  const NodeId o2 = dag.add_node(10, NodeKind::kOffload, "o2");
  const NodeId vn = dag.add_node(1);
  dag.add_edge(v1, o1);
  dag.add_edge(v1, o2);
  dag.add_edge(o1, vn);
  dag.add_edge(o2, vn);
  const Frac bound = rta_multi_offload(dag, 2);
  sim::SimConfig config;
  config.cores = 2;
  const graph::Time observed = sim::simulated_makespan(dag, config);
  EXPECT_GE(observed, 22);  // serialised accelerator
  EXPECT_LE(Frac(observed), bound);
}

TEST(MultiOffloadTest, PreconditionsEnforced) {
  EXPECT_THROW((void)rta_multi_offload(graph::Dag{}, 2), Error);
  EXPECT_THROW((void)rta_multi_offload(testing::chain(2, 1), 0), Error);
}

}  // namespace
}  // namespace hedra::analysis
